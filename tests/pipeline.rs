//! Full-pipeline integration tests: dataset → discovery → metadata
//! exchange → synthesis attack → leakage measurement.

use metadata_privacy::prelude::*;
use metadata_privacy::{core::analytical, datasets};

fn experiment(rounds: usize) -> ExperimentConfig {
    ExperimentConfig {
        rounds,
        base_seed: 0xFEED,
        epsilon: 0.0,
    }
}

#[test]
fn discovery_to_attack_pipeline_runs() {
    let real = datasets::echocardiogram();
    let profile = DependencyProfile::discover(&real, &ProfileConfig::paper()).unwrap();
    assert!(!profile.fds.is_empty());
    assert!(!profile.ods.is_empty());

    let package = MetadataPackage::describe("hospital", &real, profile.to_dependencies()).unwrap();
    let result = run_attack(&real, &package, true, &experiment(10)).unwrap();
    assert_eq!(result.per_attr.len(), 13);
    assert_eq!(result.rounds, 10);
}

#[test]
fn random_matches_follow_n_over_domain_law() {
    // §III-A: expected categorical matches = N/|D| for every attribute.
    let real = datasets::echocardiogram();
    let package = MetadataPackage::describe("hospital", &real, vec![]).unwrap();
    let result = run_attack(&real, &package, false, &experiment(300)).unwrap();
    for &attr in &datasets::CATEGORICAL_ATTRS {
        let domain = Domain::infer(&real, attr).unwrap();
        let expected = analytical::random::expected_matches(real.n_rows(), domain.theta(0.0));
        let measured = result.attr(attr).unwrap().mean_matches;
        assert!(
            (measured - expected).abs() < 0.15 * expected + 1.0,
            "attr {attr}: measured {measured} vs N/|D| {expected}"
        );
    }
}

#[test]
fn fd_driven_attack_leaks_no_more_than_random() {
    // The paper's §III-B conclusion on the real pipeline.
    let real = datasets::echocardiogram();
    let deps = datasets::verified_dependencies();
    let pkg_deps = MetadataPackage::describe("h", &real, deps).unwrap();
    let pkg_rand = MetadataPackage::describe("h", &real, vec![]).unwrap();

    let with_deps = run_attack(&real, &pkg_deps, true, &experiment(200)).unwrap();
    let random = run_attack(&real, &pkg_rand, false, &experiment(200)).unwrap();

    for &attr in &datasets::CATEGORICAL_ATTRS {
        let d = with_deps.attr(attr).unwrap().mean_matches;
        let r = random.attr(attr).unwrap().mean_matches;
        // No *extra* leakage: within noise, or below.
        assert!(
            d <= r + 0.20 * real.n_rows() as f64,
            "attr {attr}: deps {d} vs random {r}"
        );
    }
}

#[test]
fn recommended_policy_zeroes_generation() {
    let real = datasets::echocardiogram();
    let package = MetadataPackage::describe("h", &real, datasets::verified_dependencies()).unwrap();
    let shared = SharePolicy::PAPER_RECOMMENDED.apply(&package);
    let result = run_attack(&real, &shared, true, &experiment(5)).unwrap();
    for summary in &result.per_attr {
        // Null columns can only "match" real nulls.
        let real_nulls = real
            .column(summary.attr)
            .unwrap()
            .iter()
            .filter(|v| v.is_null())
            .count() as f64;
        assert!(
            summary.mean_matches <= real_nulls,
            "attr {} leaked {}",
            summary.name,
            summary.mean_matches
        );
    }
}

#[test]
fn exchange_round_trips_through_json() {
    // Metadata survives the wire format: attack outcomes are identical
    // whether the package went through JSON or not.
    let real = datasets::employee();
    let profile = DependencyProfile::discover(&real, &ProfileConfig::paper()).unwrap();
    let package = MetadataPackage::describe("bank", &real, profile.to_dependencies()).unwrap();
    let wire = package.to_json();
    let received = MetadataPackage::from_json(&wire).unwrap();
    assert_eq!(received, package);

    let a = run_attack(&real, &package, true, &experiment(20)).unwrap();
    let b = run_attack(&real, &received, true, &experiment(20)).unwrap();
    for (x, y) in a.per_attr.iter().zip(&b.per_attr) {
        assert_eq!(x.mean_matches, y.mean_matches);
    }
}

#[test]
fn discovered_dependencies_transfer_to_synthetic_data() {
    // Dependencies discovered on real data and shared with the adversary
    // hold on the adversary's synthetic output when they drive generation.
    let real = datasets::employee();
    let profile = DependencyProfile::discover(&real, &ProfileConfig::paper()).unwrap();
    let package = MetadataPackage::describe("bank", &real, profile.to_dependencies()).unwrap();
    let adversary = Adversary::new(package.clone());
    let syn = adversary
        .synthesize(&SynthConfig::with_dependencies(100, 3))
        .unwrap();

    // Every dependency chosen by the generation plan must hold on R_syn.
    let graph = package.dependency_graph().unwrap();
    for step in graph.plan() {
        if let metadata_privacy::metadata::PlanStep::Derive { dep, .. } = step {
            let dep = &package.dependencies[dep];
            assert!(dep.holds(&syn).unwrap(), "{dep} violated on R_syn");
        }
    }
}

#[test]
fn identifiability_of_shared_data() {
    // The employee table is fully identifiable (Name is a key); the
    // echocardiogram reconstruction is near-fully identifiable at subset
    // size 2 (continuous measurements), matching the GDPR concern that
    // motivates Definition 2.1.
    let employee = datasets::employee();
    assert_eq!(
        metadata_privacy::core::identifiability_rate(&employee, 1).unwrap(),
        1.0
    );
    let echo = datasets::echocardiogram();
    let rate = metadata_privacy::core::identifiability_rate(&echo, 2).unwrap();
    assert!(rate > 0.9, "rate {rate}");
}
