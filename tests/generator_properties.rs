//! Cross-crate property tests: whatever metadata the adversary receives,
//! its synthetic output is consistent with it.

use metadata_privacy::prelude::*;
use proptest::prelude::*;

/// Strategy: a random two-attribute categorical package with one
/// dependency of a random class.
fn package_strategy() -> impl Strategy<Value = (MetadataPackage, usize)> {
    (2usize..8, 2usize..12, 0usize..5, 1usize..6).prop_map(|(card_a, card_b, dep_kind, k)| {
        use metadata_privacy::metadata::AttributeMeta;
        let dep: Dependency = match dep_kind {
            0 => Fd::new(0usize, 1).into(),
            1 => Afd::new(0usize, 1, 0.1).into(),
            2 => OrderDep::ascending(0, 1).into(),
            3 => NumericalDep::new(0, 1, k).into(),
            _ => OrderedFd::new(0, 1).into(),
        };
        let pkg = MetadataPackage {
            format_version: Some(metadata_privacy::metadata::FORMAT_VERSION),
            party: "p".into(),
            attributes: vec![
                AttributeMeta {
                    name: "a".into(),
                    kind: Some(AttrKind::Categorical),
                    domain: Some(Domain::categorical((0..card_a as i64).collect::<Vec<_>>())),
                    distribution: None,
                },
                AttributeMeta {
                    name: "b".into(),
                    kind: Some(AttrKind::Categorical),
                    domain: Some(Domain::categorical((0..card_b as i64).collect::<Vec<_>>())),
                    distribution: None,
                },
            ],
            dependencies: vec![dep],
            n_rows: None,
        };
        (pkg, dep_kind)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn synthetic_data_satisfies_shared_dependency(
        (pkg, dep_kind) in package_strategy(),
        n in 1usize..120,
        seed in 0u64..1000,
    ) {
        let adversary = Adversary::new(pkg.clone());
        let syn = adversary.synthesize(&SynthConfig::with_dependencies(n, seed)).unwrap();
        prop_assert_eq!(syn.n_rows(), n);
        let dep = &pkg.dependencies[0];
        match dep_kind {
            // Exact classes must hold exactly.
            0 | 2 | 3 => prop_assert!(dep.holds(&syn).unwrap(), "{} violated", dep),
            // OFD degrades to FD + OD when the codomain is too small.
            4 => {
                prop_assert!(Dependency::from(Fd::new(0usize, 1)).holds(&syn).unwrap());
                prop_assert!(
                    Dependency::from(OrderDep::ascending(0, 1)).holds(&syn).unwrap()
                );
            }
            // AFD: g3 stays within a generous multiple of the threshold.
            _ => {
                let g3 = Fd::new(0usize, 1).g3_error(&syn).unwrap();
                prop_assert!(g3 <= 0.45, "g3 {} too large", g3);
            }
        }
    }

    #[test]
    fn synthetic_values_stay_in_domains(
        (pkg, _) in package_strategy(),
        n in 1usize..80,
        seed in 0u64..1000,
    ) {
        let adversary = Adversary::new(pkg.clone());
        for use_deps in [false, true] {
            let syn = adversary
                .synthesize(&SynthConfig { n_rows: n, seed, use_dependencies: use_deps })
                .unwrap();
            for (c, meta) in pkg.attributes.iter().enumerate() {
                let dom = meta.domain.as_ref().unwrap();
                for v in syn.column_values(c).unwrap() {
                    prop_assert!(dom.contains(&v), "attr {} value {} outside domain", c, v);
                }
            }
        }
    }

    #[test]
    fn redaction_never_increases_leakage(
        seed in 0u64..500,
        n in 10usize..60,
    ) {
        // Monotonicity: any policy's leakage ≤ full disclosure's leakage
        // (up to per-seed noise — compare against the same seeds).
        let spec = metadata_privacy::datasets::all_classes_spec(n, seed);
        let out = spec.generate().unwrap();
        let pkg = MetadataPackage::describe("p", &out.relation, out.planted.clone()).unwrap();
        let config = ExperimentConfig { rounds: 5, base_seed: seed, epsilon: 0.0 };

        let full = run_attack(&out.relation, &pkg, true, &config).unwrap();
        let none = run_attack(
            &out.relation,
            &SharePolicy::NAMES_ONLY.apply(&pkg),
            true,
            &config,
        )
        .unwrap();
        for (f, z) in full.per_attr.iter().zip(&none.per_attr) {
            let real_nulls = out
                .relation
                .column(z.attr)
                .unwrap()
                .iter()
                .filter(|v| v.is_null())
                .count() as f64;
            prop_assert!(z.mean_matches <= real_nulls.max(0.0) + 1e-9);
            prop_assert!(f.mean_matches >= z.mean_matches - 1e-9);
        }
    }

    #[test]
    fn psi_alignment_agrees_with_set_intersection(
        ids_a in prop::collection::vec(0u32..40, 0..50),
        ids_b in prop::collection::vec(0u32..40, 0..50),
        salt in 0u64..99,
    ) {
        use metadata_privacy::federated::align;
        let va: Vec<Value> = ids_a.iter().map(|&i| Value::Int(i as i64)).collect();
        let vb: Vec<Value> = ids_b.iter().map(|&i| Value::Int(i as i64)).collect();
        let al = align(&va, &vb, salt);
        // Size equals the set-intersection size.
        let mut sa: Vec<u32> = ids_a.clone();
        sa.sort_unstable();
        sa.dedup();
        let mut sb: Vec<u32> = ids_b.clone();
        sb.sort_unstable();
        sb.dedup();
        let expected = sa.iter().filter(|x| sb.contains(x)).count();
        prop_assert_eq!(al.len(), expected);
        // And every aligned pair refers to the same entity.
        for i in 0..al.len() {
            prop_assert_eq!(&va[al.rows_a[i]], &vb[al.rows_b[i]]);
        }
    }
}
