//! Cross-crate integration: VFL setup (PSI + exchange) feeding both the
//! trainer and the adversary, over the fintech scenario.

use metadata_privacy::core::ExperimentConfig;
use metadata_privacy::datasets::fintech_scenario;
use metadata_privacy::federated::{
    labels_from_column, run_scenario, train, FeatureBlock, Party, TrainConfig, VflSession,
};
use metadata_privacy::metadata::SharePolicy;

fn parties(n: usize, seed: u64) -> (Party, Party) {
    let data = fintech_scenario(n, seed);
    (
        Party::new("bank", data.bank.relation, 0, data.bank.dependencies).unwrap(),
        Party::new(
            "ecom",
            data.ecommerce.relation,
            0,
            data.ecommerce.dependencies,
        )
        .unwrap(),
    )
}

#[test]
fn setup_then_train_from_aligned_slices() {
    let (bank, ecom) = parties(400, 9);
    let session = VflSession::new(bank, ecom, 7);
    let setup = session
        .run_setup(&SharePolicy::FULL, &SharePolicy::FULL)
        .unwrap();
    assert_eq!(setup.aligned_a.n_rows(), setup.aligned_b.n_rows());
    assert_eq!(setup.alignment.len(), 320);

    // Label: loan_approved is bank feature position 4 (column 5 of 0..=5
    // minus the id column).
    let labels = labels_from_column(&setup.aligned_a, 4).unwrap();
    let bank_block = FeatureBlock::encode(&setup.aligned_a, &[0, 1, 2, 3]).unwrap();
    let ecom_block = FeatureBlock::encode(
        &setup.aligned_b,
        &(0..setup.aligned_b.arity()).collect::<Vec<_>>(),
    )
    .unwrap();
    let model = train(
        vec![bank_block, ecom_block],
        &labels,
        &TrainConfig::default(),
    );
    assert!(
        model.accuracy(&labels) > 0.7,
        "accuracy {}",
        model.accuracy(&labels)
    );
    // Loss decreased monotonically-ish.
    assert!(model.loss_trace.last().unwrap() < model.loss_trace.first().unwrap());
}

#[test]
fn scenario_attack_respects_psi_alignment() {
    // The attack must be measured on the PSI-aligned rows, not the full
    // relation: per-attribute mean matches scale with the intersection
    // size, not the bank's table size.
    let (bank, ecom) = parties(300, 21);
    let experiment = ExperimentConfig {
        rounds: 40,
        base_seed: 1,
        epsilon: 0.0,
    };
    let out = run_scenario(bank, ecom, 5, &SharePolicy::FULL, &experiment).unwrap();
    let n_aligned = out.setup.alignment.len() as f64;
    for attr in &out.attack_random.per_attr {
        assert!(
            attr.mean_matches <= n_aligned,
            "attr {} matches {} exceed intersection {n_aligned}",
            attr.name,
            attr.mean_matches
        );
    }
}

#[test]
fn exchange_policies_propagate_into_scenario() {
    let (bank, ecom) = parties(200, 33);
    let experiment = ExperimentConfig {
        rounds: 10,
        base_seed: 2,
        epsilon: 0.0,
    };
    let out = run_scenario(bank, ecom, 5, &SharePolicy::NAMES_ONLY, &experiment).unwrap();
    assert!(!out.setup.metadata_from_a.shares_domains());
    assert!(!out.setup.metadata_from_a.shares_dependencies());
    // E-commerce still shared fully in the scenario harness.
    assert!(out.setup.metadata_from_b.shares_domains());
    // Utility is unaffected by the metadata policy (training uses aligned
    // data, not metadata).
    assert!(out.federated_accuracy > 0.6);
}

#[test]
fn psi_alignment_is_entity_consistent_end_to_end() {
    let data = fintech_scenario(150, 5);
    let bank_ids = data.bank.relation.column_values(0).unwrap();
    let ecom_ids = data.ecommerce.relation.column_values(0).unwrap();
    let bank = Party::new("bank", data.bank.relation, 0, vec![]).unwrap();
    let ecom = Party::new("ecom", data.ecommerce.relation, 0, vec![]).unwrap();
    let session = VflSession::new(bank, ecom, 1234);
    let setup = session
        .run_setup(&SharePolicy::FULL, &SharePolicy::FULL)
        .unwrap();
    for i in 0..setup.alignment.len() {
        assert_eq!(
            bank_ids[setup.alignment.rows_a[i]], ecom_ids[setup.alignment.rows_b[i]],
            "row {i} aligned to different entities"
        );
    }
}
