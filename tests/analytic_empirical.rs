//! Harness-level validation of every analytical model through the public
//! experiment API: build uniform synthetic "real" data whose parameters
//! the models take as input, run the same `run_cell` machinery the table
//! reproductions use, and check the measured means against the closed
//! forms.

use metadata_privacy::core::analytical;
use metadata_privacy::core::{run_cell, ExperimentConfig};
use metadata_privacy::prelude::*;
use metadata_privacy::relation::Attribute;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 600;
const CARD_X: usize = 6;
const CARD_Y: usize = 12;

/// Real data: X uniform over CARD_X, Y a true mapping into CARD_Y — the
/// canonical shape the §III-B analysis assumes.
fn mapped_relation(seed: u64) -> Relation {
    let schema = metadata_privacy::relation::Schema::new(vec![
        Attribute::categorical("x"),
        Attribute::categorical("y"),
    ])
    .unwrap();
    let dom_x = Domain::categorical((0..CARD_X as i64).collect::<Vec<_>>());
    let mut rng = StdRng::seed_from_u64(seed);
    let x = metadata_privacy::synth::sample_column(&dom_x, N, &mut rng);
    let y: Vec<Value> = x
        .iter()
        .map(|v| Value::Int((v.as_i64().unwrap() * 2) % CARD_Y as i64))
        .collect();
    Relation::from_columns(schema, vec![x, y]).unwrap()
}

fn domains() -> Vec<Domain> {
    vec![
        Domain::categorical((0..CARD_X as i64).collect::<Vec<_>>()),
        Domain::categorical((0..CARD_Y as i64).collect::<Vec<_>>()),
    ]
}

fn config(rounds: usize) -> ExperimentConfig {
    ExperimentConfig {
        rounds,
        base_seed: 0xA11,
        epsilon: 0.0,
    }
}

#[test]
fn random_cell_matches_binomial_model() {
    let real = mapped_relation(1);
    let cell = run_cell(&real, &domains(), None, 1, &config(300)).unwrap();
    let expected = analytical::random::expected_matches(N, 1.0 / CARD_Y as f64);
    assert!(
        (cell.mean_matches - expected).abs() < 0.12 * expected,
        "measured {} vs N·θ {expected}",
        cell.mean_matches
    );
    // And the per-round std is near the binomial σ.
    let sigma = analytical::random::match_variance(N, 1.0 / CARD_Y as f64).sqrt();
    assert!(
        cell.std_matches > 0.4 * sigma && cell.std_matches < 2.5 * sigma,
        "std {} vs binomial σ {sigma}",
        cell.std_matches
    );
}

#[test]
fn fd_cell_matches_rhs_model_with_blown_up_variance() {
    let real = mapped_relation(2);
    let dep: Dependency = Fd::new(0usize, 1).into();
    let cell = run_cell(&real, &domains(), Some(&dep), 1, &config(400)).unwrap();
    let expected = analytical::fd::expected_rhs_matches(N, CARD_Y);
    assert!(
        (cell.mean_matches - expected).abs() < 0.2 * expected,
        "measured {} vs N/|D_B| {expected}",
        cell.mean_matches
    );
    // §III-B's structure claim, measured: the FD's block-correlated errors
    // inflate the per-round variance far beyond the binomial baseline.
    let binomial_sigma = analytical::random::match_variance(N, 1.0 / CARD_Y as f64).sqrt();
    assert!(
        cell.std_matches > 2.0 * binomial_sigma,
        "fd std {} should exceed binomial σ {binomial_sigma}",
        cell.std_matches
    );
}

#[test]
fn nd_cell_is_k_independent() {
    let real = mapped_relation(3);
    let mut means = Vec::new();
    for k in [1usize, 3, 6, 12] {
        let dep: Dependency = NumericalDep::new(0, 1, k).into();
        let cell = run_cell(&real, &domains(), Some(&dep), 1, &config(250)).unwrap();
        means.push(cell.mean_matches);
    }
    let expected = analytical::random::expected_matches(N, 1.0 / CARD_Y as f64);
    for (i, m) in means.iter().enumerate() {
        assert!(
            (m - expected).abs() < 0.25 * expected + 2.0,
            "k index {i}: measured {m} vs {expected}"
        );
    }
}

#[test]
fn ofd_cell_stays_at_marginal_model() {
    let real = mapped_relation(4);
    let dep: Dependency = OrderedFd::new(0, 1).into();
    let cell = run_cell(&real, &domains(), Some(&dep), 1, &config(300)).unwrap();
    // The marginal model N·θ_X·m/|D_Y| upper-bounds positional agreement;
    // with the determinant generated blindly the measured value sits at or
    // below the random level.
    let random = analytical::random::expected_matches(N, 1.0 / CARD_Y as f64);
    assert!(
        cell.mean_matches < 1.4 * random,
        "ofd {} vs random {random}",
        cell.mean_matches
    );
}

#[test]
fn continuous_dd_cell_bounded_by_pair_baseline() {
    // Continuous pair with a DD: ε-matches at measurement ε = generation ε.
    let schema = metadata_privacy::relation::Schema::new(vec![
        Attribute::continuous("x"),
        Attribute::continuous("y"),
    ])
    .unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let dom_x = Domain::continuous(0.0, 100.0);
    let dom_y = Domain::continuous(0.0, 50.0);
    let x = metadata_privacy::synth::sample_column(&dom_x, N, &mut rng);
    let y = metadata_privacy::synth::sample_column(&dom_y, N, &mut rng);
    let real = Relation::from_columns(schema, vec![x, y]).unwrap();

    let eps = 2.0;
    let dep: Dependency = DifferentialDep::new(0, 1, eps, eps).into();
    let cfg = ExperimentConfig {
        rounds: 200,
        base_seed: 0xDD,
        epsilon: eps,
    };
    let cell = run_cell(&real, &[dom_x, dom_y], Some(&dep), 1, &cfg).unwrap();
    // Free-generation baseline for the Y cell alone: N·2ε/range.
    let baseline = analytical::dd::random_baseline_matches(N, eps, 50.0);
    assert!(
        (cell.mean_matches - baseline).abs() < 0.3 * baseline,
        "dd cell {} vs baseline {baseline}",
        cell.mean_matches
    );
}

#[test]
fn cfd_cell_beats_random_when_supported() {
    // Real data where a pattern has high support: the CFD cell must sit
    // above the random cell by roughly the analytic surplus.
    let schema = metadata_privacy::relation::Schema::new(vec![
        Attribute::categorical("x"),
        Attribute::categorical("y"),
    ])
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..N)
        .map(|i| {
            if i % 2 == 0 {
                vec![Value::Int(0), Value::Int(7)]
            } else {
                vec![
                    Value::Int((i % CARD_X) as i64),
                    Value::Int((i % (CARD_Y - 1)) as i64),
                ]
            }
        })
        .collect();
    let real = Relation::from_rows(schema, rows).unwrap();
    let support = N / 2;

    let dep: Dependency = ConditionalFd::constant(0, 0i64, 1, 7i64).into();
    let cfd_cell = run_cell(&real, &domains(), Some(&dep), 1, &config(200)).unwrap();
    let rand_cell = run_cell(&real, &domains(), None, 1, &config(200)).unwrap();
    let surplus = analytical::cfd::pattern_strategy_hits(support, CARD_X);
    assert!(
        cfd_cell.mean_matches > rand_cell.mean_matches + 0.5 * surplus,
        "cfd {} vs random {} (analytic surplus {surplus})",
        cfd_cell.mean_matches,
        rand_cell.mean_matches
    );
}
