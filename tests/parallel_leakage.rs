//! Regression guard for the parallel discovery engine at the pipeline
//! level: the expected-leakage bounds validated in `analytic_empirical.rs`
//! must continue to hold when the dependencies driving the attack were
//! discovered with `threads > 1` and a shared PLI cache — i.e. the engine
//! configuration must be invisible to every downstream measurement.

use metadata_privacy::core::analytical;
use metadata_privacy::core::{run_cell, ExperimentConfig};
use metadata_privacy::discovery::{
    DependencyProfile, DiscoveryContext, ParallelConfig, ProfileConfig,
};
use metadata_privacy::prelude::*;
use metadata_privacy::relation::Attribute;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 600;
const CARD_X: usize = 6;
const CARD_Y: usize = 12;

/// Same canonical §III-B shape as `analytic_empirical.rs`: X uniform,
/// Y = f(X) a true mapping.
fn mapped_relation(seed: u64) -> Relation {
    let schema = metadata_privacy::relation::Schema::new(vec![
        Attribute::categorical("x"),
        Attribute::categorical("y"),
    ])
    .unwrap();
    let dom_x = Domain::categorical((0..CARD_X as i64).collect::<Vec<_>>());
    let mut rng = StdRng::seed_from_u64(seed);
    let x = metadata_privacy::synth::sample_column(&dom_x, N, &mut rng);
    let y: Vec<Value> = x
        .iter()
        .map(|v| Value::Int((v.as_i64().unwrap() * 2) % CARD_Y as i64))
        .collect();
    Relation::from_columns(schema, vec![x, y]).unwrap()
}

fn domains() -> Vec<Domain> {
    vec![
        Domain::categorical((0..CARD_X as i64).collect::<Vec<_>>()),
        Domain::categorical((0..CARD_Y as i64).collect::<Vec<_>>()),
    ]
}

fn threaded(threads: usize) -> ProfileConfig {
    let mut config = ProfileConfig::paper();
    config.fd.parallel = ParallelConfig {
        threads,
        ..ParallelConfig::default()
    };
    config
}

#[test]
fn profile_is_thread_count_invariant() {
    let real = mapped_relation(2);
    let baseline = DependencyProfile::discover(&real, &threaded(1)).unwrap();
    for threads in [2usize, 4, 8] {
        let profile = DependencyProfile::discover(&real, &threaded(threads)).unwrap();
        assert_eq!(
            format!("{baseline:?}"),
            format!("{profile:?}"),
            "profile changed at {threads} threads"
        );
    }
}

#[test]
fn fd_leakage_bound_holds_with_parallel_discovery() {
    let real = mapped_relation(2);

    // Discover with threads > 1 through a shared cached context, then take
    // the planted FD x → y from the *discovered* profile (not constructed
    // by hand) into the leakage measurement.
    let ctx = DiscoveryContext::new(
        &real,
        ParallelConfig {
            threads: 4,
            cache_capacity: 4096,
            ..ParallelConfig::default()
        },
    );
    let profile = DependencyProfile::discover_with(&ctx, &threaded(4)).unwrap();
    let fd = profile
        .fds
        .iter()
        .find(|f| f.rhs == 1 && f.lhs.indices() == [0])
        .expect("planted FD x → y must be discovered")
        .clone();

    let dep: Dependency = fd.into();
    let config = ExperimentConfig {
        rounds: 400,
        base_seed: 0xA11,
        epsilon: 0.0,
    };
    let cell = run_cell(&real, &domains(), Some(&dep), 1, &config).unwrap();

    // Identical bounds to `analytic_empirical::fd_cell_matches_rhs_model...`:
    // mean at N/|D_B|, variance blown up beyond the binomial baseline.
    let expected = analytical::fd::expected_rhs_matches(N, CARD_Y);
    assert!(
        (cell.mean_matches - expected).abs() < 0.2 * expected,
        "measured {} vs N/|D_B| {expected}",
        cell.mean_matches
    );
    let binomial_sigma = analytical::random::match_variance(N, 1.0 / CARD_Y as f64).sqrt();
    assert!(
        cell.std_matches > 2.0 * binomial_sigma,
        "fd std {} should exceed binomial σ {binomial_sigma}",
        cell.std_matches
    );
}

#[test]
fn random_leakage_bound_unaffected_by_engine_config() {
    // The no-dependency cell never touches the engine; this guards against
    // the engine leaking state into the experiment harness (shared RNG,
    // global caches) by running it before the measurement.
    let real = mapped_relation(1);
    for parallel in [
        ParallelConfig::sequential(),
        ParallelConfig {
            threads: 4,
            cache_capacity: 8,
            ..ParallelConfig::default()
        },
        ParallelConfig::uncached(4),
    ] {
        let ctx = DiscoveryContext::new(&real, parallel);
        DependencyProfile::discover_with(&ctx, &ProfileConfig::paper()).unwrap();

        let config = ExperimentConfig {
            rounds: 300,
            base_seed: 0xA11,
            epsilon: 0.0,
        };
        let cell = run_cell(&real, &domains(), None, 1, &config).unwrap();
        let expected = analytical::random::expected_matches(N, 1.0 / CARD_Y as f64);
        assert!(
            (cell.mean_matches - expected).abs() < 0.12 * expected,
            "measured {} vs N·θ {expected} under {parallel:?}",
            cell.mean_matches
        );
    }
}
