//! Second integration suite for the extension features: sequential and
//! metric dependencies end to end, Bloom-filter PSI inside a session-like
//! flow, and the multi-party setup feeding training and attack.

use metadata_privacy::core::{run_attack, ExperimentConfig};
use metadata_privacy::datasets::fintech_scenario;
use metadata_privacy::discovery::{
    discover_mfds, discover_sds, discover_variable_cfds, MfdConfig, SdConfig, VariableCfdConfig,
};
use metadata_privacy::federated::{
    auc, bloom_candidate_rows, labels_from_column, train, BloomFilter, FeatureBlock,
    MultiPartySession, Party, TrainConfig,
};
use metadata_privacy::metadata::{MetricFd, SequentialDep};
use metadata_privacy::prelude::*;
use metadata_privacy::synth::generate_sd_column;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn sd_discover_generate_validate_roundtrip() {
    // Plant a bounded-gap sequence, discover the SD, generate from it, and
    // confirm the synthetic pair satisfies exactly what was discovered.
    let schema = metadata_privacy::relation::Schema::new(vec![
        metadata_privacy::relation::Attribute::continuous("t"),
        metadata_privacy::relation::Attribute::continuous("level"),
    ])
    .unwrap();
    let rows: Vec<Vec<Value>> = (0..40)
        .map(|i| {
            let gap = if i % 3 == 0 { 1.0 } else { 1.5 };
            vec![
                Value::Float(i as f64),
                Value::Float(5.0 + i as f64 * 1.25 + gap * 0.1),
            ]
        })
        .collect();
    let real = Relation::from_rows(schema, rows).unwrap();
    let sds = discover_sds(&real, &SdConfig::default()).unwrap();
    let sd = sds
        .iter()
        .find(|d| d.lhs == 0 && d.rhs == 1)
        .expect("SD discovered");
    assert!(sd.holds(&real).unwrap());

    // Generate from the discovered SD over the real determinant column.
    let mut rng = StdRng::seed_from_u64(4);
    let dom = Domain::infer(&real, 1).unwrap();
    let syn_col = generate_sd_column(
        &real.column_values(0).unwrap(),
        &dom,
        sd.min_gap,
        sd.max_gap,
        real.n_rows(),
        &mut rng,
    );
    let syn = Relation::from_columns(
        real.schema().clone(),
        vec![real.column_values(0).unwrap(), syn_col],
    )
    .unwrap();
    assert!(SequentialDep::new(0, 1, sd.min_gap, sd.max_gap)
        .holds(&syn)
        .unwrap());
}

#[test]
fn mfd_and_variable_cfd_on_fintech_data() {
    let data = fintech_scenario(200, 77);
    let bank = &data.bank.relation;
    // tier → limit is exact (limit = 2000·(tier+1)): excluded from MFDs by
    // default, so every reported MFD is genuinely approximate and holds.
    for mfd in discover_mfds(bank, &MfdConfig::default()).unwrap() {
        assert!(mfd.holds(bank).unwrap(), "{mfd}");
        assert!(!MetricFd::new(mfd.lhs, mfd.rhs, 0.0).holds(bank).unwrap());
    }
    // Variable CFDs hold on their partitions by construction of discovery.
    let cfds = discover_variable_cfds(
        bank,
        &VariableCfdConfig {
            min_support: 10,
            exclude_global_fds: true,
        },
    )
    .unwrap();
    for cfd in &cfds {
        assert!(cfd.holds(bank).unwrap(), "{cfd}");
    }
}

#[test]
fn bloom_psi_candidates_feed_exact_verification() {
    // Realistic two-step PSI: Bloom filter prunes candidates cheaply, the
    // digest protocol verifies them exactly — final alignment must equal
    // the pure digest alignment.
    let data = fintech_scenario(400, 13);
    let bank_ids = data.bank.relation.column_values(0).unwrap();
    let ecom_ids = data.ecommerce.relation.column_values(0).unwrap();

    let mut filter = BloomFilter::with_capacity(bank_ids.len(), 4, 0xB10);
    for id in &bank_ids {
        filter.insert(id);
    }
    let candidates = bloom_candidate_rows(&filter, &ecom_ids);
    // Exact verification on the candidate subset only.
    let candidate_ids: Vec<Value> = candidates.iter().map(|&r| ecom_ids[r].clone()).collect();
    let refined = metadata_privacy::federated::align(&bank_ids, &candidate_ids, 0xB10);

    let direct = metadata_privacy::federated::align(&bank_ids, &ecom_ids, 0xB10);
    assert_eq!(
        refined.len(),
        direct.len(),
        "two-step PSI must agree with direct PSI"
    );
    // Communication: the filter is far smaller than one digest per row.
    assert!(filter.size_bytes() < bank_ids.len() * 8);
}

#[test]
fn multiparty_setup_trains_and_audits() {
    let data = fintech_scenario(300, 21);
    let bank = Party::new("bank", data.bank.relation, 0, data.bank.dependencies).unwrap();
    let ecom = Party::new(
        "ecom",
        data.ecommerce.relation,
        0,
        data.ecommerce.dependencies,
    )
    .unwrap();
    let session = MultiPartySession::new(vec![bank, ecom], 5);
    let setup = session
        .run_setup(&[SharePolicy::FULL, SharePolicy::PAPER_RECOMMENDED])
        .unwrap();
    assert_eq!(setup.alignment.len(), 240);

    // Train on both slices.
    let labels = labels_from_column(&setup.aligned[0], 4).unwrap();
    let blocks = vec![
        FeatureBlock::encode(&setup.aligned[0], &[0, 1, 2, 3]).unwrap(),
        FeatureBlock::encode(&setup.aligned[1], &[0, 1, 2]).unwrap(),
    ];
    let model = train(blocks, &labels, &TrainConfig::default());
    assert!(auc(&model.predict(), &labels) > 0.8);

    // The e-commerce party followed the recommendation: its surface is
    // zero; the bank overshared: its surface is the domain-level leakage.
    let config = ExperimentConfig {
        rounds: 30,
        base_seed: 3,
        epsilon: 0.0,
    };
    let vs_ecom = run_attack(&setup.aligned[1], &setup.metadata[1], true, &config).unwrap();
    assert!(vs_ecom.per_attr.iter().all(|a| a.mean_matches == 0.0));
    let vs_bank = run_attack(&setup.aligned[0], &setup.metadata[0], true, &config).unwrap();
    assert!(vs_bank.per_attr.iter().any(|a| a.mean_matches > 1.0));
}

#[test]
fn relation_ops_support_hfl_recombination() {
    use metadata_privacy::federated::horizontal_split;
    let real = metadata_privacy::datasets::echocardiogram();
    let parts = horizontal_split(&real, 3).unwrap();
    let mut recombined = parts[0].clone();
    recombined.append(&parts[1]).unwrap();
    recombined.append(&parts[2]).unwrap();
    assert_eq!(recombined.n_rows(), real.n_rows());
    // Sorting both by a near-unique column makes them comparable.
    let a = recombined.sorted_by_column(2).unwrap();
    let b = real.sorted_by_column(2).unwrap();
    assert_eq!(a.column(2).unwrap(), b.column(2).unwrap());
}
