//! Per-section assertions of the paper's claims, measured on the
//! reconstruction (absolute values differ from the paper's testbed; the
//! claims are about *relationships*, which must hold here too).

use metadata_privacy::core::{run_cell, ExperimentConfig};
use metadata_privacy::datasets::{
    echocardiogram, paper_inventory, CATEGORICAL_ATTRS, CONTINUOUS_ATTRS,
};
use metadata_privacy::prelude::*;

fn config(rounds: usize) -> ExperimentConfig {
    ExperimentConfig {
        rounds,
        base_seed: 0xAB,
        epsilon: 0.0,
    }
}

/// §II-A, Example 2.1: the running example's dependencies.
#[test]
fn example_2_1_dependencies() {
    let r = metadata_privacy::datasets::employee();
    assert!(Fd::new(0usize, 1).holds(&r).unwrap(), "Name → Age");
    assert!(Fd::new(0usize, 3).holds(&r).unwrap(), "Name → Salary");
    // Age → Salary only as a relaxed dependency: the strict FD fails but
    // an ND with k = 2 holds.
    assert!(!Fd::new(1usize, 3).holds(&r).unwrap());
    assert!(NumericalDep::new(1, 3, 2).holds(&r).unwrap());
}

/// §III-B: FDs imply |D_A| ≥ |D_B| (A refines B) on real data.
#[test]
fn fd_refinement_on_echocardiogram() {
    let r = echocardiogram();
    for dep in metadata_privacy::datasets::verified_dependencies() {
        if let Dependency::Fd(fd) = &dep {
            if fd.lhs.len() != 1 {
                continue;
            }
            let da = r.distinct_count(fd.lhs.indices()[0]).unwrap();
            let db = r.distinct_count(fd.rhs).unwrap();
            assert!(da >= db, "{dep}: |D_A| = {da} < |D_B| = {db}");
        }
    }
}

/// Table IV row "Random Generation": categorical matches ≈ N/|D|.
/// The paper reports 44, 44, 33, 44 for attrs 1, 3, 11, 12 with N = 132 —
/// i.e. domains of size 3, 3, 4, 3. The reconstruction reproduces the
/// domain sizes exactly, so the same expectations apply.
#[test]
fn table4_random_row_shape() {
    let r = echocardiogram();
    let domains = Domain::infer_all(&r).unwrap();
    let expected = [44.0, 44.0, 33.0, 44.0];
    for (&attr, &exp) in CATEGORICAL_ATTRS.iter().zip(&expected) {
        let cell = run_cell(&r, &domains, None, attr, &config(400)).unwrap();
        assert!(
            (cell.mean_matches - exp).abs() < 0.12 * exp,
            "attr {attr}: measured {:.2} vs paper-law {exp}",
            cell.mean_matches
        );
    }
}

/// Table IV rows "Functional Dep"/"Ord Dep": close to the random row
/// (within noise), per the paper's summary that dependencies add no extra
/// leakage.
#[test]
fn table4_dependency_rows_close_to_random() {
    let r = echocardiogram();
    let domains = Domain::infer_all(&r).unwrap();
    let inventory = paper_inventory();
    for &attr in &CATEGORICAL_ATTRS {
        let random = run_cell(&r, &domains, None, attr, &config(300)).unwrap();
        for class in ["FD", "OD"] {
            let Some(dep) = inventory.lookup(class, attr) else {
                continue;
            };
            let cell = run_cell(&r, &domains, Some(dep), attr, &config(300)).unwrap();
            let bound = 0.30 * r.n_rows() as f64;
            assert!(
                (cell.mean_matches - random.mean_matches).abs() <= bound,
                "attr {attr} {class}: {:.2} vs random {:.2}",
                cell.mean_matches,
                random.mean_matches
            );
        }
    }
}

/// Table III row "Random Generation": MSE scale follows the
/// uniform-vs-data law (between range²/12 and range² for every continuous
/// attribute).
#[test]
fn table3_random_row_mse_scale() {
    let r = echocardiogram();
    let domains = Domain::infer_all(&r).unwrap();
    for &attr in &CONTINUOUS_ATTRS {
        let cell = run_cell(&r, &domains, None, attr, &config(150)).unwrap();
        let mse = cell.mean_mse.unwrap();
        let range = domains[attr].range().unwrap();
        assert!(
            mse >= range * range / 20.0 && mse <= range * range,
            "attr {attr}: mse {mse} vs range {range}"
        );
    }
}

/// Table III rows: FD-generated MSE within noise of random MSE for every
/// covered continuous attribute (the paper's FD row ≈ random row).
#[test]
fn table3_fd_row_close_to_random() {
    let r = echocardiogram();
    let domains = Domain::infer_all(&r).unwrap();
    let inventory = paper_inventory();
    for &attr in &CONTINUOUS_ATTRS {
        let Some(dep) = inventory.lookup("FD", attr) else {
            continue;
        };
        let random = run_cell(&r, &domains, None, attr, &config(200)).unwrap();
        let fd = run_cell(&r, &domains, Some(dep), attr, &config(200)).unwrap();
        let (rm, fm) = (random.mean_mse.unwrap(), fd.mean_mse.unwrap());
        assert!(
            (fm - rm).abs() <= 0.5 * rm,
            "attr {attr}: fd mse {fm} vs random {rm}"
        );
    }
}

/// §IV-C: the paper's OD observation — order metadata shifts MSE in
/// either direction (their attr 5 improved ×6, their attr 2 worsened).
/// With determinants generated blindly from the domain, OD stays within
/// noise of random (no extra leakage). But when the adversary *knows* the
/// determinant's real values — the VFL case where the LHS is its own
/// aligned feature — the interval generation localises the dependent
/// values and the MSE drops well below random.
#[test]
fn table3_od_improves_with_known_determinant() {
    use metadata_privacy::core::run_cell_with_known_lhs;
    use metadata_privacy::datasets::echocardiogram::attrs::EPSS;
    let r = echocardiogram();
    let domains = Domain::infer_all(&r).unwrap();
    let inventory = paper_inventory();
    let dep = inventory.lookup("OD", EPSS).unwrap();
    let random = run_cell(&r, &domains, None, EPSS, &config(200)).unwrap();

    // Blind determinant: within noise of random (the §IV-C "low leakage"
    // conclusion).
    let od_blind = run_cell(&r, &domains, Some(dep), EPSS, &config(200)).unwrap();
    let rm = random.mean_mse.unwrap();
    assert!(
        (od_blind.mean_mse.unwrap() - rm).abs() < 0.5 * rm,
        "blind od {} vs random {rm}",
        od_blind.mean_mse.unwrap()
    );

    // Known determinant: substantially better than random.
    let od_known = run_cell_with_known_lhs(&r, &domains, dep, EPSS, &config(200)).unwrap();
    assert!(
        od_known.mean_mse.unwrap() < 0.6 * rm,
        "known-lhs od {} vs random {rm}",
        od_known.mean_mse.unwrap()
    );
}

/// The `NA` pattern of Tables III/IV is reproduced by the inventory: no FD
/// for attrs 9 (mult) and 12 (alive_at_1), NDs only for attrs 0 and 1.
#[test]
fn na_pattern_matches_paper() {
    let inv = paper_inventory();
    assert!(inv.lookup("FD", 9).is_none());
    assert!(inv.lookup("FD", 12).is_none());
    let nd_attrs: Vec<usize> = CONTINUOUS_ATTRS
        .iter()
        .chain(CATEGORICAL_ATTRS.iter())
        .copied()
        .filter(|&a| inv.lookup("ND", a).is_some())
        .collect();
    assert_eq!(nd_attrs, vec![0, 1]);
}

/// §VI summary claim 1: domains enable random-generation leakage — on
/// every categorical attribute N·θ ≥ 1 here, so leakage is expected.
#[test]
fn summary_domains_leak() {
    use metadata_privacy::core::analytical::random;
    let r = echocardiogram();
    for &attr in &CATEGORICAL_ATTRS {
        let d = Domain::infer(&r, attr).unwrap();
        assert!(random::leaks(r.n_rows(), d.theta(0.0)), "attr {attr}");
    }
}
