//! Integration tests for the extension features: CFDs, metrics, defenses
//! and the HFL contrast — each exercised through the full public API.

use metadata_privacy::core::{
    analytical, bucketize_column, k_anonymity, run_attack, ExperimentConfig, ScalarMetric,
    VectorMetric,
};
use metadata_privacy::datasets::{echocardiogram, fintech_scenario};
use metadata_privacy::discovery::{discover_cfds, CfdConfig};
use metadata_privacy::federated::{horizontal_split, schemas_compatible};
use metadata_privacy::metadata::{ConditionalFd, DomainGeneralization};
use metadata_privacy::prelude::*;

#[test]
fn cfd_pipeline_discover_share_attack() {
    // Build a relation with a high-support constant pattern, discover the
    // CFD, share it, and verify the CFD-aware attack beats the random
    // baseline on the dependent attribute.
    let schema = metadata_privacy::relation::Schema::new(vec![
        metadata_privacy::relation::Attribute::categorical("region"),
        metadata_privacy::relation::Attribute::categorical("plan"),
    ])
    .unwrap();
    let mut rows = Vec::new();
    for i in 0..400usize {
        let (region, plan) = if i % 2 == 0 {
            ("eu", "gdpr-basic") // high-support constant pattern
        } else {
            (
                ["us", "apac", "latam"][i % 3],
                ["a", "b", "c", "d", "e"][i % 5],
            )
        };
        rows.push(vec![region.into(), plan.into()]);
    }
    let real = Relation::from_rows(schema, rows).unwrap();

    let cfds = discover_cfds(&real, &CfdConfig::default()).unwrap();
    let target = ConditionalFd::constant(0, "eu", 1, "gdpr-basic");
    assert!(
        cfds.contains(&target),
        "high-support pattern must be discovered"
    );

    let support = target.support(&real).unwrap();
    let card_plan = real.distinct_count(1).unwrap();
    assert!(analytical::cfd::leaks_more_than_random(
        real.n_rows(),
        support,
        card_plan
    ));

    let config = ExperimentConfig {
        rounds: 150,
        base_seed: 2,
        epsilon: 0.0,
    };
    let pkg_cfd = MetadataPackage::describe("p", &real, vec![target.into()]).unwrap();
    let pkg_plain = MetadataPackage::describe("p", &real, vec![]).unwrap();
    let with_cfd = run_attack(&real, &pkg_cfd, true, &config).unwrap();
    let random = run_attack(&real, &pkg_plain, false, &config).unwrap();
    assert!(
        with_cfd.attr(1).unwrap().mean_matches > 1.3 * random.attr(1).unwrap().mean_matches,
        "CFD attack {} vs random {}",
        with_cfd.attr(1).unwrap().mean_matches,
        random.attr(1).unwrap().mean_matches
    );
}

#[test]
fn generalization_reduces_measured_leakage_proportionally() {
    let real = echocardiogram();
    let pkg = MetadataPackage::describe("h", &real, vec![]).unwrap();
    let config = ExperimentConfig {
        rounds: 80,
        base_seed: 3,
        epsilon: 1.0,
    };

    let base = run_attack(&real, &pkg, false, &config).unwrap();
    let g = DomainGeneralization {
        widen: 4.0,
        snap: 0.0,
        suppress_below: 0,
    };
    let widened = g.apply(&pkg, &real).unwrap();
    let defended = run_attack(&real, &widened, false, &config).unwrap();

    // §III-A: ε-hit rate scales with 1/range. Check a representative
    // continuous attribute drops to roughly a quarter.
    use metadata_privacy::datasets::echocardiogram::attrs::EPSS;
    let (b, d) = (
        base.attr(EPSS).unwrap().mean_matches,
        defended.attr(EPSS).unwrap().mean_matches,
    );
    assert!(
        d < 0.45 * b && d > 0.1 * b,
        "widening ×4 should quarter ε-matches: {b} → {d}"
    );
}

#[test]
fn defense_chain_k_anonymity_and_attack() {
    // Bucketing the data also shrinks the shared domains' precision if the
    // party describes the *bucketed* data — end-to-end defense chain.
    let real = echocardiogram();
    use metadata_privacy::datasets::echocardiogram::attrs::{AGE, LVDD};
    let coarse = bucketize_column(&real, AGE, 10.0).unwrap();
    let coarse = bucketize_column(&coarse, LVDD, 1.0).unwrap();
    assert!(k_anonymity(&coarse, &[AGE]).unwrap() > k_anonymity(&real, &[AGE]).unwrap());

    // The attack against the bucketed release can only match bucket
    // values; exact-match leakage on the real data via the bucketed
    // metadata drops for the coarsened attributes.
    let pkg_real = MetadataPackage::describe("h", &real, vec![]).unwrap();
    let pkg_coarse = MetadataPackage::describe("h", &coarse, vec![]).unwrap();
    let config = ExperimentConfig {
        rounds: 60,
        base_seed: 4,
        epsilon: 0.05,
    };
    let against_real = run_attack(&real, &pkg_real, false, &config).unwrap();
    let against_real_coarse_meta = run_attack(&real, &pkg_coarse, false, &config).unwrap();
    let (b, d) = (
        against_real.attr(AGE).unwrap().mean_matches,
        against_real_coarse_meta.attr(AGE).unwrap().mean_matches,
    );
    assert!(d <= b + 1.0, "coarse metadata must not help: {b} vs {d}");
}

#[test]
fn metric_layer_consistency() {
    let real = echocardiogram();
    let pkg = MetadataPackage::describe("h", &real, vec![]).unwrap();
    let adv = Adversary::new(pkg);
    let syn = adv
        .synthesize(&SynthConfig::random_baseline(real.n_rows(), 6))
        .unwrap();

    use metadata_privacy::core::{continuous_matches, continuous_matches_metric};
    use metadata_privacy::datasets::echocardiogram::attrs::EPSS;
    // Absolute metric agrees with the default definition at every ε.
    for eps in [0.0, 0.5, 2.0, 10.0] {
        assert_eq!(
            continuous_matches(&real, &syn, EPSS, eps).unwrap(),
            continuous_matches_metric(&real, &syn, EPSS, eps, ScalarMetric::Absolute).unwrap()
        );
    }
    // Vector metrics nest: Chebyshev ≤ Euclidean ≤ Manhattan distances
    // imply match-count ordering at fixed ε.
    use metadata_privacy::core::tuple_distance_matches;
    let attrs = [0usize, 5, 6];
    let cheb = tuple_distance_matches(&real, &syn, &attrs, 3.0, VectorMetric::Chebyshev).unwrap();
    let eucl = tuple_distance_matches(&real, &syn, &attrs, 3.0, VectorMetric::Euclidean).unwrap();
    let manh = tuple_distance_matches(&real, &syn, &attrs, 3.0, VectorMetric::Manhattan).unwrap();
    assert!(
        cheb >= eucl && eucl >= manh,
        "cheb {cheb} eucl {eucl} manh {manh}"
    );
}

#[test]
fn hfl_split_schema_compatibility_and_recombination() {
    let real = echocardiogram();
    let parts = horizontal_split(&real, 4).unwrap();
    assert!(parts.windows(2).all(|w| schemas_compatible(&w[0], &w[1])));
    let total: usize = parts.iter().map(Relation::n_rows).sum();
    assert_eq!(total, real.n_rows());
    // No row lost or duplicated: multiset of first-column values matches.
    let mut original: Vec<Value> = real.column_values(2).unwrap();
    let mut recombined: Vec<Value> = parts
        .iter()
        .flat_map(|p| p.column_values(2).unwrap())
        .collect();
    original.sort();
    recombined.sort();
    assert_eq!(original, recombined);
}

#[test]
fn cfd_survives_vfl_party_remapping() {
    // A CFD declared on the bank's relation must survive feature
    // re-indexing during metadata exchange.
    let data = fintech_scenario(100, 8);
    let mut deps = data.bank.dependencies.clone();
    deps.push(ConditionalFd::constant(2, 0i64, 3, 2000.0).into()); // tier=0 ⇒ limit=2000
    let bank = metadata_privacy::federated::Party::new("bank", data.bank.relation.clone(), 0, deps)
        .unwrap();
    let pkg = bank.share_metadata(&SharePolicy::FULL).unwrap();
    let cfd = pkg
        .dependencies
        .iter()
        .find(|d| d.class() == "CFD")
        .expect("CFD survives exchange");
    // Relation attrs 2/3 become package attrs 1/2 (id column removed).
    assert_eq!(cfd.lhs().indices(), &[1]);
    assert_eq!(cfd.rhs(), 2);
}

#[test]
fn distribution_sharing_leaks_more_than_domains_on_skewed_data() {
    // Build a skewed categorical attribute, share its distribution, and
    // verify the measured amplification matches |D|·Σp² > 1.
    use metadata_privacy::metadata::Distribution;
    let schema = metadata_privacy::relation::Schema::new(vec![
        metadata_privacy::relation::Attribute::categorical("plan"),
    ])
    .unwrap();
    let mut rows = Vec::new();
    for i in 0..600usize {
        // 70/15/10/5 split over four plans.
        let v = match i % 20 {
            0..=13 => "basic",
            14..=16 => "plus",
            17..=18 => "pro",
            _ => "enterprise",
        };
        rows.push(vec![v.into()]);
    }
    let real = Relation::from_rows(schema, rows).unwrap();
    let config = ExperimentConfig {
        rounds: 120,
        base_seed: 7,
        epsilon: 0.0,
    };

    let pkg_domain = MetadataPackage::describe("p", &real, vec![]).unwrap();
    let pkg_dist = MetadataPackage::describe_with_distributions("p", &real, vec![], 8).unwrap();
    let domain_attack = run_attack(&real, &pkg_domain, false, &config).unwrap();
    let dist_attack = run_attack(&real, &pkg_dist, false, &config).unwrap();

    let dist_meta = Distribution::estimate(&real, 0, 0).unwrap();
    let expected_amp = analytical::distribution::amplification(&dist_meta, 4);
    assert!(expected_amp > 1.5, "test data should be clearly skewed");

    let measured_amp =
        dist_attack.attr(0).unwrap().mean_matches / domain_attack.attr(0).unwrap().mean_matches;
    assert!(
        (measured_amp - expected_amp).abs() < 0.25 * expected_amp,
        "measured amplification {measured_amp} vs analytic {expected_amp}"
    );
}

#[test]
fn inclusion_dependencies_across_parties() {
    use metadata_privacy::metadata::{discover_inds, InclusionDep};
    // The bank's customer ids are a subset of... themselves restricted:
    // build two slices where the IND holds one way only.
    let data = fintech_scenario(80, 12);
    let bank = &data.bank.relation;
    let ecom = &data.ecommerce.relation;
    // Shared customers: ecom ids ⊄ bank ids (ecom has X-prefixed extras),
    // but the intersection slice's ids ⊆ both.
    assert!(!InclusionDep::new(0, 0).holds(ecom, bank).unwrap());
    let shared_rows: Vec<usize> = (0..ecom.n_rows())
        .filter(|&r| {
            let id = ecom.value_ref(r, 0).unwrap();
            bank.column(0).unwrap().iter().any(|v| v == id)
        })
        .collect();
    let shared = ecom.select_rows(&shared_rows).unwrap();
    assert!(InclusionDep::new(0, 0).holds(&shared, bank).unwrap());
    // Discovery over the shared slice finds at least the id ⊆ id IND.
    let inds = discover_inds(&shared, bank).unwrap();
    assert!(inds.contains(&InclusionDep::new(0, 0)));
}
