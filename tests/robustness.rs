//! Failure-injection and degenerate-input robustness: every layer of the
//! pipeline must fail cleanly (typed errors or benign no-ops), never
//! panic, on malformed or adversarial inputs.

use metadata_privacy::core::{run_attack, ExperimentConfig, PrivacyAudit};
use metadata_privacy::discovery::{discover_fds, DependencyProfile, ProfileConfig, TaneConfig};
use metadata_privacy::metadata::AttributeMeta;
use metadata_privacy::prelude::*;
use metadata_privacy::relation::{csv, Attribute, RelationError, Schema};

#[test]
fn corrupt_csv_inputs_fail_with_typed_errors() {
    let opts = csv::CsvOptions::default();
    for (input, what) in [
        ("", "empty file"),
        ("a,b\n\"unterminated\n", "unterminated quote"),
        ("a,b\n1\n", "ragged row"),
        ("a,a\n1,2\n", "duplicate header names"),
    ] {
        let err = csv::read_str(input, &opts).expect_err(what);
        // Every failure is a typed RelationError with a readable message.
        assert!(!err.to_string().is_empty(), "{what}");
    }
}

#[test]
fn sixty_five_attribute_relation_rejected_by_tane() {
    let attrs: Vec<Attribute> = (0..65)
        .map(|i| Attribute::categorical(format!("a{i}")))
        .collect();
    let schema = Schema::new(attrs).unwrap();
    let rel = Relation::from_rows(schema, vec![(0..65).map(Value::Int).collect()]).unwrap();
    let err = discover_fds(&rel, &TaneConfig::default()).unwrap_err();
    assert!(matches!(err, RelationError::IndexOutOfBounds { .. }));
}

#[test]
fn adversary_with_contradictory_metadata_stays_sane() {
    // Kind says continuous but the domain is categorical, and vice versa;
    // the adversary must still produce a typed relation.
    let pkg = MetadataPackage {
        format_version: Some(metadata_privacy::metadata::FORMAT_VERSION),
        party: "chaos".into(),
        attributes: vec![
            AttributeMeta {
                name: "a".into(),
                kind: Some(AttrKind::Continuous),
                domain: Some(Domain::categorical(vec![Value::Int(1), Value::Int(2)])),
                distribution: None,
            },
            AttributeMeta {
                name: "b".into(),
                kind: Some(AttrKind::Categorical),
                domain: Some(Domain::continuous(0.0, 1.0)),
                distribution: None,
            },
        ],
        dependencies: vec![],
        n_rows: Some(10),
    };
    let adv = Adversary::new(pkg);
    let syn = adv
        .synthesize(&SynthConfig::random_baseline(10, 1))
        .unwrap();
    assert_eq!(syn.n_rows(), 10);
    // Continuous kind + categorical Int domain: values are numeric.
    assert!(syn.column(0).unwrap().iter().all(|v| v.as_f64().is_some()));
}

#[test]
fn cyclic_and_self_referential_dependency_packages() {
    let rel = metadata_privacy::datasets::employee();
    let pkg = MetadataPackage::describe(
        "p",
        &rel,
        vec![
            Fd::new(0usize, 1).into(),
            Fd::new(1usize, 0).into(), // cycle with the first
            Fd::new(2usize, 2).into(), // self-loop
        ],
    )
    .unwrap();
    let adv = Adversary::new(pkg.clone());
    let syn = adv
        .synthesize(&SynthConfig::with_dependencies(30, 2))
        .unwrap();
    assert_eq!(syn.n_rows(), 30);
    // And the attack harness runs over it.
    let config = ExperimentConfig {
        rounds: 3,
        base_seed: 0,
        epsilon: 0.0,
    };
    let result = run_attack(&rel, &pkg, true, &config).unwrap();
    assert_eq!(result.per_attr.len(), 4);
}

#[test]
fn single_row_and_single_column_relations_profile_cleanly() {
    let schema = Schema::new(vec![Attribute::categorical("only")]).unwrap();
    let one_cell = Relation::from_rows(schema.clone(), vec![vec!["v".into()]]).unwrap();
    let profile = DependencyProfile::discover(&one_cell, &ProfileConfig::paper()).unwrap();
    // A single constant cell: ∅ → 0 and nothing else explodes.
    assert!(profile.fds.iter().any(|f| f.lhs.is_empty()));

    let empty = Relation::empty(schema);
    let profile = DependencyProfile::discover(&empty, &ProfileConfig::paper()).unwrap();
    assert!(profile.is_empty());
}

#[test]
fn all_null_relation_through_the_full_pipeline() {
    let schema = Schema::new(vec![
        Attribute::categorical("a"),
        Attribute::categorical("b"),
    ])
    .unwrap();
    let rel = Relation::from_rows(schema, vec![vec![Value::Null, Value::Null]; 8]).unwrap();
    let profile = DependencyProfile::discover(&rel, &ProfileConfig::paper()).unwrap();
    let pkg = MetadataPackage::describe("p", &rel, profile.to_dependencies()).unwrap();
    let config = ExperimentConfig {
        rounds: 4,
        base_seed: 0,
        epsilon: 0.0,
    };
    let result = run_attack(&rel, &pkg, true, &config).unwrap();
    // All-null real + all-null domain: everything "matches" — the audit
    // must survive, and the numbers must be exactly N per attribute.
    for attr in &result.per_attr {
        assert_eq!(attr.mean_matches, 8.0);
    }
}

#[test]
fn audit_handles_degenerate_relations() {
    let schema = Schema::new(vec![Attribute::categorical("c")]).unwrap();
    let rel = Relation::from_rows(schema, vec![vec!["x".into()]]).unwrap();
    let audit = PrivacyAudit::run(
        &rel,
        vec![],
        &metadata_privacy::core::AuditConfig {
            rounds: 3,
            epsilon: 0.0,
            max_subset_size: 1,
            base_seed: 0,
        },
    )
    .unwrap();
    assert_eq!(audit.policies.len(), 4);
    assert!(!audit.render(&rel).is_empty());
}

#[test]
fn attack_against_mismatched_arity_errors() {
    // Package describes more attributes than the measured relation has:
    // measurement must error, not index out of bounds in a panic.
    let wide = metadata_privacy::datasets::employee();
    let narrow = wide.project(&[0, 1]).unwrap();
    let pkg = MetadataPackage::describe("p", &wide, vec![]).unwrap();
    let config = ExperimentConfig {
        rounds: 2,
        base_seed: 0,
        epsilon: 0.0,
    };
    assert!(run_attack(&narrow, &pkg, false, &config).is_err());
}

#[test]
fn extreme_epsilon_values_are_total_or_empty() {
    let rel = metadata_privacy::datasets::echocardiogram();
    let pkg = MetadataPackage::describe("p", &rel, vec![]).unwrap();
    let huge = ExperimentConfig {
        rounds: 2,
        base_seed: 0,
        epsilon: f64::INFINITY,
    };
    let result = run_attack(&rel, &pkg, false, &huge).unwrap();
    use metadata_privacy::datasets::echocardiogram::attrs::LVDD;
    // ε = ∞: every numeric pair matches (lvdd has no nulls).
    assert_eq!(result.attr(LVDD).unwrap().mean_matches, 132.0);

    let negative = ExperimentConfig {
        rounds: 2,
        base_seed: 0,
        epsilon: -1.0,
    };
    let result = run_attack(&rel, &pkg, false, &negative).unwrap();
    assert_eq!(result.attr(LVDD).unwrap().mean_matches, 0.0);
}

#[test]
fn generalize_to_k_gives_up_gracefully() {
    // Categorical-only QIs can never be generalised by bucketing; the
    // routine must stop after max_steps without looping forever.
    let schema = Schema::new(vec![Attribute::categorical("c")]).unwrap();
    let rel = Relation::from_rows(schema, vec![vec!["a".into()], vec!["b".into()]]).unwrap();
    let (out, widths) = metadata_privacy::core::generalize_to_k(&rel, &[0], 2, 1.0, 3).unwrap();
    assert_eq!(out.n_rows(), 2);
    assert_eq!(widths, vec![None]);
    assert_eq!(metadata_privacy::core::k_anonymity(&out, &[0]).unwrap(), 1);
}
