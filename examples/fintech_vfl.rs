//! The paper's Figure 1 scenario, end to end: a bank and an e-commerce
//! company align their customers with (simulated) PSI, exchange metadata
//! under a policy, train a vertically federated loan-approval model, and
//! measure what the exchanged metadata would let a curious partner
//! reconstruct.
//!
//! Run with: `cargo run --release --example fintech_vfl`

use metadata_privacy::core::ExperimentConfig;
use metadata_privacy::datasets::fintech_scenario;
use metadata_privacy::federated::{run_scenario, Party};
use metadata_privacy::metadata::SharePolicy;

fn main() {
    let data = fintech_scenario(600, 2024);
    println!(
        "Bank holds {} customers × {} attributes; e-commerce holds {} × {}.",
        data.bank.relation.n_rows(),
        data.bank.relation.arity(),
        data.ecommerce.relation.n_rows(),
        data.ecommerce.relation.arity(),
    );

    let experiment = ExperimentConfig {
        rounds: 100,
        base_seed: 11,
        epsilon: 1_000.0,
    };

    for (name, policy) in [
        ("FULL (names + domains + dependencies)", SharePolicy::FULL),
        (
            "NAMES_AND_DOMAINS (today's common practice)",
            SharePolicy::NAMES_AND_DOMAINS,
        ),
        (
            "PAPER_RECOMMENDED (names + dependencies, no domains)",
            SharePolicy::PAPER_RECOMMENDED,
        ),
    ] {
        let bank = Party::new(
            "bank",
            data.bank.relation.clone(),
            0,
            data.bank.dependencies.clone(),
        )
        .expect("bank party");
        let ecom = Party::new(
            "ecommerce",
            data.ecommerce.relation.clone(),
            0,
            data.ecommerce.dependencies.clone(),
        )
        .expect("ecom party");

        // Bank column 5 is loan_approved — the training label.
        let outcome = run_scenario(bank, ecom, 5, &policy, &experiment).expect("scenario runs");

        println!("\n━━ Policy: {name}");
        println!(
            "   PSI intersection: {} customers",
            outcome.setup.alignment.len()
        );
        println!(
            "   Utility    federated accuracy {:.3} vs bank-solo {:.3}",
            outcome.federated_accuracy, outcome.solo_accuracy
        );
        println!("   Privacy    mean index-aligned matches per bank attribute:");
        for (with_deps, random) in outcome
            .attack_with_deps
            .per_attr
            .iter()
            .zip(&outcome.attack_random.per_attr)
        {
            println!(
                "     {:<14} with deps {:>8.2}   random baseline {:>8.2}",
                with_deps.name, with_deps.mean_matches, random.mean_matches
            );
        }
    }

    println!(
        "\nReading: under FULL and NAMES_AND_DOMAINS the attack leaks ≈ N/|D| \
         cells per categorical attribute, and sharing dependencies adds no \
         extra leakage (§III-B/§IV). Under the paper's recommended policy \
         the domains are withheld and the attack collapses, while training \
         utility is unaffected — the model never needed the metadata's \
         domains, only the aligned features."
    );
}
