//! Metadata privacy audit: before sharing a dataset's metadata, quantify
//! what each disclosure level would leak — identifiability, analytical
//! expectations, and the measured synthesis attack — on the echocardiogram
//! reconstruction the paper evaluates.
//!
//! Run with: `cargo run --release --example metadata_audit`

use metadata_privacy::core::analytical;
use metadata_privacy::core::{
    identifiability_rate, run_attack, uniqueness_profile, ExperimentConfig, TextTable,
};
use metadata_privacy::datasets::{echocardiogram, verified_dependencies};
use metadata_privacy::metadata::{MetadataPackage, SharePolicy};
use metadata_privacy::relation::Domain;

fn main() {
    let real = echocardiogram();
    println!(
        "Auditing `echocardiogram` ({} rows × {} attributes)\n",
        real.n_rows(),
        real.arity()
    );

    // ── Identifiability (Definition 2.1) ───────────────────────────────
    println!("Identifiability (Definition 2.1):");
    for size in 1..=3 {
        println!(
            "  attribute subsets of size ≤ {size}: {:.1}% of tuples identifiable",
            100.0 * identifiability_rate(&real, size).unwrap()
        );
    }
    let unique = uniqueness_profile(&real).unwrap();
    println!("  tuples unique per single attribute: {unique:?}\n");

    // ── Analytical expectations per attribute (§III-A) ─────────────────
    let domains = Domain::infer_all(&real).unwrap();
    let mut table = TextTable::new(vec![
        "attribute".into(),
        "domain".into(),
        "θ".into(),
        "E[matches] = N·θ".into(),
        "leaks? (N·θ ≥ 1)".into(),
    ]);
    for (i, dom) in domains.iter().enumerate() {
        let theta = dom.theta(1.0); // ε = 1 for continuous attributes
        let desc = match dom {
            Domain::Categorical(v) => format!("|D| = {}", v.len()),
            Domain::Continuous { min, max } => format!("[{min:.1}, {max:.1}]"),
        };
        table.push_row(vec![
            real.schema().attribute(i).unwrap().name.clone(),
            desc,
            format!("{theta:.4}"),
            format!(
                "{:.2}",
                analytical::random::expected_matches(real.n_rows(), theta)
            ),
            analytical::random::leaks(real.n_rows(), theta).to_string(),
        ]);
    }
    println!("Random-generation expectations if domains are shared (ε = 1):");
    print!("{}", table.render());

    // ── Measured attack per policy ──────────────────────────────────────
    let package = MetadataPackage::describe("hospital", &real, verified_dependencies()).unwrap();
    let config = ExperimentConfig {
        rounds: 100,
        base_seed: 5,
        epsilon: 1.0,
    };
    println!(
        "\nMeasured synthesis attack (mean matches over {} rounds):",
        config.rounds
    );
    let mut table = TextTable::new(vec![
        "attribute".into(),
        "names+domains".into(),
        "+dependencies".into(),
        "paper policy".into(),
    ]);
    let dom_only = run_attack(
        &real,
        &SharePolicy::NAMES_AND_DOMAINS.apply(&package),
        false,
        &config,
    )
    .unwrap();
    let with_deps = run_attack(&real, &SharePolicy::FULL.apply(&package), true, &config).unwrap();
    let recommended = run_attack(
        &real,
        &SharePolicy::PAPER_RECOMMENDED.apply(&package),
        true,
        &config,
    )
    .unwrap();
    for i in 0..real.arity() {
        table.push_row(vec![
            real.schema().attribute(i).unwrap().name.clone(),
            format!("{:.2}", dom_only.attr(i).unwrap().mean_matches),
            format!("{:.2}", with_deps.attr(i).unwrap().mean_matches),
            format!("{:.2}", recommended.attr(i).unwrap().mean_matches),
        ]);
    }
    print!("{}", table.render());

    println!(
        "\nVerdict: domains drive the leakage; adding FD/RFD metadata moves the \
         numbers within noise (the paper's §III-B/§IV conclusion); the \
         recommended policy (share names and dependencies, withhold domains \
         and types) eliminates the generation channel."
    );
}
