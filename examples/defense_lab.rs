//! Defense lab (extension beyond the paper's scope): quantify the one
//! dependency class that *does* leak extra — conditional FDs, whose
//! tableau constants are data values — and the mitigations available when
//! a party cannot simply withhold its domains: domain generalization and
//! k-anonymous bucketing.
//!
//! Run with: `cargo run --release --example defense_lab`

use metadata_privacy::core::{analytical, k_anonymity, run_attack, ExperimentConfig, TextTable};
use metadata_privacy::datasets::echocardiogram;
use metadata_privacy::discovery::{discover_cfds, CfdConfig};
use metadata_privacy::metadata::{DomainGeneralization, MetadataPackage, SharePolicy};
use metadata_privacy::prelude::*;

fn main() {
    let real = echocardiogram();
    let config = ExperimentConfig {
        rounds: 100,
        base_seed: 9,
        epsilon: 1.0,
    };

    // ── Part 1: CFDs leak more ──────────────────────────────────────────
    let cfds = discover_cfds(
        &real,
        &CfdConfig {
            min_support: 5,
            exclude_fd_pairs: true,
        },
    )
    .expect("CFD discovery");
    println!(
        "Discovered {} constant CFDs with support ≥ 5. Examples:",
        cfds.len()
    );
    for cfd in cfds.iter().take(5) {
        let support = cfd.support(&real).unwrap();
        let card_y = real.distinct_count(cfd.rhs).unwrap();
        println!(
            "  {cfd}   support {support}, flood amplification ×{:.2}{}",
            analytical::cfd::flood_amplification(real.n_rows(), support, card_y),
            if analytical::cfd::leaks_more_than_random(real.n_rows(), support, card_y) {
                "  ← beats random"
            } else {
                ""
            }
        );
    }

    // Attack with CFDs attached vs plain domains.
    let deps: Vec<Dependency> = cfds.iter().cloned().map(Dependency::from).collect();
    let pkg_plain = MetadataPackage::describe("h", &real, vec![]).unwrap();
    let pkg_cfd = MetadataPackage::describe("h", &real, deps).unwrap();
    let plain = run_attack(&real, &pkg_plain, false, &config).unwrap();
    let with_cfd = run_attack(&real, &pkg_cfd, true, &config).unwrap();
    let mut t = TextTable::new(vec![
        "attribute".into(),
        "domains only".into(),
        "+ CFDs".into(),
    ]);
    for i in 0..real.arity() {
        t.push_row(vec![
            real.schema().attribute(i).unwrap().name.clone(),
            format!("{:.2}", plain.attr(i).unwrap().mean_matches),
            format!("{:.2}", with_cfd.attr(i).unwrap().mean_matches),
        ]);
    }
    println!("\nMean index-aligned matches ({} rounds):", config.rounds);
    print!("{}", t.render());

    // ── Part 2: domain generalization blunts the §III-A attack ─────────
    println!("\nDomain generalization (widen continuous ranges):");
    for widen in [1.0, 2.0, 4.0, 8.0] {
        let g = DomainGeneralization {
            widen,
            snap: 0.0,
            suppress_below: 0,
        };
        let pkg = g
            .apply(&SharePolicy::NAMES_AND_DOMAINS.apply(&pkg_plain), &real)
            .unwrap();
        let out = run_attack(&real, &pkg, false, &config).unwrap();
        let total: f64 = metadata_privacy::datasets::CONTINUOUS_ATTRS
            .iter()
            .map(|&a| out.attr(a).unwrap().mean_matches)
            .sum();
        println!("  widen ×{widen}: total continuous ε-matches {total:.1}");
    }

    // ── Part 3: k-anonymity via bucketing ───────────────────────────────
    use metadata_privacy::datasets::echocardiogram::attrs::{AGE, WALL_MOTION_SCORE};
    let qi = [AGE, WALL_MOTION_SCORE];
    println!(
        "\nk-anonymity over QI (age, wall_motion_score): k = {}",
        k_anonymity(&real, &qi).unwrap()
    );
    let (anon, widths) = metadata_privacy::core::generalize_to_k(&real, &qi, 4, 1.0, 12).unwrap();
    println!(
        "after generalize_to_k(k=4): k = {}, bucket widths = {widths:?}",
        k_anonymity(&anon, &qi).unwrap()
    );
    println!(
        "identifiability (size ≤ 1): {:.1}% → {:.1}%",
        100.0 * metadata_privacy::core::identifiability_rate(&real, 1).unwrap(),
        100.0 * metadata_privacy::core::identifiability_rate(&anon, 1).unwrap(),
    );
}
