//! File-based audit pipeline: everything a data owner would run on a CSV
//! before agreeing to a VFL collaboration — statistics, dependency
//! profile (including the approximate classes), identifiability, the
//! policy leakage matrix, and an anonymised export.
//!
//! Run with:
//! `cargo run --release --example csv_audit_pipeline [path/to.csv]`
//! (defaults to `data/echocardiogram.csv`; regenerate it with
//! `cargo run -p mp-bench --bin export_dataset`).

use metadata_privacy::core::{
    bucketize_column, identifiability_rate, k_anonymity, run_attack, ExperimentConfig, TextTable,
};
use metadata_privacy::discovery::{
    discover_approx_ods, DependencyProfile, OdConfig, ProfileConfig,
};
use metadata_privacy::prelude::*;
use metadata_privacy::relation::{csv, quartiles, AttrKind, ColumnStats};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "data/echocardiogram.csv".to_owned());
    let real = match csv::read_path(&path, &csv::CsvOptions::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "cannot read `{path}`: {e}\nhint: cargo run -p mp-bench --bin export_dataset"
            );
            std::process::exit(1);
        }
    };
    println!(
        "Loaded `{path}`: {} rows × {} attributes\n",
        real.n_rows(),
        real.arity()
    );

    // ── Column statistics ───────────────────────────────────────────────
    let mut t = TextTable::new(vec![
        "attribute".into(),
        "kind".into(),
        "nulls".into(),
        "distinct".into(),
        "q25/q50/q75".into(),
    ]);
    for (i, stats) in ColumnStats::compute_all(&real).unwrap().iter().enumerate() {
        let kind = real.schema().attribute(i).unwrap().kind;
        let quart = quartiles(&real, i)
            .unwrap()
            .map_or("—".to_owned(), |(a, b, c)| {
                format!("{a:.1}/{b:.1}/{c:.1}")
            });
        t.push_row(vec![
            stats.name.clone(),
            kind.to_string(),
            stats.nulls.to_string(),
            stats.distinct.to_string(),
            quart,
        ]);
    }
    print!("{}", t.render());

    // ── Dependency profile (exact + approximate classes) ────────────────
    let profile = DependencyProfile::discover(&real, &ProfileConfig::paper()).unwrap();
    println!(
        "\nDependencies: {} FDs, {} AFDs, {} ODs, {} NDs, {} DDs, {} OFDs, {} CFDs, {} MFDs",
        profile.fds.len(),
        profile.afds.len(),
        profile.ods.len(),
        profile.nds.len(),
        profile.dds.len(),
        profile.ofds.len(),
        profile.cfds.len(),
        profile.mfds.len()
    );
    let approx_ods = discover_approx_ods(&real, 0.1, &OdConfig::default()).unwrap();
    println!("approximate ODs (error ≤ 10%): {}", approx_ods.len());

    // ── Identifiability ─────────────────────────────────────────────────
    println!(
        "\nIdentifiability: {:.1}% at subset size 1, {:.1}% at size 2",
        100.0 * identifiability_rate(&real, 1).unwrap(),
        100.0 * identifiability_rate(&real, 2).unwrap()
    );

    // ── Policy leakage matrix ───────────────────────────────────────────
    let package = MetadataPackage::describe("owner", &real, profile.to_dependencies()).unwrap();
    let config = ExperimentConfig {
        rounds: 60,
        base_seed: 1,
        epsilon: 0.5,
    };
    println!(
        "\nPolicy leakage matrix (mean matches over {} rounds):",
        config.rounds
    );
    let mut t = TextTable::new(vec!["policy".into(), "total matches".into()]);
    for (name, policy) in [
        ("names only", SharePolicy::NAMES_ONLY),
        ("names + domains", SharePolicy::NAMES_AND_DOMAINS),
        ("full", SharePolicy::FULL),
        ("paper recommended", SharePolicy::PAPER_RECOMMENDED),
    ] {
        let result = run_attack(&real, &policy.apply(&package), true, &config).unwrap();
        let total: f64 = result.per_attr.iter().map(|a| a.mean_matches).sum();
        t.push_row(vec![name.into(), format!("{total:.1}")]);
    }
    print!("{}", t.render());

    // ── Anonymised export ───────────────────────────────────────────────
    let continuous = real.schema().indices_of_kind(AttrKind::Continuous);
    if let Some(&qi) = continuous.first() {
        let coarse = bucketize_column(&real, qi, 8.0).unwrap();
        let out = std::env::temp_dir().join("audited_anonymised.csv");
        csv::write_path(&coarse, &out).unwrap();
        println!(
            "\nBucketised attribute {qi} (width 8): k-anonymity {} → {}; wrote {}",
            k_anonymity(&real, &[qi]).unwrap(),
            k_anonymity(&coarse, &[qi]).unwrap(),
            out.display()
        );
    }
}
