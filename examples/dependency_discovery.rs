//! Dependency discovery walkthrough: plant known FD/AFD/OD/ND/DD structure
//! in a synthetic relation, rediscover it with every algorithm in
//! `mp-discovery`, and cross-check TANE against the exhaustive baseline.
//!
//! Run with: `cargo run --release --example dependency_discovery`

use metadata_privacy::datasets::{all_classes_spec, echocardiogram};
use metadata_privacy::discovery::{
    discover_fds, discover_fds_naive, DependencyProfile, ProfileConfig, TaneConfig,
};
use metadata_privacy::metadata::Dependency;

fn main() {
    // ── Planted ground truth ────────────────────────────────────────────
    let spec = all_classes_spec(400, 99);
    let out = spec.generate().expect("generation succeeds");
    println!(
        "Synthetic relation: {} rows × {} attrs, planted dependencies:",
        out.relation.n_rows(),
        out.relation.arity()
    );
    for dep in &out.planted {
        let holds = dep.holds(&out.relation).unwrap();
        println!("  {dep}   (holds: {holds})");
        assert!(holds);
    }

    // ── Full profile ────────────────────────────────────────────────────
    let profile = DependencyProfile::discover(&out.relation, &ProfileConfig::paper())
        .expect("profiling succeeds");
    println!(
        "\nDiscovered: {} FDs, {} AFDs, {} ODs, {} NDs, {} DDs, {} OFDs",
        profile.fds.len(),
        profile.afds.len(),
        profile.ods.len(),
        profile.nds.len(),
        profile.dds.len(),
        profile.ofds.len()
    );
    for dep in profile.to_dependencies() {
        println!("  {dep}");
    }

    // ── Every planted dependency is implied by the discovery output ─────
    for planted in &out.planted {
        let found = match planted {
            Dependency::Fd(fd) => profile
                .fds
                .iter()
                .any(|f| f.rhs == fd.rhs && f.lhs.is_subset_of(&fd.lhs)),
            Dependency::Afd(afd) => {
                profile.afds.iter().any(|a| a.fd.rhs == afd.fd.rhs)
                    || profile.fds.iter().any(|f| f.rhs == afd.fd.rhs)
            }
            Dependency::Od(od) => profile.ods.contains(od),
            Dependency::Nd(nd) => profile
                .nds
                .iter()
                .any(|n| n.lhs == nd.lhs && n.rhs == nd.rhs && n.k <= nd.k),
            _ => true,
        };
        println!("planted {planted} rediscovered: {found}");
    }

    // ── TANE vs the exhaustive baseline ─────────────────────────────────
    let tane = discover_fds(
        &out.relation,
        &TaneConfig {
            max_lhs: 2,
            g3_threshold: 0.0,
            ..TaneConfig::default()
        },
    )
    .expect("TANE runs");
    let naive = discover_fds_naive(&out.relation, 2).expect("naive runs");
    let canon = |fds: &[metadata_privacy::metadata::Fd]| {
        let mut v: Vec<String> = fds.iter().map(|f| format!("{}→{}", f.lhs, f.rhs)).collect();
        v.sort();
        v
    };
    assert_eq!(
        canon(&tane),
        canon(&naive),
        "TANE must match the exhaustive baseline"
    );
    println!(
        "\nTANE and the exhaustive baseline agree on all {} minimal FDs (depth ≤ 2).",
        tane.len()
    );

    // ── The paper's dataset ─────────────────────────────────────────────
    let echo = echocardiogram();
    let profile =
        DependencyProfile::discover(&echo, &ProfileConfig::paper()).expect("echo profiling");
    println!(
        "\nEchocardiogram ({} rows): {} FDs, {} ODs, {} NDs discovered with the \
         paper's pairwise configuration.",
        echo.n_rows(),
        profile.fds.len(),
        profile.ods.len(),
        profile.nds.len()
    );
}
