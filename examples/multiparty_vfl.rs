//! Three-party VFL: a bank, an e-commerce company and a telco align their
//! customers with k-way PSI, broadcast metadata under per-party policies,
//! train a federated model with a holdout evaluation, and audit what each
//! party's disclosure would let the others reconstruct.
//!
//! Run with: `cargo run --release --example multiparty_vfl`

use metadata_privacy::core::{run_attack, ExperimentConfig};
use metadata_privacy::datasets::fintech_scenario;
use metadata_privacy::federated::{
    auc, holdout_split, labels_from_column, train, FeatureBlock, MultiPartySession, Party,
    TrainConfig,
};
use metadata_privacy::metadata::SharePolicy;
use metadata_privacy::relation::{Attribute, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A third party: a telco with tenure/usage features over a subset of the
/// same customer ids.
fn telco(n_customers: usize, seed: u64) -> Party {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::new(vec![
        Attribute::categorical("customer_id"),
        Attribute::continuous("tenure_months"),
        Attribute::continuous("monthly_usage_gb"),
    ])
    .expect("telco schema");
    let mut rows = Vec::new();
    for i in 0..n_customers {
        if i % 7 == 6 {
            continue; // the telco misses ~14% of the population
        }
        rows.push(vec![
            Value::Text(format!("C{i:05}")),
            Value::Float((1.0 + 119.0 * rng.gen::<f64>()).round()),
            Value::Float((0.5 + 80.0 * rng.gen::<f64>()).round()),
        ]);
    }
    let relation = Relation::from_rows(schema, rows).expect("telco rows");
    Party::new("telco", relation, 0, vec![]).expect("telco party")
}

fn main() {
    let n = 700usize;
    let data = fintech_scenario(n, 31);
    let bank =
        Party::new("bank", data.bank.relation, 0, data.bank.dependencies).expect("bank party");
    let ecom = Party::new(
        "ecommerce",
        data.ecommerce.relation,
        0,
        data.ecommerce.dependencies,
    )
    .expect("ecom party");
    let telco = telco(n, 99);

    let session = MultiPartySession::new(vec![bank, ecom, telco], 0x3AB7);
    let policies = [
        SharePolicy::PAPER_RECOMMENDED, // the bank follows the paper
        SharePolicy::FULL,              // the e-commerce side overshares
        SharePolicy::NAMES_AND_DOMAINS, // the telco does what most do
    ];
    let setup = session.run_setup(&policies).expect("setup");
    println!(
        "3-way PSI intersection: {} customers (of {n})",
        setup.alignment.len()
    );

    // ── Utility: train on the aligned slices with a holdout ─────────────
    // Bank features 0..4, label = aligned feature 4 (loan_approved).
    let labels = labels_from_column(&setup.aligned[0], 4).expect("labels");
    let blocks: Vec<FeatureBlock> = vec![
        FeatureBlock::encode(&setup.aligned[0], &[0, 1, 2, 3]).expect("bank block"),
        FeatureBlock::encode(&setup.aligned[1], &[0, 1, 2]).expect("ecom block"),
        FeatureBlock::encode(&setup.aligned[2], &[0, 1]).expect("telco block"),
    ];
    let (train_rows, held_rows) = holdout_split(labels.len(), 5);
    println!(
        "training on {} rows, holding out {}",
        train_rows.len(),
        held_rows.len()
    );
    // Simple full-data training (the holdout here evaluates ranking).
    let model = train(blocks, &labels, &TrainConfig::default());
    let preds = model.predict();
    let held_scores: Vec<f64> = held_rows.iter().map(|&r| preds[r]).collect();
    let held_labels: Vec<f64> = held_rows.iter().map(|&r| labels[r]).collect();
    println!(
        "federated model: train accuracy {:.3}, holdout AUC {:.3}",
        model.accuracy(&labels),
        auc(&held_scores, &held_labels)
    );

    // ── Privacy: what can the others reconstruct about each party? ──────
    let config = ExperimentConfig {
        rounds: 80,
        base_seed: 17,
        epsilon: 1.0,
    };
    for (p, name) in ["bank", "ecommerce", "telco"].iter().enumerate() {
        let result =
            run_attack(&setup.aligned[p], &setup.metadata[p], true, &config).expect("attack");
        let total: f64 = result.per_attr.iter().map(|a| a.mean_matches).sum();
        println!(
            "attack surface of {name:<10} (policy {}): {total:>8.1} total mean matches",
            match p {
                0 => "recommended",
                1 => "FULL",
                _ => "names+domains",
            }
        );
    }
    println!(
        "\nReading: the bank, following the paper's recommendation, exposes \
         nothing; the oversharing parties expose ≈ N/|D| per categorical \
         attribute plus ε-band hits on continuous ones."
    );
}
