//! Quickstart: profile a table, share metadata, mount the synthesis
//! attack, and measure privacy leakage — the paper's whole pipeline on its
//! own Table II example.
//!
//! Run with: `cargo run --example quickstart`

use metadata_privacy::prelude::*;

fn main() {
    // ── 1. A party owns a relation ─────────────────────────────────────
    let real = metadata_privacy::datasets::employee();
    println!("Real relation (the paper's Table II):\n{real}");

    // ── 2. It profiles its dependencies (TANE + RFD discovery) ─────────
    let profile =
        DependencyProfile::discover(&real, &ProfileConfig::paper()).expect("discovery succeeds");
    println!("Discovered dependencies:");
    for dep in profile.to_dependencies() {
        println!("  {dep}");
    }

    // ── 3. It builds a metadata package and redacts it ─────────────────
    let package = MetadataPackage::describe("bank", &real, profile.to_dependencies())
        .expect("describe succeeds");
    for (policy_name, policy) in [
        ("names only", SharePolicy::NAMES_ONLY),
        (
            "names + domains (common practice)",
            SharePolicy::NAMES_AND_DOMAINS,
        ),
        ("full disclosure", SharePolicy::FULL),
        ("paper's recommendation", SharePolicy::PAPER_RECOMMENDED),
    ] {
        let shared = policy.apply(&package);

        // ── 4. The receiving party mounts the synthesis attack ─────────
        let config = ExperimentConfig {
            rounds: 400,
            base_seed: 7,
            epsilon: 500.0,
        };
        let result = run_attack(&real, &shared, true, &config).expect("attack runs");

        println!("\nPolicy: {policy_name}");
        let mut table = TextTable::new(vec![
            "attribute".into(),
            "mean matches".into(),
            "MSE".into(),
        ]);
        for attr in &result.per_attr {
            table.push_row(vec![
                attr.name.clone(),
                format!("{:.3}", attr.mean_matches),
                attr.mean_mse.map_or("—".into(), |m| format!("{m:.1}")),
            ]);
        }
        print!("{}", table.render());
    }

    // ── 5. The paper's Example 3.1, analytically ───────────────────────
    let dept_domain = Domain::infer(&real, 2).unwrap();
    let theta = dept_domain.theta(0.0);
    println!(
        "\nExample 3.1: Department has {} values, so random generation expects \
         N·θ = {:.3} correct cells — leakage expected: {}",
        dept_domain.cardinality().unwrap(),
        metadata_privacy::core::analytical::random::expected_matches(real.n_rows(), theta),
        metadata_privacy::core::analytical::random::leaks(real.n_rows(), theta),
    );
}
