//! # metadata-privacy
//!
//! A Rust reproduction of *"Will Sharing Metadata Leak Privacy?"* (Danning
//! Zhan, Rihan Hai — ICDE 2024): a privacy analysis of exchanging
//! functional-dependency and relaxed-functional-dependency metadata during
//! the setup phase of vertical federated learning.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`relation`] — relational substrate (values, schemas, relations,
//!   domains, stripped partitions, CSV, statistics);
//! * [`metadata`] — FD/RFD dependency types, FD inference, dependency
//!   graphs, exchange packages and redaction policies;
//! * [`discovery`] — TANE-style FD discovery plus AFD/OD/ND/DD/OFD
//!   discovery;
//! * [`synth`] — the metadata adversary and its per-class generators;
//! * [`core`] — privacy definitions, analytical leakage models and the
//!   experiment harness (the paper's contribution);
//! * [`federated`] — VFL substrate: parties, simulated PSI, the exchange
//!   protocol, federated logistic regression;
//! * [`datasets`] — the employee example, the reconstructed
//!   echocardiogram dataset, the fintech scenario, and planted-dependency
//!   synthetic generators.
//!
//! ## Quickstart
//!
//! ```
//! use metadata_privacy::prelude::*;
//!
//! // A party profiles its data and shares metadata under a policy.
//! let real = metadata_privacy::datasets::employee();
//! let profile = DependencyProfile::discover(&real, &ProfileConfig::paper()).unwrap();
//! let package = MetadataPackage::describe("bank", &real, profile.to_dependencies()).unwrap();
//! let shared = SharePolicy::NAMES_AND_DOMAINS.apply(&package);
//!
//! // The receiving party mounts the synthesis attack...
//! let result = run_attack(&real, &shared, false, &ExperimentConfig {
//!     rounds: 50, base_seed: 1, epsilon: 0.0,
//! }).unwrap();
//! // ...and expected leakage follows the paper's N/|D| law.
//! assert!(result.attr(2).unwrap().mean_matches > 0.5); // Department: N/3
//! ```

pub use mp_core as core;
pub use mp_datasets as datasets;
pub use mp_discovery as discovery;
pub use mp_federated as federated;
pub use mp_metadata as metadata;
pub use mp_relation as relation;
pub use mp_synth as synth;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use mp_core::{
        categorical_matches, continuous_matches, leakage_rate, mse, run_attack, run_cell,
        tuple_matches, AttackResult, ExperimentConfig, TextTable,
    };
    pub use mp_discovery::{DependencyProfile, ProfileConfig};
    pub use mp_federated::{run_scenario, Party, VflSession};
    pub use mp_metadata::{
        Afd, AttrSet, ConditionalFd, Dependency, DependencyGraph, DifferentialDep, Distribution,
        DomainGeneralization, Fd, FdSet, InclusionDep, MetadataPackage, MetricFd, NumericalDep,
        OrderDep, OrderedFd, SequentialDep, SharePolicy,
    };
    pub use mp_relation::{AttrKind, Attribute, Domain, Pli, Relation, Schema, Value};
    pub use mp_synth::{Adversary, SynthConfig};
}
