//! The seed-driven invariant harness for the fault-injection simulator.
//!
//! Every test here replays the setup protocol under a deterministic
//! [`FaultPlan`] and asserts the three protocol invariants via
//! [`check_invariants`]:
//!
//! 1. completed setups are **bit-identical** to the fault-free run;
//! 2. redacted metadata never appears in any message trace;
//! 3. party crashes abort cleanly with a typed [`SetupError`].
//!
//! The CI `sim-matrix` job runs the same harness over 32 seeds × 4 fault
//! profiles in release mode (`cargo run -p mp-bench --bin sim_matrix`);
//! the in-tree matrix below is a faster subset. To replay any failure:
//! `mpriv simulate --seed <N> --faults <profile>`.

use mp_federated::{
    check_invariants, simulate_setup, simulate_setup_observed, FaultPlan, MultiPartySession, Party,
    PartyCrash, RetryConfig, SetupError, FAULT_PROFILES,
};
use mp_metadata::{Fd, SharePolicy};
use mp_relation::{Attribute, Relation, Schema, Value};

fn party(name: &str, ids: std::ops::Range<i64>, step: i64, with_deps: bool) -> Party {
    let schema = Schema::new(vec![
        Attribute::categorical("id"),
        Attribute::continuous("x"),
        Attribute::categorical("grp"),
    ])
    .unwrap();
    let rows = ids
        .step_by(step as usize)
        .map(|i| {
            vec![
                Value::Text(format!("u{i}")),
                Value::Float((i * 3) as f64),
                Value::Text(if i % 2 == 0 { "even" } else { "odd" }.into()),
            ]
        })
        .collect();
    let rel = Relation::from_rows(schema, rows).unwrap();
    let deps = if with_deps {
        vec![Fd::new(1usize, 2).into()]
    } else {
        vec![]
    };
    Party::new(name, rel, 0, deps).unwrap()
}

fn two_party_session() -> MultiPartySession {
    MultiPartySession::new(
        vec![
            party("bank", 0..40, 1, true),
            party("shop", 10..60, 1, false),
        ],
        0x5E55,
    )
}

fn three_party_session() -> MultiPartySession {
    MultiPartySession::new(
        vec![
            party("bank", 0..40, 1, true),
            party("shop", 10..60, 1, false),
            party("telco", 0..50, 2, false),
        ],
        0x5E55,
    )
}

fn policies(n: usize) -> Vec<SharePolicy> {
    [
        SharePolicy::PAPER_RECOMMENDED,
        SharePolicy::FULL,
        SharePolicy::NAMES_AND_DOMAINS,
    ][..n]
        .to_vec()
}

/// The in-tree seed matrix: 8 seeds × 4 profiles × {2, 3} parties.
#[test]
fn seed_matrix_holds_all_invariants() {
    let retry = RetryConfig::default();
    for session in [two_party_session(), three_party_session()] {
        let pols = policies(session.parties.len());
        for profile in FAULT_PROFILES {
            for seed in 0..8u64 {
                let plan = FaultPlan::from_names(profile, seed, session.parties.len()).unwrap();
                let report = check_invariants(&session, &pols, &plan, &retry).unwrap_or_else(|v| {
                    panic!(
                        "invariant violated ({} parties, profile {profile}, seed {seed}): {v}",
                        session.parties.len()
                    )
                });
                if profile == "crash" {
                    assert!(
                        !report.completed,
                        "crash profile must abort ({} parties, seed {seed})",
                        session.parties.len()
                    );
                }
            }
        }
    }
}

/// The combined profile (all fault kinds at once) still holds every
/// invariant.
#[test]
fn combined_faults_hold_invariants() {
    let session = two_party_session();
    let pols = policies(2);
    let retry = RetryConfig::default();
    for seed in 0..8u64 {
        let plan = FaultPlan::from_names("drop,dup,reorder,crash", seed, 2).unwrap();
        check_invariants(&session, &pols, &plan, &retry)
            .unwrap_or_else(|v| panic!("combined profile, seed {seed}: {v}"));
    }
}

/// Completed runs under drop/dup/reorder faults are bit-identical to the
/// fault-free outcome — checked directly, not only through the harness.
#[test]
fn completed_faulty_runs_are_bit_identical() {
    let session = three_party_session();
    let pols = policies(3);
    let retry = RetryConfig::default();
    let reference = session.run_setup(&pols).unwrap();
    let mut completed = 0;
    for seed in 0..12u64 {
        let plan = FaultPlan::from_names("drop,dup,reorder", seed, 3).unwrap();
        let sim = simulate_setup(&session, &pols, &plan, &retry);
        if let Ok(outcome) = sim.result {
            completed += 1;
            assert_eq!(outcome.alignment, reference.alignment, "seed {seed}");
            assert_eq!(outcome.aligned, reference.aligned, "seed {seed}");
            assert_eq!(outcome.metadata, reference.metadata, "seed {seed}");
        }
    }
    assert!(
        completed >= 6,
        "retry budget should absorb most fault schedules, got {completed}/12"
    );
}

/// Crashing each party in turn yields the matching typed abort.
#[test]
fn every_party_crash_aborts_with_its_id() {
    let session = three_party_session();
    let pols = policies(3);
    let retry = RetryConfig::default();
    for victim in 0..3 {
        let plan = FaultPlan {
            crashes: vec![PartyCrash {
                party: victim,
                after_sends: 1,
            }],
            ..FaultPlan::fault_free(77)
        };
        let sim = simulate_setup(&session, &pols, &plan, &retry);
        assert_eq!(
            sim.result,
            Err(SetupError::PartyCrashed { party: victim }),
            "crashing party {victim}"
        );
        assert!(sim.summary.crashes >= 1);
    }
}

/// The trace audit sees every metadata envelope: under a redacting
/// policy, no domain crosses the wire even when duplication and
/// retransmission multiply the metadata messages.
#[test]
fn redaction_survives_message_multiplication() {
    let session = two_party_session();
    let pols = vec![SharePolicy::NAMES_ONLY, SharePolicy::PAPER_RECOMMENDED];
    let retry = RetryConfig::default();
    for seed in 0..8u64 {
        let plan = FaultPlan {
            drop_rate: 0.2,
            duplicate_rate: 0.5,
            max_delay: 4,
            ..FaultPlan::fault_free(seed)
        };
        let report = check_invariants(&session, &pols, &plan, &retry)
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        if report.completed {
            assert!(report.summary.sent >= 8);
        }
    }
}

/// Seed replay: the same (seed, profile) pair reproduces the identical
/// run, tick for tick — the property every CI failure report relies on.
#[test]
fn seed_replay_is_exact() {
    let session = two_party_session();
    let pols = policies(2);
    let retry = RetryConfig::default();
    for profile in FAULT_PROFILES {
        let plan = FaultPlan::from_names(profile, 1234, 2).unwrap();
        let a = simulate_setup(&session, &pols, &plan, &retry);
        let b = simulate_setup(&session, &pols, &plan, &retry);
        assert_eq!(a.summary, b.summary, "profile {profile}");
        assert_eq!(a.ticks, b.ticks, "profile {profile}");
        assert_eq!(a.trace.len(), b.trace.len(), "profile {profile}");
        match (&a.result, &b.result) {
            (Ok(x), Ok(y)) => assert_eq!(x, y),
            (Err(x), Err(y)) => assert_eq!(x, y),
            _ => panic!("replay diverged on outcome ({profile})"),
        }
    }
}

/// Observation is passive: running the same plan with a live metrics
/// [`mp_observe::Registry`] attached must reproduce the unobserved run
/// exactly — summary, tick count and outcome — and leave the invariant
/// verdict untouched. Metrics never consume from the fault RNG stream,
/// so a run's behaviour cannot depend on whether anyone is watching.
#[test]
fn metrics_observation_does_not_change_invariant_outcomes() {
    let session = two_party_session();
    let pols = policies(2);
    let retry = RetryConfig::default();
    for profile in FAULT_PROFILES {
        for seed in 0..4u64 {
            let plan = FaultPlan::from_names(profile, seed, 2).unwrap();
            let plain = simulate_setup(&session, &pols, &plan, &retry);
            let registry = mp_observe::Registry::new();
            let observed = simulate_setup_observed(&session, &pols, &plan, &retry, &registry);
            assert_eq!(plain.summary, observed.summary, "{profile} seed {seed}");
            assert_eq!(plain.ticks, observed.ticks, "{profile} seed {seed}");
            assert_eq!(
                plain.result.is_ok(),
                observed.result.is_ok(),
                "{profile} seed {seed}"
            );
            // The invariant harness (which replays unobserved) must agree
            // with what the observed run just did.
            let verdict = check_invariants(&session, &pols, &plan, &retry)
                .unwrap_or_else(|v| panic!("{profile} seed {seed}: {v}"));
            assert_eq!(
                verdict.completed,
                observed.result.is_ok(),
                "{profile} seed {seed}: verdict diverged from observed run"
            );
            // And the snapshot's wire counters match the run's summary.
            let snap = registry.snapshot();
            let sent: u64 = (0..2)
                .map(|p| snap.counters[&format!("transport.party.{p}.sent")])
                .sum();
            assert_eq!(sent, observed.summary.sent as u64, "{profile} seed {seed}");
            assert_eq!(
                snap.counters["transport.dropped"], observed.summary.dropped as u64,
                "{profile} seed {seed}"
            );
        }
    }
}
