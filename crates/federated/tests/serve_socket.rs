//! End-to-end tests for `mpriv serve`: real socket sessions must be
//! byte-identical to the same seeds through [`PerfectTransport`], and
//! every injected failure must surface as a typed [`SetupError`].
//!
//! No wall-clock time appears here: client/server supervision runs on
//! io ticks (socket read timeouts), and the tests only ever block on
//! thread joins.

use mp_federated::net::{AbortReason, FramedStream, SessionFrame, SocketStream};
use mp_federated::{
    outcome_matches, run_client_session, ClientConfig, MultiPartySession, MultiSetupOutcome, Party,
    PartyOutcome, RetryConfig, ServeConfig, Server, SetupError,
};
use mp_federated::{small_world_session, Envelope, MsgId, Payload};
use mp_metadata::SharePolicy;
use mp_observe::NoopRecorder;
use std::sync::Arc;

fn start_server() -> Server {
    Server::start(
        "127.0.0.1:0",
        ServeConfig::default(),
        Arc::new(NoopRecorder),
    )
    .expect("bind ephemeral TCP port")
}

/// Runs every party of one session concurrently against `addr`.
fn run_session(
    addr: &str,
    session_id: u64,
    parties: &[Party],
    policies: &[SharePolicy],
    salt: u64,
) -> Vec<Result<PartyOutcome, SetupError>> {
    let n = parties.len();
    let handles: Vec<_> = parties
        .iter()
        .zip(policies)
        .enumerate()
        .map(|(p, (party, policy))| {
            let addr = addr.to_owned();
            let party = party.clone();
            let policy = *policy;
            std::thread::spawn(move || {
                let cfg = ClientConfig::new(session_id, p, n, RetryConfig::default());
                run_client_session(&addr, &cfg, &party, &policy, salt, &NoopRecorder)
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("client thread never panics"))
        .collect()
}

/// The oracle: the same parties/policies/salt through the fault-free
/// in-process harness.
fn reference(parties: &[Party], policies: &[SharePolicy], salt: u64) -> MultiSetupOutcome {
    MultiPartySession::new(parties.to_vec(), salt)
        .run_setup(policies)
        .expect("fault-free reference setup completes")
}

fn fintech_parties(rows: usize, seed: u64) -> Vec<Party> {
    let data = mp_datasets::fintech_scenario(rows, seed);
    vec![
        Party::new("bank", data.bank.relation, 0, data.bank.dependencies).expect("bank party"),
        Party::new(
            "ecommerce",
            data.ecommerce.relation,
            0,
            data.ecommerce.dependencies,
        )
        .expect("ecommerce party"),
    ]
}

#[test]
fn socket_sessions_match_perfect_transport_across_seed_matrix() {
    let server = start_server();
    let addr = server.addr().to_owned();
    let policy_matrix = [
        [SharePolicy::PAPER_RECOMMENDED, SharePolicy::FULL],
        [SharePolicy::FULL, SharePolicy::FULL],
        [SharePolicy::NAMES_ONLY, SharePolicy::PAPER_RECOMMENDED],
    ];
    let mut session_id = 1u64;
    for data_seed in [42u64, 7, 99] {
        let parties = fintech_parties(40, data_seed);
        for policies in &policy_matrix {
            let salt = 0xF1A7 ^ data_seed;
            let want = reference(&parties, policies, salt);
            let got = run_session(&addr, session_id, &parties, policies, salt);
            session_id += 1;
            for (p, res) in got.iter().enumerate() {
                let outcome = res.as_ref().unwrap_or_else(|e| {
                    panic!("seed {data_seed} party {p}: socket session failed: {e}")
                });
                assert!(
                    outcome_matches(outcome, p, &want),
                    "seed {data_seed} party {p}: socket outcome diverged from PerfectTransport"
                );
            }
        }
    }
    let report = server.shutdown();
    assert_eq!(
        report.sessions_aborted, 0,
        "no session may abort: {report:?}"
    );
    assert_eq!(report.sessions_completed, 9);
}

#[test]
fn three_party_socket_session_matches_reference() {
    let (session, policies) = small_world_session(3).expect("3-party small world");
    let want = session.run_setup(&policies).expect("reference completes");
    let server = start_server();
    let got = run_session(server.addr(), 77, &session.parties, &policies, session.salt);
    for (p, res) in got.iter().enumerate() {
        let outcome = res.as_ref().expect("party completes");
        assert!(outcome_matches(outcome, p, &want), "party {p} diverged");
    }
    let report = server.shutdown();
    assert_eq!(report.sessions_completed, 1);
}

#[test]
fn concurrent_sessions_all_match_reference() {
    let server = start_server();
    let addr = server.addr().to_owned();
    let parties = fintech_parties(30, 42);
    let policies = [SharePolicy::PAPER_RECOMMENDED, SharePolicy::FULL];
    let salt = 0xF1A7;
    let want = reference(&parties, &policies, salt);

    // 8 sessions at once, every party its own thread (16 connections).
    let handles: Vec<_> = (0..8u64)
        .map(|s| {
            let addr = addr.clone();
            let parties = parties.clone();
            std::thread::spawn(move || run_session(&addr, 100 + s, &parties, &policies, salt))
        })
        .collect();
    for h in handles {
        let results = h.join().expect("session thread never panics");
        for (p, res) in results.iter().enumerate() {
            let outcome = res.as_ref().expect("concurrent session completes");
            assert!(outcome_matches(outcome, p, &want), "party {p} diverged");
        }
    }
    let report = server.shutdown();
    assert_eq!(report.sessions_completed, 8);
    assert_eq!(report.sessions_aborted, 0);
    assert!(
        report.max_queue_depth <= 64,
        "queue depth must stay bounded: {report:?}"
    );
}

#[test]
fn peer_disconnect_surfaces_as_party_crashed() {
    let server = start_server();
    let addr = server.addr().to_owned();
    let parties = fintech_parties(20, 42);

    // Party 1 joins, waits for Welcome, then drops the connection
    // mid-session — a connection-reset fault.
    let crasher = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let stream = SocketStream::connect(&addr).expect("connect");
            stream
                .set_read_timeout(Some(std::time::Duration::from_millis(2)))
                .expect("timeout");
            let mut framed = FramedStream::new(stream);
            framed
                .write_frame(&SessionFrame::Hello {
                    session: 500,
                    party: 1,
                    n_parties: 2,
                })
                .expect("hello");
            loop {
                if let Ok(mp_federated::net::ReadStep::Frame(SessionFrame::Welcome { .. })) =
                    framed.read_step()
                {
                    break;
                }
            }
            framed.socket().shutdown().expect("reset");
        })
    };

    let cfg = ClientConfig::new(500, 0, 2, RetryConfig::default());
    let result = run_client_session(
        &addr,
        &cfg,
        parties.first().expect("party 0"),
        &SharePolicy::FULL,
        1,
        &NoopRecorder,
    );
    crasher.join().expect("crasher joins");
    assert_eq!(
        result.expect_err("session with a crashed peer must fail"),
        SetupError::PartyCrashed { party: 1 },
        "disconnect must surface as the typed crash error"
    );
    let report = server.shutdown();
    assert_eq!(report.sessions_aborted, 1);
    assert_eq!(report.sessions_completed, 0);
}

#[test]
fn spoofed_sender_aborts_the_session() {
    let server = start_server();
    let addr = server.addr().to_owned();
    let parties = fintech_parties(20, 42);

    // Party 1 joins and then sends an envelope claiming to be party 0.
    let spoofer = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let stream = SocketStream::connect(&addr).expect("connect");
            stream
                .set_read_timeout(Some(std::time::Duration::from_millis(2)))
                .expect("timeout");
            let mut framed = FramedStream::new(stream);
            framed
                .write_frame(&SessionFrame::Hello {
                    session: 600,
                    party: 1,
                    n_parties: 2,
                })
                .expect("hello");
            loop {
                match framed.read_step() {
                    Ok(mp_federated::net::ReadStep::Frame(SessionFrame::Welcome { .. })) => break,
                    Ok(mp_federated::net::ReadStep::Eof) => return None,
                    _ => {}
                }
            }
            framed
                .write_frame(&SessionFrame::Envelope(Envelope {
                    id: MsgId(1),
                    from: 0, // spoofed: this connection joined as party 1
                    to: 0,
                    payload: Payload::Ack(MsgId(1)),
                }))
                .expect("spoofed envelope");
            // Wait for the server's verdict.
            loop {
                match framed.read_step() {
                    Ok(mp_federated::net::ReadStep::Frame(SessionFrame::Abort(reason))) => {
                        return Some(reason);
                    }
                    Ok(mp_federated::net::ReadStep::Eof) => return None,
                    _ => {}
                }
            }
        })
    };

    let cfg = ClientConfig::new(600, 0, 2, RetryConfig::default());
    let result = run_client_session(
        &addr,
        &cfg,
        parties.first().expect("party 0"),
        &SharePolicy::FULL,
        1,
        &NoopRecorder,
    );
    let reason = spoofer.join().expect("spoofer joins");
    assert_eq!(
        reason,
        Some(AbortReason::Spoofed { claimed: 0 }),
        "the spoofer must see the typed abort"
    );
    assert!(
        matches!(result, Err(SetupError::Data(_))),
        "the honest party fails closed with a typed error: {result:?}"
    );
    let report = server.shutdown();
    assert_eq!(report.spoof_rejected, 1);
    assert_eq!(report.sessions_aborted, 1);
}

#[cfg(unix)]
#[test]
fn unix_socket_session_matches_reference() {
    let path = std::env::temp_dir().join(format!("mpriv-serve-test-{}.sock", std::process::id()));
    let addr = format!("unix:{}", path.display());
    let server = Server::start(&addr, ServeConfig::default(), Arc::new(NoopRecorder))
        .expect("bind unix socket");
    let parties = fintech_parties(25, 42);
    let policies = [SharePolicy::PAPER_RECOMMENDED, SharePolicy::FULL];
    let want = reference(&parties, &policies, 3);
    let got = run_session(server.addr(), 900, &parties, &policies, 3);
    for (p, res) in got.iter().enumerate() {
        let outcome = res.as_ref().expect("unix session completes");
        assert!(outcome_matches(outcome, p, &want), "party {p} diverged");
    }
    let report = server.shutdown();
    assert_eq!(report.sessions_completed, 1);
    assert!(!path.exists(), "socket file removed on shutdown");
}
