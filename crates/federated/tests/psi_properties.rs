//! Property-based tests for the PSI alignment kernels
//! ([`mp_federated::align`] / [`mp_federated::multi_align`]).
//!
//! The properties the rest of the stack leans on:
//! - every aligned index pair refers to **equal entity ids**;
//! - the aligned *entity set* is invariant under row permutation of
//!   either party (the canonical digest order hides storage order);
//! - alignment is symmetric in party order;
//! - `multi_align` over two parties coincides with pairwise `align`.

use mp_federated::{align, multi_align};
use mp_relation::Value;
use proptest::prelude::*;
use std::collections::HashSet;

/// Strategy: an id column of small ints — dense duplicates and heavy
/// cross-party overlap, the regime where dedup and ordering bugs hide.
fn id_column() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec((0i64..15).prop_map(Value::Int), 0..40)
}

fn as_int(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i,
        other => panic!("test ids are ints, got {other:?}"),
    }
}

/// The set of distinct ids present in every column — the reference
/// semantics of the intersection, independent of row order.
fn naive_common(cols: &[&[Value]]) -> HashSet<i64> {
    let mut sets = cols
        .iter()
        .map(|c| c.iter().map(as_int).collect::<HashSet<i64>>());
    let first = sets.next().unwrap_or_default();
    sets.fold(first, |acc, s| &acc & &s)
}

/// Aligned entity ids of party A, sorted — the permutation-invariant view
/// of an alignment.
fn aligned_ids(a: &[Value], rows_a: &[usize]) -> Vec<i64> {
    let mut ids: Vec<i64> = rows_a.iter().map(|&r| as_int(&a[r])).collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #[test]
    fn aligned_pairs_refer_to_equal_ids(a in id_column(), b in id_column(), salt in 0u64..1000) {
        let al = align(&a, &b, salt);
        for i in 0..al.len() {
            prop_assert_eq!(&a[al.rows_a[i]], &b[al.rows_b[i]]);
        }
    }

    #[test]
    fn alignment_matches_naive_set_semantics(a in id_column(), b in id_column(), salt in 0u64..1000) {
        let al = align(&a, &b, salt);
        let got: HashSet<i64> = al.rows_a.iter().map(|&r| as_int(&a[r])).collect();
        prop_assert_eq!(got.len(), al.len(), "one aligned slot per distinct entity");
        prop_assert_eq!(got, naive_common(&[&a, &b]));
    }

    #[test]
    fn row_permutation_invariant(a in id_column(), b in id_column(), salt in 0u64..1000, k in 0usize..40) {
        let base = align(&a, &b, salt);
        let mut rotated = a.clone();
        if !rotated.is_empty() {
            let k = k % rotated.len();
            rotated.rotate_left(k);
        }
        let perm = align(&rotated, &b, salt);
        prop_assert_eq!(perm.len(), base.len());
        prop_assert_eq!(
            aligned_ids(&rotated, &perm.rows_a),
            aligned_ids(&a, &base.rows_a)
        );
        // B's side is untouched, so its row set must be identical too.
        let mut base_b = base.rows_b.clone();
        let mut perm_b = perm.rows_b.clone();
        base_b.sort_unstable();
        perm_b.sort_unstable();
        prop_assert_eq!(base_b, perm_b);
    }

    #[test]
    fn symmetric_in_party_order(a in id_column(), b in id_column(), salt in 0u64..1000) {
        let ab = align(&a, &b, salt);
        let ba = align(&b, &a, salt);
        // Canonical digest order makes the symmetry exact, not just
        // set-wise: swapping parties swaps the row vectors.
        prop_assert_eq!(ab.rows_a, ba.rows_b);
        prop_assert_eq!(ab.rows_b, ba.rows_a);
    }

    #[test]
    fn multi_align_two_party_matches_pairwise(a in id_column(), b in id_column(), salt in 0u64..1000) {
        let multi = multi_align(&[&a, &b], salt);
        let pair = align(&a, &b, salt);
        prop_assert_eq!(&multi.rows[0], &pair.rows_a);
        prop_assert_eq!(&multi.rows[1], &pair.rows_b);
    }

    #[test]
    fn multi_align_is_entity_consistent(
        a in id_column(),
        b in id_column(),
        c in id_column(),
        salt in 0u64..1000,
    ) {
        let cols: Vec<&[Value]> = vec![&a, &b, &c];
        let al = multi_align(&cols, salt);
        prop_assert_eq!(al.rows.len(), 3);
        for i in 0..al.len() {
            let e0 = &cols[0][al.rows[0][i]];
            for (p, col) in cols.iter().enumerate().skip(1) {
                prop_assert_eq!(e0, &col[al.rows[p][i]], "slot {} party {}", i, p);
            }
        }
        // One slot per distinct common entity; no party row used twice.
        let ids: HashSet<i64> = al.rows[0].iter().map(|&r| as_int(&a[r])).collect();
        prop_assert_eq!(ids.len(), al.len());
        prop_assert_eq!(ids, naive_common(&cols));
        for rows in &al.rows {
            let uniq: HashSet<usize> = rows.iter().copied().collect();
            prop_assert_eq!(uniq.len(), rows.len(), "row reused within a party");
        }
    }

    #[test]
    fn multi_align_symmetric_in_party_order(
        a in id_column(),
        b in id_column(),
        c in id_column(),
        salt in 0u64..1000,
    ) {
        let fwd = multi_align(&[&a, &b, &c], salt);
        let rev = multi_align(&[&c, &b, &a], salt);
        prop_assert_eq!(&fwd.rows[0], &rev.rows[2]);
        prop_assert_eq!(&fwd.rows[1], &rev.rows[1]);
        prop_assert_eq!(&fwd.rows[2], &rev.rows[0]);
    }
}
