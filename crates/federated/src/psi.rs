//! Simulated private set intersection.
//!
//! The paper's setup step: *"data from various parties is synchronized
//! using private set intersection techniques ... the identity of the data
//! tuples is known only to the parties involved"* (refs \[10\], \[12\]). This
//! module simulates the *protocol shape* of a hash-based PSI — parties
//! exchange salted hashes of their identifiers, never the identifiers —
//! and produces the aligned row indices both sides use from then on. It is
//! a single-process simulation: the hash is not cryptographically
//! oblivious, but the information flow (only salted digests cross the
//! boundary) and the output (a canonical common ordering that fixes the
//! tuple index `i` of Definitions 2.2/2.3) match the real thing.

use mp_relation::Value;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// A salted identifier digest, the only thing that crosses the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IdDigest(u64);

impl IdDigest {
    /// Reconstructs a digest from its raw wire representation.
    pub fn from_raw(raw: u64) -> Self {
        IdDigest(raw)
    }

    /// The raw 64-bit digest value (what travels on the wire).
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// Hashes one identifier under a shared salt.
pub fn digest(id: &Value, salt: u64) -> IdDigest {
    let mut h = DefaultHasher::new();
    salt.hash(&mut h);
    id.hash(&mut h);
    IdDigest(h.finish())
}

/// One party's PSI submission: digests in that party's row order.
pub fn submit(ids: &[Value], salt: u64) -> Vec<IdDigest> {
    ids.iter().map(|v| digest(v, salt)).collect()
}

/// Result of the intersection: for each party, the rows (in that party's
/// local indexing) of the common entities, listed in the same canonical
/// order — index `i` of one party's list refers to the same entity as
/// index `i` of the other's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PsiAlignment {
    /// Row indices into party A's relation.
    pub rows_a: Vec<usize>,
    /// Row indices into party B's relation.
    pub rows_b: Vec<usize>,
}

impl PsiAlignment {
    /// Number of common entities.
    pub fn len(&self) -> usize {
        self.rows_a.len()
    }

    /// `true` if the intersection is empty.
    pub fn is_empty(&self) -> bool {
        self.rows_a.is_empty()
    }
}

/// K-way intersection of digest submissions: for each party, the rows (in
/// that party's local indexing) of the entities present in *every*
/// submission, listed in canonical (ascending digest) order. Duplicate
/// digests within one party (duplicate ids, or — astronomically unlikely —
/// hash collisions) keep their first occurrence only, mirroring PSI's set
/// semantics. This is the single intersection kernel behind both
/// [`intersect`] and [`crate::multi_align`], and the computation every
/// party runs locally once the protocol has delivered all digest lists
/// (see [`crate::transport`]).
pub fn intersect_all(submissions: &[&[IdDigest]]) -> Vec<Vec<usize>> {
    if submissions.is_empty() {
        return Vec::new();
    }
    // lint: allow(no-unordered-iteration) reason="the intersection drawn from these maps is sorted into canonical digest order before use"
    let mut maps: Vec<HashMap<IdDigest, usize>> = Vec::with_capacity(submissions.len());
    for digests in submissions {
        let mut m = HashMap::new();
        for (i, d) in digests.iter().enumerate() {
            m.entry(*d).or_insert(i);
        }
        maps.push(m);
    }
    let Some((first, rest)) = maps.split_first() else {
        return Vec::new();
    };
    let mut common: Vec<IdDigest> = first
        .keys()
        .filter(|d| rest.iter().all(|m| m.contains_key(d)))
        .copied()
        .collect();
    common.sort();
    maps.iter()
        .map(|m| common.iter().map(|d| m[d]).collect())
        .collect()
}

/// Intersects two digest submissions via [`intersect_all`]; see there for
/// the dedup and canonical-order semantics.
pub fn intersect(a: &[IdDigest], b: &[IdDigest]) -> PsiAlignment {
    match <[Vec<usize>; 2]>::try_from(intersect_all(&[a, b])) {
        Ok([rows_a, rows_b]) => PsiAlignment { rows_a, rows_b },
        // lint: allow(no-panic) reason="intersect_all returns exactly one row set per non-empty submission list, and two submissions are passed"
        Err(rows) => unreachable!("got {} row sets for 2 submissions", rows.len()),
    }
}

/// Convenience: full PSI between two id columns under a shared salt.
pub fn align(ids_a: &[Value], ids_b: &[Value], salt: u64) -> PsiAlignment {
    intersect(&submit(ids_a, salt), &submit(ids_b, salt))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(names: &[&str]) -> Vec<Value> {
        names.iter().map(|&s| Value::Text(s.into())).collect()
    }

    #[test]
    fn intersection_finds_common_entities() {
        let a = ids(&["u1", "u2", "u3", "u4"]);
        let b = ids(&["u3", "u9", "u1"]);
        let al = align(&a, &b, 42);
        assert_eq!(al.len(), 2);
        // Alignment is consistent: the same entity at the same position.
        for i in 0..al.len() {
            assert_eq!(a[al.rows_a[i]], b[al.rows_b[i]]);
        }
    }

    #[test]
    fn disjoint_sets_yield_empty() {
        let al = align(&ids(&["a"]), &ids(&["b"]), 0);
        assert!(al.is_empty());
        assert_eq!(al.len(), 0);
    }

    #[test]
    fn salt_changes_digests_not_alignment() {
        let a = ids(&["u1", "u2"]);
        let b = ids(&["u2", "u1"]);
        let d1 = submit(&a, 1);
        let d2 = submit(&a, 2);
        assert_ne!(d1, d2, "different salts must produce different digests");
        let al1 = align(&a, &b, 1);
        let al2 = align(&a, &b, 2);
        // The *set* of aligned pairs is salt-independent.
        let pairs = |al: &PsiAlignment| {
            let mut p: Vec<(usize, usize)> = al
                .rows_a
                .iter()
                .copied()
                .zip(al.rows_b.iter().copied())
                .collect();
            p.sort();
            p
        };
        assert_eq!(pairs(&al1), pairs(&al2));
    }

    #[test]
    fn duplicates_keep_first_occurrence() {
        let a = ids(&["u1", "u1", "u2"]);
        let b = ids(&["u1"]);
        let al = align(&a, &b, 7);
        assert_eq!(al.rows_a, vec![0]);
        assert_eq!(al.rows_b, vec![0]);
    }

    #[test]
    fn canonical_order_is_shared() {
        // Both parties, computing independently, get the same entity order.
        let a = ids(&["x", "y", "z"]);
        let b = ids(&["z", "x", "y"]);
        let al = align(&a, &b, 3);
        assert_eq!(al.len(), 3);
        for i in 0..3 {
            assert_eq!(a[al.rows_a[i]], b[al.rows_b[i]]);
        }
    }

    #[test]
    fn numeric_ids_work() {
        let a: Vec<Value> = (0..10i64).map(Value::Int).collect();
        let b: Vec<Value> = (5..15i64).map(Value::Int).collect();
        let al = align(&a, &b, 9);
        assert_eq!(al.len(), 5);
    }
}
