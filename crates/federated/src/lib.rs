//! # mp-federated — vertical federated learning substrate
//!
//! The VFL environment the paper presupposes, as a single-process
//! simulation:
//!
//! * [`Party`] — a named participant holding a vertical slice keyed by an
//!   entity-id column, with its known dependencies;
//! * [`psi`] — simulated hash-based private set intersection producing the
//!   canonical row alignment that fixes the tuple index of the paper's
//!   Definitions 2.2/2.3;
//! * [`VflSession`] — the setup protocol: PSI, then metadata exchange
//!   under per-party [`mp_metadata::SharePolicy`] redactions, run as
//!   typed messages over a [`transport::Transport`] with retries and
//!   idempotent receipt;
//! * [`sim`] — a deterministic, seed-replayable fault-injection simulator
//!   (drop / duplicate / reorder / delay / party-crash) plus the invariant
//!   harness that checks completed setups are bit-identical to the
//!   fault-free run and that redacted metadata never crosses the wire;
//! * [`model`] — vertically federated logistic regression by score
//!   aggregation (only partial logits and residuals cross the boundary);
//! * [`run_scenario`] — the paper's Figure 1 bank × e-commerce scenario
//!   end to end: utility (federated vs solo accuracy) side by side with
//!   the metadata synthesis attack under the chosen policy.

#![warn(missing_docs)]

mod bloom;
pub mod check;
pub mod horizontal;
pub mod model;
mod multiparty;
pub mod net;
mod party;
mod protocol;
pub mod psi;
mod scenario;
pub mod serve;
pub mod sim;
pub mod transport;

pub use bloom::{
    bloom_candidate_rows, bloom_candidate_rows_windowed, windowed_filters, BloomFilter,
};
pub use check::{
    model_check, small_world_session, CheckConfig, CheckReport, Decision, ScheduleTransport,
    ViolationRecord, MAX_PARTIES,
};
pub use horizontal::{horizontal_split, permutation_baseline, schemas_compatible};
pub use model::{
    auc, holdout_split, labels_from_column, train, FeatureBlock, FederatedModel, PartyModel,
    TrainConfig,
};
pub use multiparty::{multi_align, MultiAlignment, MultiPartySession, MultiSetupOutcome};
pub use net::{
    decode_stream, encode_frame, encode_stream, AbortReason, FrameBuffer, FrameError, FramedStream,
    SessionFrame, SocketStream, MAX_FRAME_BYTES,
};
pub use party::Party;
pub use protocol::{
    run_setup_protocol, run_setup_protocol_observed, RetryConfig, SetupError, SetupOutcome,
    VflSession,
};
pub use psi::{align, PsiAlignment};
pub use scenario::{run_scenario, run_scenario_over, ScenarioOutcome};
pub use serve::{
    outcome_matches, run_client_session, BoundedQueue, ClientConfig, PartyOutcome, ServeConfig,
    ServeReport, Server, SocketListener, SocketTransport,
};
pub use sim::{
    check_invariants, simulate_setup, simulate_setup_observed, FaultPlan, InvariantReport,
    InvariantViolation, PartyCrash, SimOutcome, SimTransport, TraceSummary, FAULT_PROFILES,
};
pub use transport::{
    Envelope, MsgId, PartyId, Payload, PerfectTransport, TraceEvent, Transport, TransportMetrics,
    WireError, MAX_ENVELOPE_BYTES, WIRE_VERSION,
};
