//! Vertically federated logistic regression.
//!
//! The downstream task that motivates the metadata exchange: each party
//! holds a vertical feature slice of the PSI-aligned population; the label
//! lives with the *active* party. Training exchanges only scalar partial
//! scores and residuals — never raw features:
//!
//! 1. each party computes its partial logit `w_p · x_p` per row;
//! 2. the active party sums partial logits (+ bias), applies the sigmoid,
//!    and broadcasts the residual `σ(z) − y`;
//! 3. each party updates its own weights from the residual and its local
//!    features.
//!
//! This mirrors the linear VFL protocols the paper cites (SecureBoost/
//! BlindFL-style score aggregation) without their cryptographic layers —
//! enough to measure how shared metadata affects downstream utility.

use mp_relation::{AttrKind, Relation, Result, ValueRef};
use std::collections::HashMap;

/// A party-local feature matrix: standardised numeric encodings of the
/// party's feature columns.
#[derive(Debug, Clone)]
pub struct FeatureBlock {
    /// Row-major features, `rows × cols`.
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl FeatureBlock {
    /// Encodes the given columns of `relation`: continuous columns are
    /// z-standardised (nulls → 0 after centring), categorical columns are
    /// integer-coded by sorted value order then standardised.
    pub fn encode(relation: &Relation, columns: &[usize]) -> Result<Self> {
        let rows = relation.n_rows();
        let cols = columns.len();
        let mut data = vec![0.0; rows * cols];
        for (j, &c) in columns.iter().enumerate() {
            let col = relation.column(c)?;
            let kind = relation.schema().attribute(c)?.kind;
            let raw: Vec<f64> = match kind {
                AttrKind::Continuous => {
                    col.iter().map(|v| v.as_f64().unwrap_or(f64::NAN)).collect()
                }
                AttrKind::Categorical => {
                    let mut codes: Vec<ValueRef<'_>> = col.iter().collect();
                    codes.sort();
                    codes.dedup();
                    let index: HashMap<ValueRef<'_>, usize> =
                        codes.iter().enumerate().map(|(i, v)| (*v, i)).collect();
                    col.iter().map(|v| index[&v] as f64).collect()
                }
            };
            let finite: Vec<f64> = raw.iter().copied().filter(|x| x.is_finite()).collect();
            let mean = if finite.is_empty() {
                0.0
            } else {
                finite.iter().sum::<f64>() / finite.len() as f64
            };
            let var = if finite.is_empty() {
                1.0
            } else {
                finite.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / finite.len() as f64
            };
            let sd = var.sqrt().max(1e-9);
            for (i, &x) in raw.iter().enumerate() {
                data[i * cols + j] = if x.is_finite() { (x - mean) / sd } else { 0.0 };
            }
        }
        Ok(Self { data, rows, cols })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of feature columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }
}

/// One party's model slice: weights over its local features.
#[derive(Debug, Clone)]
pub struct PartyModel {
    /// Feature weights (one per local feature column).
    pub weights: Vec<f64>,
    features: FeatureBlock,
}

impl PartyModel {
    /// Initialises zero weights over a feature block.
    pub fn new(features: FeatureBlock) -> Self {
        Self {
            weights: vec![0.0; features.cols()],
            features,
        }
    }

    /// Partial logits `w_p · x_p` for every row — the only per-row value a
    /// passive party ever sends.
    pub fn partial_scores(&self) -> Vec<f64> {
        (0..self.features.rows())
            .map(|i| {
                self.features
                    .row(i)
                    .iter()
                    .zip(&self.weights)
                    .map(|(x, w)| x * w)
                    .sum()
            })
            .collect()
    }

    /// Gradient step from the broadcast residuals.
    pub fn apply_residuals(&mut self, residuals: &[f64], lr: f64, l2: f64) {
        let n = self.features.rows().max(1) as f64;
        for j in 0..self.features.cols() {
            let mut g = 0.0;
            for (i, &res) in residuals.iter().enumerate() {
                g += res * self.features.row(i)[j];
            }
            g = g / n + l2 * self.weights[j];
            self.weights[j] -= lr * g;
        }
    }
}

/// Training hyperparameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// L2 regularisation strength.
    pub l2: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 200,
            lr: 0.5,
            l2: 1e-4,
        }
    }
}

/// The trained federated model: per-party slices plus the active party's
/// bias.
#[derive(Debug, Clone)]
pub struct FederatedModel {
    /// Per-party model slices, in the order the parties were given.
    pub parties: Vec<PartyModel>,
    /// Global bias term (held by the active party).
    pub bias: f64,
    /// Training-loss trace (one entry per epoch).
    pub loss_trace: Vec<f64>,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Trains a vertically federated logistic regression.
///
/// `blocks` are the parties' aligned feature blocks (equal row counts);
/// `labels` are the active party's 0/1 labels.
pub fn train(blocks: Vec<FeatureBlock>, labels: &[f64], config: &TrainConfig) -> FederatedModel {
    let n = labels.len();
    for b in &blocks {
        assert_eq!(
            b.rows(),
            n,
            "feature blocks must be PSI-aligned with the labels"
        );
    }
    let mut parties: Vec<PartyModel> = blocks.into_iter().map(PartyModel::new).collect();
    let mut bias = 0.0;
    let mut loss_trace = Vec::with_capacity(config.epochs);

    for _ in 0..config.epochs {
        // Round 1: passive parties send partial scores.
        let partials: Vec<Vec<f64>> = parties.iter().map(PartyModel::partial_scores).collect();
        // Active party aggregates, computes residuals and the loss.
        let mut residuals = vec![0.0; n];
        let mut loss = 0.0;
        for i in 0..n {
            let z: f64 = bias + partials.iter().map(|p| p[i]).sum::<f64>();
            let p = sigmoid(z).clamp(1e-12, 1.0 - 1e-12);
            residuals[i] = p - labels[i];
            loss -= labels[i] * p.ln() + (1.0 - labels[i]) * (1.0 - p).ln();
        }
        loss /= n.max(1) as f64;
        loss_trace.push(loss);
        // Round 2: residuals broadcast; every party updates locally.
        bias -= config.lr * residuals.iter().sum::<f64>() / n.max(1) as f64;
        for party in &mut parties {
            party.apply_residuals(&residuals, config.lr, config.l2);
        }
    }
    FederatedModel {
        parties,
        bias,
        loss_trace,
    }
}

impl FederatedModel {
    /// Predicted probabilities on the training alignment.
    pub fn predict(&self) -> Vec<f64> {
        let partials: Vec<Vec<f64>> = self
            .parties
            .iter()
            .map(PartyModel::partial_scores)
            .collect();
        let n = partials.first().map_or(0, Vec::len);
        (0..n)
            .map(|i| sigmoid(self.bias + partials.iter().map(|p| p[i]).sum::<f64>()))
            .collect()
    }

    /// 0/1 accuracy at threshold 0.5.
    pub fn accuracy(&self, labels: &[f64]) -> f64 {
        let preds = self.predict();
        if preds.is_empty() {
            return 0.0;
        }
        let correct = preds
            .iter()
            .zip(labels)
            .filter(|(p, y)| (**p >= 0.5) == (**y >= 0.5))
            .count();
        correct as f64 / preds.len() as f64
    }
}

/// Area under the ROC curve of scores against 0/1 labels, computed by the
/// rank statistic (ties get the midrank). Returns 0.5 when either class is
/// absent.
pub fn auc(scores: &[f64], labels: &[f64]) -> f64 {
    let n_pos = labels.iter().filter(|&&y| y >= 0.5).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    // Midranks over tied score groups.
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j < idx.len() && scores[idx[j]] == scores[idx[i]] {
            j += 1;
        }
        let midrank = (i + j + 1) as f64 / 2.0; // 1-based average rank
        for &k in &idx[i..j] {
            ranks[k] = midrank;
        }
        i = j;
    }
    let rank_sum_pos: f64 = (0..labels.len())
        .filter(|&k| labels[k] >= 0.5)
        .map(|k| ranks[k])
        .sum();
    (rank_sum_pos - n_pos as f64 * (n_pos as f64 + 1.0) / 2.0) / (n_pos as f64 * n_neg as f64)
}

/// A deterministic train/holdout row split (every `holdout_every`-th row is
/// held out). Returns (train_rows, holdout_rows).
pub fn holdout_split(n_rows: usize, holdout_every: usize) -> (Vec<usize>, Vec<usize>) {
    assert!(holdout_every >= 2, "holdout_every must be at least 2");
    let mut train = Vec::with_capacity(n_rows);
    let mut held = Vec::with_capacity(n_rows / holdout_every + 1);
    for r in 0..n_rows {
        if r % holdout_every == 0 {
            held.push(r);
        } else {
            train.push(r);
        }
    }
    (train, held)
}

/// Extracts 0/1 labels from a relation column (ints/floats; nulls → 0).
pub fn labels_from_column(relation: &Relation, col: usize) -> Result<Vec<f64>> {
    Ok(relation
        .column(col)?
        .iter()
        .map(|v| {
            if v.as_f64().unwrap_or(0.0) >= 0.5 {
                1.0
            } else {
                0.0
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_relation::{Attribute, Schema, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two-party separable problem: y = 1 iff xa + xb > 0.
    fn toy(n: usize, seed: u64) -> (FeatureBlock, FeatureBlock, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let schema = Schema::new(vec![Attribute::continuous("x")]).unwrap();
        let xa: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let xb: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let labels: Vec<f64> = xa
            .iter()
            .zip(&xb)
            .map(|(a, b)| f64::from(a + b > 0.0))
            .collect();
        let rel_a = Relation::from_columns(
            schema.clone(),
            vec![xa.iter().map(|&x| Value::Float(x)).collect()],
        )
        .unwrap();
        let rel_b =
            Relation::from_columns(schema, vec![xb.iter().map(|&x| Value::Float(x)).collect()])
                .unwrap();
        (
            FeatureBlock::encode(&rel_a, &[0]).unwrap(),
            FeatureBlock::encode(&rel_b, &[0]).unwrap(),
            labels,
        )
    }

    #[test]
    fn federated_training_learns_separable_data() {
        let (a, b, labels) = toy(400, 1);
        let model = train(vec![a, b], &labels, &TrainConfig::default());
        let acc = model.accuracy(&labels);
        assert!(acc > 0.93, "accuracy {acc}");
        // Loss decreases.
        let first = model.loss_trace.first().unwrap();
        let last = model.loss_trace.last().unwrap();
        assert!(last < first);
    }

    #[test]
    fn two_parties_beat_one() {
        let (a, b, labels) = toy(400, 2);
        let both = train(vec![a.clone(), b], &labels, &TrainConfig::default());
        let solo = train(vec![a], &labels, &TrainConfig::default());
        assert!(
            both.accuracy(&labels) > solo.accuracy(&labels) + 0.05,
            "collaboration must add utility: both {} solo {}",
            both.accuracy(&labels),
            solo.accuracy(&labels)
        );
    }

    #[test]
    fn encoding_handles_categoricals_and_nulls() {
        let schema = Schema::new(vec![
            Attribute::categorical("c"),
            Attribute::continuous("x"),
        ])
        .unwrap();
        let rel = Relation::from_rows(
            schema,
            vec![
                vec!["a".into(), 1.0.into()],
                vec!["b".into(), Value::Null],
                vec!["a".into(), 3.0.into()],
            ],
        )
        .unwrap();
        let block = FeatureBlock::encode(&rel, &[0, 1]).unwrap();
        assert_eq!(block.rows(), 3);
        assert_eq!(block.cols(), 2);
        // Null became the centred default 0.
        assert_eq!(block.row(1)[1], 0.0);
        // Equal categorical values encode equally.
        assert_eq!(block.row(0)[0], block.row(2)[0]);
    }

    #[test]
    fn constant_column_is_harmless() {
        let schema = Schema::new(vec![Attribute::continuous("k")]).unwrap();
        let rel = Relation::from_rows(schema, vec![vec![5.0.into()], vec![5.0.into()]]).unwrap();
        let block = FeatureBlock::encode(&rel, &[0]).unwrap();
        let model = train(vec![block], &[0.0, 1.0], &TrainConfig::default());
        assert!(model.accuracy(&[0.0, 1.0]).is_finite());
    }

    #[test]
    fn labels_extraction() {
        let schema = Schema::new(vec![Attribute::categorical("y")]).unwrap();
        let rel = Relation::from_rows(
            schema,
            vec![vec![Value::Int(1)], vec![Value::Int(0)], vec![Value::Null]],
        )
        .unwrap();
        assert_eq!(labels_from_column(&rel, 0).unwrap(), vec![1.0, 0.0, 0.0]);
    }

    #[test]
    fn auc_basics() {
        // Perfect separation.
        assert!((auc(&[0.1, 0.2, 0.8, 0.9], &[0.0, 0.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // Anti-separation.
        assert!((auc(&[0.9, 0.8, 0.2, 0.1], &[0.0, 0.0, 1.0, 1.0]) - 0.0).abs() < 1e-12);
        // All-tied scores: 0.5 by midrank.
        assert!((auc(&[0.5, 0.5, 0.5, 0.5], &[0.0, 1.0, 0.0, 1.0]) - 0.5).abs() < 1e-12);
        // Degenerate label sets.
        assert_eq!(auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
        assert_eq!(auc(&[], &[]), 0.5);
    }

    #[test]
    fn auc_of_trained_model_beats_half() {
        let (a, b, labels) = toy(300, 9);
        let model = train(vec![a, b], &labels, &TrainConfig::default());
        let roc = auc(&model.predict(), &labels);
        assert!(roc > 0.95, "auc {roc}");
    }

    #[test]
    fn holdout_split_partitions() {
        let (train, held) = holdout_split(10, 3);
        assert_eq!(held, vec![0, 3, 6, 9]);
        assert_eq!(train.len() + held.len(), 10);
        assert!(train.iter().all(|r| !held.contains(r)));
    }

    #[test]
    #[should_panic(expected = "PSI-aligned")]
    fn misaligned_blocks_panic() {
        let (a, _, labels) = toy(10, 3);
        let (b, _, _) = toy(5, 4);
        let _ = train(vec![a, b], &labels, &TrainConfig::default());
    }
}
