//! Bloom-filter PSI variant.
//!
//! The salted-digest PSI of [`crate::psi`] exchanges one digest per row —
//! linear communication in the table size. Bloom-filter PSI (the other
//! classic simulation target) sends a fixed-size filter instead: party A
//! publishes a Bloom filter of its salted ids, party B intersects locally.
//! The price is *false positives*: B may believe an entity is shared when
//! it is not — a correctness/communication trade-off this module exposes
//! (and tests) explicitly, including the standard
//! `(1 − e^{−kn/m})^k` false-positive-rate estimate.

use crate::psi::digest;
use mp_relation::Value;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A fixed-size Bloom filter over salted id digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m_bits: usize,
    k_hashes: u32,
    n_inserted: usize,
    salt: u64,
}

impl BloomFilter {
    /// Creates a filter with `m_bits` bits and `k_hashes` hash functions
    /// over ids salted with `salt`. `m_bits` is rounded up to a multiple
    /// of 64 (minimum 64); `k_hashes` is clamped to ≥ 1.
    pub fn new(m_bits: usize, k_hashes: u32, salt: u64) -> Self {
        let words = m_bits.div_ceil(64).max(1);
        Self {
            bits: vec![0u64; words],
            m_bits: words * 64,
            k_hashes: k_hashes.max(1),
            n_inserted: 0,
            salt,
        }
    }

    /// A filter sized for `expected_items` at roughly the optimal
    /// bits-per-item for the given `k` (`m ≈ k·n/ln 2`).
    pub fn with_capacity(expected_items: usize, k_hashes: u32, salt: u64) -> Self {
        let k = k_hashes.max(1) as f64;
        let m = (k * expected_items.max(1) as f64 / std::f64::consts::LN_2).ceil() as usize;
        Self::new(m, k_hashes, salt)
    }

    fn positions(&self, id: &Value) -> impl Iterator<Item = usize> + '_ {
        let base = digest(id, self.salt);
        let mut h = DefaultHasher::new();
        base.hash(&mut h);
        let h1 = h.finish();
        let mut h2hasher = DefaultHasher::new();
        (base, 0x9E37_79B9_7F4A_7C15u64).hash(&mut h2hasher);
        let h2 = h2hasher.finish() | 1; // odd => full period
        let m = self.m_bits as u64;
        (0..self.k_hashes as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
    }

    /// Inserts an id.
    pub fn insert(&mut self, id: &Value) {
        let positions: Vec<usize> = self.positions(id).collect();
        for p in positions {
            self.bits[p / 64] |= 1u64 << (p % 64);
        }
        self.n_inserted += 1;
    }

    /// Membership test — no false negatives, tunable false positives.
    pub fn contains(&self, id: &Value) -> bool {
        self.positions(id)
            .all(|p| self.bits[p / 64] & (1u64 << (p % 64)) != 0)
    }

    /// The standard false-positive-rate estimate `(1 − e^{−kn/m})^k`.
    pub fn estimated_fpr(&self) -> f64 {
        let k = self.k_hashes as f64;
        let n = self.n_inserted as f64;
        let m = self.m_bits as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }

    /// Size of the filter in bytes (the communication cost).
    pub fn size_bytes(&self) -> usize {
        self.bits.len() * 8
    }
}

/// Bloom-filter PSI: party A publishes `filter` (built from its ids under
/// the shared salt); party B returns the rows of `ids_b` the filter
/// accepts. The result may contain false positives at
/// [`BloomFilter::estimated_fpr`]; it never misses a true intersection
/// member.
pub fn bloom_candidate_rows(filter: &BloomFilter, ids_b: &[Value]) -> Vec<usize> {
    bloom_candidate_rows_windowed(std::slice::from_ref(filter), ids_b)
}

/// Builds one Bloom filter per *window* of `ids_a`: a window of `window`
/// rows starts every `stride` rows (with `stride < window` the windows
/// overlap — the streaming-PSI shape where each batch re-covers the tail
/// of the previous one so no boundary entity is missed). Each filter is
/// capacity-sized for its window. `window` and `stride` are clamped to
/// ≥ 1.
pub fn windowed_filters(
    ids_a: &[Value],
    window: usize,
    stride: usize,
    k_hashes: u32,
    salt: u64,
) -> Vec<BloomFilter> {
    let window = window.max(1);
    let stride = stride.max(1);
    let mut filters = Vec::new();
    let mut start = 0;
    while start < ids_a.len() {
        let end = (start + window).min(ids_a.len());
        let mut f = BloomFilter::with_capacity(end - start, k_hashes, salt);
        for id in &ids_a[start..end] {
            f.insert(id);
        }
        filters.push(f);
        if end == ids_a.len() {
            break;
        }
        start += stride;
    }
    filters
}

/// Bloom-filter PSI against a set of (window) filters: the rows of
/// `ids_b` accepted by *any* filter, each row listed **once**, in
/// ascending row order.
///
/// Deduplication here is load-bearing: with overlapping windows (or a
/// false-positive collision in more than one filter) the same row is
/// accepted by several filters, and the pre-dedup implementation reported
/// it once per accepting window — inflating candidate counts and breaking
/// downstream exact-intersection confirmation, which assumes candidate
/// rows are distinct.
pub fn bloom_candidate_rows_windowed(filters: &[BloomFilter], ids_b: &[Value]) -> Vec<usize> {
    let mut rows: Vec<usize> = filters
        .iter()
        .flat_map(|f| {
            ids_b
                .iter()
                .enumerate()
                .filter(|(_, id)| f.contains(id))
                .map(|(i, _)| i)
        })
        .collect();
    rows.sort_unstable();
    rows.dedup();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::psi::align;

    fn ids(range: std::ops::Range<i64>) -> Vec<Value> {
        range.map(Value::Int).collect()
    }

    #[test]
    fn no_false_negatives() {
        let a = ids(0..500);
        let mut f = BloomFilter::with_capacity(a.len(), 4, 77);
        for id in &a {
            f.insert(id);
        }
        assert!(a.iter().all(|id| f.contains(id)));
    }

    #[test]
    fn candidates_superset_of_true_intersection() {
        let a = ids(0..300);
        let b = ids(200..600);
        let mut f = BloomFilter::with_capacity(a.len(), 5, 3);
        for id in &a {
            f.insert(id);
        }
        let candidates = bloom_candidate_rows(&f, &b);
        let exact = align(&a, &b, 3);
        // Every exact-intersection row of B is among the candidates.
        for &rb in &exact.rows_b {
            assert!(candidates.contains(&rb), "missed true member row {rb}");
        }
        assert!(candidates.len() >= exact.len());
    }

    #[test]
    fn fpr_estimate_matches_measurement() {
        let a = ids(0..1000);
        // Deliberately undersized filter → measurable FPR.
        let mut f = BloomFilter::new(4096, 3, 11);
        for id in &a {
            f.insert(id);
        }
        let probes = ids(1_000_000..1_020_000);
        let fp = probes.iter().filter(|id| f.contains(id)).count() as f64 / probes.len() as f64;
        let est = f.estimated_fpr();
        assert!(
            (fp - est).abs() < 0.5 * est + 0.01,
            "measured {fp:.4} vs estimated {est:.4}"
        );
    }

    #[test]
    fn bigger_filter_means_fewer_false_positives() {
        let a = ids(0..1000);
        let mut small = BloomFilter::new(2048, 3, 5);
        let mut large = BloomFilter::new(32768, 3, 5);
        for id in &a {
            small.insert(id);
            large.insert(id);
        }
        assert!(large.estimated_fpr() < small.estimated_fpr() / 10.0);
        assert!(large.size_bytes() > small.size_bytes());
    }

    #[test]
    fn communication_is_independent_of_probe_count() {
        let f = BloomFilter::with_capacity(10_000, 4, 1);
        assert_eq!(f.size_bytes(), f.bits.len() * 8);
        // ~1.44·k·n/ln2... just sanity-bound the sizing heuristic.
        assert!(f.size_bytes() < 10_000 * 8);
    }

    #[test]
    fn windowed_candidates_are_deduplicated() {
        // Overlapping windows (stride < window): rows 4..8 of party A are
        // covered by both windows, so a matching row of B is accepted by
        // two filters. Regression: it must be reported exactly once.
        let a = ids(0..12);
        let filters = windowed_filters(&a, 8, 4, 4, 21);
        assert_eq!(filters.len(), 2);
        let b = ids(4..8); // entirely inside the overlap
        for id in &b {
            assert!(filters[0].contains(id) && filters[1].contains(id));
        }
        let candidates = bloom_candidate_rows_windowed(&filters, &b);
        assert_eq!(candidates, vec![0, 1, 2, 3], "each row exactly once");
    }

    #[test]
    fn windowed_crafted_collision_deduplicated() {
        // Deliberately tiny filters: nearly every probe is a false
        // positive in *every* window — the crafted-collision case. The
        // candidate list must still be duplicate-free and sorted.
        let a = ids(0..64);
        let mut filters = windowed_filters(&a, 16, 8, 1, 5);
        for f in &mut filters {
            // Saturate: now every probe collides in every window.
            for id in ids(0..512) {
                f.insert(&id);
            }
        }
        let probes = ids(1000..1040);
        let candidates = bloom_candidate_rows_windowed(&filters, &probes);
        let mut deduped = candidates.clone();
        deduped.dedup();
        assert_eq!(candidates, deduped, "duplicates in candidate rows");
        assert!(candidates.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(candidates, (0..probes.len()).collect::<Vec<_>>());
    }

    #[test]
    fn windowed_union_covers_true_intersection() {
        let a = ids(0..300);
        let b = ids(250..400);
        let filters = windowed_filters(&a, 64, 48, 4, 9);
        let candidates = bloom_candidate_rows_windowed(&filters, &b);
        let exact = align(&a, &b, 9);
        for &rb in &exact.rows_b {
            assert!(candidates.contains(&rb), "missed true member row {rb}");
        }
    }

    #[test]
    fn single_filter_path_unchanged() {
        let a = ids(0..100);
        let mut f = BloomFilter::with_capacity(a.len(), 4, 3);
        for id in &a {
            f.insert(id);
        }
        let b = ids(50..150);
        let single = bloom_candidate_rows(&f, &b);
        let windowed = bloom_candidate_rows_windowed(std::slice::from_ref(&f), &b);
        assert_eq!(single, windowed);
        assert!(single.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn degenerate_parameters_clamp() {
        let f = BloomFilter::new(0, 0, 9);
        assert_eq!(f.m_bits, 64);
        assert_eq!(f.k_hashes, 1);
        let mut f = f;
        f.insert(&Value::Int(1));
        assert!(f.contains(&Value::Int(1)));
    }
}
