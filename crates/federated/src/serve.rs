//! `mpriv serve`: a long-running daemon multiplexing many concurrent VFL
//! setup sessions over real sockets.
//!
//! ## Architecture
//!
//! The server is a pure **relay**: it never holds party data, never
//! decodes a metadata package, and takes no protocol decisions. Each
//! client connection speaks for exactly one party of one session; the
//! per-party state machine is the same engine the in-process harness
//! runs, so a completed socket session is *bit-identical* to the
//! same seeds through [`crate::PerfectTransport`] — the simulator is a
//! faithful test double for the daemon, and the sim invariant harness is
//! the oracle the soak tests check against.
//!
//! ```text
//! client party 0 ──frames──▶ ┌────────────────────────────┐
//!                            │  per-connection thread      │
//! client party 1 ──frames──▶ │  Hello → join session       │
//!                            │  Envelope → route to peer's │
//!      ...                   │    bounded queue            │
//! client party k ──frames──▶ │  drain own queue → socket   │
//!                            └────────────────────────────┘
//! ```
//!
//! **Backpressure.** Every session member owns a bounded outbound queue
//! ([`BoundedQueue`]); routing a frame into a full queue waits a bounded
//! number of io ticks and then aborts *that session* with
//! [`AbortReason::QueueOverflow`]. A stalled session can therefore never
//! stall another: connection threads only ever block on their own
//! socket (timeout-bounded) or on a peer queue (tick-bounded).
//!
//! **Time.** No wall clock reaches any decision in this module. Socket
//! read timeouts define the *io tick*; handshake, idle, backpressure and
//! drain budgets are all tick counts, derived from the protocol's
//! [`RetryConfig`] by [`ServeConfig::from_retry`]. (The tick's wall
//! duration is configuration, set by binaries; the library only counts.)
//!
//! **Aborts and shutdown.** Any failure — disconnect, spoofed sender,
//! queue overflow, idle timeout — aborts the one affected session: the
//! typed [`AbortReason`] jumps every member queue and each client maps it
//! onto a [`SetupError`]. [`Server::shutdown`] stops accepting, lets
//! in-flight sessions drain for a tick budget, then aborts stragglers
//! with [`AbortReason::ServerShutdown`] and joins every thread.

use crate::multiparty::{MultiAlignment, MultiSetupOutcome};
use crate::net::{AbortReason, FramedStream, ReadStep, SessionFrame, SocketStream};
use crate::party::Party;
use crate::protocol::{EngineMetrics, PartyEngine, RetryConfig, SetupError};
use crate::psi::{intersect_all, IdDigest};
use crate::transport::{Envelope, MsgId, PartyId, TraceEvent, Transport};
use mp_metadata::{MetadataPackage, SharePolicy};
use mp_observe::Recorder;
use mp_relation::{Relation, RelationError};
use std::collections::{BTreeMap, VecDeque};
use std::net::TcpListener;
#[cfg(unix)]
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Unpoisons a mutex guard: the daemon keeps serving other sessions even
/// if one connection thread panicked mid-lock.
fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Bounded queues
// ---------------------------------------------------------------------

/// A bounded MPSC queue with tick-bounded blocking push.
///
/// The unit of backpressure: one per session member, holding the frames
/// routed *to* that member. `cap` bounds memory per session; the depth
/// high-water mark is tracked for the backpressure regression tests.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    inner: Mutex<QueueInner<T>>,
    readable: Condvar,
    writable: Condvar,
    cap: usize,
}

#[derive(Debug)]
struct QueueInner<T> {
    items: VecDeque<T>,
    max_depth: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `cap` items.
    pub fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                max_depth: 0,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Pushes without blocking; `false` if the queue is full.
    pub fn try_push(&self, item: T) -> bool {
        let mut g = lock(&self.inner);
        if g.items.len() >= self.cap {
            return false;
        }
        g.items.push_back(item);
        g.max_depth = g.max_depth.max(g.items.len());
        self.readable.notify_one();
        true
    }

    /// Pushes, waiting up to `ticks` waits of `tick` each for space.
    /// `false` means the backpressure budget elapsed with the queue still
    /// full — the caller aborts the session.
    pub fn push_bounded(&self, item: T, tick: Duration, ticks: u64) -> bool {
        let mut g = lock(&self.inner);
        let mut waited = 0u64;
        while g.items.len() >= self.cap {
            if waited >= ticks {
                return false;
            }
            let (guard, timeout) = self
                .writable
                .wait_timeout(g, tick)
                .unwrap_or_else(PoisonError::into_inner);
            g = guard;
            if timeout.timed_out() {
                waited += 1;
            }
        }
        g.items.push_back(item);
        g.max_depth = g.max_depth.max(g.items.len());
        self.readable.notify_one();
        true
    }

    /// Clears the queue and pushes `item` alone: aborts must never queue
    /// behind the very backlog that caused them.
    pub fn jump_queue(&self, item: T) {
        let mut g = lock(&self.inner);
        g.items.clear();
        g.items.push_back(item);
        g.max_depth = g.max_depth.max(1);
        self.readable.notify_one();
        self.writable.notify_all();
    }

    /// Pops without blocking.
    pub fn pop(&self) -> Option<T> {
        let mut g = lock(&self.inner);
        let item = g.items.pop_front();
        if item.is_some() {
            self.writable.notify_one();
        }
        item
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        lock(&self.inner).items.len()
    }

    /// Highest depth ever observed.
    pub fn max_depth(&self) -> usize {
        lock(&self.inner).max_depth
    }

    /// The capacity bound.
    pub fn cap(&self) -> usize {
        self.cap
    }
}

// ---------------------------------------------------------------------
// Listener
// ---------------------------------------------------------------------

/// A bound listening socket: TCP or (on Unix) a Unix-domain socket.
#[derive(Debug)]
pub enum SocketListener {
    /// A TCP listener.
    Tcp(TcpListener),
    /// A Unix-domain listener, with its filesystem path (removed on
    /// shutdown).
    #[cfg(unix)]
    Unix(UnixListener, String),
}

impl SocketListener {
    /// Binds `addr`: `unix:<path>` for a Unix-domain socket, anything
    /// else as a TCP `host:port` (use port 0 for an ephemeral port).
    pub fn bind(addr: &str) -> std::io::Result<Self> {
        #[cfg(unix)]
        if let Some(path) = addr.strip_prefix("unix:") {
            // A stale socket file from a previous run would fail the bind.
            let _ = std::fs::remove_file(path);
            return Ok(SocketListener::Unix(
                UnixListener::bind(path)?,
                path.to_owned(),
            ));
        }
        Ok(SocketListener::Tcp(TcpListener::bind(addr)?))
    }

    /// The bound address in the form [`SocketStream::connect`] accepts.
    pub fn local_addr(&self) -> std::io::Result<String> {
        match self {
            SocketListener::Tcp(l) => Ok(l.local_addr()?.to_string()),
            #[cfg(unix)]
            SocketListener::Unix(_, path) => Ok(format!("unix:{path}")),
        }
    }

    /// Blocks until the next connection.
    pub fn accept(&self) -> std::io::Result<SocketStream> {
        match self {
            SocketListener::Tcp(l) => Ok(SocketStream::Tcp(l.accept()?.0)),
            #[cfg(unix)]
            SocketListener::Unix(l, _) => Ok(SocketStream::Unix(l.accept()?.0)),
        }
    }
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// Daemon configuration. All budgets are io-tick counts; the io tick's
/// wall duration is the read timeout binaries choose.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Most parties a session may declare.
    pub max_parties: usize,
    /// Per-member outbound queue capacity (the backpressure bound).
    pub queue_cap: usize,
    /// Wall duration of one io tick (socket read/condvar wait timeout).
    pub io_tick: Duration,
    /// Ticks a fresh connection gets to send its `Hello`.
    pub handshake_ticks: u64,
    /// Ticks an assembled session may sit with no frame in either
    /// direction before it is aborted.
    pub idle_ticks: u64,
    /// Ticks a routing push may wait on a full peer queue.
    pub push_ticks: u64,
    /// Ticks an in-flight session gets to finish after shutdown begins.
    pub drain_ticks: u64,
}

impl ServeConfig {
    /// Maps the protocol's retry policy onto connection supervision:
    /// the handshake and drain budgets are one full retransmission
    /// ladder (if a peer could still be retried, the server still
    /// waits), the backpressure budget is one backoff cap, and the idle
    /// budget is the protocol's own liveness bound — the server never
    /// gives up on a session the protocol would still consider live.
    pub fn from_retry(retry: &RetryConfig) -> Self {
        let ladder = retry.ladder_ticks();
        Self {
            max_parties: 8,
            queue_cap: 64,
            io_tick: Duration::from_millis(2),
            handshake_ticks: ladder,
            idle_ticks: retry.max_ticks,
            push_ticks: retry.backoff_cap.max(1),
            drain_ticks: ladder,
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self::from_retry(&RetryConfig::default())
    }
}

/// Server metric handles (all under the `serve.` prefix).
#[derive(Debug, Clone)]
struct ServeMetrics {
    sessions_started: mp_observe::Counter,
    sessions_completed: mp_observe::Counter,
    sessions_aborted: mp_observe::Counter,
    frames_in: mp_observe::Counter,
    frames_routed: mp_observe::Counter,
    spoof_rejected: mp_observe::Counter,
    connections: mp_observe::Gauge,
    queue_depth: mp_observe::Gauge,
}

impl ServeMetrics {
    fn new(recorder: &dyn Recorder) -> Self {
        Self {
            sessions_started: recorder.counter("serve.sessions_started"),
            sessions_completed: recorder.counter("serve.sessions_completed"),
            sessions_aborted: recorder.counter("serve.sessions_aborted"),
            frames_in: recorder.counter("serve.frames_in"),
            frames_routed: recorder.counter("serve.frames_routed"),
            spoof_rejected: recorder.counter("serve.spoof_rejected"),
            connections: recorder.gauge("serve.connections"),
            queue_depth: recorder.gauge("serve.queue_depth"),
        }
    }
}

/// Authoritative lifetime counters for [`ServeReport`].
///
/// These are server-owned so the report stays correct even under a
/// [`mp_observe::NoopRecorder`], whose counter handles discard writes;
/// every bump is mirrored into the matching `serve.*` metric handle.
#[derive(Debug, Default)]
struct ServeStats {
    sessions_started: AtomicU64,
    sessions_completed: AtomicU64,
    sessions_aborted: AtomicU64,
    frames_in: AtomicU64,
    frames_routed: AtomicU64,
    spoof_rejected: AtomicU64,
}

/// What happened to a session, for the final report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SessionPhase {
    /// Waiting for all members to join.
    Gathering,
    /// All members joined; protocol frames are being relayed.
    Running,
    /// Closed — completed or aborted.
    Closed,
}

/// One multiplexed session: membership, queues, completion state.
struct SessionState {
    n: usize,
    phase: SessionPhase,
    members: Vec<Option<Arc<BoundedQueue<SessionFrame>>>>,
    done: Vec<bool>,
    abort: Option<AbortReason>,
    live: usize,
}

impl SessionState {
    fn new(n: usize) -> Self {
        Self {
            n,
            phase: SessionPhase::Gathering,
            members: (0..n).map(|_| None).collect(),
            done: vec![false; n],
            abort: None,
            live: 0,
        }
    }
}

struct ServerShared {
    cfg: ServeConfig,
    sessions: Mutex<BTreeMap<u64, Arc<Mutex<SessionState>>>>,
    shutdown: AtomicBool,
    ticks: AtomicU64,
    max_queue_depth: AtomicU64,
    stats: ServeStats,
    metrics: ServeMetrics,
    recorder: Arc<dyn Recorder>,
}

impl ServerShared {
    fn count_session_started(&self) {
        self.stats.sessions_started.fetch_add(1, Ordering::Relaxed);
        self.metrics.sessions_started.inc();
    }

    fn count_session_completed(&self) {
        self.stats
            .sessions_completed
            .fetch_add(1, Ordering::Relaxed);
        self.metrics.sessions_completed.inc();
    }

    fn count_frame_in(&self) {
        self.stats.frames_in.fetch_add(1, Ordering::Relaxed);
        self.metrics.frames_in.inc();
    }

    fn count_frame_routed(&self) {
        self.stats.frames_routed.fetch_add(1, Ordering::Relaxed);
        self.metrics.frames_routed.inc();
    }

    fn count_spoof_rejected(&self) {
        self.stats.spoof_rejected.fetch_add(1, Ordering::Relaxed);
        self.metrics.spoof_rejected.inc();
    }

    /// One io tick elapsed somewhere: advance the logical clock the
    /// recorder's spans are measured in.
    fn note_tick(&self) {
        let t = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        self.recorder.set_time(t);
    }

    fn note_depth(&self, depth: usize) {
        let d = depth as u64;
        self.metrics.queue_depth.set(d);
        self.max_queue_depth.fetch_max(d, Ordering::Relaxed);
    }

    /// Aborts a session: marks it closed and jumps every member queue
    /// with the typed reason (idempotent — the first reason wins).
    fn abort_session(&self, session: &Mutex<SessionState>, reason: AbortReason) {
        let mut s = lock(session);
        if s.phase == SessionPhase::Closed {
            return;
        }
        s.phase = SessionPhase::Closed;
        s.abort = Some(reason.clone());
        self.stats.sessions_aborted.fetch_add(1, Ordering::Relaxed);
        self.metrics.sessions_aborted.inc();
        for q in s.members.iter().flatten() {
            q.jump_queue(SessionFrame::Abort(reason.clone()));
        }
    }
}

/// Summary of a server's lifetime, returned by [`Server::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeReport {
    /// Sessions that assembled all their members.
    pub sessions_started: u64,
    /// Sessions that completed cleanly (every member reported done).
    pub sessions_completed: u64,
    /// Sessions torn down with a typed abort.
    pub sessions_aborted: u64,
    /// Frames received from clients.
    pub frames_in: u64,
    /// Envelope frames routed between members.
    pub frames_routed: u64,
    /// Envelopes rejected for claiming another member's identity.
    pub spoof_rejected: u64,
    /// Highest per-member queue depth ever observed.
    pub max_queue_depth: u64,
}

/// A running `mpriv serve` daemon.
///
/// Created by [`Server::start`]; owns the acceptor thread and every
/// connection thread. Call [`Server::shutdown`] for a graceful stop
/// (drains in-flight sessions, then aborts stragglers) and the final
/// [`ServeReport`].
pub struct Server {
    shared: Arc<ServerShared>,
    addr: String,
    acceptor: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    #[cfg(unix)]
    unix_path: Option<String>,
}

impl Server {
    /// Binds `addr` and starts accepting connections.
    pub fn start(
        addr: &str,
        cfg: ServeConfig,
        recorder: Arc<dyn Recorder>,
    ) -> std::io::Result<Server> {
        let listener = SocketListener::bind(addr)?;
        let local = listener.local_addr()?;
        #[cfg(unix)]
        let unix_path = match &listener {
            SocketListener::Unix(_, path) => Some(path.clone()),
            _ => None,
        };
        let shared = Arc::new(ServerShared {
            cfg,
            sessions: Mutex::new(BTreeMap::new()),
            shutdown: AtomicBool::new(false),
            ticks: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            stats: ServeStats::default(),
            metrics: ServeMetrics::new(recorder.as_ref()),
            recorder,
        });
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || {
                while !shared.shutdown.load(Ordering::SeqCst) {
                    let Ok(stream) = listener.accept() else {
                        continue;
                    };
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let shared = Arc::clone(&shared);
                    let handle = std::thread::spawn(move || handle_connection(stream, shared));
                    lock(&conns).push(handle);
                }
            })
        };
        Ok(Server {
            shared,
            addr: local,
            acceptor: Some(acceptor),
            conns,
            #[cfg(unix)]
            unix_path,
        })
    }

    /// The bound address, in the form [`SocketStream::connect`] accepts.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Highest per-member queue depth observed so far.
    pub fn max_queue_depth(&self) -> u64 {
        self.shared.max_queue_depth.load(Ordering::Relaxed)
    }

    /// Graceful stop: stop accepting, give in-flight sessions the drain
    /// budget, abort stragglers with [`AbortReason::ServerShutdown`],
    /// join every thread and report.
    pub fn shutdown(mut self) -> ServeReport {
        self.stop_threads();
        let s = &self.shared.stats;
        ServeReport {
            sessions_started: s.sessions_started.load(Ordering::Relaxed),
            sessions_completed: s.sessions_completed.load(Ordering::Relaxed),
            sessions_aborted: s.sessions_aborted.load(Ordering::Relaxed),
            frames_in: s.frames_in.load(Ordering::Relaxed),
            frames_routed: s.frames_routed.load(Ordering::Relaxed),
            spoof_rejected: s.spoof_rejected.load(Ordering::Relaxed),
            max_queue_depth: self.shared.max_queue_depth.load(Ordering::Relaxed),
        }
    }

    fn stop_threads(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept.
        let _ = SocketStream::connect(&self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Connection threads observe the flag, drain, then exit.
        let handles: Vec<_> = lock(&self.conns).drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
        #[cfg(unix)]
        if let Some(path) = self.unix_path.take() {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop_threads();
        }
    }
}

/// Tears the connection down with a typed abort, best-effort.
fn refuse(framed: &mut FramedStream, reason: AbortReason) {
    let _ = framed.write_frame(&SessionFrame::Abort(reason));
    let _ = framed.socket().shutdown();
}

/// The per-connection relay loop: handshake, join, route until closed.
fn handle_connection(stream: SocketStream, shared: Arc<ServerShared>) {
    let _ = stream.set_read_timeout(Some(shared.cfg.io_tick));
    // A stalled reader can block our writes for at most the push budget.
    let write_cap = shared
        .cfg
        .io_tick
        .saturating_mul(shared.cfg.push_ticks.min(u64::from(u32::MAX)) as u32);
    let _ = stream.set_write_timeout(Some(write_cap.max(shared.cfg.io_tick)));
    let mut framed = FramedStream::new(stream);

    let conn_span = shared.recorder.span("serve.connection");
    let _conn_guard = conn_span.enter();
    shared
        .metrics
        .connections
        .set(shared.metrics.connections.get().saturating_add(1));

    let outcome = connection_loop(&mut framed, &shared);
    if let Some(reason) = outcome {
        refuse(&mut framed, reason);
    } else {
        let _ = framed.socket().shutdown();
    }
    shared
        .metrics
        .connections
        .set(shared.metrics.connections.get().saturating_sub(1));
}

/// Runs the handshake and relay loop. Returns `Some(reason)` when the
/// *connection itself* must be refused with an abort frame the session
/// teardown did not already queue, `None` on a clean exit.
fn connection_loop(framed: &mut FramedStream, shared: &ServerShared) -> Option<AbortReason> {
    // -- Handshake: one Hello within the handshake budget. ------------
    let mut ticks = 0u64;
    let (session_id, party, n_parties) = loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Some(AbortReason::ServerShutdown);
        }
        match framed.read_step() {
            Ok(ReadStep::Frame(SessionFrame::Hello {
                session,
                party,
                n_parties,
            })) => {
                shared.count_frame_in();
                break (session, party, n_parties);
            }
            Ok(ReadStep::Frame(other)) => {
                return Some(AbortReason::Protocol(format!(
                    "expected hello, got {}",
                    other.kind()
                )));
            }
            Ok(ReadStep::Tick) => {
                shared.note_tick();
                ticks += 1;
                if ticks >= shared.cfg.handshake_ticks {
                    return Some(AbortReason::HandshakeTimeout);
                }
            }
            Ok(ReadStep::Eof) => return None,
            Err(e) => return Some(AbortReason::Protocol(e.to_string())),
        }
    };
    let n = n_parties as usize;
    if n < 2 || n > shared.cfg.max_parties {
        return Some(AbortReason::Protocol(format!(
            "session size {n} outside 2..={}",
            shared.cfg.max_parties
        )));
    }
    if party >= n_parties {
        return Some(AbortReason::Protocol(format!(
            "party {party} outside session of {n}"
        )));
    }
    let party_ix = party as usize;

    // -- Join the session registry. ------------------------------------
    let my_queue = Arc::new(BoundedQueue::new(shared.cfg.queue_cap));
    let session = {
        let mut sessions = lock(&shared.sessions);
        let session = Arc::clone(
            sessions
                .entry(session_id)
                .or_insert_with(|| Arc::new(Mutex::new(SessionState::new(n)))),
        );
        let mut s = lock(&session);
        if s.n != n {
            return Some(AbortReason::Protocol(format!(
                "session size mismatch: declared {n}, session has {}",
                s.n
            )));
        }
        if s.phase != SessionPhase::Gathering {
            return Some(AbortReason::Protocol("session already running".to_owned()));
        }
        let Some(slot) = s.members.get_mut(party_ix) else {
            return Some(AbortReason::Protocol("party slot out of range".to_owned()));
        };
        if slot.is_some() {
            return Some(AbortReason::Protocol(format!(
                "party {party} already joined"
            )));
        }
        *slot = Some(Arc::clone(&my_queue));
        s.live += 1;
        if s.live == s.n {
            s.phase = SessionPhase::Running;
            shared.count_session_started();
            for (q_ix, q) in s.members.iter().enumerate() {
                if let Some(q) = q {
                    q.jump_queue(SessionFrame::Welcome {
                        session: session_id,
                        party: q_ix as u64,
                        n_parties,
                    });
                }
            }
        }
        drop(s);
        session
    };

    // -- Relay loop. ----------------------------------------------------
    let mut idle = 0u64;
    let mut shutdown_ticks = 0u64;
    let mut clean_exit = false;
    loop {
        let mut progressed = false;

        // Drain own outbound queue to the socket.
        while let Some(frame) = my_queue.pop() {
            progressed = true;
            let terminal = matches!(frame, SessionFrame::Complete | SessionFrame::Abort(_));
            if framed.write_frame(&frame).is_err() {
                shared.abort_session(&session, AbortReason::PeerDisconnected { party });
                break;
            }
            if terminal {
                clean_exit = true;
                break;
            }
        }
        if clean_exit {
            break;
        }

        // One read step from our client.
        match framed.read_step() {
            Ok(ReadStep::Frame(frame)) => {
                progressed = true;
                shared.count_frame_in();
                match frame {
                    SessionFrame::Envelope(env) => {
                        if env.from as u64 != party {
                            shared.count_spoof_rejected();
                            shared.abort_session(
                                &session,
                                AbortReason::Spoofed {
                                    claimed: env.from as u64,
                                },
                            );
                            continue;
                        }
                        let target = {
                            let s = lock(&session);
                            if s.phase != SessionPhase::Running {
                                None
                            } else {
                                s.members
                                    .get(env.to)
                                    .and_then(Option::as_ref)
                                    .map(Arc::clone)
                            }
                        };
                        let Some(target) = target else {
                            // Closed session or unknown recipient: the
                            // teardown frames are already on our queue.
                            continue;
                        };
                        let to = env.to as u64;
                        let ok = target.push_bounded(
                            SessionFrame::Envelope(env),
                            shared.cfg.io_tick,
                            shared.cfg.push_ticks,
                        );
                        shared.note_depth(target.depth());
                        if ok {
                            shared.count_frame_routed();
                        } else {
                            shared
                                .abort_session(&session, AbortReason::QueueOverflow { party: to });
                        }
                    }
                    SessionFrame::Done { party: done_party } => {
                        if done_party != party {
                            shared.abort_session(
                                &session,
                                AbortReason::Spoofed {
                                    claimed: done_party,
                                },
                            );
                            continue;
                        }
                        let mut s = lock(&session);
                        if let Some(flag) = s.done.get_mut(party_ix) {
                            *flag = true;
                        }
                        if s.phase == SessionPhase::Running && s.done.iter().all(|&d| d) {
                            s.phase = SessionPhase::Closed;
                            shared.count_session_completed();
                            for q in s.members.iter().flatten() {
                                // Completion may not skip queued acks, so
                                // it takes the normal (bounded) path; on
                                // overflow the abort jumps the queue.
                                if !q.try_push(SessionFrame::Complete) {
                                    q.jump_queue(SessionFrame::Complete);
                                }
                            }
                        }
                    }
                    SessionFrame::Abort(reason) => {
                        shared.abort_session(&session, reason);
                    }
                    SessionFrame::Hello { .. }
                    | SessionFrame::Welcome { .. }
                    | SessionFrame::Complete => {
                        shared.abort_session(
                            &session,
                            AbortReason::Protocol(format!(
                                "unexpected {} frame mid-session",
                                frame.kind()
                            )),
                        );
                    }
                }
            }
            Ok(ReadStep::Tick) => {
                shared.note_tick();
            }
            Ok(ReadStep::Eof) => {
                // Disconnect before Complete/Abort reached us: if the
                // session is still live this is a mid-session crash.
                let live = lock(&session).phase != SessionPhase::Closed;
                if live {
                    shared.abort_session(&session, AbortReason::PeerDisconnected { party });
                }
                break;
            }
            Err(e) => {
                shared.abort_session(&session, AbortReason::Protocol(e.to_string()));
            }
        }

        if progressed {
            idle = 0;
        } else {
            idle += 1;
            if idle >= shared.cfg.idle_ticks {
                shared.abort_session(&session, AbortReason::IdleTimeout);
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            shutdown_ticks += 1;
            if shutdown_ticks > shared.cfg.drain_ticks {
                shared.abort_session(&session, AbortReason::ServerShutdown);
            }
        }
    }

    // -- Leave: drop membership; forget fully-vacated sessions. --------
    {
        let mut s = lock(&session);
        if let Some(slot) = s.members.get_mut(party_ix) {
            *slot = None;
        }
        s.live = s.live.saturating_sub(1);
        if s.live == 0 {
            drop(s);
            // lint: allow(lock-order) reason="the session guard is dropped on the line above, so the registry lock is never nested inside it"
            lock(&shared.sessions).remove(&session_id);
        }
    }
    None
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// Client-side configuration for one socket session.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Session to join (agreed out of band, like the PSI salt).
    pub session: u64,
    /// The party index this client speaks for.
    pub party: PartyId,
    /// Total parties in the session.
    pub n_parties: usize,
    /// Wall duration of one io tick (the read timeout; the client's
    /// logical clock advances once per tick).
    pub io_tick: Duration,
    /// Ticks to wait for the server's `Welcome`.
    pub handshake_ticks: u64,
    /// The protocol retry policy (retransmissions count io ticks).
    pub retry: RetryConfig,
}

impl ClientConfig {
    /// A client for `party` of `n_parties` in `session`, with timeouts
    /// derived from `retry` exactly like [`ServeConfig::from_retry`].
    pub fn new(session: u64, party: PartyId, n_parties: usize, retry: RetryConfig) -> Self {
        Self {
            session,
            party,
            n_parties,
            io_tick: Duration::from_millis(2),
            handshake_ticks: retry.ladder_ticks().saturating_mul(4),
            retry,
        }
    }
}

/// Terminal session states a [`SocketTransport`] can observe.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
enum ClientState {
    /// Frames are flowing.
    #[default]
    Running,
    /// The server reported every party done.
    Complete,
    /// The server aborted the session.
    Aborted(AbortReason),
    /// The connection died underneath us.
    Disconnected,
}

/// A [`Transport`] carrying one party's envelopes over a socket.
///
/// [`Transport::tick`] performs one timeout-bounded read pass — the read
/// timeout *is* the logical tick, so retransmission timers count io
/// ticks and no wall-clock value ever reaches a protocol decision.
pub struct SocketTransport {
    framed: FramedStream,
    party: PartyId,
    n: usize,
    now: u64,
    inbox: VecDeque<Envelope>,
    trace: Vec<TraceEvent>,
    state: ClientState,
    crashed: Vec<bool>,
}

impl SocketTransport {
    fn new(framed: FramedStream, party: PartyId, n: usize) -> Self {
        Self {
            framed,
            party,
            n,
            now: 0,
            inbox: VecDeque::new(),
            trace: Vec::new(),
            state: ClientState::Running,
            crashed: vec![false; n],
        }
    }

    /// Drains every frame the socket has ready, then returns. Terminal
    /// frames flip [`ClientState`]; envelopes land in the inbox.
    fn pump_socket(&mut self) {
        loop {
            match self.framed.read_step() {
                Ok(ReadStep::Frame(SessionFrame::Envelope(env))) => {
                    self.trace.push(TraceEvent::Delivered {
                        at: self.now,
                        env: env.clone(),
                    });
                    self.inbox.push_back(env);
                }
                Ok(ReadStep::Frame(SessionFrame::Complete)) => {
                    self.state = ClientState::Complete;
                    return;
                }
                Ok(ReadStep::Frame(SessionFrame::Abort(reason))) => {
                    if let AbortReason::PeerDisconnected { party } = &reason {
                        if let Some(flag) = self.crashed.get_mut(*party as usize) {
                            *flag = true;
                        }
                        self.trace.push(TraceEvent::Crashed {
                            at: self.now,
                            party: *party as usize,
                        });
                    }
                    self.state = ClientState::Aborted(reason);
                    return;
                }
                Ok(ReadStep::Frame(_)) => {
                    // Welcome/Hello/Done mid-run: relay noise; ignore.
                }
                Ok(ReadStep::Tick) => return,
                Ok(ReadStep::Eof) => {
                    self.state = ClientState::Disconnected;
                    return;
                }
                Err(_) => {
                    self.state = ClientState::Disconnected;
                    return;
                }
            }
        }
    }
}

impl Transport for SocketTransport {
    fn n_parties(&self) -> usize {
        self.n
    }

    fn send(&mut self, env: Envelope, attempt: u32) {
        self.trace.push(TraceEvent::Sent {
            at: self.now,
            env: env.clone(),
            attempt,
        });
        if self
            .framed
            .write_frame(&SessionFrame::Envelope(env))
            .is_err()
        {
            self.state = ClientState::Disconnected;
        }
    }

    fn tick(&mut self) {
        self.now += 1;
        if self.state == ClientState::Running {
            self.pump_socket();
        }
    }

    fn recv(&mut self, party: PartyId) -> Option<Envelope> {
        if party == self.party {
            self.inbox.pop_front()
        } else {
            None
        }
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn in_flight(&self) -> usize {
        self.inbox.len()
    }

    fn is_crashed(&self, party: PartyId) -> bool {
        self.crashed.get(party).copied().unwrap_or(false)
    }

    fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }
}

/// One party's view of a completed socket session.
///
/// Comparable against a [`MultiSetupOutcome`] from the same seeds over
/// [`crate::PerfectTransport`] via [`outcome_matches`] — the byte-
/// identity oracle of the serve soak harness.
#[derive(Debug, Clone, PartialEq)]
pub struct PartyOutcome {
    /// The k-way alignment (identical at every party by construction).
    pub alignment: MultiAlignment,
    /// This party's aligned rows (feature columns only).
    pub aligned_self: Relation,
    /// Every party's metadata as received (own package included).
    pub metadata: Vec<MetadataPackage>,
}

/// `true` when a socket party's outcome is bit-identical to the
/// reference in-process outcome for the same seeds.
pub fn outcome_matches(mine: &PartyOutcome, party: PartyId, reference: &MultiSetupOutcome) -> bool {
    mine.alignment == reference.alignment
        && reference.aligned.get(party) == Some(&mine.aligned_self)
        && mine.metadata == reference.metadata
}

fn abort_error(reason: &AbortReason, at: u64) -> SetupError {
    match reason {
        AbortReason::PeerDisconnected { party } => SetupError::PartyCrashed {
            party: *party as usize,
        },
        AbortReason::HandshakeTimeout | AbortReason::IdleTimeout => SetupError::Stalled { at },
        other => SetupError::Data(RelationError::Io(format!("session aborted: {other}"))),
    }
}

fn disconnect_error(party: PartyId) -> SetupError {
    SetupError::Data(RelationError::Io(format!(
        "party {party}: connection to server lost"
    )))
}

/// Runs one party of one session against an `mpriv serve` daemon at
/// `addr`, driving the same per-party engine the in-process harness
/// runs ([`crate::run_setup_protocol`]).
///
/// Completes with this party's [`PartyOutcome`] (bit-identical to the
/// same seeds over [`crate::PerfectTransport`]) or fails closed with a
/// typed [`SetupError`] mapped from the session's abort reason.
pub fn run_client_session(
    addr: &str,
    cfg: &ClientConfig,
    party: &Party,
    policy: &SharePolicy,
    salt: u64,
    recorder: &dyn Recorder,
) -> std::result::Result<PartyOutcome, SetupError> {
    let digests = party.psi_submission(salt)?;
    let package = party.share_metadata(policy)?;

    let p = cfg.party;
    let n = cfg.n_parties;
    let stream = SocketStream::connect(addr)
        .map_err(|e| SetupError::Data(RelationError::Io(format!("connect {addr}: {e}"))))?;
    let _ = stream.set_read_timeout(Some(cfg.io_tick));
    let _ = stream.set_write_timeout(Some(cfg.io_tick.saturating_mul(512)));
    let mut framed = FramedStream::new(stream);

    // -- Handshake: Hello, then wait for Welcome. ----------------------
    framed
        .write_frame(&SessionFrame::Hello {
            session: cfg.session,
            party: p as u64,
            n_parties: n as u64,
        })
        .map_err(|_| disconnect_error(p))?;
    let mut waited = 0u64;
    loop {
        match framed.read_step() {
            Ok(ReadStep::Frame(SessionFrame::Welcome {
                session,
                party: confirmed,
                n_parties,
            })) => {
                if session != cfg.session || confirmed != p as u64 || n_parties != n as u64 {
                    return Err(SetupError::Data(RelationError::Io(
                        "server welcomed a different membership".to_owned(),
                    )));
                }
                break;
            }
            Ok(ReadStep::Frame(SessionFrame::Abort(reason))) => {
                return Err(abort_error(&reason, 0));
            }
            Ok(ReadStep::Frame(other)) => {
                return Err(SetupError::Data(RelationError::Io(format!(
                    "expected welcome, got {}",
                    other.kind()
                ))));
            }
            Ok(ReadStep::Tick) => {
                waited += 1;
                if waited >= cfg.handshake_ticks {
                    return Err(SetupError::Stalled { at: 0 });
                }
            }
            Ok(ReadStep::Eof) | Err(_) => return Err(disconnect_error(p)),
        }
    }

    // -- Run the engine over the socket transport. ---------------------
    let mut transport = SocketTransport::new(framed, p, n);
    let mut engine = PartyEngine::new(p, n, digests, package);
    let metrics = EngineMetrics::new(p, recorder);
    let span = recorder.span("protocol.setup");
    let _guard = span.enter();

    // Party-strided message ids: party p draws p+1, p+1+n, p+1+2n, ...
    // — session-unique without coordination, so receiver-side MsgId
    // dedup works exactly as in the shared-counter in-process harness.
    let mut drawn = 0u64;
    let mut fresh_id = move || {
        let id = (p as u64) + 1 + drawn * (n as u64);
        drawn += 1;
        MsgId(id)
    };

    let mut done_sent = false;
    loop {
        engine.pump(&mut transport, &cfg.retry, &mut fresh_id, &metrics)?;
        match &transport.state {
            ClientState::Complete => break,
            ClientState::Aborted(reason) => {
                return Err(abort_error(reason, transport.now));
            }
            ClientState::Disconnected => return Err(disconnect_error(p)),
            ClientState::Running => {}
        }
        if engine.done() && !done_sent {
            done_sent = true;
            if transport
                .framed
                .write_frame(&SessionFrame::Done { party: p as u64 })
                .is_err()
            {
                return Err(disconnect_error(p));
            }
        }
        if transport.now() >= cfg.retry.max_ticks {
            return Err(SetupError::Stalled {
                at: transport.now(),
            });
        }
        transport.tick();
        recorder.set_time(transport.now());
    }

    // -- Assemble this party's outcome from *received* state. ----------
    let stalled = SetupError::Stalled {
        at: transport.now(),
    };
    let views: Vec<&[IdDigest]> = engine.digest_views().ok_or(stalled.clone())?;
    let alignment = MultiAlignment {
        rows: intersect_all(&views),
    };
    let own_rows = alignment.rows.get(p).ok_or(stalled.clone())?;
    let aligned_self = party
        .aligned_rows(own_rows)?
        .project(&party.feature_columns())?;
    let mut metadata = Vec::with_capacity(n);
    for q in 0..n {
        metadata.push(engine.metadata_from(q).cloned().ok_or(stalled.clone())?);
    }
    let _ = transport.framed.socket().shutdown();
    Ok(PartyOutcome {
        alignment,
        aligned_self,
        metadata,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_caps_and_tracks_depth() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1));
        assert!(q.try_push(2));
        assert!(!q.try_push(3), "cap enforced");
        assert_eq!(q.depth(), 2);
        assert_eq!(q.max_depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3));
        assert_eq!(q.max_depth(), 2, "high-water mark sticks");
        assert_eq!(q.cap(), 2);
    }

    #[test]
    fn bounded_push_times_out_on_full_queue() {
        let q = BoundedQueue::new(1);
        assert!(q.try_push(1));
        // Tiny tick, two attempts: must give up, not block forever.
        assert!(!q.push_bounded(2, Duration::from_millis(1), 2));
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn jump_queue_clears_backlog() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1));
        assert!(q.try_push(2));
        q.jump_queue(9);
        assert_eq!(q.pop(), Some(9));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn serve_config_maps_retry_budgets() {
        let retry = RetryConfig::default();
        let cfg = ServeConfig::from_retry(&retry);
        assert_eq!(cfg.handshake_ticks, retry.ladder_ticks());
        assert_eq!(cfg.idle_ticks, retry.max_ticks);
        assert_eq!(cfg.push_ticks, retry.backoff_cap);
        assert!(cfg.queue_cap > 0);
    }

    #[test]
    fn abort_reasons_map_to_typed_errors() {
        assert_eq!(
            abort_error(&AbortReason::PeerDisconnected { party: 1 }, 5),
            SetupError::PartyCrashed { party: 1 }
        );
        assert_eq!(
            abort_error(&AbortReason::IdleTimeout, 5),
            SetupError::Stalled { at: 5 }
        );
        assert!(matches!(
            abort_error(&AbortReason::ServerShutdown, 5),
            SetupError::Data(_)
        ));
    }
}
