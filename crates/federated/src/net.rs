//! Socket-level framing for `mpriv serve`: length-prefixed session
//! frames over TCP or Unix-domain stream sockets.
//!
//! The daemon ([`crate::serve`]) multiplexes many concurrent setup
//! sessions; each client connection carries exactly one party of one
//! session. Everything on the wire is a [`SessionFrame`]:
//!
//! ```text
//! [len: u32 LE] [kind: u8] [body: len-1 bytes]
//! ```
//!
//! `len` counts the kind byte plus the body, so a well-formed frame is
//! never zero-length; `len` is validated against [`MAX_FRAME_BYTES`]
//! *before* any allocation. Protocol [`Envelope`]s travel opaquely as
//! `Envelope` frame bodies in their existing wire encoding — the framing
//! layer adds session management (join, ready, completion, typed abort)
//! without touching the protocol encoding the simulator already audits.
//!
//! The decoder comes in two shapes with one implementation:
//! [`FrameBuffer`] consumes a byte stream incrementally (partial frames
//! wait for more bytes — the shape the server and client use), and
//! [`decode_stream`] decodes a complete byte string strictly (partial
//! tails are typed errors — the shape the `frame` fuzz target drives).
//! Both are total: every input yields frames or a typed [`FrameError`],
//! never a panic, and accepted streams re-encode bit-identically
//! ([`encode_stream`]).

use crate::transport::{Envelope, WireError, MAX_ENVELOPE_BYTES};
use std::io::{Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// Hard cap on one session frame's declared length (kind byte + body).
///
/// Slightly above [`MAX_ENVELOPE_BYTES`] so the largest legal envelope
/// still fits in one frame; anything larger is rejected from the 4-byte
/// prefix alone, before the body is read or buffered.
pub const MAX_FRAME_BYTES: u32 = (MAX_ENVELOPE_BYTES + 16) as u32;

const KIND_HELLO: u8 = 1;
const KIND_WELCOME: u8 = 2;
const KIND_ENVELOPE: u8 = 3;
const KIND_DONE: u8 = 4;
const KIND_COMPLETE: u8 = 5;
const KIND_ABORT: u8 = 6;

const ABORT_PEER_DISCONNECTED: u8 = 1;
const ABORT_HANDSHAKE_TIMEOUT: u8 = 2;
const ABORT_IDLE_TIMEOUT: u8 = 3;
const ABORT_QUEUE_OVERFLOW: u8 = 4;
const ABORT_SPOOFED: u8 = 5;
const ABORT_SERVER_SHUTDOWN: u8 = 6;
const ABORT_PROTOCOL: u8 = 7;

/// Why a session was aborted, carried in [`SessionFrame::Abort`].
///
/// The client maps these onto [`crate::SetupError`]: a peer disconnect
/// becomes `PartyCrashed`, everything else a typed data error — setup
/// over a socket fails closed exactly like setup over the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbortReason {
    /// A member connection dropped before its party finished.
    PeerDisconnected {
        /// The party whose connection died.
        party: u64,
    },
    /// The connection produced no `Hello` within the handshake budget.
    HandshakeTimeout,
    /// An assembled session made no progress within the idle budget.
    IdleTimeout,
    /// A member's outbound queue stayed full past the backpressure
    /// budget (a stalled reader on the other end).
    QueueOverflow {
        /// The party whose queue overflowed.
        party: u64,
    },
    /// A member sent an envelope claiming someone else's identity.
    Spoofed {
        /// The `from` the envelope claimed.
        claimed: u64,
    },
    /// The server is shutting down and the drain budget elapsed.
    ServerShutdown,
    /// Any other protocol violation, with a human-readable detail.
    Protocol(String),
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbortReason::PeerDisconnected { party } => {
                write!(f, "party {party} disconnected")
            }
            AbortReason::HandshakeTimeout => write!(f, "handshake timed out"),
            AbortReason::IdleTimeout => write!(f, "session idle timeout"),
            AbortReason::QueueOverflow { party } => {
                write!(f, "party {party}'s outbound queue overflowed")
            }
            AbortReason::Spoofed { claimed } => {
                write!(f, "envelope spoofed sender identity {claimed}")
            }
            AbortReason::ServerShutdown => write!(f, "server shutting down"),
            AbortReason::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

/// One frame of the session layer.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionFrame {
    /// Client → server: join `session` as `party` of `n_parties`.
    Hello {
        /// Session the connection wants to join.
        session: u64,
        /// The party index this connection speaks for.
        party: u64,
        /// Expected session size; every member must agree.
        n_parties: u64,
    },
    /// Server → client: the session is fully assembled — run the setup
    /// protocol. Echoes the membership so the client can sanity-check.
    Welcome {
        /// The session joined.
        session: u64,
        /// The party index confirmed for this connection.
        party: u64,
        /// The agreed session size.
        n_parties: u64,
    },
    /// A protocol [`Envelope`] in its existing wire encoding, relayed
    /// verbatim between members.
    Envelope(Envelope),
    /// Client → server: this party's state machine reports done.
    Done {
        /// The party that finished.
        party: u64,
    },
    /// Server → client: every member reported done; the session closed
    /// cleanly.
    Complete,
    /// Either direction: the session is dead, with the typed reason.
    Abort(AbortReason),
}

impl SessionFrame {
    /// Short label for traces and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            SessionFrame::Hello { .. } => "hello",
            SessionFrame::Welcome { .. } => "welcome",
            SessionFrame::Envelope(_) => "envelope",
            SessionFrame::Done { .. } => "done",
            SessionFrame::Complete => "complete",
            SessionFrame::Abort(_) => "abort",
        }
    }
}

/// Errors decoding session frames from untrusted bytes.
///
/// Every malformed input maps to exactly one variant; the decoder never
/// panics and never allocates based on an unvalidated length — the
/// `frame` fuzz target enforces both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A length prefix of zero: no frame is empty (the kind byte alone
    /// is one byte).
    ZeroLength {
        /// Byte offset of the offending prefix.
        offset: usize,
    },
    /// A declared length above [`MAX_FRAME_BYTES`], rejected before the
    /// body is read.
    TooLarge {
        /// Length the prefix claimed.
        claimed: u32,
        /// The cap ([`MAX_FRAME_BYTES`]).
        cap: u32,
    },
    /// The input ended mid-prefix or mid-body (strict decoding only;
    /// the incremental [`FrameBuffer`] waits instead).
    Truncated {
        /// Byte offset where reading stopped.
        offset: usize,
        /// Bytes still required.
        needed: usize,
    },
    /// The kind byte names no known frame kind.
    BadKind {
        /// Kind byte found.
        kind: u8,
    },
    /// A frame body does not match its kind's layout (wrong size,
    /// unknown abort code, embedded length overrun).
    BadBody {
        /// The frame kind whose body is malformed.
        kind: u8,
        /// What was wrong.
        detail: &'static str,
    },
    /// An embedded abort detail string was not valid UTF-8.
    BadUtf8,
    /// An embedded protocol envelope failed to decode.
    Envelope(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::ZeroLength { offset } => {
                write!(f, "zero-length frame at byte {offset}")
            }
            FrameError::TooLarge { claimed, cap } => {
                write!(f, "frame claims {claimed} bytes (cap {cap})")
            }
            FrameError::Truncated { offset, needed } => {
                write!(f, "truncated frame at byte {offset} ({needed} more needed)")
            }
            FrameError::BadKind { kind } => write!(f, "unknown frame kind {kind}"),
            FrameError::BadBody { kind, detail } => {
                write!(f, "malformed body for frame kind {kind}: {detail}")
            }
            FrameError::BadUtf8 => write!(f, "abort detail is not valid UTF-8"),
            FrameError::Envelope(e) => write!(f, "embedded envelope: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Envelope(e)
    }
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn read_u64(body: &[u8], at: usize) -> Option<u64> {
    let chunk = body.get(at..at.checked_add(8)?)?;
    let mut buf = [0u8; 8];
    buf.copy_from_slice(chunk);
    Some(u64::from_le_bytes(buf))
}

/// Serialises one frame to its wire form (length prefix included).
pub fn encode_frame(frame: &SessionFrame) -> Vec<u8> {
    let mut body = Vec::new();
    let kind = match frame {
        SessionFrame::Hello {
            session,
            party,
            n_parties,
        } => {
            push_u64(&mut body, *session);
            push_u64(&mut body, *party);
            push_u64(&mut body, *n_parties);
            KIND_HELLO
        }
        SessionFrame::Welcome {
            session,
            party,
            n_parties,
        } => {
            push_u64(&mut body, *session);
            push_u64(&mut body, *party);
            push_u64(&mut body, *n_parties);
            KIND_WELCOME
        }
        SessionFrame::Envelope(env) => {
            body = env.encode();
            KIND_ENVELOPE
        }
        SessionFrame::Done { party } => {
            push_u64(&mut body, *party);
            KIND_DONE
        }
        SessionFrame::Complete => KIND_COMPLETE,
        SessionFrame::Abort(reason) => {
            match reason {
                AbortReason::PeerDisconnected { party } => {
                    body.push(ABORT_PEER_DISCONNECTED);
                    push_u64(&mut body, *party);
                }
                AbortReason::HandshakeTimeout => body.push(ABORT_HANDSHAKE_TIMEOUT),
                AbortReason::IdleTimeout => body.push(ABORT_IDLE_TIMEOUT),
                AbortReason::QueueOverflow { party } => {
                    body.push(ABORT_QUEUE_OVERFLOW);
                    push_u64(&mut body, *party);
                }
                AbortReason::Spoofed { claimed } => {
                    body.push(ABORT_SPOOFED);
                    push_u64(&mut body, *claimed);
                }
                AbortReason::ServerShutdown => body.push(ABORT_SERVER_SHUTDOWN),
                AbortReason::Protocol(msg) => {
                    body.push(ABORT_PROTOCOL);
                    body.extend_from_slice(msg.as_bytes());
                }
            }
            KIND_ABORT
        }
    };
    let len = 1u32.saturating_add(body.len() as u32);
    let mut out = Vec::with_capacity(4 + len as usize);
    out.extend_from_slice(&len.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&body);
    out
}

/// Decodes one frame body (the bytes after the kind byte).
fn decode_body(kind: u8, body: &[u8]) -> Result<SessionFrame, FrameError> {
    let triple = |body: &[u8]| -> Result<(u64, u64, u64), FrameError> {
        if body.len() != 24 {
            return Err(FrameError::BadBody {
                kind,
                detail: "expected 24 bytes (session, party, n_parties)",
            });
        }
        match (read_u64(body, 0), read_u64(body, 8), read_u64(body, 16)) {
            (Some(a), Some(b), Some(c)) => Ok((a, b, c)),
            _ => Err(FrameError::BadBody {
                kind,
                detail: "short header triple",
            }),
        }
    };
    match kind {
        KIND_HELLO => {
            let (session, party, n_parties) = triple(body)?;
            Ok(SessionFrame::Hello {
                session,
                party,
                n_parties,
            })
        }
        KIND_WELCOME => {
            let (session, party, n_parties) = triple(body)?;
            Ok(SessionFrame::Welcome {
                session,
                party,
                n_parties,
            })
        }
        KIND_ENVELOPE => Ok(SessionFrame::Envelope(Envelope::decode(body)?)),
        KIND_DONE => {
            if body.len() != 8 {
                return Err(FrameError::BadBody {
                    kind,
                    detail: "expected 8 bytes (party)",
                });
            }
            match read_u64(body, 0) {
                Some(party) => Ok(SessionFrame::Done { party }),
                None => Err(FrameError::BadBody {
                    kind,
                    detail: "short party id",
                }),
            }
        }
        KIND_COMPLETE => {
            if !body.is_empty() {
                return Err(FrameError::BadBody {
                    kind,
                    detail: "expected empty body",
                });
            }
            Ok(SessionFrame::Complete)
        }
        KIND_ABORT => {
            let (&code, rest) = body.split_first().ok_or(FrameError::BadBody {
                kind,
                detail: "missing abort code",
            })?;
            let one_u64 = |rest: &[u8]| -> Result<u64, FrameError> {
                if rest.len() != 8 {
                    return Err(FrameError::BadBody {
                        kind,
                        detail: "expected 8-byte abort argument",
                    });
                }
                read_u64(rest, 0).ok_or(FrameError::BadBody {
                    kind,
                    detail: "short abort argument",
                })
            };
            let bare = |rest: &[u8], reason: AbortReason| -> Result<SessionFrame, FrameError> {
                if rest.is_empty() {
                    Ok(SessionFrame::Abort(reason))
                } else {
                    Err(FrameError::BadBody {
                        kind,
                        detail: "expected empty abort argument",
                    })
                }
            };
            match code {
                ABORT_PEER_DISCONNECTED => Ok(SessionFrame::Abort(AbortReason::PeerDisconnected {
                    party: one_u64(rest)?,
                })),
                ABORT_HANDSHAKE_TIMEOUT => bare(rest, AbortReason::HandshakeTimeout),
                ABORT_IDLE_TIMEOUT => bare(rest, AbortReason::IdleTimeout),
                ABORT_QUEUE_OVERFLOW => Ok(SessionFrame::Abort(AbortReason::QueueOverflow {
                    party: one_u64(rest)?,
                })),
                ABORT_SPOOFED => Ok(SessionFrame::Abort(AbortReason::Spoofed {
                    claimed: one_u64(rest)?,
                })),
                ABORT_SERVER_SHUTDOWN => bare(rest, AbortReason::ServerShutdown),
                ABORT_PROTOCOL => {
                    let msg = std::str::from_utf8(rest).map_err(|_| FrameError::BadUtf8)?;
                    Ok(SessionFrame::Abort(AbortReason::Protocol(msg.to_owned())))
                }
                _ => Err(FrameError::BadBody {
                    kind,
                    detail: "unknown abort code",
                }),
            }
        }
        other => Err(FrameError::BadKind { kind: other }),
    }
}

/// Incremental frame decoder over an arbitrary byte stream.
///
/// Feed raw socket reads with [`FrameBuffer::extend`]; pull decoded
/// frames with [`FrameBuffer::next_frame`], which returns `Ok(None)`
/// while a frame is incomplete (wait for more bytes) and a typed
/// [`FrameError`] as soon as a prefix is provably invalid — a hostile
/// length is rejected from its 4 prefix bytes alone, before any
/// buffering of the claimed body.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    consumed: usize,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Drop the consumed prefix before growing, so a long-lived
        // connection's buffer stays proportional to one frame.
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded into a frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Decodes the next complete frame, if the buffer holds one.
    pub fn next_frame(&mut self) -> Result<Option<SessionFrame>, FrameError> {
        let avail = &self.buf[self.consumed..];
        let Some(prefix) = avail.get(..4) else {
            return Ok(None);
        };
        let mut lenb = [0u8; 4];
        lenb.copy_from_slice(prefix);
        let len = u32::from_le_bytes(lenb);
        if len == 0 {
            return Err(FrameError::ZeroLength {
                offset: self.consumed,
            });
        }
        if len > MAX_FRAME_BYTES {
            return Err(FrameError::TooLarge {
                claimed: len,
                cap: MAX_FRAME_BYTES,
            });
        }
        let total = 4usize.saturating_add(len as usize);
        let Some(frame_bytes) = avail.get(4..total) else {
            return Ok(None);
        };
        let (&kind, body) = frame_bytes
            .split_first()
            .ok_or(FrameError::BadKind { kind: 0 })?;
        let frame = decode_body(kind, body)?;
        self.consumed += total;
        Ok(Some(frame))
    }
}

/// Strictly decodes a complete byte string as a sequence of frames.
///
/// Unlike [`FrameBuffer`], a partial trailing frame here is a typed
/// [`FrameError::Truncated`] — this is the total function the `frame`
/// fuzz target drives, paired with [`encode_stream`] as its canonical
/// re-encoding.
pub fn decode_stream(bytes: &[u8]) -> Result<Vec<SessionFrame>, FrameError> {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(prefix) = bytes.get(pos..pos + 4) else {
            return Err(FrameError::Truncated {
                offset: bytes.len(),
                needed: pos + 4 - bytes.len(),
            });
        };
        let mut lenb = [0u8; 4];
        lenb.copy_from_slice(prefix);
        let len = u32::from_le_bytes(lenb);
        if len == 0 {
            return Err(FrameError::ZeroLength { offset: pos });
        }
        if len > MAX_FRAME_BYTES {
            return Err(FrameError::TooLarge {
                claimed: len,
                cap: MAX_FRAME_BYTES,
            });
        }
        let total = 4usize.saturating_add(len as usize);
        let end = pos.saturating_add(total);
        let Some(frame_bytes) = bytes.get(pos + 4..end) else {
            return Err(FrameError::Truncated {
                offset: bytes.len(),
                needed: end - bytes.len(),
            });
        };
        let (&kind, body) = frame_bytes
            .split_first()
            .ok_or(FrameError::BadKind { kind: 0 })?;
        frames.push(decode_body(kind, body)?);
        pos = end;
    }
    Ok(frames)
}

/// Serialises a frame sequence; the canonical inverse of
/// [`decode_stream`].
pub fn encode_stream(frames: &[SessionFrame]) -> Vec<u8> {
    let mut out = Vec::new();
    for f in frames {
        out.extend_from_slice(&encode_frame(f));
    }
    out
}

/// A connected stream socket: TCP or (on Unix) a Unix-domain socket.
///
/// The daemon and client only need blocking reads/writes with timeouts;
/// read timeouts double as the logical tick of the socket transports —
/// no wall-clock time ever reaches protocol decisions.
#[derive(Debug)]
pub enum SocketStream {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain stream connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl SocketStream {
    /// Connects to `addr`: `unix:<path>` for a Unix-domain socket,
    /// anything else as a TCP `host:port`.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        #[cfg(unix)]
        if let Some(path) = addr.strip_prefix("unix:") {
            return Ok(SocketStream::Unix(UnixStream::connect(path)?));
        }
        Ok(SocketStream::Tcp(TcpStream::connect(addr)?))
    }

    /// Sets the read timeout (the io tick of the socket transports).
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            SocketStream::Unix(s) => s.set_read_timeout(dur),
        }
    }

    /// Sets the write timeout (bounds how long a stalled peer can block
    /// this connection's writer).
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.set_write_timeout(dur),
            #[cfg(unix)]
            SocketStream::Unix(s) => s.set_write_timeout(dur),
        }
    }

    /// Shuts down both directions; subsequent reads see EOF.
    pub fn shutdown(&self) -> std::io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            #[cfg(unix)]
            SocketStream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }

    /// A second handle to the same connection (for split reader/writer).
    pub fn try_clone(&self) -> std::io::Result<Self> {
        Ok(match self {
            SocketStream::Tcp(s) => SocketStream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            SocketStream::Unix(s) => SocketStream::Unix(s.try_clone()?),
        })
    }
}

impl Read for SocketStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            SocketStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for SocketStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            SocketStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            SocketStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            SocketStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            SocketStream::Unix(s) => s.flush(),
        }
    }
}

/// What one timeout-bounded read attempt produced.
#[derive(Debug)]
pub enum ReadStep {
    /// A complete frame arrived.
    Frame(SessionFrame),
    /// The read timed out with no complete frame: one io tick elapsed.
    Tick,
    /// The peer closed the connection.
    Eof,
}

/// A [`SocketStream`] paired with an incremental [`FrameBuffer`].
#[derive(Debug)]
pub struct FramedStream {
    stream: SocketStream,
    buffer: FrameBuffer,
    chunk: Vec<u8>,
}

impl FramedStream {
    /// Wraps a connected stream.
    pub fn new(stream: SocketStream) -> Self {
        Self {
            stream,
            buffer: FrameBuffer::new(),
            chunk: vec![0u8; 64 * 1024],
        }
    }

    /// The underlying socket (for timeouts and shutdown).
    pub fn socket(&self) -> &SocketStream {
        &self.stream
    }

    /// Mutable access to the underlying socket. Writing raw bytes here
    /// bypasses the framing layer — that is the point: fault-injection
    /// harnesses use it to splice partial or corrupt frames onto the
    /// wire.
    pub fn socket_mut(&mut self) -> &mut SocketStream {
        &mut self.stream
    }

    /// Writes one frame and flushes it.
    pub fn write_frame(&mut self, frame: &SessionFrame) -> std::io::Result<()> {
        self.stream.write_all(&encode_frame(frame))?;
        self.stream.flush()
    }

    /// One read attempt, bounded by the socket's read timeout.
    ///
    /// Decodes from the buffer first (bytes already read count), then
    /// performs at most one socket read. A timeout is a [`ReadStep::Tick`]
    /// — the caller's logical clock; a decode failure is a [`FrameError`].
    pub fn read_step(&mut self) -> Result<ReadStep, FrameError> {
        if let Some(frame) = self.buffer.next_frame()? {
            return Ok(ReadStep::Frame(frame));
        }
        match self.stream.read(&mut self.chunk) {
            Ok(0) => Ok(ReadStep::Eof),
            Ok(n) => {
                if let Some(read) = self.chunk.get(..n) {
                    self.buffer.extend(read);
                }
                match self.buffer.next_frame()? {
                    Some(frame) => Ok(ReadStep::Frame(frame)),
                    None => Ok(ReadStep::Tick),
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(ReadStep::Tick)
            }
            Err(_) => Ok(ReadStep::Eof),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{MsgId, Payload};

    fn sample_frames() -> Vec<SessionFrame> {
        vec![
            SessionFrame::Hello {
                session: 7,
                party: 0,
                n_parties: 2,
            },
            SessionFrame::Welcome {
                session: 7,
                party: 0,
                n_parties: 2,
            },
            SessionFrame::Envelope(Envelope {
                id: MsgId(3),
                from: 0,
                to: 1,
                payload: Payload::Ack(MsgId(1)),
            }),
            SessionFrame::Done { party: 1 },
            SessionFrame::Complete,
            SessionFrame::Abort(AbortReason::PeerDisconnected { party: 1 }),
            SessionFrame::Abort(AbortReason::HandshakeTimeout),
            SessionFrame::Abort(AbortReason::IdleTimeout),
            SessionFrame::Abort(AbortReason::QueueOverflow { party: 0 }),
            SessionFrame::Abort(AbortReason::Spoofed { claimed: 9 }),
            SessionFrame::Abort(AbortReason::ServerShutdown),
            SessionFrame::Abort(AbortReason::Protocol("weird".to_owned())),
        ]
    }

    #[test]
    fn frame_roundtrip_every_kind() {
        for f in sample_frames() {
            let bytes = encode_frame(&f);
            let back = decode_stream(&bytes).unwrap();
            assert_eq!(back, vec![f.clone()]);
            assert_eq!(encode_stream(&back), bytes, "canonical fixed point");
        }
    }

    #[test]
    fn stream_roundtrip_concatenated() {
        let frames = sample_frames();
        let bytes = encode_stream(&frames);
        assert_eq!(decode_stream(&bytes).unwrap(), frames);
    }

    #[test]
    fn zero_length_prefix_is_typed_error() {
        let bytes = [0u8, 0, 0, 0, 9, 9];
        assert_eq!(
            decode_stream(&bytes),
            Err(FrameError::ZeroLength { offset: 0 })
        );
        let mut fb = FrameBuffer::new();
        fb.extend(&bytes);
        assert_eq!(fb.next_frame(), Err(FrameError::ZeroLength { offset: 0 }));
    }

    #[test]
    fn oversized_prefix_rejected_before_body() {
        // Claim just past the cap, provide only the prefix: the length
        // alone must already be the error.
        let claimed = MAX_FRAME_BYTES + 1;
        let bytes = claimed.to_le_bytes();
        assert_eq!(
            decode_stream(&bytes),
            Err(FrameError::TooLarge {
                claimed,
                cap: MAX_FRAME_BYTES,
            })
        );
        let mut fb = FrameBuffer::new();
        fb.extend(&bytes);
        assert_eq!(
            fb.next_frame(),
            Err(FrameError::TooLarge {
                claimed,
                cap: MAX_FRAME_BYTES,
            })
        );
    }

    #[test]
    fn truncation_strict_vs_incremental() {
        let bytes = encode_frame(&SessionFrame::Done { party: 4 });
        for cut in 1..bytes.len() {
            let prefix = &bytes[..cut];
            // Strict decoding: typed truncation error.
            assert!(
                matches!(decode_stream(prefix), Err(FrameError::Truncated { .. })),
                "strict cut {cut}"
            );
            // Incremental decoding: wait for more bytes, then succeed.
            let mut fb = FrameBuffer::new();
            fb.extend(prefix);
            assert_eq!(fb.next_frame(), Ok(None), "incremental cut {cut}");
            fb.extend(&bytes[cut..]);
            assert_eq!(
                fb.next_frame(),
                Ok(Some(SessionFrame::Done { party: 4 })),
                "incremental completion after cut {cut}"
            );
        }
    }

    #[test]
    fn spliced_frames_decode_across_chunk_boundaries() {
        let frames = sample_frames();
        let bytes = encode_stream(&frames);
        // Feed one byte at a time: every frame must still come out, in
        // order, regardless of chunking.
        let mut fb = FrameBuffer::new();
        let mut seen = Vec::new();
        for b in &bytes {
            fb.extend(std::slice::from_ref(b));
            while let Some(f) = fb.next_frame().unwrap() {
                seen.push(f);
            }
        }
        assert_eq!(seen, frames);
        assert_eq!(fb.pending_bytes(), 0);
    }

    #[test]
    fn bad_kind_and_bad_bodies_are_typed_errors() {
        // Unknown kind byte.
        let bytes = [1u8, 0, 0, 0, 99];
        assert_eq!(decode_stream(&bytes), Err(FrameError::BadKind { kind: 99 }));
        // Hello with a short body.
        let bytes = [2u8, 0, 0, 0, KIND_HELLO, 1];
        assert!(matches!(
            decode_stream(&bytes),
            Err(FrameError::BadBody { .. })
        ));
        // Complete with a non-empty body.
        let bytes = [2u8, 0, 0, 0, KIND_COMPLETE, 0];
        assert!(matches!(
            decode_stream(&bytes),
            Err(FrameError::BadBody { .. })
        ));
        // Abort with an unknown code.
        let bytes = [2u8, 0, 0, 0, KIND_ABORT, 200];
        assert!(matches!(
            decode_stream(&bytes),
            Err(FrameError::BadBody { .. })
        ));
        // Abort-protocol with invalid UTF-8 detail.
        let bytes = [3u8, 0, 0, 0, KIND_ABORT, ABORT_PROTOCOL, 0xFF];
        assert_eq!(decode_stream(&bytes), Err(FrameError::BadUtf8));
        // Envelope frame with garbage envelope bytes.
        let bytes = [3u8, 0, 0, 0, KIND_ENVELOPE, b'X', b'X'];
        assert!(matches!(
            decode_stream(&bytes),
            Err(FrameError::Envelope(WireError::BadMagic))
        ));
    }

    #[test]
    fn abort_reasons_display() {
        for f in sample_frames() {
            if let SessionFrame::Abort(r) = f {
                assert!(!r.to_string().is_empty());
            }
        }
    }
}
