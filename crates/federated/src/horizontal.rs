//! Horizontal federated learning (HFL) contrast.
//!
//! The paper's §I scopes the analysis to VFL: *"HFL typically operates
//! under the same or similar database schema among participants"* and —
//! critically — HFL parties hold **different data instances**, so there is
//! no PSI step pinning a shared tuple index. This module provides the HFL
//! counterpart pieces needed to demonstrate that distinction
//! quantitatively: horizontal splits, schema-compatibility checking (the
//! whole of HFL's metadata alignment), and the permutation baseline that
//! replaces index-aligned leakage when no alignment exists.

use mp_core::ExperimentConfig;
use mp_relation::{AttrKind, Relation, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Splits a relation horizontally into `n_parties` row-disjoint slices
/// (round-robin, deterministic). Every slice has the same schema — the HFL
/// setting.
pub fn horizontal_split(relation: &Relation, n_parties: usize) -> Result<Vec<Relation>> {
    let mut out = Vec::with_capacity(n_parties);
    for p in 0..n_parties {
        let rows: Vec<usize> = (0..relation.n_rows())
            .filter(|r| r % n_parties == p)
            .collect();
        out.push(relation.select_rows(&rows)?);
    }
    Ok(out)
}

/// HFL metadata alignment: schemas must agree on names and kinds. This is
/// the entire metadata exchange HFL needs — the paper's observation that
/// HFL metadata is "similar" across parties, in code.
pub fn schemas_compatible(a: &Relation, b: &Relation) -> bool {
    a.schema() == b.schema()
}

/// The leakage baseline available to an HFL adversary: with no PSI
/// alignment, the best it can do against another party's rows is match
/// them in *some* order. This measures the mean exact matches of `syn`
/// against `real` under random row permutations — the quantity that
/// replaces Definition 2.2's index-aligned count when indices carry no
/// meaning.
pub fn permutation_baseline(
    real: &Relation,
    syn: &Relation,
    attr: usize,
    config: &ExperimentConfig,
) -> Result<f64> {
    let real_col = real.column(attr)?;
    let syn_col = syn.column(attr)?;
    let n = real_col.len().min(syn_col.len());
    if n == 0 || config.rounds == 0 {
        return Ok(0.0);
    }
    let kind = real.schema().attribute(attr)?.kind;
    let mut total = 0usize;
    for round in 0..config.rounds {
        let mut rng = StdRng::seed_from_u64(config.base_seed.wrapping_add(round as u64));
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        total += (0..n)
            .filter(|&i| match kind {
                AttrKind::Categorical => real_col.value_ref(perm[i]) == syn_col.value_ref(i),
                AttrKind::Continuous => match (real_col.f64_at(perm[i]), syn_col.f64_at(i)) {
                    (Some(x), Some(y)) => (x - y).abs() <= config.epsilon,
                    _ => false,
                },
            })
            .count();
    }
    Ok(total as f64 / config.rounds as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_core::categorical_matches;
    use mp_datasets::echocardiogram;
    use mp_metadata::MetadataPackage;
    use mp_synth::{Adversary, SynthConfig};

    #[test]
    fn split_covers_all_rows_with_same_schema() {
        let r = echocardiogram();
        let parts = horizontal_split(&r, 3).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(
            parts.iter().map(Relation::n_rows).sum::<usize>(),
            r.n_rows()
        );
        for p in &parts {
            assert!(schemas_compatible(&r, p));
        }
        // Round-robin keeps sizes balanced.
        assert!(parts.iter().all(|p| p.n_rows() >= r.n_rows() / 3));
    }

    #[test]
    fn zero_and_one_party_splits() {
        let r = echocardiogram();
        assert!(horizontal_split(&r, 0).unwrap().is_empty());
        let one = horizontal_split(&r, 1).unwrap();
        assert_eq!(one[0], r);
    }

    #[test]
    fn hfl_attack_degenerates_to_permutation_baseline() {
        // The paper's reason for focusing on VFL, measured: without PSI
        // alignment the index-aligned match count of an adversary's
        // synthetic data carries no more signal than random row alignment.
        let r = echocardiogram();
        let parts = horizontal_split(&r, 2).unwrap();
        let (mine, theirs) = (&parts[0], &parts[1]);

        // HFL adversary: knows the shared schema + its own slice's domains
        // (schemas are similar, so this is realistic), generates data, and
        // tries to match the OTHER party's rows.
        let pkg = MetadataPackage::describe("me", mine, vec![]).unwrap();
        let adversary = Adversary::new(pkg);
        let syn = adversary
            .synthesize(&SynthConfig::random_baseline(theirs.n_rows(), 17))
            .unwrap();

        let config = ExperimentConfig {
            rounds: 200,
            base_seed: 5,
            epsilon: 0.0,
        };
        for &attr in &mp_datasets::CATEGORICAL_ATTRS {
            let aligned = categorical_matches(theirs, &syn, attr).unwrap() as f64;
            let baseline = permutation_baseline(theirs, &syn, attr, &config).unwrap();
            // Index-aligned counting gives no advantage: within noise of
            // the permutation expectation.
            let n = theirs.n_rows() as f64;
            assert!(
                (aligned - baseline).abs() <= 0.18 * n,
                "attr {attr}: aligned {aligned} vs permutation {baseline}"
            );
        }
    }

    #[test]
    fn permutation_baseline_edge_cases() {
        let r = echocardiogram();
        let config = ExperimentConfig {
            rounds: 0,
            base_seed: 0,
            epsilon: 0.0,
        };
        assert_eq!(permutation_baseline(&r, &r, 1, &config).unwrap(), 0.0);

        // Self-comparison under permutations ≈ Σ (count_v)² / N for the
        // value distribution — sanity check it is below N.
        let config = ExperimentConfig {
            rounds: 50,
            base_seed: 0,
            epsilon: 0.0,
        };
        let b = permutation_baseline(&r, &r, 1, &config).unwrap();
        assert!(b > 0.0 && b < r.n_rows() as f64);
    }
}
