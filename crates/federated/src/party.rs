//! A VFL participant: a named party holding a vertical slice of the
//! population, keyed by an entity-id column.

use mp_metadata::{Dependency, MetadataPackage, SharePolicy};
use mp_relation::{Relation, Result, Value};

/// One party in a vertical federated learning session.
#[derive(Debug, Clone)]
pub struct Party {
    /// Party name (e.g. `"bank"`).
    pub name: String,
    /// The party's relation. One column is the entity identifier used for
    /// alignment; the rest are features.
    pub relation: Relation,
    /// Index of the entity-id column within `relation`.
    pub id_column: usize,
    /// Dependencies the party knows hold on its data (discovered or
    /// declared); subject to the share policy at exchange time.
    pub dependencies: Vec<Dependency>,
}

impl Party {
    /// Creates a party. `id_column` must be in range.
    pub fn new(
        name: impl Into<String>,
        relation: Relation,
        id_column: usize,
        dependencies: Vec<Dependency>,
    ) -> Result<Self> {
        relation.schema().attribute(id_column)?;
        Ok(Self {
            name: name.into(),
            relation,
            id_column,
            dependencies,
        })
    }

    /// The party's entity ids, in row order, materialised from the typed
    /// id column.
    pub fn ids(&self) -> Result<Vec<Value>> {
        self.relation.column_values(self.id_column)
    }

    /// Feature column indices (everything except the id column).
    pub fn feature_columns(&self) -> Vec<usize> {
        (0..self.relation.arity())
            .filter(|&c| c != self.id_column)
            .collect()
    }

    /// Builds the party's metadata package over its *feature* attributes
    /// (the id column is never described — ids are handled by PSI), then
    /// applies `policy`.
    ///
    /// Dependencies are re-indexed from relation coordinates to
    /// feature-package coordinates; any dependency touching the id column
    /// is dropped.
    pub fn share_metadata(&self, policy: &SharePolicy) -> Result<MetadataPackage> {
        let features = self.feature_columns();
        let feature_rel = self.relation.project(&features)?;
        let remap = |attr: usize| features.iter().position(|&c| c == attr);
        let deps: Vec<Dependency> = self
            .dependencies
            .iter()
            .filter_map(|d| remap_dependency(d, &remap))
            .collect();
        let full = MetadataPackage::describe(self.name.clone(), &feature_rel, deps)?;
        Ok(policy.apply(&full))
    }

    /// The relation restricted to rows at `rows` (PSI alignment output).
    pub fn aligned_rows(&self, rows: &[usize]) -> Result<Relation> {
        self.relation.select_rows(rows)
    }

    /// The party's PSI submission under `salt`: salted digests of its
    /// entity ids, in row order — the payload of its
    /// [`crate::transport::Payload::PsiDigests`] message.
    pub fn psi_submission(&self, salt: u64) -> Result<Vec<crate::psi::IdDigest>> {
        Ok(crate::psi::submit(&self.ids()?, salt))
    }
}

/// Re-indexes a dependency through `remap`; `None` drops it (some referenced
/// attribute is not a shared feature).
fn remap_dependency(
    dep: &Dependency,
    remap: &dyn Fn(usize) -> Option<usize>,
) -> Option<Dependency> {
    use mp_metadata::{Afd, AttrSet, DifferentialDep, Fd, NumericalDep, OrderDep, OrderedFd};
    Some(match dep {
        Dependency::Fd(f) => {
            let lhs: Option<Vec<usize>> = f.lhs.iter().map(remap).collect();
            Dependency::Fd(Fd {
                lhs: AttrSet::from_iter(lhs?),
                rhs: remap(f.rhs)?,
            })
        }
        Dependency::Afd(a) => {
            let lhs: Option<Vec<usize>> = a.fd.lhs.iter().map(remap).collect();
            Dependency::Afd(Afd {
                fd: Fd {
                    lhs: AttrSet::from_iter(lhs?),
                    rhs: remap(a.fd.rhs)?,
                },
                g3_threshold: a.g3_threshold,
            })
        }
        Dependency::Od(o) => Dependency::Od(OrderDep {
            lhs: remap(o.lhs)?,
            rhs: remap(o.rhs)?,
            direction: o.direction,
        }),
        Dependency::Nd(n) => Dependency::Nd(NumericalDep {
            lhs: remap(n.lhs)?,
            rhs: remap(n.rhs)?,
            k: n.k,
        }),
        Dependency::Dd(d) => Dependency::Dd(DifferentialDep {
            lhs: remap(d.lhs)?,
            rhs: remap(d.rhs)?,
            eps_lhs: d.eps_lhs,
            delta_rhs: d.delta_rhs,
        }),
        Dependency::Ofd(o) => Dependency::Ofd(OrderedFd {
            lhs: remap(o.lhs)?,
            rhs: remap(o.rhs)?,
        }),
        Dependency::Cfd(c) => {
            let lhs: Option<Vec<(usize, mp_metadata::PatternCell)>> = c
                .lhs
                .iter()
                .map(|(a, cell)| Some((remap(*a)?, cell.clone())))
                .collect();
            Dependency::Cfd(mp_metadata::ConditionalFd {
                lhs: lhs?,
                rhs: remap(c.rhs)?,
                rhs_pattern: c.rhs_pattern.clone(),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_metadata::Fd;
    use mp_relation::{Attribute, Schema};

    fn party() -> Party {
        let schema = Schema::new(vec![
            Attribute::categorical("id"),
            Attribute::continuous("income"),
            Attribute::categorical("tier"),
        ])
        .unwrap();
        let rel = Relation::from_rows(
            schema,
            vec![
                vec!["c1".into(), 10.0.into(), "a".into()],
                vec!["c2".into(), 20.0.into(), "b".into()],
            ],
        )
        .unwrap();
        Party::new("bank", rel, 0, vec![Fd::new(1usize, 2).into()]).unwrap()
    }

    #[test]
    fn feature_columns_exclude_id() {
        assert_eq!(party().feature_columns(), vec![1, 2]);
    }

    #[test]
    fn share_metadata_reindexes_dependencies() {
        let pkg = party().share_metadata(&SharePolicy::FULL).unwrap();
        assert_eq!(pkg.arity(), 2);
        assert_eq!(pkg.attributes[0].name, "income");
        // Fd 1 → 2 in relation coordinates becomes 0 → 1 in package
        // coordinates.
        assert_eq!(pkg.dependencies.len(), 1);
        assert_eq!(pkg.dependencies[0].rhs(), 1);
        assert_eq!(pkg.dependencies[0].lhs().indices(), &[0]);
    }

    #[test]
    fn id_touching_dependencies_dropped() {
        let mut p = party();
        p.dependencies.push(Fd::new(0usize, 2).into()); // lhs is the id col
        let pkg = p.share_metadata(&SharePolicy::FULL).unwrap();
        assert_eq!(pkg.dependencies.len(), 1);
    }

    #[test]
    fn policy_applies() {
        let pkg = party().share_metadata(&SharePolicy::NAMES_ONLY).unwrap();
        assert!(!pkg.shares_domains());
        assert!(pkg.dependencies.is_empty());
    }

    #[test]
    fn invalid_id_column_rejected() {
        let p = party();
        assert!(Party::new("x", p.relation.clone(), 9, vec![]).is_err());
    }

    #[test]
    fn aligned_rows_selects() {
        let p = party();
        let sub = p.aligned_rows(&[1]).unwrap();
        assert_eq!(sub.n_rows(), 1);
        assert_eq!(sub.value(0, 0).unwrap(), Value::Text("c2".into()));
    }
}
