//! Deterministic fault-injection simulator for the VFL setup protocol.
//!
//! The paper's threat model lives entirely in the setup phase, so its
//! privacy guarantees must hold not just on the happy path but under the
//! message-level failures every real deployment sees: drops, duplicates,
//! reordering, delays and party crashes. This module provides
//!
//! * [`FaultPlan`] — a *seeded* schedule of faults. Two runs with the
//!   same plan (same seed, same rates) inject byte-identical fault
//!   decisions, so every failure is replayable from its seed alone;
//! * [`SimTransport`] — a [`Transport`] applying the plan via the
//!   workspace's deterministic `StdRng`;
//! * [`TraceSummary`] — counts of what happened on the wire;
//! * [`check_invariants`] — the harness asserting, for any plan, the
//!   three protocol invariants:
//!   1. a **completed** setup is bit-identical (alignment, aligned rows,
//!      exchanged metadata) to the fault-free run with the same parties;
//!   2. under redaction, no fault schedule ever pushes a redacted domain,
//!      kind, distribution, row count or dependency across the boundary —
//!      audited against the full message trace, not the return value;
//!   3. a crashed party produces a clean typed abort, never a partial
//!      exchange.
//!
//! Replaying a CI failure: every matrix entry is `(seed, profile)`;
//! `mpriv simulate --seed N --faults <profile>` reruns it exactly.

use crate::multiparty::{MultiPartySession, MultiSetupOutcome};
use crate::party::Party;
use crate::protocol::{RetryConfig, SetupError};
use crate::transport::{
    Envelope, PartyId, Payload, PerfectTransport, TraceEvent, Transport, TransportMetrics,
};
use mp_metadata::SharePolicy;
use mp_observe::{NoopRecorder, Recorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A scheduled party crash: the party completes exactly `after_sends`
/// transmissions, then falls silent (sends swallowed, deliveries to it
/// dropped, state machine frozen).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartyCrash {
    /// The party that crashes.
    pub party: PartyId,
    /// Number of successful transmissions before the crash.
    pub after_sends: u64,
}

/// The named fault profiles of the CI matrix, replayable via
/// `mpriv simulate --faults <name> --seed <seed>`.
pub const FAULT_PROFILES: [&str; 4] = ["drop", "dup", "reorder", "crash"];

/// A seeded, deterministic fault schedule.
///
/// Message-level faults (drop / duplicate / delay) are decided per
/// transmission by a `StdRng` seeded with `seed`; since the protocol
/// engine is single-threaded, the decision stream — and therefore the
/// entire run — is a pure function of `(parties, plan)`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault-decision stream.
    pub seed: u64,
    /// Probability a transmission is silently dropped.
    pub drop_rate: f64,
    /// Probability a delivered transmission is delivered twice.
    pub duplicate_rate: f64,
    /// Maximum extra delivery delay in ticks (uniform in `0..=max_delay`);
    /// any value above 0 also reorders messages relative to send order.
    pub max_delay: u64,
    /// Scheduled party crashes.
    pub crashes: Vec<PartyCrash>,
}

impl FaultPlan {
    /// No faults at all (the seed still fixes the — unused — stream).
    pub fn fault_free(seed: u64) -> Self {
        Self {
            seed,
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            max_delay: 0,
            crashes: Vec::new(),
        }
    }

    /// Builds a plan from a comma-separated fault list (the CLI's
    /// `--faults drop,dup,crash` syntax). Recognised names: `drop`,
    /// `dup`/`duplicate`, `reorder`/`delay`, `crash`. The crashed party
    /// and its last completed send are derived from `seed` so different
    /// seeds exercise different crash points, always early enough that
    /// the protocol cannot complete.
    pub fn from_names(names: &str, seed: u64, n_parties: usize) -> Result<Self, String> {
        let mut plan = Self::fault_free(seed);
        for name in names.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            match name {
                "drop" => plan.drop_rate = 0.25,
                "dup" | "duplicate" => plan.duplicate_rate = 0.3,
                "reorder" | "delay" => plan.max_delay = 5,
                "crash" => {
                    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A5_4ED0);
                    plan.crashes.push(PartyCrash {
                        party: rng.gen_range(0..n_parties.max(1)),
                        after_sends: rng.gen_range(0..2u64),
                    });
                }
                other => {
                    return Err(format!(
                        "unknown fault `{other}` (expected drop|dup|reorder|crash)"
                    ))
                }
            }
        }
        Ok(plan)
    }
}

/// One in-flight message inside the simulator.
#[derive(Debug, Clone)]
struct InFlight {
    deliver_at: u64,
    sent_at: u64,
    seq: u64,
    env: Envelope,
}

/// A [`Transport`] that applies a [`FaultPlan`] deterministically.
#[derive(Debug)]
pub struct SimTransport {
    plan: FaultPlan,
    rng: StdRng,
    now: u64,
    seq: u64,
    in_flight: Vec<InFlight>,
    inboxes: Vec<VecDeque<Envelope>>,
    sends: Vec<u64>,
    crashed_at: Vec<Option<u64>>,
    trace: Vec<TraceEvent>,
    metrics: TransportMetrics,
}

impl SimTransport {
    /// Creates a simulated transport connecting `n_parties` parties.
    pub fn new(n_parties: usize, plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        Self {
            plan,
            rng,
            now: 0,
            seq: 0,
            in_flight: Vec::new(),
            inboxes: vec![VecDeque::new(); n_parties],
            sends: vec![0; n_parties],
            crashed_at: vec![None; n_parties],
            trace: Vec::new(),
            metrics: TransportMetrics::noop(),
        }
    }

    /// [`new`](Self::new) with wire metrics registered on `recorder`
    /// (see [`TransportMetrics::new`] for the metric names). Metrics are
    /// observation-only: the fault-decision RNG stream is untouched, so
    /// an observed run injects exactly the faults the unobserved run
    /// does.
    pub fn observed(n_parties: usize, plan: FaultPlan, recorder: &dyn Recorder) -> Self {
        let mut transport = Self::new(n_parties, plan);
        transport.metrics = TransportMetrics::new(n_parties, recorder);
        transport
    }

    /// Parties the plan has crashed so far.
    pub fn crashed_parties(&self) -> Vec<PartyId> {
        self.crashed_at
            .iter()
            .enumerate()
            .filter_map(|(p, c)| c.map(|_| p))
            .collect()
    }

    fn schedule(&mut self, env: Envelope, extra_event: Option<fn(u64, Envelope) -> TraceEvent>) {
        let delay = if self.plan.max_delay > 0 {
            self.rng.gen_range(0..=self.plan.max_delay)
        } else {
            0
        };
        if let Some(make) = extra_event {
            self.trace.push(make(self.now, env.clone()));
        }
        self.seq += 1;
        self.in_flight.push(InFlight {
            deliver_at: self.now + 1 + delay,
            sent_at: self.now,
            seq: self.seq,
            env,
        });
    }
}

impl Transport for SimTransport {
    fn n_parties(&self) -> usize {
        self.inboxes.len()
    }

    fn send(&mut self, env: Envelope, attempt: u32) {
        let from = env.from;
        if self.crashed_at[from].is_some() {
            return; // a dead party transmits nothing
        }
        // Crash schedule: the party completes `after_sends` transmissions,
        // then this (and every later) send is the one that never happens.
        if let Some(crash) = self.plan.crashes.iter().find(|c| c.party == from) {
            if self.sends[from] >= crash.after_sends {
                self.crashed_at[from] = Some(self.now);
                self.metrics.note_crash();
                self.trace.push(TraceEvent::Crashed {
                    at: self.now,
                    party: from,
                });
                return;
            }
        }
        self.sends[from] += 1;
        self.metrics.note_sent(from);
        self.trace.push(TraceEvent::Sent {
            at: self.now,
            env: env.clone(),
            attempt,
        });
        if self.plan.drop_rate > 0.0 && self.rng.gen::<f64>() < self.plan.drop_rate {
            self.metrics.note_dropped();
            self.trace.push(TraceEvent::Dropped { at: self.now, env });
            return;
        }
        let duplicate =
            self.plan.duplicate_rate > 0.0 && self.rng.gen::<f64>() < self.plan.duplicate_rate;
        self.schedule(env.clone(), None);
        if duplicate {
            self.metrics.note_duplicated();
            self.schedule(env, Some(|at, env| TraceEvent::Duplicated { at, env }));
        }
    }

    fn tick(&mut self) {
        self.now += 1;
        let mut due: Vec<InFlight> = Vec::new();
        self.in_flight.retain(|m| {
            if m.deliver_at <= self.now {
                due.push(m.clone());
                false
            } else {
                true
            }
        });
        due.sort_by_key(|m| (m.deliver_at, m.seq));
        for m in due {
            if self.crashed_at[m.env.to].is_some() {
                self.metrics.note_dropped();
                self.trace.push(TraceEvent::Dropped {
                    at: self.now,
                    env: m.env,
                });
                continue;
            }
            self.metrics
                .note_delivered(m.env.to, self.now.saturating_sub(m.sent_at));
            self.trace.push(TraceEvent::Delivered {
                at: self.now,
                env: m.env.clone(),
            });
            self.inboxes[m.env.to].push_back(m.env);
        }
    }

    fn recv(&mut self, party: PartyId) -> Option<Envelope> {
        if self.crashed_at[party].is_some() {
            return None;
        }
        self.inboxes[party].pop_front()
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    fn is_crashed(&self, party: PartyId) -> bool {
        self.crashed_at[party].is_some()
    }

    fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }
}

/// Wire-level counts extracted from a message trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Transmissions handed to the transport (including retransmissions).
    pub sent: usize,
    /// Retransmissions among `sent`.
    pub retransmissions: usize,
    /// Envelopes that reached an inbox.
    pub delivered: usize,
    /// Envelopes discarded (fault injection or dead recipient).
    pub dropped: usize,
    /// Extra deliveries scheduled by duplication faults.
    pub duplicated: usize,
    /// Party crashes.
    pub crashes: usize,
}

impl TraceSummary {
    /// Summarises a trace.
    pub fn from_trace(trace: &[TraceEvent]) -> Self {
        let mut s = Self::default();
        for event in trace {
            match event {
                TraceEvent::Sent { attempt, .. } => {
                    s.sent += 1;
                    if *attempt > 0 {
                        s.retransmissions += 1;
                    }
                }
                TraceEvent::Delivered { .. } => s.delivered += 1,
                TraceEvent::Dropped { .. } => s.dropped += 1,
                TraceEvent::Duplicated { .. } => s.duplicated += 1,
                TraceEvent::Crashed { .. } => s.crashes += 1,
            }
        }
        s
    }
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} sent ({} retransmissions), {} delivered, {} dropped, {} duplicated, {} crashed",
            self.sent,
            self.retransmissions,
            self.delivered,
            self.dropped,
            self.duplicated,
            self.crashes
        )
    }
}

/// Everything one simulated run produces: the protocol result, the wire
/// summary and the full message trace for auditing.
#[derive(Debug)]
pub struct SimOutcome {
    /// Completed outcome or typed abort.
    pub result: Result<MultiSetupOutcome, SetupError>,
    /// Wire-level counts.
    pub summary: TraceSummary,
    /// Virtual duration of the run in ticks.
    pub ticks: u64,
    /// The full message trace.
    pub trace: Vec<TraceEvent>,
}

/// Runs one simulated setup under `plan` and returns the outcome plus its
/// audit artefacts. Same session + policies + plan ⇒ same outcome, trace
/// and summary, always.
pub fn simulate_setup(
    session: &MultiPartySession,
    policies: &[SharePolicy],
    plan: &FaultPlan,
    retry: &RetryConfig,
) -> SimOutcome {
    simulate_setup_observed(session, policies, plan, retry, &NoopRecorder)
}

/// [`simulate_setup`] with an explicit [`Recorder`]: the transport
/// registers its wire metrics ([`TransportMetrics`]) and the protocol
/// engine its per-party counters and setup span
/// ([`crate::run_setup_protocol_observed`]). Recording is
/// observation-only — the fault-decision RNG stream, the trace and the
/// outcome are byte-identical to the unobserved run under the same plan.
pub fn simulate_setup_observed(
    session: &MultiPartySession,
    policies: &[SharePolicy],
    plan: &FaultPlan,
    retry: &RetryConfig,
    recorder: &dyn Recorder,
) -> SimOutcome {
    let mut transport = SimTransport::observed(session.parties.len(), plan.clone(), recorder);
    let result = session.run_setup_over_observed(policies, &mut transport, retry, recorder);
    let ticks = transport.now();
    let trace = std::mem::take(&mut transport.trace);
    SimOutcome {
        result,
        summary: TraceSummary::from_trace(&trace),
        ticks,
        trace,
    }
}

/// A violated protocol invariant, with enough context to replay.
#[derive(Debug, Clone, PartialEq)]
pub enum InvariantViolation {
    /// A completed setup differed from the fault-free outcome.
    NotBitIdentical {
        /// Which component diverged (`alignment`, `aligned`, `metadata`).
        component: &'static str,
        /// The diverging party, where applicable.
        party: Option<PartyId>,
    },
    /// A traced message carried metadata its sender's policy redacts.
    RedactionBreached {
        /// The oversharing party.
        party: PartyId,
        /// The leaked field (`domain`, `kind`, `distribution`,
        /// `row-count`, `fd`, `rfd`, or `package` for a wholesale
        /// mismatch with the expected redacted package).
        field: &'static str,
    },
    /// A crash schedule did not abort with [`SetupError::PartyCrashed`]
    /// even though the crash fired mid-protocol.
    UncleanCrash {
        /// What the run returned instead, if it failed differently.
        error: Option<SetupError>,
    },
    /// The fault-free reference run itself failed (setup data error).
    ReferenceFailed(SetupError),
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::NotBitIdentical { component, party } => match party {
                Some(p) => write!(
                    f,
                    "completed setup diverged from fault-free run: {component} of party {p}"
                ),
                None => write!(
                    f,
                    "completed setup diverged from fault-free run: {component}"
                ),
            },
            InvariantViolation::RedactionBreached { party, field } => write!(
                f,
                "redaction breach: party {party} leaked `{field}` onto the wire"
            ),
            InvariantViolation::UncleanCrash { error } => match error {
                Some(e) => write!(f, "crash schedule aborted uncleanly: {e}"),
                None => write!(f, "crash fired mid-protocol but setup reported success"),
            },
            InvariantViolation::ReferenceFailed(e) => {
                write!(f, "fault-free reference run failed: {e}")
            }
        }
    }
}

/// What a passing invariant check observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvariantReport {
    /// `true` if the faulty run completed (vs a typed abort).
    pub completed: bool,
    /// Wire summary of the faulty run.
    pub summary: TraceSummary,
    /// Virtual duration of the faulty run.
    pub ticks: u64,
}

/// Runs `session` under `plan` *and* fault-free, then checks the three
/// protocol invariants (see the module docs). Returns what the run did on
/// success, or the first violation found.
pub fn check_invariants(
    session: &MultiPartySession,
    policies: &[SharePolicy],
    plan: &FaultPlan,
    retry: &RetryConfig,
) -> Result<InvariantReport, InvariantViolation> {
    // Fault-free reference.
    let mut reference_transport = PerfectTransport::new(session.parties.len());
    let reference = session
        .run_setup_over(policies, &mut reference_transport, retry)
        .map_err(InvariantViolation::ReferenceFailed)?;

    let sim = simulate_setup(session, policies, plan, retry);
    let scheduled: Vec<PartyId> = plan.crashes.iter().map(|c| c.party).collect();
    verify_run(
        &session.parties,
        policies,
        &reference,
        &sim.result,
        &sim.trace,
        &scheduled,
    )?;

    Ok(InvariantReport {
        completed: sim.result.is_ok(),
        summary: sim.summary,
        ticks: sim.ticks,
    })
}

/// The invariant core shared by [`check_invariants`] (seeded sampling)
/// and the exhaustive model checker ([`crate::check`]): given the
/// fault-free reference outcome, one run's result and trace, and the set
/// of parties a fault schedule was *allowed* to crash, asserts the three
/// protocol invariants from the module docs.
pub(crate) fn verify_run(
    parties: &[Party],
    policies: &[SharePolicy],
    reference: &MultiSetupOutcome,
    result: &Result<MultiSetupOutcome, SetupError>,
    trace: &[TraceEvent],
    scheduled_crash_parties: &[PartyId],
) -> Result<(), InvariantViolation> {
    // Invariant 2 first: the trace audit applies to completed AND aborted
    // runs — a crashed or retry-exhausted setup must not have leaked
    // redacted metadata either.
    audit_trace_redaction(parties, policies, trace)?;

    let crash_fired = trace
        .iter()
        .any(|e| matches!(e, TraceEvent::Crashed { .. }));
    match result {
        Ok(outcome) => {
            // Invariant 1: bit-identical to the fault-free run.
            if outcome.alignment != reference.alignment {
                return Err(InvariantViolation::NotBitIdentical {
                    component: "alignment",
                    party: None,
                });
            }
            for (p, (got, want)) in outcome.aligned.iter().zip(&reference.aligned).enumerate() {
                if got != want {
                    return Err(InvariantViolation::NotBitIdentical {
                        component: "aligned",
                        party: Some(p),
                    });
                }
            }
            for (p, (got, want)) in outcome.metadata.iter().zip(&reference.metadata).enumerate() {
                if got != want {
                    return Err(InvariantViolation::NotBitIdentical {
                        component: "metadata",
                        party: Some(p),
                    });
                }
            }
            // Invariant 3, completion side: success is only legitimate if
            // no crash fired mid-protocol (a party may crash after its
            // role is over — that must not block the survivors).
            if crash_fired && !scheduled_crash_parties.is_empty() {
                return Err(InvariantViolation::UncleanCrash { error: None });
            }
        }
        Err(err) => {
            // Invariant 3: aborts are always typed; a crash schedule that
            // fired must surface as PartyCrashed for a scheduled party.
            if crash_fired {
                let clean = matches!(
                    err,
                    SetupError::PartyCrashed { party }
                        if scheduled_crash_parties.contains(party)
                );
                if !clean {
                    return Err(InvariantViolation::UncleanCrash {
                        error: Some(err.clone()),
                    });
                }
            } else if !matches!(err, SetupError::RetriesExhausted { .. }) {
                // Without a crash, the only legitimate abort is an
                // exhausted retry budget (fail-closed under drop storms).
                return Err(InvariantViolation::UncleanCrash {
                    error: Some(err.clone()),
                });
            }
        }
    }
    Ok(())
}

/// Audits every metadata envelope in `trace` against its sender's policy:
/// the traced package must equal the policy-redacted package *exactly*,
/// and — belt and braces — must not carry any field the policy withholds.
fn audit_trace_redaction(
    parties: &[Party],
    policies: &[SharePolicy],
    trace: &[TraceEvent],
) -> Result<(), InvariantViolation> {
    let expected: Vec<_> = parties
        .iter()
        .zip(policies)
        .map(|(party, policy)| party.share_metadata(policy))
        .collect::<mp_relation::Result<_>>()
        .map_err(|e| InvariantViolation::ReferenceFailed(SetupError::Data(e)))?;
    for event in trace {
        let Some(env) = event.envelope() else {
            continue;
        };
        let Payload::Metadata(pkg) = &env.payload else {
            continue;
        };
        let party = env.from;
        let policy = &policies[party];
        if !policy.domains && pkg.attributes.iter().any(|a| a.domain.is_some()) {
            return Err(InvariantViolation::RedactionBreached {
                party,
                field: "domain",
            });
        }
        if !policy.kinds && pkg.attributes.iter().any(|a| a.kind.is_some()) {
            return Err(InvariantViolation::RedactionBreached {
                party,
                field: "kind",
            });
        }
        if !policy.distributions && pkg.attributes.iter().any(|a| a.distribution.is_some()) {
            return Err(InvariantViolation::RedactionBreached {
                party,
                field: "distribution",
            });
        }
        if !policy.row_count && pkg.n_rows.is_some() {
            return Err(InvariantViolation::RedactionBreached {
                party,
                field: "row-count",
            });
        }
        let has_fd = pkg
            .dependencies
            .iter()
            .any(|d| matches!(d, mp_metadata::Dependency::Fd(_)));
        let has_rfd = pkg
            .dependencies
            .iter()
            .any(|d| !matches!(d, mp_metadata::Dependency::Fd(_)));
        if !policy.fds && has_fd {
            return Err(InvariantViolation::RedactionBreached { party, field: "fd" });
        }
        if !policy.rfds && has_rfd {
            return Err(InvariantViolation::RedactionBreached {
                party,
                field: "rfd",
            });
        }
        if **pkg != expected[party] {
            return Err(InvariantViolation::RedactionBreached {
                party,
                field: "package",
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_metadata::Fd;
    use mp_relation::{Attribute, Relation, Schema, Value};

    fn party(name: &str, ids: &[&str], deps: bool) -> Party {
        let schema = Schema::new(vec![
            Attribute::categorical("id"),
            Attribute::continuous("x"),
            Attribute::categorical("grp"),
        ])
        .unwrap();
        let rel = Relation::from_rows(
            schema,
            ids.iter()
                .enumerate()
                .map(|(i, id)| {
                    vec![
                        Value::Text((*id).into()),
                        Value::Float(i as f64),
                        Value::Text(if i % 2 == 0 { "a".into() } else { "b".into() }),
                    ]
                })
                .collect(),
        )
        .unwrap();
        let deps = if deps {
            vec![Fd::new(1usize, 2).into()]
        } else {
            vec![]
        };
        Party::new(name, rel, 0, deps).unwrap()
    }

    fn session() -> MultiPartySession {
        let a = party("bank", &["u1", "u2", "u3", "u4", "u5"], true);
        let b = party("shop", &["u5", "u3", "u9", "u1"], false);
        MultiPartySession::new(vec![a, b], 0xBEEF)
    }

    fn policies() -> Vec<SharePolicy> {
        vec![SharePolicy::PAPER_RECOMMENDED, SharePolicy::FULL]
    }

    #[test]
    fn fault_free_plan_completes_identically() {
        let s = session();
        let report = check_invariants(
            &s,
            &policies(),
            &FaultPlan::fault_free(1),
            &RetryConfig::default(),
        )
        .unwrap();
        assert!(report.completed);
        assert_eq!(report.summary.dropped, 0);
        assert_eq!(report.summary.retransmissions, 0);
    }

    #[test]
    fn same_seed_same_trace() {
        let s = session();
        let plan = FaultPlan::from_names("drop,dup,reorder", 42, 2).unwrap();
        let a = simulate_setup(&s, &policies(), &plan, &RetryConfig::default());
        let b = simulate_setup(&s, &policies(), &plan, &RetryConfig::default());
        assert_eq!(a.summary, b.summary);
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.result.is_ok(), b.result.is_ok());
    }

    #[test]
    fn different_seeds_usually_differ() {
        let s = session();
        let retry = RetryConfig::default();
        let pols = policies();
        let distinct: std::collections::HashSet<usize> = (0..8)
            .map(|seed| {
                let plan = FaultPlan::from_names("drop,reorder", seed, 2).unwrap();
                simulate_setup(&s, &pols, &plan, &retry).summary.dropped
            })
            .collect();
        assert!(distinct.len() > 1, "eight seeds produced identical traces");
    }

    #[test]
    fn drops_force_retransmissions_but_identical_outcome() {
        let s = session();
        for seed in 0..16 {
            let plan = FaultPlan {
                drop_rate: 0.3,
                ..FaultPlan::fault_free(seed)
            };
            let report = check_invariants(&s, &policies(), &plan, &RetryConfig::default()).unwrap();
            if report.completed {
                assert!(report.summary.dropped > 0 || report.summary.retransmissions == 0);
            }
        }
    }

    #[test]
    fn certain_drop_fails_closed() {
        let s = session();
        let plan = FaultPlan {
            drop_rate: 1.0,
            ..FaultPlan::fault_free(3)
        };
        let sim = simulate_setup(&s, &policies(), &plan, &RetryConfig::default());
        assert!(matches!(
            sim.result,
            Err(SetupError::RetriesExhausted { .. })
        ));
    }

    #[test]
    fn duplicates_are_idempotent() {
        let s = session();
        for seed in 0..8 {
            let plan = FaultPlan {
                duplicate_rate: 1.0,
                ..FaultPlan::fault_free(seed)
            };
            let report = check_invariants(&s, &policies(), &plan, &RetryConfig::default()).unwrap();
            assert!(report.completed, "pure duplication must complete");
            assert!(report.summary.duplicated > 0);
        }
    }

    #[test]
    fn crash_aborts_with_typed_error() {
        let s = session();
        for party in 0..2 {
            let plan = FaultPlan {
                crashes: vec![PartyCrash {
                    party,
                    after_sends: 1,
                }],
                ..FaultPlan::fault_free(9)
            };
            let sim = simulate_setup(&s, &policies(), &plan, &RetryConfig::default());
            assert_eq!(sim.result, Err(SetupError::PartyCrashed { party }));
            check_invariants(&s, &policies(), &plan, &RetryConfig::default()).unwrap();
        }
    }

    #[test]
    fn redaction_holds_under_every_profile() {
        let s = session();
        for profile in FAULT_PROFILES {
            for seed in 0..4 {
                let plan = FaultPlan::from_names(profile, seed, 2).unwrap();
                check_invariants(&s, &policies(), &plan, &RetryConfig::default())
                    .unwrap_or_else(|v| panic!("{profile}/{seed}: {v}"));
            }
        }
    }

    #[test]
    fn observed_run_matches_unobserved_and_records_wire_metrics() {
        use mp_observe::Registry;
        let s = session();
        let plan = FaultPlan::from_names("drop,dup,reorder", 42, 2).unwrap();
        let retry = RetryConfig::default();
        let plain = simulate_setup(&s, &policies(), &plan, &retry);

        let registry = Registry::new();
        let observed = simulate_setup_observed(&s, &policies(), &plan, &retry, &registry);

        // Observation must not perturb the run in any way.
        assert_eq!(plain.summary, observed.summary);
        assert_eq!(plain.ticks, observed.ticks);
        assert_eq!(plain.result.is_ok(), observed.result.is_ok());

        // The live metrics agree with the trace-derived summary.
        let snap = registry.snapshot();
        let sent: u64 =
            snap.counters["transport.party.0.sent"] + snap.counters["transport.party.1.sent"];
        assert_eq!(sent, observed.summary.sent as u64);
        assert_eq!(
            snap.counters["transport.dropped"],
            observed.summary.dropped as u64
        );
        assert_eq!(
            snap.counters["transport.duplicated"],
            observed.summary.duplicated as u64
        );
        assert_eq!(
            snap.histograms["transport.latency_ticks"].count,
            observed.summary.delivered as u64
        );
        let retx: u64 = snap.counters["protocol.party.0.retransmits"]
            + snap.counters["protocol.party.1.retransmits"];
        assert_eq!(retx, observed.summary.retransmissions as u64);
        // The setup span measured the whole run in transport ticks.
        assert_eq!(snap.spans["protocol.setup"].count, 1);
        assert_eq!(snap.spans["protocol.setup"].units, observed.ticks);
        assert_eq!(snap.clock, observed.ticks);
    }

    #[test]
    fn tampered_trace_is_caught() {
        // Forge a trace in which the redacting party leaks a full package.
        let s = session();
        let full = s.parties[0].share_metadata(&SharePolicy::FULL).unwrap();
        let trace = vec![TraceEvent::Delivered {
            at: 1,
            env: Envelope {
                id: crate::transport::MsgId(1),
                from: 0,
                to: 1,
                payload: Payload::Metadata(Box::new(full)),
            },
        }];
        let err = audit_trace_redaction(&s.parties, &policies(), &trace).unwrap_err();
        assert!(matches!(
            err,
            InvariantViolation::RedactionBreached { party: 0, .. }
        ));
    }

    #[test]
    fn unknown_fault_name_rejected() {
        assert!(FaultPlan::from_names("drop,oops", 0, 2).is_err());
        let plan = FaultPlan::from_names(" drop , dup ", 0, 2).unwrap();
        assert!(plan.drop_rate > 0.0 && plan.duplicate_rate > 0.0);
    }

    #[test]
    fn violation_messages_name_the_invariant() {
        let v = InvariantViolation::NotBitIdentical {
            component: "metadata",
            party: Some(1),
        };
        assert!(v.to_string().contains("metadata"));
        let v = InvariantViolation::RedactionBreached {
            party: 0,
            field: "domain",
        };
        assert!(v.to_string().contains("domain"));
    }
}
