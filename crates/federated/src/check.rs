//! Exhaustive small-world model checking of the setup protocol.
//!
//! The seeded simulator ([`crate::sim`]) *samples* the fault space: each
//! seed draws one schedule of drops, duplicates and delays. This module
//! instead **enumerates** the space. For a bounded small world — at most
//! three parties, a tick bound, a fault budget and a delay bound — every
//! distinguishable fault interleaving of the setup state machine is
//! executed, and the same three invariants `check_invariants` asserts per
//! seed are asserted over *all* of them:
//!
//! 1. completed ⇒ bit-identical to the fault-free reference outcome;
//! 2. redaction is never violated, audited against the full wire trace;
//! 3. a crash that fires mid-protocol ⇒ a clean typed
//!    [`SetupError::PartyCrashed`] abort; without a crash, the only
//!    legitimate abort is [`SetupError::RetriesExhausted`].
//!
//! # Why the enumeration is exhaustive
//!
//! The protocol engine is deterministic and single-threaded: the only
//! nondeterminism in a run is what the transport does with each
//! transmission. [`ScheduleTransport`] makes that explicit — every call
//! to `send` consults the next entry of a [`Decision`] vector (deliver,
//! drop, duplicate, or delay by `1..=max_delay` ticks; a delayed message
//! overtakes later traffic, which is exactly reordering). A run is
//! therefore a pure function of `(session, policies, crash schedule,
//! decision vector)`, and enumerating all decision vectors with at most
//! `fault_budget` non-deliver entries — crossed with every crash point
//! `(party, after_sends)` and the no-crash schedule — covers every
//! behaviour the bounded world can exhibit. Decision points that a run
//! never consults cannot influence it, so vectors are extended lazily:
//! each executed prefix spawns children only at the decision indices the
//! run actually reached, with the canonical form "trailing delivers are
//! implicit" guaranteeing every schedule is executed exactly once.
//!
//! Subtrees are additionally deduplicated by *state hash*: the rolling
//! hash of the wire-event history at a branch point, paired with the
//! remaining fault budget. Two branch points with equal history and equal
//! budget have identical futures (the machines are deterministic
//! functions of the delivered history), so the second is pruned.

use crate::multiparty::MultiPartySession;
use crate::party::Party;
use crate::protocol::{RetryConfig, SetupError};
use crate::sim::{verify_run, InvariantViolation, PartyCrash, TraceSummary};
use crate::transport::{Envelope, PartyId, PerfectTransport, TraceEvent, Transport};
use mp_metadata::{Fd, SharePolicy};
use mp_relation::{Attribute, Relation, Schema, Value};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashSet, VecDeque};
use std::hash::{Hash, Hasher};

/// The hard cap on party count: beyond three parties the schedule space
/// grows past what "exhaustive" can honestly mean in CI time.
pub const MAX_PARTIES: usize = 3;

/// One scheduled outcome for a single transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Deliver on the next tick (the fault-free default).
    Deliver,
    /// Silently discard the transmission.
    Drop,
    /// Deliver twice (next tick, both copies).
    Duplicate,
    /// Deliver after `1 + n` ticks, letting later traffic overtake it.
    Delay(u64),
}

impl std::fmt::Display for Decision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Decision::Deliver => write!(f, "deliver"),
            Decision::Drop => write!(f, "drop"),
            Decision::Duplicate => write!(f, "dup"),
            Decision::Delay(n) => write!(f, "delay{n}"),
        }
    }
}

/// Bounds of the small world the checker enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Tick bound: a run passing this bound aborts as
    /// [`SetupError::Stalled`], which the checker reports as a violation.
    pub max_ticks: u64,
    /// Maximum non-deliver decisions per schedule.
    pub fault_budget: usize,
    /// Delay alphabet `1..=max_delay` (0 disables delay/reorder faults).
    pub max_delay: u64,
    /// Crash schedules: every `(party, after_sends)` with `after_sends <
    /// crash_points`, plus the no-crash schedule. 0 disables crashes.
    pub crash_points: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            max_ticks: 256,
            fault_budget: 2,
            max_delay: 2,
            crash_points: 3,
        }
    }
}

/// A violation, with the exact schedule that produced it (replayable:
/// the schedule string lists the crash point and every non-default
/// decision by index).
#[derive(Debug, Clone, PartialEq)]
pub struct ViolationRecord {
    /// Human-readable, replayable schedule description.
    pub schedule: String,
    /// The violated invariant.
    pub violation: InvariantViolation,
}

/// What the exhaustive enumeration covered and found.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// Bounds the enumeration ran under.
    pub config: CheckConfig,
    /// Number of parties in the checked session.
    pub parties: usize,
    /// Schedules actually executed.
    pub runs: u64,
    /// Runs that completed setup.
    pub completed: u64,
    /// Runs aborting with [`SetupError::PartyCrashed`].
    pub aborted_crashed: u64,
    /// Runs aborting with [`SetupError::RetriesExhausted`].
    pub aborted_retries: u64,
    /// Crash schedules enumerated (including the no-crash schedule).
    pub crash_schedules: u64,
    /// Non-default decisions injected, by kind: drops, duplicates, delays.
    pub faults_injected: [u64; 3],
    /// Deepest decision vector any run consulted.
    pub max_depth: usize,
    /// Total per-tick transport states visited across all runs.
    pub total_states: u64,
    /// Distinct per-tick transport state hashes across all runs.
    pub distinct_states: u64,
    /// Distinct terminal outcomes (result kind + trace summary + ticks).
    pub distinct_outcomes: u64,
    /// Subtrees skipped because an identical branch state (history hash +
    /// remaining budget) was already expanded.
    pub pruned_subtrees: u64,
    /// Every invariant violation found (empty = the full bounded space is
    /// clean).
    pub violations: Vec<ViolationRecord>,
}

/// One in-flight message inside the scheduled transport.
#[derive(Debug, Clone)]
struct InFlight {
    deliver_at: u64,
    seq: u64,
    env: Envelope,
}

/// A [`Transport`] driven by an explicit decision vector instead of a
/// seeded RNG. Decisions beyond the vector default to
/// [`Decision::Deliver`]; the index of the first such default and the
/// rolling state hash at every decision point are recorded so the
/// explorer knows where the run could have branched.
pub struct ScheduleTransport {
    schedule: Vec<Decision>,
    cursor: usize,
    crash: Option<PartyCrash>,
    now: u64,
    seq: u64,
    in_flight: Vec<InFlight>,
    inboxes: Vec<VecDeque<Envelope>>,
    sends: Vec<u64>,
    crashed_at: Vec<Option<u64>>,
    trace: Vec<TraceEvent>,
    /// Rolling hash of the wire-event history.
    state_hash: u64,
    /// `state_hash` snapshot at each decision point, pre-decision.
    decision_hashes: Vec<u64>,
    /// `state_hash` snapshot after each tick (the per-tick states).
    tick_hashes: Vec<u64>,
}

fn mix(hash: u64, item: impl Hash) -> u64 {
    let mut h = DefaultHasher::new();
    hash.hash(&mut h);
    item.hash(&mut h);
    h.finish()
}

fn env_fingerprint(env: &Envelope) -> (u64, usize, usize, &'static str) {
    (env.id.0, env.from, env.to, env.payload.kind())
}

impl ScheduleTransport {
    /// A transport for `n_parties` applying `schedule` (then delivering
    /// everything) under an optional crash schedule.
    pub fn new(n_parties: usize, schedule: Vec<Decision>, crash: Option<PartyCrash>) -> Self {
        Self {
            schedule,
            cursor: 0,
            crash,
            now: 0,
            seq: 0,
            in_flight: Vec::new(),
            inboxes: vec![VecDeque::new(); n_parties],
            sends: vec![0; n_parties],
            crashed_at: vec![None; n_parties],
            trace: Vec::new(),
            state_hash: 0,
            decision_hashes: Vec::new(),
            tick_hashes: Vec::new(),
        }
    }

    /// Decision points consulted (including defaults past the vector).
    pub fn consulted(&self) -> usize {
        self.cursor
    }

    fn note(&mut self, tag: u8, at: u64, env: &Envelope) {
        self.state_hash = mix(self.state_hash, (tag, at, env_fingerprint(env)));
    }

    fn schedule_delivery(&mut self, env: Envelope, delay: u64) {
        self.seq += 1;
        self.in_flight.push(InFlight {
            deliver_at: self.now + 1 + delay,
            seq: self.seq,
            env,
        });
    }
}

impl Transport for ScheduleTransport {
    fn n_parties(&self) -> usize {
        self.inboxes.len()
    }

    fn send(&mut self, env: Envelope, attempt: u32) {
        let from = env.from;
        if self.crashed_at[from].is_some() {
            return; // a dead party transmits nothing
        }
        if let Some(crash) = self.crash {
            if crash.party == from && self.sends[from] >= crash.after_sends {
                self.crashed_at[from] = Some(self.now);
                self.trace.push(TraceEvent::Crashed {
                    at: self.now,
                    party: from,
                });
                self.state_hash = mix(self.state_hash, (4u8, self.now, from));
                return;
            }
        }
        self.sends[from] += 1;
        self.note(0, self.now, &env);
        self.trace.push(TraceEvent::Sent {
            at: self.now,
            env: env.clone(),
            attempt,
        });
        // The decision point: consult the schedule, defaulting to Deliver
        // beyond its end. The pre-decision state hash is what identifies
        // this branch point to the explorer.
        self.decision_hashes.push(self.state_hash);
        let decision = self
            .schedule
            .get(self.cursor)
            .copied()
            .unwrap_or(Decision::Deliver);
        self.cursor += 1;
        match decision {
            Decision::Deliver => self.schedule_delivery(env, 0),
            Decision::Drop => {
                self.note(1, self.now, &env);
                self.trace.push(TraceEvent::Dropped { at: self.now, env });
            }
            Decision::Duplicate => {
                self.note(2, self.now, &env);
                self.trace.push(TraceEvent::Duplicated {
                    at: self.now,
                    env: env.clone(),
                });
                self.schedule_delivery(env.clone(), 0);
                self.schedule_delivery(env, 0);
            }
            Decision::Delay(extra) => self.schedule_delivery(env, extra),
        }
    }

    fn tick(&mut self) {
        self.now += 1;
        let mut due: Vec<InFlight> = Vec::new();
        self.in_flight.retain(|m| {
            if m.deliver_at <= self.now {
                due.push(m.clone());
                false
            } else {
                true
            }
        });
        due.sort_by_key(|m| (m.deliver_at, m.seq));
        for m in due {
            if self.crashed_at[m.env.to].is_some() {
                self.note(1, self.now, &m.env);
                self.trace.push(TraceEvent::Dropped {
                    at: self.now,
                    env: m.env,
                });
                continue;
            }
            self.note(3, self.now, &m.env);
            self.trace.push(TraceEvent::Delivered {
                at: self.now,
                env: m.env.clone(),
            });
            self.inboxes[m.env.to].push_back(m.env);
        }
        self.tick_hashes.push(self.state_hash);
    }

    fn recv(&mut self, party: PartyId) -> Option<Envelope> {
        if self.crashed_at[party].is_some() {
            return None;
        }
        self.inboxes[party].pop_front()
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    fn is_crashed(&self, party: PartyId) -> bool {
        self.crashed_at[party].is_some()
    }

    fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }
}

/// The deterministic small-world session the CLI and bench entry points
/// check: `parties` tiny vertical slices over overlapping entity ids
/// (bank / shop / telco), with share policies cycling through the
/// paper's presets (recommended, full, names-only). Small on purpose —
/// exhaustive enumeration cost is exponential in wire traffic, and the
/// protocol surface (PSI, metadata exchange, acks, retries, crashes) is
/// identical at any scale. Errors for counts outside `2..=MAX_PARTIES`.
pub fn small_world_session(
    parties: usize,
) -> Result<(MultiPartySession, Vec<SharePolicy>), String> {
    if !(2..=MAX_PARTIES).contains(&parties) {
        return Err(format!(
            "exhaustive checking needs 2..={MAX_PARTIES} parties; got {parties}"
        ));
    }
    let specs: [(&str, &[&str], bool); MAX_PARTIES] = [
        ("bank", &["u1", "u2", "u3"], true),
        ("shop", &["u3", "u1"], false),
        ("telco", &["u1", "u3"], false),
    ];
    let members = specs[..parties]
        .iter()
        .map(|(name, ids, with_deps)| small_party(name, ids, *with_deps))
        .collect::<Result<Vec<Party>, String>>()?;
    let policies = [
        SharePolicy::PAPER_RECOMMENDED,
        SharePolicy::FULL,
        SharePolicy::NAMES_ONLY,
    ]
    .into_iter()
    .cycle()
    .take(parties)
    .collect();
    Ok((MultiPartySession::new(members, 0xBEEF), policies))
}

fn small_party(name: &str, ids: &[&str], with_deps: bool) -> Result<Party, String> {
    let schema = Schema::new(vec![
        Attribute::categorical("id"),
        Attribute::continuous("x"),
    ])
    .map_err(|e| e.to_string())?;
    let rel = Relation::from_rows(
        schema,
        ids.iter()
            .enumerate()
            .map(|(i, id)| vec![Value::Text((*id).into()), Value::Float(i as f64)])
            .collect(),
    )
    .map_err(|e| e.to_string())?;
    let deps = if with_deps {
        vec![Fd::new(0usize, 1).into()]
    } else {
        vec![]
    };
    Party::new(name, rel, 0, deps).map_err(|e| e.to_string())
}

fn describe_schedule(crash: Option<PartyCrash>, schedule: &[Decision]) -> String {
    let mut parts: Vec<String> = Vec::new();
    if let Some(c) = crash {
        parts.push(format!(
            "crash(party {} after {} sends)",
            c.party, c.after_sends
        ));
    }
    for (i, d) in schedule.iter().enumerate() {
        if *d != Decision::Deliver {
            parts.push(format!("send {i}: {d}"));
        }
    }
    if parts.is_empty() {
        parts.push("fault-free".to_owned());
    }
    parts.join("; ")
}

/// Exhaustively model-checks `session` under `policies` within the
/// bounds of `cfg`. Errors (rather than silently truncating) if the
/// session has more than [`MAX_PARTIES`] parties or the fault-free
/// reference run fails.
pub fn model_check(
    session: &MultiPartySession,
    policies: &[SharePolicy],
    cfg: &CheckConfig,
) -> Result<CheckReport, String> {
    let n = session.parties.len();
    if n > MAX_PARTIES {
        return Err(format!(
            "exhaustive checking is bounded to {MAX_PARTIES} parties; got {n}"
        ));
    }
    let retry = RetryConfig {
        max_ticks: cfg.max_ticks,
        ..RetryConfig::default()
    };

    // Fault-free reference outcome.
    let mut reference_transport = PerfectTransport::new(n);
    let reference = session
        .run_setup_over(policies, &mut reference_transport, &retry)
        .map_err(|e| format!("fault-free reference run failed: {e}"))?;

    // The decision alphabet of non-default outcomes.
    let mut alphabet = vec![Decision::Drop, Decision::Duplicate];
    for d in 1..=cfg.max_delay {
        alphabet.push(Decision::Delay(d));
    }

    // Crash schedules: none, plus every (party, after_sends) point.
    let mut crash_schedules: Vec<Option<PartyCrash>> = vec![None];
    for party in 0..n {
        for after_sends in 0..cfg.crash_points {
            crash_schedules.push(Some(PartyCrash { party, after_sends }));
        }
    }

    let mut report = CheckReport {
        config: *cfg,
        parties: n,
        runs: 0,
        completed: 0,
        aborted_crashed: 0,
        aborted_retries: 0,
        crash_schedules: crash_schedules.len() as u64,
        faults_injected: [0; 3],
        max_depth: 0,
        total_states: 0,
        distinct_states: 0,
        distinct_outcomes: 0,
        pruned_subtrees: 0,
        violations: Vec::new(),
    };
    let mut state_set: HashSet<u64> = HashSet::new();
    let mut outcome_set: HashSet<u64> = HashSet::new();

    for crash in crash_schedules {
        // DFS over decision-vector prefixes in canonical form: every
        // prefix ends with a non-default decision (trailing delivers are
        // implicit), so each schedule is executed exactly once.
        let mut stack: Vec<Vec<Decision>> = vec![Vec::new()];
        let mut expanded: HashSet<(u64, usize)> = HashSet::new();
        while let Some(prefix) = stack.pop() {
            let mut transport = ScheduleTransport::new(n, prefix.clone(), crash);
            let result = session.run_setup_over(policies, &mut transport, &retry);
            report.runs += 1;
            match &result {
                Ok(_) => report.completed += 1,
                Err(SetupError::PartyCrashed { .. }) => report.aborted_crashed += 1,
                Err(SetupError::RetriesExhausted { .. }) => report.aborted_retries += 1,
                Err(_) => {}
            }
            let [drops, dups, delays] = &mut report.faults_injected;
            for d in &prefix {
                match d {
                    Decision::Deliver => {}
                    Decision::Drop => *drops += 1,
                    Decision::Duplicate => *dups += 1,
                    Decision::Delay(_) => *delays += 1,
                }
            }
            let consulted = transport.consulted();
            report.max_depth = report.max_depth.max(consulted);
            report.total_states += transport.tick_hashes.len() as u64;
            state_set.extend(transport.tick_hashes.iter().copied());
            outcome_set.insert(mix(
                transport.state_hash,
                (
                    match &result {
                        Ok(_) => 0u8,
                        Err(SetupError::PartyCrashed { party }) => 1 + *party as u8,
                        Err(SetupError::RetriesExhausted { .. }) => 101,
                        Err(_) => 102,
                    },
                    TraceSummary::from_trace(transport.trace()).sent,
                    transport.now(),
                ),
            ));

            let scheduled: &[PartyId] = match &crash {
                Some(c) => std::slice::from_ref(&c.party),
                None => &[],
            };
            if let Err(violation) = verify_run(
                &session.parties,
                policies,
                &reference,
                &result,
                transport.trace(),
                scheduled,
            ) {
                report.violations.push(ViolationRecord {
                    schedule: describe_schedule(crash, &prefix),
                    violation,
                });
            }

            // Branch: inject one more fault at every decision index this
            // run reached beyond its explicit prefix.
            let faults_used = prefix
                .iter()
                .filter(|d| !matches!(d, Decision::Deliver))
                .count();
            if faults_used >= cfg.fault_budget {
                continue;
            }
            let budget_left = cfg.fault_budget - faults_used;
            for i in prefix.len()..consulted {
                match transport.decision_hashes.get(i) {
                    Some(&h) if !expanded.insert((h, budget_left)) => {
                        report.pruned_subtrees += 1;
                        continue;
                    }
                    _ => {}
                }
                for &alt in &alphabet {
                    let mut child = prefix.clone();
                    child.resize(i, Decision::Deliver);
                    child.push(alt);
                    stack.push(child);
                }
            }
        }
    }
    report.distinct_states = state_set.len() as u64;
    report.distinct_outcomes = outcome_set.len() as u64;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_party_session() -> MultiPartySession {
        small_world_session(2).unwrap().0
    }

    fn three_party_session() -> MultiPartySession {
        small_world_session(3).unwrap().0
    }

    fn policies(n: usize) -> Vec<SharePolicy> {
        [
            SharePolicy::PAPER_RECOMMENDED,
            SharePolicy::FULL,
            SharePolicy::NAMES_ONLY,
        ]
        .into_iter()
        .cycle()
        .take(n)
        .collect()
    }

    #[test]
    fn small_world_session_enforces_party_bounds() {
        assert!(small_world_session(1).is_err());
        assert!(small_world_session(MAX_PARTIES + 1).is_err());
        for n in 2..=MAX_PARTIES {
            let (session, pols) = small_world_session(n).unwrap();
            assert_eq!(session.parties.len(), n);
            assert_eq!(pols.len(), n);
        }
    }

    #[test]
    fn budget_zero_explores_exactly_crash_schedules() {
        let s = two_party_session();
        let cfg = CheckConfig {
            fault_budget: 0,
            crash_points: 2,
            ..CheckConfig::default()
        };
        let report = model_check(&s, &policies(2), &cfg).unwrap();
        // One run per crash schedule: no-crash + 2 parties × 2 points.
        assert_eq!(report.runs, 5);
        assert_eq!(report.crash_schedules, 5);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.completed >= 1);
        assert!(report.aborted_crashed >= 1);
    }

    #[test]
    fn single_fault_layer_is_clean_and_exhaustive() {
        let s = two_party_session();
        let cfg = CheckConfig {
            fault_budget: 1,
            max_delay: 1,
            crash_points: 1,
            ..CheckConfig::default()
        };
        let report = model_check(&s, &policies(2), &cfg).unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // The fault-free run consults max_depth decision points; layer one
        // adds 3 alternatives per point, bar pruning.
        assert!(report.runs > report.max_depth as u64);
        assert!(report.distinct_states > 0);
        assert!(report.distinct_outcomes >= 2);
        assert_eq!(
            report.faults_injected.iter().sum::<u64>() + report.crash_schedules,
            report.runs,
            "each non-root run carries exactly one fault"
        );
    }

    #[test]
    fn three_parties_small_budget_is_clean() {
        let s = three_party_session();
        let cfg = CheckConfig {
            fault_budget: 1,
            max_delay: 1,
            crash_points: 2,
            ..CheckConfig::default()
        };
        let report = model_check(&s, &policies(3), &cfg).unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.parties, 3);
        assert!(report.aborted_crashed > 0);
        assert!(report.completed > 0);
    }

    #[test]
    fn determinism_same_config_same_report() {
        let s = two_party_session();
        let cfg = CheckConfig {
            fault_budget: 1,
            max_delay: 1,
            crash_points: 1,
            ..CheckConfig::default()
        };
        let a = model_check(&s, &policies(2), &cfg).unwrap();
        let b = model_check(&s, &policies(2), &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn party_bound_is_enforced() {
        let parties: Vec<Party> = (0..4)
            .map(|i| small_party(&format!("p{i}"), &["u1"], false).unwrap())
            .collect();
        let s = MultiPartySession::new(parties, 1);
        assert!(model_check(&s, &policies(4), &CheckConfig::default()).is_err());
    }

    #[test]
    fn schedule_description_is_replayable() {
        let desc = describe_schedule(
            Some(PartyCrash {
                party: 1,
                after_sends: 2,
            }),
            &[Decision::Deliver, Decision::Drop, Decision::Delay(2)],
        );
        assert!(desc.contains("crash(party 1 after 2 sends)"));
        assert!(desc.contains("send 1: drop"));
        assert!(desc.contains("send 2: delay2"));
        assert_eq!(describe_schedule(None, &[]), "fault-free");
    }
}
