//! Message-level transport for the VFL setup protocol.
//!
//! The setup phase — PSI digest exchange followed by the metadata
//! broadcast — is where the paper's entire threat model lives, so this
//! module makes its communication explicit: every artefact that crosses a
//! trust boundary travels as a typed [`Envelope`] through a [`Transport`].
//! The protocol engine ([`crate::run_setup_protocol`]) never hands a peer a value
//! directly; it can only `send` envelopes and `recv` what the transport
//! delivers. That single choke point is what makes the fault simulator
//! ([`crate::sim`]) and its message-trace audits possible: *everything* a
//! party ever discloses is in the trace, so redaction invariants can be
//! checked against the wire, not against the code's good intentions.
//!
//! Time is virtual and tick-based. A transport owns a monotonic clock
//! ([`Transport::now`]), advanced by [`Transport::tick`]; deliveries,
//! retry timers and fault schedules are all expressed in ticks, which is
//! what makes simulated runs deterministic and seed-replayable.

use crate::psi::IdDigest;
use mp_metadata::MetadataPackage;
use mp_observe::{Counter, Histogram, Recorder};
use std::collections::VecDeque;

/// Index of a party within a session (position in the party list).
pub type PartyId = usize;

/// Identifier of one *logical* message. Retransmissions of the same
/// logical message reuse the id, which is what lets receivers deduplicate
/// and senders match acks to pending messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgId(pub u64);

impl std::fmt::Display for MsgId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// The typed message bodies of the setup protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// The sender's salted id digests, in its local row order (the PSI
    /// submission — the only identity-derived artefact that ever crosses
    /// the boundary).
    PsiDigests(Vec<IdDigest>),
    /// The sender's metadata package, *already redacted* under its share
    /// policy. The simulator audits exactly this claim against the trace.
    Metadata(Box<MetadataPackage>),
    /// Acknowledges receipt of the logical message with the given id.
    Ack(MsgId),
}

impl Payload {
    /// Short label for traces and summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::PsiDigests(_) => "psi-digests",
            Payload::Metadata(_) => "metadata",
            Payload::Ack(_) => "ack",
        }
    }

    /// `true` for acks (which are themselves never acked or retried).
    pub fn is_ack(&self) -> bool {
        matches!(self, Payload::Ack(_))
    }
}

/// One message in flight: a typed payload plus routing and identity.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Logical message id (stable across retransmissions).
    pub id: MsgId,
    /// Sending party.
    pub from: PartyId,
    /// Receiving party.
    pub to: PartyId,
    /// The typed body.
    pub payload: Payload,
}

/// One observable transport event. The full event sequence is the
/// *message trace*: the ground truth of everything that was ever put on,
/// dropped from, or delivered by the wire.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// A party handed the transport an envelope. `attempt` is the
    /// retransmission ordinal (0 = first transmission).
    Sent {
        /// Virtual time of the send.
        at: u64,
        /// The envelope as submitted.
        env: Envelope,
        /// Retransmission ordinal.
        attempt: u32,
    },
    /// The transport discarded an envelope (fault injection, or delivery
    /// to a crashed party).
    Dropped {
        /// Virtual time of the drop decision.
        at: u64,
        /// The discarded envelope.
        env: Envelope,
    },
    /// The transport queued a second delivery of an envelope.
    Duplicated {
        /// Virtual time of the duplication decision.
        at: u64,
        /// The duplicated envelope.
        env: Envelope,
    },
    /// An envelope reached its recipient's inbox.
    Delivered {
        /// Virtual time of delivery.
        at: u64,
        /// The delivered envelope.
        env: Envelope,
    },
    /// A party crashed; it neither sends nor receives from here on.
    Crashed {
        /// Virtual time of the crash.
        at: u64,
        /// The crashed party.
        party: PartyId,
    },
}

impl TraceEvent {
    /// The envelope carried by the event, if any.
    pub fn envelope(&self) -> Option<&Envelope> {
        match self {
            TraceEvent::Sent { env, .. }
            | TraceEvent::Dropped { env, .. }
            | TraceEvent::Duplicated { env, .. }
            | TraceEvent::Delivered { env, .. } => Some(env),
            TraceEvent::Crashed { .. } => None,
        }
    }
}

/// The message-passing substrate the setup protocol runs over.
///
/// Implementations decide what happens between `send` and `recv`:
/// [`PerfectTransport`] delivers everything once, in order, on the next
/// tick; [`crate::sim::SimTransport`] applies a seeded fault plan.
pub trait Transport {
    /// Number of parties attached to this transport.
    fn n_parties(&self) -> usize;

    /// Submits an envelope for (eventual) delivery. `attempt` is the
    /// retransmission ordinal, recorded in the trace.
    fn send(&mut self, env: Envelope, attempt: u32);

    /// Advances virtual time by one tick, moving due messages to inboxes.
    fn tick(&mut self);

    /// Pops the next delivered envelope for `party`, if any.
    fn recv(&mut self, party: PartyId) -> Option<Envelope>;

    /// Current virtual time.
    fn now(&self) -> u64;

    /// Number of envelopes accepted but not yet delivered or dropped.
    fn in_flight(&self) -> usize;

    /// `true` if the transport considers `party` crashed.
    fn is_crashed(&self, _party: PartyId) -> bool {
        false
    }

    /// The message trace so far.
    fn trace(&self) -> &[TraceEvent];
}

/// Wire-level metric handles, resolved once per transport.
///
/// The default value is the no-op form (dead handles, empty per-party
/// vectors); [`TransportMetrics::new`] registers live handles under
/// `transport.party.<p>.sent`, `transport.party.<p>.delivered`,
/// `transport.dropped`, `transport.duplicated`, `transport.crashes` and
/// the `transport.latency_ticks` histogram. Latencies are virtual-clock
/// deltas (delivery tick − send tick), so every recorded value is
/// deterministic under a fixed fault-plan seed.
#[derive(Debug, Clone, Default)]
pub struct TransportMetrics {
    sent: Vec<Counter>,
    delivered: Vec<Counter>,
    dropped: Counter,
    duplicated: Counter,
    crashes: Counter,
    latency: Histogram,
}

impl TransportMetrics {
    /// Dead handles: every note is discarded.
    pub fn noop() -> Self {
        Self::default()
    }

    /// Live handles registered with `recorder` for `n_parties` parties.
    pub fn new(n_parties: usize, recorder: &dyn Recorder) -> Self {
        TransportMetrics {
            sent: (0..n_parties)
                .map(|p| recorder.counter(&format!("transport.party.{p}.sent")))
                .collect(),
            delivered: (0..n_parties)
                .map(|p| recorder.counter(&format!("transport.party.{p}.delivered")))
                .collect(),
            dropped: recorder.counter("transport.dropped"),
            duplicated: recorder.counter("transport.duplicated"),
            crashes: recorder.counter("transport.crashes"),
            latency: recorder.histogram("transport.latency_ticks", &[1, 2, 4, 8, 16, 32]),
        }
    }

    /// Party `party` handed the transport one envelope.
    pub fn note_sent(&self, party: PartyId) {
        if let Some(c) = self.sent.get(party) {
            c.inc();
        }
    }

    /// One envelope reached `party`'s inbox after `latency_ticks` ticks.
    pub fn note_delivered(&self, party: PartyId, latency_ticks: u64) {
        if let Some(c) = self.delivered.get(party) {
            c.inc();
        }
        self.latency.record(latency_ticks);
    }

    /// One envelope was discarded (fault injection or dead recipient).
    pub fn note_dropped(&self) {
        self.dropped.inc();
    }

    /// One extra delivery was scheduled by a duplication fault.
    pub fn note_duplicated(&self) {
        self.duplicated.inc();
    }

    /// One party crashed.
    pub fn note_crash(&self) {
        self.crashes.inc();
    }
}

/// The fault-free reference transport: every envelope is delivered exactly
/// once, in send order, on the tick after it was sent.
#[derive(Debug, Default)]
pub struct PerfectTransport {
    n_parties: usize,
    now: u64,
    pending: Vec<Envelope>,
    inboxes: Vec<VecDeque<Envelope>>,
    trace: Vec<TraceEvent>,
}

impl PerfectTransport {
    /// Creates a transport connecting `n_parties` parties.
    pub fn new(n_parties: usize) -> Self {
        Self {
            n_parties,
            now: 0,
            pending: Vec::new(),
            inboxes: vec![VecDeque::new(); n_parties],
            trace: Vec::new(),
        }
    }
}

impl Transport for PerfectTransport {
    fn n_parties(&self) -> usize {
        self.n_parties
    }

    fn send(&mut self, env: Envelope, attempt: u32) {
        self.trace.push(TraceEvent::Sent {
            at: self.now,
            env: env.clone(),
            attempt,
        });
        self.pending.push(env);
    }

    fn tick(&mut self) {
        self.now += 1;
        for env in self.pending.drain(..) {
            self.trace.push(TraceEvent::Delivered {
                at: self.now,
                env: env.clone(),
            });
            self.inboxes[env.to].push_back(env);
        }
    }

    fn recv(&mut self, party: PartyId) -> Option<Envelope> {
        self.inboxes[party].pop_front()
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(id: u64, from: PartyId, to: PartyId) -> Envelope {
        Envelope {
            id: MsgId(id),
            from,
            to,
            payload: Payload::Ack(MsgId(id)),
        }
    }

    #[test]
    fn perfect_transport_delivers_in_order_next_tick() {
        let mut t = PerfectTransport::new(2);
        t.send(env(1, 0, 1), 0);
        t.send(env(2, 0, 1), 0);
        assert!(t.recv(1).is_none(), "nothing delivered before a tick");
        assert_eq!(t.in_flight(), 2);
        t.tick();
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.recv(1).unwrap().id, MsgId(1));
        assert_eq!(t.recv(1).unwrap().id, MsgId(2));
        assert!(t.recv(1).is_none());
    }

    #[test]
    fn trace_records_send_and_delivery() {
        let mut t = PerfectTransport::new(2);
        t.send(env(7, 1, 0), 3);
        t.tick();
        let kinds: Vec<&str> = t
            .trace()
            .iter()
            .map(|e| match e {
                TraceEvent::Sent { attempt, .. } => {
                    assert_eq!(*attempt, 3);
                    "sent"
                }
                TraceEvent::Delivered { .. } => "delivered",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, vec!["sent", "delivered"]);
    }

    #[test]
    fn payload_kinds_label() {
        assert_eq!(Payload::PsiDigests(Vec::new()).kind(), "psi-digests");
        assert_eq!(Payload::Ack(MsgId(0)).kind(), "ack");
        assert!(Payload::Ack(MsgId(0)).is_ack());
    }

    #[test]
    fn no_party_crashed_by_default() {
        let t = PerfectTransport::new(3);
        assert!(!t.is_crashed(0));
        assert!(!t.is_crashed(2));
    }
}
