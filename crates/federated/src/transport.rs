//! Message-level transport for the VFL setup protocol.
//!
//! The setup phase — PSI digest exchange followed by the metadata
//! broadcast — is where the paper's entire threat model lives, so this
//! module makes its communication explicit: every artefact that crosses a
//! trust boundary travels as a typed [`Envelope`] through a [`Transport`].
//! The protocol engine ([`crate::run_setup_protocol`]) never hands a peer a value
//! directly; it can only `send` envelopes and `recv` what the transport
//! delivers. That single choke point is what makes the fault simulator
//! ([`crate::sim`]) and its message-trace audits possible: *everything* a
//! party ever discloses is in the trace, so redaction invariants can be
//! checked against the wire, not against the code's good intentions.
//!
//! Time is virtual and tick-based. A transport owns a monotonic clock
//! ([`Transport::now`]), advanced by [`Transport::tick`]; deliveries,
//! retry timers and fault schedules are all expressed in ticks, which is
//! what makes simulated runs deterministic and seed-replayable.

use crate::psi::IdDigest;
use mp_metadata::MetadataPackage;
use mp_observe::{Counter, Histogram, Recorder};
use std::collections::VecDeque;

/// Index of a party within a session (position in the party list).
pub type PartyId = usize;

/// Identifier of one *logical* message. Retransmissions of the same
/// logical message reuse the id, which is what lets receivers deduplicate
/// and senders match acks to pending messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MsgId(pub u64);

impl std::fmt::Display for MsgId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// The typed message bodies of the setup protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// The sender's salted id digests, in its local row order (the PSI
    /// submission — the only identity-derived artefact that ever crosses
    /// the boundary).
    PsiDigests(Vec<IdDigest>),
    /// The sender's metadata package, *already redacted* under its share
    /// policy. The simulator audits exactly this claim against the trace.
    Metadata(Box<MetadataPackage>),
    /// Acknowledges receipt of the logical message with the given id.
    Ack(MsgId),
}

impl Payload {
    /// Short label for traces and summaries.
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::PsiDigests(_) => "psi-digests",
            Payload::Metadata(_) => "metadata",
            Payload::Ack(_) => "ack",
        }
    }

    /// `true` for acks (which are themselves never acked or retried).
    pub fn is_ack(&self) -> bool {
        matches!(self, Payload::Ack(_))
    }
}

/// One message in flight: a typed payload plus routing and identity.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Logical message id (stable across retransmissions).
    pub id: MsgId,
    /// Sending party.
    pub from: PartyId,
    /// Receiving party.
    pub to: PartyId,
    /// The typed body.
    pub payload: Payload,
}

/// Errors decoding a wire-encoded [`Envelope`].
///
/// Every malformed input maps to exactly one of these variants — the
/// decoder never panics, which is what the `envelope` fuzz target
/// enforces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input was empty. Rejected up front: a zero-length frame is a
    /// framing bug at the transport layer, not a truncated envelope.
    Empty,
    /// The input exceeds [`MAX_ENVELOPE_BYTES`]. Rejected before any
    /// parsing or allocation so a hostile frame length cannot balloon
    /// memory.
    FrameTooLarge {
        /// Bytes presented.
        len: usize,
        /// The cap ([`MAX_ENVELOPE_BYTES`]).
        cap: usize,
    },
    /// Input ended before a field could be read in full.
    UnexpectedEof {
        /// Byte offset where reading stopped.
        offset: usize,
        /// Bytes still required.
        needed: usize,
    },
    /// The leading magic bytes are not `MP`.
    BadMagic,
    /// The wire version byte is not one this build reads.
    UnsupportedVersion {
        /// Version byte found.
        found: u8,
    },
    /// The payload tag byte names no known payload kind.
    BadTag {
        /// Tag byte found.
        tag: u8,
        /// Byte offset of the tag.
        offset: usize,
    },
    /// A declared length exceeds the bytes actually present.
    Oversized {
        /// Length the header claimed.
        claimed: usize,
        /// Bytes available.
        available: usize,
    },
    /// An embedded metadata package was not valid UTF-8.
    BadUtf8 {
        /// Byte offset of the embedded text.
        offset: usize,
    },
    /// An embedded metadata package failed to decode.
    Package(String),
    /// Well-formed envelope followed by unconsumed bytes.
    TrailingBytes {
        /// Offset of the first unconsumed byte.
        offset: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Empty => write!(f, "empty input (zero-length frame)"),
            WireError::FrameTooLarge { len, cap } => {
                write!(
                    f,
                    "frame of {len} bytes exceeds the {cap}-byte envelope cap"
                )
            }
            WireError::UnexpectedEof { offset, needed } => {
                write!(
                    f,
                    "unexpected end of input at byte {offset} ({needed} more needed)"
                )
            }
            WireError::BadMagic => write!(f, "bad magic bytes (expected `MP`)"),
            WireError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported wire version {found} (this build reads {WIRE_VERSION})"
                )
            }
            WireError::BadTag { tag, offset } => {
                write!(f, "unknown payload tag {tag} at byte {offset}")
            }
            WireError::Oversized { claimed, available } => {
                write!(
                    f,
                    "declared length {claimed} exceeds the {available} bytes present"
                )
            }
            WireError::BadUtf8 { offset } => {
                write!(f, "embedded package at byte {offset} is not valid UTF-8")
            }
            WireError::Package(msg) => write!(f, "embedded metadata package: {msg}"),
            WireError::TrailingBytes { offset } => {
                write!(f, "trailing bytes after envelope (from byte {offset})")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Wire-format version written by [`Envelope::encode`].
pub const WIRE_VERSION: u8 = 1;

/// Hard cap on the byte size of a single wire-encoded [`Envelope`].
///
/// [`Envelope::decode`] rejects larger inputs (and the socket framing
/// layer rejects larger *declared* lengths) before touching the body, so
/// an attacker-controlled length field can never drive an allocation.
/// 16 MiB comfortably fits any real PSI submission or metadata package
/// this system produces.
pub const MAX_ENVELOPE_BYTES: usize = 16 * 1024 * 1024;

const MAGIC: [u8; 2] = *b"MP";
const TAG_PSI: u8 = 1;
const TAG_METADATA: u8 = 2;
const TAG_ACK: u8 = 3;

/// Bounded little-endian reader over untrusted bytes. All accesses are
/// checked; nothing here can panic or over-allocate.
struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Oversized {
            claimed: n,
            available: self.bytes.len() - self.pos,
        })?;
        match self.bytes.get(self.pos..end) {
            Some(chunk) => {
                self.pos = end;
                Ok(chunk)
            }
            None => Err(WireError::UnexpectedEof {
                offset: self.pos,
                needed: end - self.bytes.len(),
            }),
        }
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        let chunk = self.take(1)?;
        Ok(chunk.first().copied().unwrap_or_default())
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        let mut buf = [0u8; 4];
        buf.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(buf))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(buf))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

impl Envelope {
    /// Serialises the envelope to its binary wire form.
    ///
    /// Layout (all integers little-endian): magic `MP`, version byte,
    /// `id: u64`, `from: u64`, `to: u64`, payload tag byte, then the
    /// payload — PSI digests as a `u32` count plus raw `u64` digests,
    /// metadata as a `u32` byte length plus canonical package JSON, acks
    /// as the acked `u64` id.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        out.extend_from_slice(&MAGIC);
        out.push(WIRE_VERSION);
        out.extend_from_slice(&self.id.0.to_le_bytes());
        out.extend_from_slice(&(self.from as u64).to_le_bytes());
        out.extend_from_slice(&(self.to as u64).to_le_bytes());
        match &self.payload {
            Payload::PsiDigests(digests) => {
                out.push(TAG_PSI);
                out.extend_from_slice(&(digests.len() as u32).to_le_bytes());
                for d in digests {
                    out.extend_from_slice(&d.raw().to_le_bytes());
                }
            }
            Payload::Metadata(pkg) => {
                out.push(TAG_METADATA);
                let json = pkg.to_json();
                out.extend_from_slice(&(json.len() as u32).to_le_bytes());
                out.extend_from_slice(json.as_bytes());
            }
            Payload::Ack(id) => {
                out.push(TAG_ACK);
                out.extend_from_slice(&id.0.to_le_bytes());
            }
        }
        out
    }

    /// Decodes an envelope from untrusted bytes.
    ///
    /// Total: every input either yields an envelope or a typed
    /// [`WireError`]. Declared lengths are validated against the bytes
    /// actually present before any allocation, so a hostile header cannot
    /// cause an over-allocation.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.is_empty() {
            return Err(WireError::Empty);
        }
        if bytes.len() > MAX_ENVELOPE_BYTES {
            return Err(WireError::FrameTooLarge {
                len: bytes.len(),
                cap: MAX_ENVELOPE_BYTES,
            });
        }
        let mut r = WireReader { bytes, pos: 0 };
        if r.take(2)? != MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = r.u8()?;
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion { found: version });
        }
        let id = MsgId(r.u64()?);
        let from = r.u64()? as PartyId;
        let to = r.u64()? as PartyId;
        let tag_offset = r.pos;
        let tag = r.u8()?;
        let payload = match tag {
            TAG_PSI => {
                let count = r.u32()? as usize;
                let need = count.saturating_mul(8);
                if need > r.remaining() {
                    return Err(WireError::Oversized {
                        claimed: need,
                        available: r.remaining(),
                    });
                }
                let mut digests = Vec::with_capacity(count);
                for _ in 0..count {
                    digests.push(IdDigest::from_raw(r.u64()?));
                }
                Payload::PsiDigests(digests)
            }
            TAG_METADATA => {
                let len = r.u32()? as usize;
                if len > r.remaining() {
                    return Err(WireError::Oversized {
                        claimed: len,
                        available: r.remaining(),
                    });
                }
                let offset = r.pos;
                let json =
                    std::str::from_utf8(r.take(len)?).map_err(|_| WireError::BadUtf8 { offset })?;
                let pkg = MetadataPackage::from_json(json)
                    .map_err(|e| WireError::Package(e.to_string()))?;
                Payload::Metadata(Box::new(pkg))
            }
            TAG_ACK => Payload::Ack(MsgId(r.u64()?)),
            other => {
                return Err(WireError::BadTag {
                    tag: other,
                    offset: tag_offset,
                })
            }
        };
        if r.remaining() != 0 {
            return Err(WireError::TrailingBytes { offset: r.pos });
        }
        Ok(Envelope {
            id,
            from,
            to,
            payload,
        })
    }
}

/// One observable transport event. The full event sequence is the
/// *message trace*: the ground truth of everything that was ever put on,
/// dropped from, or delivered by the wire.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// A party handed the transport an envelope. `attempt` is the
    /// retransmission ordinal (0 = first transmission).
    Sent {
        /// Virtual time of the send.
        at: u64,
        /// The envelope as submitted.
        env: Envelope,
        /// Retransmission ordinal.
        attempt: u32,
    },
    /// The transport discarded an envelope (fault injection, or delivery
    /// to a crashed party).
    Dropped {
        /// Virtual time of the drop decision.
        at: u64,
        /// The discarded envelope.
        env: Envelope,
    },
    /// The transport queued a second delivery of an envelope.
    Duplicated {
        /// Virtual time of the duplication decision.
        at: u64,
        /// The duplicated envelope.
        env: Envelope,
    },
    /// An envelope reached its recipient's inbox.
    Delivered {
        /// Virtual time of delivery.
        at: u64,
        /// The delivered envelope.
        env: Envelope,
    },
    /// A party crashed; it neither sends nor receives from here on.
    Crashed {
        /// Virtual time of the crash.
        at: u64,
        /// The crashed party.
        party: PartyId,
    },
}

impl TraceEvent {
    /// The envelope carried by the event, if any.
    pub fn envelope(&self) -> Option<&Envelope> {
        match self {
            TraceEvent::Sent { env, .. }
            | TraceEvent::Dropped { env, .. }
            | TraceEvent::Duplicated { env, .. }
            | TraceEvent::Delivered { env, .. } => Some(env),
            TraceEvent::Crashed { .. } => None,
        }
    }
}

/// The message-passing substrate the setup protocol runs over.
///
/// Implementations decide what happens between `send` and `recv`:
/// [`PerfectTransport`] delivers everything once, in order, on the next
/// tick; [`crate::sim::SimTransport`] applies a seeded fault plan.
pub trait Transport {
    /// Number of parties attached to this transport.
    fn n_parties(&self) -> usize;

    /// Submits an envelope for (eventual) delivery. `attempt` is the
    /// retransmission ordinal, recorded in the trace.
    fn send(&mut self, env: Envelope, attempt: u32);

    /// Advances virtual time by one tick, moving due messages to inboxes.
    fn tick(&mut self);

    /// Pops the next delivered envelope for `party`, if any.
    fn recv(&mut self, party: PartyId) -> Option<Envelope>;

    /// Current virtual time.
    fn now(&self) -> u64;

    /// Number of envelopes accepted but not yet delivered or dropped.
    fn in_flight(&self) -> usize;

    /// `true` if the transport considers `party` crashed.
    fn is_crashed(&self, _party: PartyId) -> bool {
        false
    }

    /// The message trace so far.
    fn trace(&self) -> &[TraceEvent];
}

/// Wire-level metric handles, resolved once per transport.
///
/// The default value is the no-op form (dead handles, empty per-party
/// vectors); [`TransportMetrics::new`] registers live handles under
/// `transport.party.<p>.sent`, `transport.party.<p>.delivered`,
/// `transport.dropped`, `transport.duplicated`, `transport.crashes` and
/// the `transport.latency_ticks` histogram. Latencies are virtual-clock
/// deltas (delivery tick − send tick), so every recorded value is
/// deterministic under a fixed fault-plan seed.
#[derive(Debug, Clone, Default)]
pub struct TransportMetrics {
    sent: Vec<Counter>,
    delivered: Vec<Counter>,
    dropped: Counter,
    duplicated: Counter,
    crashes: Counter,
    latency: Histogram,
}

impl TransportMetrics {
    /// Dead handles: every note is discarded.
    pub fn noop() -> Self {
        Self::default()
    }

    /// Live handles registered with `recorder` for `n_parties` parties.
    pub fn new(n_parties: usize, recorder: &dyn Recorder) -> Self {
        TransportMetrics {
            sent: (0..n_parties)
                .map(|p| recorder.counter(&format!("transport.party.{p}.sent")))
                .collect(),
            delivered: (0..n_parties)
                .map(|p| recorder.counter(&format!("transport.party.{p}.delivered")))
                .collect(),
            dropped: recorder.counter("transport.dropped"),
            duplicated: recorder.counter("transport.duplicated"),
            crashes: recorder.counter("transport.crashes"),
            latency: recorder.histogram("transport.latency_ticks", &[1, 2, 4, 8, 16, 32]),
        }
    }

    /// Party `party` handed the transport one envelope.
    pub fn note_sent(&self, party: PartyId) {
        if let Some(c) = self.sent.get(party) {
            c.inc();
        }
    }

    /// One envelope reached `party`'s inbox after `latency_ticks` ticks.
    pub fn note_delivered(&self, party: PartyId, latency_ticks: u64) {
        if let Some(c) = self.delivered.get(party) {
            c.inc();
        }
        self.latency.record(latency_ticks);
    }

    /// One envelope was discarded (fault injection or dead recipient).
    pub fn note_dropped(&self) {
        self.dropped.inc();
    }

    /// One extra delivery was scheduled by a duplication fault.
    pub fn note_duplicated(&self) {
        self.duplicated.inc();
    }

    /// One party crashed.
    pub fn note_crash(&self) {
        self.crashes.inc();
    }
}

/// The fault-free reference transport: every envelope is delivered exactly
/// once, in send order, on the tick after it was sent.
#[derive(Debug, Default)]
pub struct PerfectTransport {
    n_parties: usize,
    now: u64,
    pending: Vec<Envelope>,
    inboxes: Vec<VecDeque<Envelope>>,
    trace: Vec<TraceEvent>,
}

impl PerfectTransport {
    /// Creates a transport connecting `n_parties` parties.
    pub fn new(n_parties: usize) -> Self {
        Self {
            n_parties,
            now: 0,
            pending: Vec::new(),
            inboxes: vec![VecDeque::new(); n_parties],
            trace: Vec::new(),
        }
    }
}

impl Transport for PerfectTransport {
    fn n_parties(&self) -> usize {
        self.n_parties
    }

    fn send(&mut self, env: Envelope, attempt: u32) {
        self.trace.push(TraceEvent::Sent {
            at: self.now,
            env: env.clone(),
            attempt,
        });
        self.pending.push(env);
    }

    fn tick(&mut self) {
        self.now += 1;
        for env in self.pending.drain(..) {
            self.trace.push(TraceEvent::Delivered {
                at: self.now,
                env: env.clone(),
            });
            self.inboxes[env.to].push_back(env);
        }
    }

    fn recv(&mut self, party: PartyId) -> Option<Envelope> {
        self.inboxes[party].pop_front()
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(id: u64, from: PartyId, to: PartyId) -> Envelope {
        Envelope {
            id: MsgId(id),
            from,
            to,
            payload: Payload::Ack(MsgId(id)),
        }
    }

    #[test]
    fn perfect_transport_delivers_in_order_next_tick() {
        let mut t = PerfectTransport::new(2);
        t.send(env(1, 0, 1), 0);
        t.send(env(2, 0, 1), 0);
        assert!(t.recv(1).is_none(), "nothing delivered before a tick");
        assert_eq!(t.in_flight(), 2);
        t.tick();
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.recv(1).unwrap().id, MsgId(1));
        assert_eq!(t.recv(1).unwrap().id, MsgId(2));
        assert!(t.recv(1).is_none());
    }

    #[test]
    fn trace_records_send_and_delivery() {
        let mut t = PerfectTransport::new(2);
        t.send(env(7, 1, 0), 3);
        t.tick();
        let kinds: Vec<&str> = t
            .trace()
            .iter()
            .map(|e| match e {
                TraceEvent::Sent { attempt, .. } => {
                    assert_eq!(*attempt, 3);
                    "sent"
                }
                TraceEvent::Delivered { .. } => "delivered",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, vec!["sent", "delivered"]);
    }

    #[test]
    fn payload_kinds_label() {
        assert_eq!(Payload::PsiDigests(Vec::new()).kind(), "psi-digests");
        assert_eq!(Payload::Ack(MsgId(0)).kind(), "ack");
        assert!(Payload::Ack(MsgId(0)).is_ack());
    }

    #[test]
    fn no_party_crashed_by_default() {
        let t = PerfectTransport::new(3);
        assert!(!t.is_crashed(0));
        assert!(!t.is_crashed(2));
    }

    fn metadata_env() -> Envelope {
        let pkg = mp_metadata::MetadataPackage {
            format_version: Some(mp_metadata::FORMAT_VERSION),
            party: "bank".into(),
            attributes: Vec::new(),
            dependencies: Vec::new(),
            n_rows: Some(3),
        };
        Envelope {
            id: MsgId(9),
            from: 1,
            to: 0,
            payload: Payload::Metadata(Box::new(pkg)),
        }
    }

    #[test]
    fn wire_roundtrip_all_payload_kinds() {
        let digests = vec![IdDigest::from_raw(7), IdDigest::from_raw(u64::MAX)];
        let envs = [
            Envelope {
                id: MsgId(1),
                from: 0,
                to: 2,
                payload: Payload::PsiDigests(digests),
            },
            metadata_env(),
            env(3, 2, 1),
        ];
        for e in envs {
            let bytes = e.encode();
            let back = Envelope::decode(&bytes).unwrap();
            assert_eq!(back, e);
            // Canonical fixed point: re-encoding reproduces the bytes.
            assert_eq!(back.encode(), bytes);
        }
    }

    #[test]
    fn wire_decode_rejects_malformed_inputs_with_typed_errors() {
        let good = metadata_env().encode();
        // Truncation at every prefix is an error, never a panic.
        for cut in 0..good.len() {
            assert!(Envelope::decode(&good[..cut]).is_err(), "prefix {cut}");
        }
        assert!(matches!(Envelope::decode(b"XX"), Err(WireError::BadMagic)));
        let mut v = good.clone();
        v[2] = 9;
        assert!(matches!(
            Envelope::decode(&v),
            Err(WireError::UnsupportedVersion { found: 9 })
        ));
        let mut t = good.clone();
        t[27] = 77; // payload tag byte
        assert!(matches!(
            Envelope::decode(&t),
            Err(WireError::BadTag { tag: 77, .. })
        ));
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(matches!(
            Envelope::decode(&trailing),
            Err(WireError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn wire_decode_validates_lengths_before_allocating() {
        // A PSI envelope claiming u32::MAX digests but carrying none.
        let mut bytes = Envelope {
            id: MsgId(1),
            from: 0,
            to: 1,
            payload: Payload::PsiDigests(Vec::new()),
        }
        .encode();
        let count_at = bytes.len() - 4;
        bytes[count_at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Envelope::decode(&bytes),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn wire_decode_rejects_zero_length_frames() {
        // Regression: a zero-length frame is a typed error, not EOF noise
        // — the socket framing layer depends on distinguishing the two.
        assert_eq!(Envelope::decode(&[]), Err(WireError::Empty));
    }

    #[test]
    fn wire_decode_rejects_over_cap_frames_before_parsing() {
        // Regression: an over-cap input is rejected by size alone, before
        // magic/version parsing (the head bytes here are garbage).
        let oversized = vec![0u8; MAX_ENVELOPE_BYTES + 1];
        assert_eq!(
            Envelope::decode(&oversized),
            Err(WireError::FrameTooLarge {
                len: MAX_ENVELOPE_BYTES + 1,
                cap: MAX_ENVELOPE_BYTES,
            })
        );
        // An input exactly at the cap is parsed (and fails on content,
        // not on size).
        let at_cap = vec![0u8; MAX_ENVELOPE_BYTES];
        assert!(matches!(
            Envelope::decode(&at_cap),
            Err(WireError::BadMagic)
        ));
    }

    #[test]
    fn wire_decode_rejects_bad_embedded_package() {
        let mut e = metadata_env().encode();
        // Corrupt the first byte of the embedded JSON (after the 4-byte
        // length at offset 28).
        e[32] = b'!';
        assert!(matches!(
            Envelope::decode(&e),
            Err(WireError::Package(_)) | Err(WireError::BadUtf8 { .. })
        ));
    }
}
