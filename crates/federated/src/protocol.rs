//! The two-party VFL setup protocol: PSI alignment, then metadata
//! exchange under each party's redaction policy.
//!
//! This is the "preliminary stage of model training" whose privacy the
//! paper analyses: after [`VflSession::run_setup`] both parties hold the
//! other's (redacted) metadata package and an aligned view of the common
//! population — precisely the state in which the adversarial synthesis of
//! §II-B becomes possible.

use crate::party::Party;
use crate::psi::{align, PsiAlignment};
use mp_metadata::{MetadataPackage, SharePolicy};
use mp_relation::{Relation, Result};

/// The setup outcome for one direction of the exchange.
#[derive(Debug, Clone)]
pub struct SetupOutcome {
    /// Alignment of both parties' rows over the common population.
    pub alignment: PsiAlignment,
    /// Party A's aligned rows (feature columns only, A's coordinates).
    pub aligned_a: Relation,
    /// Party B's aligned rows.
    pub aligned_b: Relation,
    /// The metadata A disclosed to B.
    pub metadata_from_a: MetadataPackage,
    /// The metadata B disclosed to A.
    pub metadata_from_b: MetadataPackage,
}

/// A two-party session.
#[derive(Debug, Clone)]
pub struct VflSession {
    /// Party A (by convention the active/label party).
    pub party_a: Party,
    /// Party B (passive).
    pub party_b: Party,
    /// PSI salt both parties agreed on out of band.
    pub salt: u64,
}

impl VflSession {
    /// Creates a session.
    pub fn new(party_a: Party, party_b: Party, salt: u64) -> Self {
        Self {
            party_a,
            party_b,
            salt,
        }
    }

    /// Runs PSI and the metadata exchange. `policy_a` governs what A
    /// disclosed to B and vice versa.
    pub fn run_setup(
        &self,
        policy_a: &SharePolicy,
        policy_b: &SharePolicy,
    ) -> Result<SetupOutcome> {
        let alignment = align(&self.party_a.ids()?, &self.party_b.ids()?, self.salt);
        let aligned_a = self
            .party_a
            .aligned_rows(&alignment.rows_a)?
            .project(&self.party_a.feature_columns())?;
        let aligned_b = self
            .party_b
            .aligned_rows(&alignment.rows_b)?
            .project(&self.party_b.feature_columns())?;
        Ok(SetupOutcome {
            alignment,
            aligned_a,
            aligned_b,
            metadata_from_a: self.party_a.share_metadata(policy_a)?,
            metadata_from_b: self.party_b.share_metadata(policy_b)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_metadata::Fd;
    use mp_relation::{Attribute, Schema, Value};

    fn parties() -> (Party, Party) {
        let schema_a = Schema::new(vec![
            Attribute::categorical("id"),
            Attribute::continuous("income"),
        ])
        .unwrap();
        let rel_a = Relation::from_rows(
            schema_a,
            vec![
                vec!["u1".into(), 10.0.into()],
                vec!["u2".into(), 20.0.into()],
                vec!["u3".into(), 30.0.into()],
            ],
        )
        .unwrap();
        let schema_b = Schema::new(vec![
            Attribute::categorical("id"),
            Attribute::continuous("spend"),
            Attribute::categorical("tier"),
        ])
        .unwrap();
        let rel_b = Relation::from_rows(
            schema_b,
            vec![
                vec!["u3".into(), 5.0.into(), "hi".into()],
                vec!["u4".into(), 7.0.into(), "lo".into()],
                vec!["u1".into(), 9.0.into(), "hi".into()],
            ],
        )
        .unwrap();
        (
            Party::new("bank", rel_a, 0, vec![]).unwrap(),
            Party::new("shop", rel_b, 0, vec![Fd::new(1usize, 2).into()]).unwrap(),
        )
    }

    #[test]
    fn setup_aligns_and_exchanges() {
        let (a, b) = parties();
        let session = VflSession::new(a, b, 99);
        let out = session
            .run_setup(&SharePolicy::FULL, &SharePolicy::FULL)
            .unwrap();
        assert_eq!(out.alignment.len(), 2); // u1, u3
        assert_eq!(out.aligned_a.n_rows(), 2);
        assert_eq!(out.aligned_b.n_rows(), 2);
        // Feature-only projections: no id columns.
        assert_eq!(out.aligned_a.arity(), 1);
        assert_eq!(out.aligned_b.arity(), 2);
        // Metadata flows both ways; B's FD survives re-indexing.
        assert_eq!(out.metadata_from_a.party, "bank");
        assert_eq!(out.metadata_from_b.dependencies.len(), 1);
    }

    #[test]
    fn aligned_rows_refer_to_same_entity() {
        let (a, b) = parties();
        let ids_a = a.ids().unwrap();
        let ids_b = b.ids().unwrap();
        let session = VflSession::new(a, b, 5);
        let out = session
            .run_setup(&SharePolicy::FULL, &SharePolicy::FULL)
            .unwrap();
        for i in 0..out.alignment.len() {
            assert_eq!(
                ids_a[out.alignment.rows_a[i]],
                ids_b[out.alignment.rows_b[i]]
            );
        }
    }

    #[test]
    fn asymmetric_policies() {
        let (a, b) = parties();
        let session = VflSession::new(a, b, 1);
        let out = session
            .run_setup(&SharePolicy::NAMES_ONLY, &SharePolicy::FULL)
            .unwrap();
        assert!(!out.metadata_from_a.shares_domains());
        assert!(out.metadata_from_b.shares_domains());
    }

    #[test]
    fn empty_intersection_setup() {
        let schema = Schema::new(vec![Attribute::categorical("id")]).unwrap();
        let ra = Relation::from_rows(schema.clone(), vec![vec![Value::Text("a".into())]]).unwrap();
        let rb = Relation::from_rows(schema, vec![vec![Value::Text("b".into())]]).unwrap();
        let session = VflSession::new(
            Party::new("a", ra, 0, vec![]).unwrap(),
            Party::new("b", rb, 0, vec![]).unwrap(),
            0,
        );
        let out = session
            .run_setup(&SharePolicy::FULL, &SharePolicy::FULL)
            .unwrap();
        assert!(out.alignment.is_empty());
        assert_eq!(out.aligned_a.n_rows(), 0);
    }
}
