//! The VFL setup protocol: PSI alignment, then metadata exchange under
//! each party's redaction policy — run as a message-driven state machine
//! over a [`Transport`].
//!
//! This is the "preliminary stage of model training" whose privacy the
//! paper analyses: after [`VflSession::run_setup`] both parties hold the
//! other's (redacted) metadata package and an aligned view of the common
//! population — precisely the state in which the adversarial synthesis of
//! §II-B becomes possible.
//!
//! ## Protocol shape
//!
//! Every party runs the same two-phase state machine:
//!
//! 1. **PSI phase** — send own salted digests to every peer; once every
//!    peer's digests have arrived, the k-way intersection
//!    ([`crate::psi::intersect_all`]) is computed locally (all parties
//!    derive the identical canonical alignment).
//! 2. **Metadata phase** — send the own *policy-redacted* metadata
//!    package to every peer; setup completes for a party once it has sent
//!    its package, received every peer's, and seen every own message
//!    acked.
//!
//! Every non-ack message expects an [`Payload::Ack`]; unacked messages
//! are retransmitted with capped exponential backoff ([`RetryConfig`])
//! and receivers deduplicate by [`MsgId`], so the protocol tolerates
//! dropped, duplicated, reordered and delayed messages. It either
//! completes with an outcome bit-identical to the fault-free run, or
//! fails closed with a typed [`SetupError`] — never a partial exchange.

use crate::multiparty::{MultiAlignment, MultiSetupOutcome};
use crate::party::Party;
use crate::psi::{intersect_all, IdDigest, PsiAlignment};
use crate::transport::{Envelope, MsgId, PartyId, Payload, PerfectTransport, Transport};
use mp_metadata::{MetadataPackage, SharePolicy};
use mp_observe::{Counter, NoopRecorder, Recorder};
use mp_relation::{Relation, RelationError, Result};
use std::collections::HashSet;

/// The setup outcome for one direction of the exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct SetupOutcome {
    /// Alignment of both parties' rows over the common population.
    pub alignment: PsiAlignment,
    /// Party A's aligned rows (feature columns only, A's coordinates).
    pub aligned_a: Relation,
    /// Party B's aligned rows.
    pub aligned_b: Relation,
    /// The metadata A disclosed to B.
    pub metadata_from_a: MetadataPackage,
    /// The metadata B disclosed to A.
    pub metadata_from_b: MetadataPackage,
}

/// How the protocol fails when the transport misbehaves beyond what
/// retries can absorb. Setup never returns a partial outcome: it is
/// either complete or one of these.
#[derive(Debug, Clone, PartialEq)]
pub enum SetupError {
    /// A party crashed mid-setup; the survivors aborted cleanly.
    PartyCrashed {
        /// The crashed party.
        party: PartyId,
    },
    /// A message exhausted its retransmission budget without an ack (and
    /// the unreachable peer is not known to have crashed).
    RetriesExhausted {
        /// The retrying sender.
        from: PartyId,
        /// The unresponsive recipient.
        to: PartyId,
        /// Payload kind of the undeliverable message.
        kind: &'static str,
    },
    /// No message was in flight, no retry pending, and setup incomplete —
    /// or the tick budget ran out. A liveness backstop; it cannot occur
    /// under the shipped transports unless a fault plan silences a party
    /// without crashing it.
    Stalled {
        /// Virtual time at which progress stopped.
        at: u64,
    },
    /// A local data error (projection, selection, metadata description).
    Data(RelationError),
}

impl std::fmt::Display for SetupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SetupError::PartyCrashed { party } => {
                write!(f, "setup aborted: party {party} crashed")
            }
            SetupError::RetriesExhausted { from, to, kind } => write!(
                f,
                "setup aborted: party {from} exhausted retries sending {kind} to party {to}"
            ),
            SetupError::Stalled { at } => write!(f, "setup stalled at tick {at}"),
            SetupError::Data(e) => write!(f, "setup data error: {e}"),
        }
    }
}

impl std::error::Error for SetupError {}

impl From<RelationError> for SetupError {
    fn from(e: RelationError) -> Self {
        SetupError::Data(e)
    }
}

/// Retransmission policy for unacked protocol messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Ticks to wait for an ack before the first retransmission.
    pub ack_timeout: u64,
    /// Maximum retransmissions per logical message (on top of the first
    /// transmission); exceeding it aborts setup.
    pub max_retries: u32,
    /// Cap on the exponential backoff between retransmissions, in ticks.
    pub backoff_cap: u64,
    /// Hard bound on total protocol ticks (liveness backstop).
    pub max_ticks: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        Self {
            ack_timeout: 8,
            max_retries: 6,
            backoff_cap: 64,
            max_ticks: 10_000,
        }
    }
}

impl RetryConfig {
    /// Backoff before retransmission number `attempt` (1-based), doubling
    /// from [`RetryConfig::ack_timeout`] and capped at
    /// [`RetryConfig::backoff_cap`].
    pub fn backoff(&self, attempt: u32) -> u64 {
        self.ack_timeout
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.backoff_cap.max(self.ack_timeout))
    }

    /// Total ticks a sender spends on one message before giving up: the
    /// initial ack wait plus every capped backoff in the retry ladder.
    /// `mpriv serve` derives its handshake and drain budgets from this —
    /// the server never abandons a connection the protocol's own retry
    /// policy would still consider retryable.
    pub fn ladder_ticks(&self) -> u64 {
        (1..=self.max_retries).fold(self.ack_timeout, |acc, attempt| {
            acc.saturating_add(self.backoff(attempt))
        })
    }
}

/// One logical message awaiting its ack.
#[derive(Debug, Clone)]
struct PendingMsg {
    env: Envelope,
    attempt: u32,
    resend_at: u64,
}

/// Per-party protocol state machine.
#[derive(Debug)]
struct PartyMachine {
    digests: Vec<IdDigest>,
    package: MetadataPackage,
    digests_sent: bool,
    metadata_sent: bool,
    peer_digests: Vec<Option<Vec<IdDigest>>>,
    peer_metadata: Vec<Option<MetadataPackage>>,
    pending: Vec<PendingMsg>,
    seen: HashSet<MsgId>,
}

impl PartyMachine {
    fn new(id: PartyId, n: usize, digests: Vec<IdDigest>, package: MetadataPackage) -> Self {
        let mut peer_digests: Vec<Option<Vec<IdDigest>>> = vec![None; n];
        peer_digests[id] = Some(digests.clone());
        let mut peer_metadata: Vec<Option<MetadataPackage>> = vec![None; n];
        peer_metadata[id] = Some(package.clone());
        Self {
            digests,
            package,
            digests_sent: false,
            metadata_sent: false,
            peer_digests,
            peer_metadata,
            pending: Vec::new(),
            seen: HashSet::new(),
        }
    }

    fn all_digests_in(&self) -> bool {
        self.peer_digests.iter().all(Option::is_some)
    }

    fn all_metadata_in(&self) -> bool {
        self.peer_metadata.iter().all(Option::is_some)
    }

    /// Setup is complete for this party: everything sent, received and
    /// acked.
    fn done(&self) -> bool {
        self.digests_sent
            && self.metadata_sent
            && self.all_digests_in()
            && self.all_metadata_in()
            && self.pending.is_empty()
    }
}

/// Drives the k-party setup protocol over `transport` until every live
/// party completes, a fault aborts it, or the tick budget runs out.
///
/// `parties[p]` discloses under `policies[p]`. The returned outcome is
/// assembled from *received* messages (each party's package as stored by
/// a peer, the alignment from party 0's received digest view), so the
/// result genuinely flowed through the transport.
pub fn run_setup_protocol(
    parties: &[Party],
    policies: &[SharePolicy],
    salt: u64,
    transport: &mut dyn Transport,
    retry: &RetryConfig,
) -> std::result::Result<MultiSetupOutcome, SetupError> {
    run_setup_protocol_observed(parties, policies, salt, transport, retry, &NoopRecorder)
}

/// Protocol metric handles for one party's engine, resolved once per run.
///
/// Counter names are shared with the in-process harness and the socket
/// client: `protocol.party.<p>.{sent,recv,retransmits,backoff_ticks}`
/// plus the run-wide `protocol.acks_sent` total (the recorder interns by
/// name, so every engine's `acks_sent` handle feeds the same counter).
pub(crate) struct EngineMetrics {
    sent: Counter,
    recv: Counter,
    retransmits: Counter,
    backoff_ticks: Counter,
    acks_sent: Counter,
}

impl EngineMetrics {
    pub(crate) fn new(party: PartyId, recorder: &dyn Recorder) -> Self {
        EngineMetrics {
            sent: recorder.counter(&format!("protocol.party.{party}.sent")),
            recv: recorder.counter(&format!("protocol.party.{party}.recv")),
            retransmits: recorder.counter(&format!("protocol.party.{party}.retransmits")),
            backoff_ticks: recorder.counter(&format!("protocol.party.{party}.backoff_ticks")),
            acks_sent: recorder.counter("protocol.acks_sent"),
        }
    }
}

/// One party's half of the setup protocol, stepped explicitly.
///
/// This is the unit the in-process harness ([`run_setup_protocol`])
/// replicates per party over a shared [`Transport`], and the unit the
/// socket client ([`crate::serve`]) runs *alone* against a remote peer
/// pool — the state machine is identical in both deployments, which is
/// what makes the simulator a faithful test double for the daemon.
pub(crate) struct PartyEngine {
    id: PartyId,
    machine: PartyMachine,
}

impl PartyEngine {
    /// Engine for party `id` of `n`, holding its PSI submission and its
    /// *already redacted* metadata package.
    pub(crate) fn new(
        id: PartyId,
        n: usize,
        digests: Vec<IdDigest>,
        package: MetadataPackage,
    ) -> Self {
        Self {
            id,
            machine: PartyMachine::new(id, n, digests, package),
        }
    }

    /// Setup is complete for this party: everything sent, received and
    /// acked.
    pub(crate) fn done(&self) -> bool {
        self.machine.done()
    }

    /// `true` while any own message still awaits its ack.
    pub(crate) fn has_pending(&self) -> bool {
        !self.machine.pending.is_empty()
    }

    /// `true` if no retransmission timer can fire at or before `tick`.
    pub(crate) fn idle_beyond(&self, tick: u64) -> bool {
        self.machine.pending.iter().all(|pm| pm.resend_at > tick)
    }

    /// Every peer's digest submission, once all have arrived.
    pub(crate) fn digest_views(&self) -> Option<Vec<&[IdDigest]>> {
        self.machine
            .peer_digests
            .iter()
            .map(|d| d.as_deref())
            .collect()
    }

    /// Party `p`'s metadata as received (own package for `p == id`).
    pub(crate) fn metadata_from(&self, p: PartyId) -> Option<&MetadataPackage> {
        self.machine.peer_metadata.get(p).and_then(Option::as_ref)
    }

    /// The own (redacted) package this engine broadcasts.
    pub(crate) fn own_package(&self) -> &MetadataPackage {
        &self.machine.package
    }

    /// One engine step: drain the inbox (idempotently, acking every
    /// non-ack), broadcast the own digests once, broadcast the own
    /// metadata once the PSI inputs are complete, then retransmit overdue
    /// unacked messages with capped backoff. `fresh_id` allocates message
    /// ids — the in-process harness shares one counter across all
    /// engines, the socket client uses a party-strided stream so ids stay
    /// session-unique without coordination.
    pub(crate) fn pump(
        &mut self,
        transport: &mut dyn Transport,
        retry: &RetryConfig,
        fresh_id: &mut dyn FnMut() -> MsgId,
        metrics: &EngineMetrics,
    ) -> std::result::Result<(), SetupError> {
        let p = self.id;
        let m = &mut self.machine;
        // -- Receive, idempotently; (re-)ack everything non-ack. -----
        while let Some(env) = transport.recv(p) {
            metrics.recv.inc();
            match &env.payload {
                Payload::Ack(of) => {
                    m.pending.retain(|pm| pm.env.id != *of);
                    continue;
                }
                Payload::PsiDigests(digests) => {
                    if m.seen.insert(env.id) {
                        if let Some(slot) = m.peer_digests.get_mut(env.from) {
                            *slot = Some(digests.clone());
                        }
                    }
                }
                Payload::Metadata(pkg) => {
                    if m.seen.insert(env.id) {
                        if let Some(slot) = m.peer_metadata.get_mut(env.from) {
                            *slot = Some((**pkg).clone());
                        }
                    }
                }
            }
            // Duplicates are re-acked: the first ack may have been lost.
            metrics.acks_sent.inc();
            transport.send(
                Envelope {
                    id: fresh_id(),
                    from: p,
                    to: env.from,
                    payload: Payload::Ack(env.id),
                },
                0,
            );
        }

        // -- Phase 1: broadcast own digests once. ---------------------
        if !m.digests_sent {
            m.digests_sent = true;
            let digests = m.digests.clone();
            let n = m.peer_digests.len();
            for q in (0..n).filter(|&q| q != p) {
                let env = Envelope {
                    id: fresh_id(),
                    from: p,
                    to: q,
                    payload: Payload::PsiDigests(digests.clone()),
                };
                m.pending.push(PendingMsg {
                    env: env.clone(),
                    attempt: 0,
                    resend_at: transport.now() + retry.ack_timeout,
                });
                metrics.sent.inc();
                transport.send(env, 0);
            }
        }

        // -- Phase 2: once PSI inputs are complete, broadcast the
        //    redacted metadata package. ------------------------------
        if m.all_digests_in() && !m.metadata_sent {
            m.metadata_sent = true;
            let pkg = m.package.clone();
            let n = m.peer_digests.len();
            for q in (0..n).filter(|&q| q != p) {
                let env = Envelope {
                    id: fresh_id(),
                    from: p,
                    to: q,
                    payload: Payload::Metadata(Box::new(pkg.clone())),
                };
                m.pending.push(PendingMsg {
                    env: env.clone(),
                    attempt: 0,
                    resend_at: transport.now() + retry.ack_timeout,
                });
                metrics.sent.inc();
                transport.send(env, 0);
            }
        }

        // -- Retransmit overdue unacked messages with capped backoff. -
        let now = transport.now();
        let overdue: Vec<usize> = m
            .pending
            .iter()
            .enumerate()
            .filter(|(_, pm)| pm.resend_at <= now)
            .map(|(i, _)| i)
            .collect();
        for i in overdue {
            let Some(pm) = m.pending.get_mut(i) else {
                continue;
            };
            if pm.attempt >= retry.max_retries {
                let to = pm.env.to;
                return Err(if transport.is_crashed(to) {
                    SetupError::PartyCrashed { party: to }
                } else {
                    SetupError::RetriesExhausted {
                        from: p,
                        to,
                        kind: pm.env.payload.kind(),
                    }
                });
            }
            pm.attempt += 1;
            pm.resend_at = now + retry.backoff(pm.attempt);
            let env = pm.env.clone();
            let attempt = pm.attempt;
            metrics.retransmits.inc();
            metrics.backoff_ticks.add(retry.backoff(attempt));
            transport.send(env, attempt);
        }
        Ok(())
    }
}

/// [`run_setup_protocol`] with an explicit [`Recorder`].
///
/// Records per-party `protocol.party.<p>.{sent,recv,retransmits,
/// backoff_ticks}` counters, the `protocol.acks_sent` total, and the
/// `protocol.setup` span, and drives the recorder's logical clock from
/// the transport's virtual tick clock (`set_time` each tick) — so the
/// span's duration is the protocol's length *in ticks*, never wall time.
/// The protocol engine is single-threaded and the recorder never feeds
/// back into protocol decisions, so every recorded value is a pure
/// function of `(parties, policies, transport behaviour)`.
pub fn run_setup_protocol_observed(
    parties: &[Party],
    policies: &[SharePolicy],
    salt: u64,
    transport: &mut dyn Transport,
    retry: &RetryConfig,
    recorder: &dyn Recorder,
) -> std::result::Result<MultiSetupOutcome, SetupError> {
    assert_eq!(policies.len(), parties.len(), "one policy per party");
    assert_eq!(
        transport.n_parties(),
        parties.len(),
        "transport must connect every party"
    );
    let n = parties.len();

    // Local, failure-free preparation: digests and redacted packages.
    let mut engines: Vec<PartyEngine> = Vec::with_capacity(n);
    for (p, (party, policy)) in parties.iter().zip(policies).enumerate() {
        let digests = party.psi_submission(salt)?;
        let package = party.share_metadata(policy)?;
        engines.push(PartyEngine::new(p, n, digests, package));
    }

    let mut next_msg_id = 0u64;
    let mut fresh_id = || {
        next_msg_id += 1;
        MsgId(next_msg_id)
    };

    let metrics: Vec<EngineMetrics> = (0..n).map(|p| EngineMetrics::new(p, recorder)).collect();
    recorder.set_time(transport.now());
    let _setup_span = recorder.span("protocol.setup").enter();

    loop {
        recorder.set_time(transport.now());
        // Step every live party: drain inbox, then advance the send side.
        // All engines share one message-id counter, so the wire trace is
        // byte-identical to the pre-engine inline loop.
        #[allow(clippy::needless_range_loop)]
        for p in 0..n {
            if transport.is_crashed(p) {
                continue;
            }
            engines[p].pump(transport, retry, &mut fresh_id, &metrics[p])?;
        }

        // Completion: every non-crashed party done. (A party that crashed
        // *after* finishing its role does not block the survivors.)
        if (0..n).all(|p| transport.is_crashed(p) || engines[p].done()) {
            break;
        }

        // Liveness backstops.
        if transport.now() >= retry.max_ticks {
            return Err(SetupError::Stalled {
                at: transport.now(),
            });
        }
        if transport.in_flight() == 0 {
            let idle = (0..n).all(|p| {
                transport.is_crashed(p)
                    || !engines[p].has_pending()
                    || engines[p].idle_beyond(retry.max_ticks)
            });
            // Nothing in flight and no retry will ever fire: if an
            // unfinished live party is waiting on a crashed peer, abort
            // with the crash; otherwise we genuinely stalled.
            if idle && !(0..n).all(|p| transport.is_crashed(p) || engines[p].done()) {
                if let Some(crashed) = (0..n).find(|&p| transport.is_crashed(p)) {
                    return Err(SetupError::PartyCrashed { party: crashed });
                }
                return Err(SetupError::Stalled {
                    at: transport.now(),
                });
            }
        }

        transport.tick();
    }
    recorder.set_time(transport.now());

    assemble_outcome(parties, &engines, transport)
}

/// Builds the outcome from *received* state: the alignment from the first
/// live party's digest view (identical at every party by construction),
/// each party's metadata from a peer's stored copy.
fn assemble_outcome(
    parties: &[Party],
    engines: &[PartyEngine],
    transport: &dyn Transport,
) -> std::result::Result<MultiSetupOutcome, SetupError> {
    let n = parties.len();
    let viewer = (0..n).find(|&p| !transport.is_crashed(p)).unwrap_or(0);
    let views: Vec<&[IdDigest]> = engines[viewer]
        .digest_views()
        .expect("completed setup has all digests"); // lint: allow(no-panic) reason="this runs only after the engine reported Completed, which requires every peer digest to have been received"
    let alignment = MultiAlignment {
        rows: intersect_all(&views),
    };

    let mut aligned = Vec::with_capacity(n);
    let mut metadata = Vec::with_capacity(n);
    for (p, party) in parties.iter().enumerate() {
        aligned.push(
            party
                .aligned_rows(&alignment.rows[p])?
                .project(&party.feature_columns())?,
        );
        // Prefer the copy a live peer actually received over the wire.
        let receiver = (0..n).find(|&q| q != p && !transport.is_crashed(q));
        let pkg = match receiver {
            Some(q) => engines[q]
                .metadata_from(p)
                .cloned()
                .expect("completed setup has all metadata"), // lint: allow(no-panic) reason="this runs only after the engine reported Completed, which requires every live party to hold all peer metadata"
            None => engines[p].own_package().clone(),
        };
        metadata.push(pkg);
    }
    Ok(MultiSetupOutcome {
        alignment,
        aligned,
        metadata,
    })
}

/// A two-party session.
#[derive(Debug, Clone)]
pub struct VflSession {
    /// Party A (by convention the active/label party).
    pub party_a: Party,
    /// Party B (passive).
    pub party_b: Party,
    /// PSI salt both parties agreed on out of band.
    pub salt: u64,
}

impl VflSession {
    /// Creates a session.
    pub fn new(party_a: Party, party_b: Party, salt: u64) -> Self {
        Self {
            party_a,
            party_b,
            salt,
        }
    }

    /// Runs PSI and the metadata exchange over a fault-free transport.
    /// `policy_a` governs what A disclosed to B and vice versa.
    pub fn run_setup(
        &self,
        policy_a: &SharePolicy,
        policy_b: &SharePolicy,
    ) -> Result<SetupOutcome> {
        let mut transport = PerfectTransport::new(2);
        self.run_setup_over(policy_a, policy_b, &mut transport, &RetryConfig::default())
            .map_err(|e| match e {
                SetupError::Data(inner) => inner,
                other => RelationError::Io(other.to_string()),
            })
    }

    /// Runs the setup protocol over an arbitrary [`Transport`] — the
    /// entry point the fault simulator uses. Fails closed with a typed
    /// [`SetupError`] when the transport defeats the retry budget.
    pub fn run_setup_over(
        &self,
        policy_a: &SharePolicy,
        policy_b: &SharePolicy,
        transport: &mut dyn Transport,
        retry: &RetryConfig,
    ) -> std::result::Result<SetupOutcome, SetupError> {
        let parties = [self.party_a.clone(), self.party_b.clone()];
        let policies = [*policy_a, *policy_b];
        let multi = run_setup_protocol(&parties, &policies, self.salt, transport, retry)?;
        Ok(two_party_outcome(multi))
    }
}

/// Converts a two-party [`MultiSetupOutcome`] into the pairwise shape.
fn two_party_outcome(multi: MultiSetupOutcome) -> SetupOutcome {
    let ([metadata_from_a, metadata_from_b], [aligned_a, aligned_b], [rows_a, rows_b]) = (
        pair(multi.metadata),
        pair(multi.aligned),
        pair(multi.alignment.rows),
    );
    SetupOutcome {
        alignment: PsiAlignment { rows_a, rows_b },
        aligned_a,
        aligned_b,
        metadata_from_a,
        metadata_from_b,
    }
}

/// Fixes a per-party vector to the two-party shape.
fn pair<T>(v: Vec<T>) -> [T; 2] {
    match <[T; 2]>::try_from(v) {
        Ok(both) => both,
        // lint: allow(no-panic) reason="run_setup_protocol returns exactly one entry per party and VflSession always passes two parties"
        Err(v) => unreachable!("two-party session produced {} entries", v.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_metadata::Fd;
    use mp_relation::{Attribute, Schema, Value};

    fn parties() -> (Party, Party) {
        let schema_a = Schema::new(vec![
            Attribute::categorical("id"),
            Attribute::continuous("income"),
        ])
        .unwrap();
        let rel_a = Relation::from_rows(
            schema_a,
            vec![
                vec!["u1".into(), 10.0.into()],
                vec!["u2".into(), 20.0.into()],
                vec!["u3".into(), 30.0.into()],
            ],
        )
        .unwrap();
        let schema_b = Schema::new(vec![
            Attribute::categorical("id"),
            Attribute::continuous("spend"),
            Attribute::categorical("tier"),
        ])
        .unwrap();
        let rel_b = Relation::from_rows(
            schema_b,
            vec![
                vec!["u3".into(), 5.0.into(), "hi".into()],
                vec!["u4".into(), 7.0.into(), "lo".into()],
                vec!["u1".into(), 9.0.into(), "hi".into()],
            ],
        )
        .unwrap();
        (
            Party::new("bank", rel_a, 0, vec![]).unwrap(),
            Party::new("shop", rel_b, 0, vec![Fd::new(1usize, 2).into()]).unwrap(),
        )
    }

    #[test]
    fn setup_aligns_and_exchanges() {
        let (a, b) = parties();
        let session = VflSession::new(a, b, 99);
        let out = session
            .run_setup(&SharePolicy::FULL, &SharePolicy::FULL)
            .unwrap();
        assert_eq!(out.alignment.len(), 2); // u1, u3
        assert_eq!(out.aligned_a.n_rows(), 2);
        assert_eq!(out.aligned_b.n_rows(), 2);
        // Feature-only projections: no id columns.
        assert_eq!(out.aligned_a.arity(), 1);
        assert_eq!(out.aligned_b.arity(), 2);
        // Metadata flows both ways; B's FD survives re-indexing.
        assert_eq!(out.metadata_from_a.party, "bank");
        assert_eq!(out.metadata_from_b.dependencies.len(), 1);
    }

    #[test]
    fn aligned_rows_refer_to_same_entity() {
        let (a, b) = parties();
        let ids_a = a.ids().unwrap();
        let ids_b = b.ids().unwrap();
        let session = VflSession::new(a, b, 5);
        let out = session
            .run_setup(&SharePolicy::FULL, &SharePolicy::FULL)
            .unwrap();
        for i in 0..out.alignment.len() {
            assert_eq!(
                ids_a[out.alignment.rows_a[i]],
                ids_b[out.alignment.rows_b[i]]
            );
        }
    }

    #[test]
    fn asymmetric_policies() {
        let (a, b) = parties();
        let session = VflSession::new(a, b, 1);
        let out = session
            .run_setup(&SharePolicy::NAMES_ONLY, &SharePolicy::FULL)
            .unwrap();
        assert!(!out.metadata_from_a.shares_domains());
        assert!(out.metadata_from_b.shares_domains());
    }

    #[test]
    fn empty_intersection_setup() {
        let schema = Schema::new(vec![Attribute::categorical("id")]).unwrap();
        let ra = Relation::from_rows(schema.clone(), vec![vec![Value::Text("a".into())]]).unwrap();
        let rb = Relation::from_rows(schema, vec![vec![Value::Text("b".into())]]).unwrap();
        let session = VflSession::new(
            Party::new("a", ra, 0, vec![]).unwrap(),
            Party::new("b", rb, 0, vec![]).unwrap(),
            0,
        );
        let out = session
            .run_setup(&SharePolicy::FULL, &SharePolicy::FULL)
            .unwrap();
        assert!(out.alignment.is_empty());
        assert_eq!(out.aligned_a.n_rows(), 0);
    }

    #[test]
    fn setup_over_transport_matches_direct_psi() {
        // The message-driven engine reproduces the pure-function PSI.
        let (a, b) = parties();
        let ids_a = a.ids().unwrap();
        let ids_b = b.ids().unwrap();
        let direct = crate::psi::align(&ids_a, &ids_b, 99);
        let session = VflSession::new(a, b, 99);
        let out = session
            .run_setup(&SharePolicy::FULL, &SharePolicy::FULL)
            .unwrap();
        assert_eq!(out.alignment, direct);
    }

    #[test]
    fn trace_contains_both_phases() {
        let (a, b) = parties();
        let session = VflSession::new(a, b, 7);
        let mut transport = PerfectTransport::new(2);
        session
            .run_setup_over(
                &SharePolicy::FULL,
                &SharePolicy::FULL,
                &mut transport,
                &RetryConfig::default(),
            )
            .unwrap();
        let kinds: HashSet<&str> = transport
            .trace()
            .iter()
            .filter_map(|e| e.envelope())
            .map(|env| env.payload.kind())
            .collect();
        assert!(kinds.contains("psi-digests"));
        assert!(kinds.contains("metadata"));
        assert!(kinds.contains("ack"));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let retry = RetryConfig {
            ack_timeout: 4,
            max_retries: 10,
            backoff_cap: 20,
            max_ticks: 100,
        };
        assert_eq!(retry.backoff(1), 8);
        assert_eq!(retry.backoff(2), 16);
        assert_eq!(retry.backoff(3), 20);
        assert_eq!(retry.backoff(9), 20);
    }

    #[test]
    fn setup_error_displays() {
        let e = SetupError::PartyCrashed { party: 1 };
        assert!(e.to_string().contains("party 1 crashed"));
        let e = SetupError::RetriesExhausted {
            from: 0,
            to: 1,
            kind: "metadata",
        };
        assert!(e.to_string().contains("metadata"));
        let e = SetupError::Stalled { at: 7 };
        assert!(e.to_string().contains("tick 7"));
    }
}
