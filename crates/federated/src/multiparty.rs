//! N-party vertical federated learning.
//!
//! The paper's exposition is two-party (Figure 1), but nothing in its
//! analysis depends on that: with `k` silos the setup phase runs a k-way
//! PSI and a full metadata broadcast, and every pairwise exchange carries
//! the same §III/§IV leakage surface. This module generalises
//! [`crate::VflSession`] accordingly.

use crate::party::Party;
use crate::psi::{digest, IdDigest};
use mp_metadata::{MetadataPackage, SharePolicy};
use mp_relation::{Relation, Result};
use std::collections::HashMap;

/// Alignment of N parties over their common entities: `rows[p][i]` is the
/// row of party `p` holding the i-th common entity (same `i` ⇒ same
/// entity everywhere).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiAlignment {
    /// Per-party row indices, all of equal length.
    pub rows: Vec<Vec<usize>>,
}

impl MultiAlignment {
    /// Number of common entities.
    pub fn len(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// `true` if no entity is shared by all parties.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// K-way PSI over salted digests: entities present in *every* party's id
/// column, in canonical (ascending digest) order. First occurrence wins
/// within a party, as in the two-party case.
pub fn multi_align(id_columns: &[&[mp_relation::Value]], salt: u64) -> MultiAlignment {
    if id_columns.is_empty() {
        return MultiAlignment { rows: Vec::new() };
    }
    let mut maps: Vec<HashMap<IdDigest, usize>> = Vec::with_capacity(id_columns.len());
    for ids in id_columns {
        let mut m = HashMap::new();
        for (i, v) in ids.iter().enumerate() {
            m.entry(digest(v, salt)).or_insert(i);
        }
        maps.push(m);
    }
    let mut common: Vec<IdDigest> = maps[0]
        .keys()
        .filter(|d| maps[1..].iter().all(|m| m.contains_key(d)))
        .copied()
        .collect();
    common.sort();
    let rows = maps
        .iter()
        .map(|m| common.iter().map(|d| m[d]).collect())
        .collect();
    MultiAlignment { rows }
}

/// Outcome of an N-party setup.
#[derive(Debug, Clone)]
pub struct MultiSetupOutcome {
    /// The k-way alignment.
    pub alignment: MultiAlignment,
    /// Each party's aligned feature slice (id columns removed).
    pub aligned: Vec<Relation>,
    /// Each party's disclosed metadata (same order as the parties).
    pub metadata: Vec<MetadataPackage>,
}

/// An N-party VFL session.
#[derive(Debug, Clone)]
pub struct MultiPartySession {
    /// The participants; by convention party 0 is the active (label) party.
    pub parties: Vec<Party>,
    /// Shared PSI salt.
    pub salt: u64,
}

impl MultiPartySession {
    /// Creates a session over at least one party.
    pub fn new(parties: Vec<Party>, salt: u64) -> Self {
        Self { parties, salt }
    }

    /// Runs k-way PSI and the metadata broadcast; `policies[p]` governs
    /// what party `p` discloses to the rest.
    pub fn run_setup(&self, policies: &[SharePolicy]) -> Result<MultiSetupOutcome> {
        assert_eq!(policies.len(), self.parties.len(), "one policy per party");
        let id_cols: Vec<Vec<mp_relation::Value>> = self
            .parties
            .iter()
            .map(|p| p.ids())
            .collect::<Result<_>>()?;
        let id_slices: Vec<&[mp_relation::Value]> = id_cols.iter().map(Vec::as_slice).collect();
        let alignment = multi_align(&id_slices, self.salt);
        let mut aligned = Vec::with_capacity(self.parties.len());
        let mut metadata = Vec::with_capacity(self.parties.len());
        for (p, (party, policy)) in self.parties.iter().zip(policies).enumerate() {
            aligned.push(
                party
                    .aligned_rows(&alignment.rows[p])?
                    .project(&party.feature_columns())?,
            );
            metadata.push(party.share_metadata(policy)?);
        }
        Ok(MultiSetupOutcome {
            alignment,
            aligned,
            metadata,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_relation::{Attribute, Schema, Value};

    fn party(name: &str, ids: &[&str], feature: &str) -> Party {
        let schema = Schema::new(vec![
            Attribute::categorical("id"),
            Attribute::continuous(feature),
        ])
        .unwrap();
        let rel = Relation::from_rows(
            schema,
            ids.iter()
                .enumerate()
                .map(|(i, id)| vec![Value::Text((*id).into()), Value::Float(i as f64)])
                .collect(),
        )
        .unwrap();
        Party::new(name, rel, 0, vec![]).unwrap()
    }

    #[test]
    fn three_way_alignment_is_entity_consistent() {
        let a = party("a", &["u1", "u2", "u3", "u4"], "fa");
        let b = party("b", &["u4", "u2", "u9"], "fb");
        let c = party("c", &["u2", "u4", "u7"], "fc");
        let ids: Vec<Vec<Value>> = [&a, &b, &c].iter().map(|p| p.ids().unwrap()).collect();
        let session = MultiPartySession::new(vec![a, b, c], 42);
        let out = session
            .run_setup(&[
                SharePolicy::FULL,
                SharePolicy::FULL,
                SharePolicy::NAMES_ONLY,
            ])
            .unwrap();
        // Common entities: u2, u4.
        assert_eq!(out.alignment.len(), 2);
        for i in 0..out.alignment.len() {
            let e0 = &ids[0][out.alignment.rows[0][i]];
            for p in 1..3 {
                assert_eq!(e0, &ids[p][out.alignment.rows[p][i]]);
            }
        }
        // Aligned slices have feature columns only, equal length.
        for slice in &out.aligned {
            assert_eq!(slice.n_rows(), 2);
            assert_eq!(slice.arity(), 1);
        }
        // Per-party policies applied.
        assert!(out.metadata[0].shares_domains());
        assert!(!out.metadata[2].shares_domains());
    }

    #[test]
    fn two_party_multi_matches_pairwise_psi() {
        let a = party("a", &["x", "y", "z"], "fa");
        let b = party("b", &["z", "x"], "fb");
        let ids_a = a.ids().unwrap();
        let ids_b = b.ids().unwrap();
        let multi = multi_align(&[&ids_a, &ids_b], 9);
        let pair = crate::psi::align(&ids_a, &ids_b, 9);
        assert_eq!(multi.rows[0], pair.rows_a);
        assert_eq!(multi.rows[1], pair.rows_b);
    }

    #[test]
    fn disjoint_party_empties_intersection() {
        let a = party("a", &["u1"], "fa");
        let b = party("b", &["u2"], "fb");
        let ids: Vec<Vec<Value>> = [&a, &b].iter().map(|p| p.ids().unwrap()).collect();
        let al = multi_align(&[&ids[0], &ids[1]], 0);
        assert!(al.is_empty());
    }

    #[test]
    fn empty_party_list() {
        assert!(multi_align(&[], 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "one policy per party")]
    fn policy_count_must_match() {
        let a = party("a", &["u1"], "fa");
        let session = MultiPartySession::new(vec![a], 0);
        let _ = session.run_setup(&[]);
    }
}
