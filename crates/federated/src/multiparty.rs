//! N-party vertical federated learning.
//!
//! The paper's exposition is two-party (Figure 1), but nothing in its
//! analysis depends on that: with `k` silos the setup phase runs a k-way
//! PSI and a full metadata broadcast, and every pairwise exchange carries
//! the same §III/§IV leakage surface. This module generalises
//! [`crate::VflSession`] accordingly.

use crate::party::Party;
use crate::protocol::{run_setup_protocol, run_setup_protocol_observed, RetryConfig, SetupError};
use crate::psi::{intersect_all, submit, IdDigest};
use crate::transport::{PerfectTransport, Transport};
use mp_metadata::{MetadataPackage, SharePolicy};
use mp_relation::{Relation, Result};

/// Alignment of N parties over their common entities: `rows[p][i]` is the
/// row of party `p` holding the i-th common entity (same `i` ⇒ same
/// entity everywhere).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiAlignment {
    /// Per-party row indices, all of equal length.
    pub rows: Vec<Vec<usize>>,
}

impl MultiAlignment {
    /// Number of common entities.
    pub fn len(&self) -> usize {
        self.rows.first().map_or(0, Vec::len)
    }

    /// `true` if no entity is shared by all parties.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// K-way PSI over salted digests: entities present in *every* party's id
/// column, in canonical (ascending digest) order. First occurrence wins
/// within a party, as in the two-party case.
pub fn multi_align(id_columns: &[&[mp_relation::Value]], salt: u64) -> MultiAlignment {
    let submissions: Vec<Vec<IdDigest>> = id_columns.iter().map(|ids| submit(ids, salt)).collect();
    let slices: Vec<&[IdDigest]> = submissions.iter().map(Vec::as_slice).collect();
    MultiAlignment {
        rows: intersect_all(&slices),
    }
}

/// Outcome of an N-party setup.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSetupOutcome {
    /// The k-way alignment.
    pub alignment: MultiAlignment,
    /// Each party's aligned feature slice (id columns removed).
    pub aligned: Vec<Relation>,
    /// Each party's disclosed metadata (same order as the parties).
    pub metadata: Vec<MetadataPackage>,
}

/// An N-party VFL session.
#[derive(Debug, Clone)]
pub struct MultiPartySession {
    /// The participants; by convention party 0 is the active (label) party.
    pub parties: Vec<Party>,
    /// Shared PSI salt.
    pub salt: u64,
}

impl MultiPartySession {
    /// Creates a session over at least one party.
    pub fn new(parties: Vec<Party>, salt: u64) -> Self {
        Self { parties, salt }
    }

    /// Runs k-way PSI and the metadata broadcast over a fault-free
    /// transport; `policies[p]` governs what party `p` discloses to the
    /// rest.
    pub fn run_setup(&self, policies: &[SharePolicy]) -> Result<MultiSetupOutcome> {
        let mut transport = PerfectTransport::new(self.parties.len());
        self.run_setup_over(policies, &mut transport, &RetryConfig::default())
            .map_err(|e| match e {
                SetupError::Data(inner) => inner,
                other => mp_relation::RelationError::Io(other.to_string()),
            })
    }

    /// Runs the setup protocol over an arbitrary [`Transport`] — the
    /// entry point of the fault simulator ([`crate::sim`]). Fails closed
    /// with a typed [`SetupError`] when the transport defeats the retry
    /// budget.
    pub fn run_setup_over(
        &self,
        policies: &[SharePolicy],
        transport: &mut dyn Transport,
        retry: &RetryConfig,
    ) -> std::result::Result<MultiSetupOutcome, SetupError> {
        run_setup_protocol(&self.parties, policies, self.salt, transport, retry)
    }

    /// [`run_setup_over`](Self::run_setup_over) with an explicit
    /// [`mp_observe::Recorder`]; see
    /// [`run_setup_protocol_observed`] for what gets recorded.
    pub fn run_setup_over_observed(
        &self,
        policies: &[SharePolicy],
        transport: &mut dyn Transport,
        retry: &RetryConfig,
        recorder: &dyn mp_observe::Recorder,
    ) -> std::result::Result<MultiSetupOutcome, SetupError> {
        run_setup_protocol_observed(
            &self.parties,
            policies,
            self.salt,
            transport,
            retry,
            recorder,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_relation::{Attribute, Schema, Value};

    fn party(name: &str, ids: &[&str], feature: &str) -> Party {
        let schema = Schema::new(vec![
            Attribute::categorical("id"),
            Attribute::continuous(feature),
        ])
        .unwrap();
        let rel = Relation::from_rows(
            schema,
            ids.iter()
                .enumerate()
                .map(|(i, id)| vec![Value::Text((*id).into()), Value::Float(i as f64)])
                .collect(),
        )
        .unwrap();
        Party::new(name, rel, 0, vec![]).unwrap()
    }

    #[test]
    fn three_way_alignment_is_entity_consistent() {
        let a = party("a", &["u1", "u2", "u3", "u4"], "fa");
        let b = party("b", &["u4", "u2", "u9"], "fb");
        let c = party("c", &["u2", "u4", "u7"], "fc");
        let ids: Vec<Vec<Value>> = [&a, &b, &c].iter().map(|p| p.ids().unwrap()).collect();
        let session = MultiPartySession::new(vec![a, b, c], 42);
        let out = session
            .run_setup(&[
                SharePolicy::FULL,
                SharePolicy::FULL,
                SharePolicy::NAMES_ONLY,
            ])
            .unwrap();
        // Common entities: u2, u4.
        assert_eq!(out.alignment.len(), 2);
        for i in 0..out.alignment.len() {
            let e0 = &ids[0][out.alignment.rows[0][i]];
            for p in 1..3 {
                assert_eq!(e0, &ids[p][out.alignment.rows[p][i]]);
            }
        }
        // Aligned slices have feature columns only, equal length.
        for slice in &out.aligned {
            assert_eq!(slice.n_rows(), 2);
            assert_eq!(slice.arity(), 1);
        }
        // Per-party policies applied.
        assert!(out.metadata[0].shares_domains());
        assert!(!out.metadata[2].shares_domains());
    }

    #[test]
    fn two_party_multi_matches_pairwise_psi() {
        let a = party("a", &["x", "y", "z"], "fa");
        let b = party("b", &["z", "x"], "fb");
        let ids_a = a.ids().unwrap();
        let ids_b = b.ids().unwrap();
        let multi = multi_align(&[&ids_a, &ids_b], 9);
        let pair = crate::psi::align(&ids_a, &ids_b, 9);
        assert_eq!(multi.rows[0], pair.rows_a);
        assert_eq!(multi.rows[1], pair.rows_b);
    }

    #[test]
    fn disjoint_party_empties_intersection() {
        let a = party("a", &["u1"], "fa");
        let b = party("b", &["u2"], "fb");
        let ids: Vec<Vec<Value>> = [&a, &b].iter().map(|p| p.ids().unwrap()).collect();
        let al = multi_align(&[&ids[0], &ids[1]], 0);
        assert!(al.is_empty());
    }

    #[test]
    fn empty_party_list() {
        assert!(multi_align(&[], 0).is_empty());
    }

    #[test]
    #[should_panic(expected = "one policy per party")]
    fn policy_count_must_match() {
        let a = party("a", &["u1"], "fa");
        let session = MultiPartySession::new(vec![a], 0);
        let _ = session.run_setup(&[]);
    }
}
