//! End-to-end realisation of the paper's Figure 1 scenario: a bank and an
//! e-commerce company run VFL setup, train a loan-approval model, and — on
//! the adversarial side — the e-commerce party attempts the metadata
//! synthesis attack against the bank under different share policies.

use crate::model::{labels_from_column, train, FeatureBlock, TrainConfig};
use crate::party::Party;
use crate::protocol::{RetryConfig, SetupError, SetupOutcome, VflSession};
use crate::transport::Transport;
use mp_core::{run_attack, AttackResult, ExperimentConfig};
use mp_metadata::SharePolicy;
use mp_relation::{RelationError, Result};

/// Outcome of the full scenario.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// Setup artefacts (alignment + exchanged metadata).
    pub setup: SetupOutcome,
    /// Accuracy of the federated model (both parties' features).
    pub federated_accuracy: f64,
    /// Accuracy of the bank training alone on the same rows.
    pub solo_accuracy: f64,
    /// Attack against the bank's aligned data using the exchanged
    /// metadata *with* dependencies.
    pub attack_with_deps: AttackResult,
    /// Same attack ignoring dependencies (random baseline).
    pub attack_random: AttackResult,
}

/// Runs the Figure 1 scenario end to end.
///
/// `label_column` is the index of the 0/1 label within the bank's
/// relation (e.g. `loan_approved`). The bank's policy governs what the
/// adversary (the e-commerce party) gets to attack with.
pub fn run_scenario(
    bank: Party,
    ecommerce: Party,
    label_column: usize,
    bank_policy: &SharePolicy,
    experiment: &ExperimentConfig,
) -> Result<ScenarioOutcome> {
    let session = VflSession::new(bank, ecommerce, 0xF1A7);
    let setup = session.run_setup(bank_policy, &SharePolicy::FULL)?;
    scenario_from_setup(&session, setup, label_column, experiment)
}

/// Runs the Figure 1 scenario with the setup phase driven over an
/// arbitrary [`Transport`] — e.g. a [`crate::sim::SimTransport`] with a
/// seeded fault plan. Either the whole scenario runs (setup survived the
/// faults, and the outcome is bit-identical to the fault-free one) or it
/// fails closed with the setup's typed [`SetupError`]; training never
/// starts from a partial exchange.
pub fn run_scenario_over(
    bank: Party,
    ecommerce: Party,
    label_column: usize,
    bank_policy: &SharePolicy,
    experiment: &ExperimentConfig,
    transport: &mut dyn Transport,
    retry: &RetryConfig,
) -> std::result::Result<ScenarioOutcome, SetupError> {
    let session = VflSession::new(bank, ecommerce, 0xF1A7);
    let setup = session.run_setup_over(bank_policy, &SharePolicy::FULL, transport, retry)?;
    scenario_from_setup(&session, setup, label_column, experiment).map_err(SetupError::Data)
}

/// Utility + privacy measurement over a completed setup.
fn scenario_from_setup(
    session: &VflSession,
    setup: crate::protocol::SetupOutcome,
    label_column: usize,
    experiment: &ExperimentConfig,
) -> Result<ScenarioOutcome> {
    // --- Utility: train loan approval on the aligned intersection. ------
    // Label column in aligned (feature-projected) coordinates. The label is
    // caller-supplied, so a column outside the bank's feature set is a
    // typed error, not a panic.
    let label_pos = session
        .party_a
        .feature_columns()
        .iter()
        .position(|&c| c == label_column)
        .ok_or_else(|| {
            RelationError::UnknownAttribute(format!(
                "label column {label_column} is not among the bank's feature columns"
            ))
        })?;
    let bank_features: Vec<usize> = (0..setup.aligned_a.arity())
        .filter(|&c| c != label_pos)
        .collect();
    let labels = labels_from_column(&setup.aligned_a, label_pos)?;
    let bank_block = FeatureBlock::encode(&setup.aligned_a, &bank_features)?;
    let ecom_features: Vec<usize> = (0..setup.aligned_b.arity()).collect();
    let ecom_block = FeatureBlock::encode(&setup.aligned_b, &ecom_features)?;

    let federated = train(
        vec![bank_block.clone(), ecom_block],
        &labels,
        &TrainConfig::default(),
    );
    let solo = train(vec![bank_block], &labels, &TrainConfig::default());

    // --- Privacy: the e-commerce party attacks the bank's slice. --------
    let attack_with_deps = run_attack(&setup.aligned_a, &setup.metadata_from_a, true, experiment)?;
    let attack_random = run_attack(&setup.aligned_a, &setup.metadata_from_a, false, experiment)?;

    Ok(ScenarioOutcome {
        setup,
        federated_accuracy: federated.accuracy(&labels),
        solo_accuracy: solo.accuracy(&labels),
        attack_with_deps,
        attack_random,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datasets::fintech_scenario;

    fn build_parties() -> (Party, Party) {
        let data = fintech_scenario(300, 42);
        let bank = Party::new(
            "bank",
            data.bank.relation.clone(),
            0,
            data.bank.dependencies.clone(),
        )
        .unwrap();
        let ecom = Party::new(
            "ecommerce",
            data.ecommerce.relation.clone(),
            0,
            data.ecommerce.dependencies.clone(),
        )
        .unwrap();
        (bank, ecom)
    }

    fn fast_experiment() -> ExperimentConfig {
        ExperimentConfig {
            rounds: 20,
            base_seed: 3,
            epsilon: 500.0,
        }
    }

    #[test]
    fn scenario_runs_end_to_end() {
        let (bank, ecom) = build_parties();
        // loan_approved is bank column 5.
        let out = run_scenario(bank, ecom, 5, &SharePolicy::FULL, &fast_experiment()).unwrap();
        assert_eq!(out.setup.alignment.len(), 240);
        assert!(
            out.federated_accuracy > 0.6,
            "federated {}",
            out.federated_accuracy
        );
        assert!(out.federated_accuracy >= out.solo_accuracy - 0.05);
        assert_eq!(out.attack_with_deps.per_attr.len(), 5);
    }

    #[test]
    fn dependency_attack_no_worse_than_random_on_rhs() {
        // The paper's core claim, measured end to end in the scenario: the
        // mean exact-match leakage with dependencies stays within noise of
        // the random baseline.
        let (bank, ecom) = build_parties();
        let out = run_scenario(bank, ecom, 5, &SharePolicy::FULL, &fast_experiment()).unwrap();
        for (with_deps, random) in out
            .attack_with_deps
            .per_attr
            .iter()
            .zip(&out.attack_random.per_attr)
        {
            let n = out.setup.alignment.len() as f64;
            let diff = (with_deps.mean_matches - random.mean_matches).abs();
            assert!(
                diff <= 0.15 * n + 3.0,
                "attr {}: with {} vs random {}",
                with_deps.name,
                with_deps.mean_matches,
                random.mean_matches
            );
        }
    }

    #[test]
    fn recommended_policy_blocks_attack() {
        let (bank, ecom) = build_parties();
        let out = run_scenario(
            bank,
            ecom,
            5,
            &SharePolicy::PAPER_RECOMMENDED,
            &fast_experiment(),
        )
        .unwrap();
        // Without domains every generated cell is null: zero matches on
        // every non-null real column.
        for attr in &out.attack_with_deps.per_attr {
            let real_nulls = out
                .setup
                .aligned_a
                .column(attr.attr)
                .unwrap()
                .iter()
                .filter(|v| v.is_null())
                .count();
            assert!(
                attr.mean_matches <= real_nulls as f64,
                "attr {} leaked {} matches without domains",
                attr.name,
                attr.mean_matches
            );
        }
    }
}
