//! Minimal argument parsing (kept dependency-free by design).

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional arguments, and
/// `--key value` / `--flag` options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positionals: Vec<String>,
    /// `--key value` options (flags map to `"true"`).
    pub options: HashMap<String, String>,
}

/// Parses `argv[1..]`. Options may appear anywhere after the subcommand;
/// an option followed by another option (or nothing) is a boolean flag.
pub fn parse(args: &[String]) -> Result<ParsedArgs, String> {
    let mut iter = args.iter().peekable();
    let command = iter.next().cloned().ok_or("missing subcommand")?;
    if command.starts_with("--") {
        return Err(format!("expected a subcommand, got option `{command}`"));
    }
    let mut positionals = Vec::new();
    let mut options = HashMap::new();
    while let Some(arg) = iter.next() {
        if let Some(key) = arg.strip_prefix("--") {
            let takes_value = iter.peek().map(|n| !n.starts_with("--")).unwrap_or(false);
            if takes_value {
                options.insert(key.to_owned(), iter.next().unwrap().clone());
            } else {
                options.insert(key.to_owned(), "true".to_owned());
            }
        } else {
            positionals.push(arg.clone());
        }
    }
    Ok(ParsedArgs {
        command,
        positionals,
        options,
    })
}

impl ParsedArgs {
    /// An option parsed as `T`, with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("invalid value `{raw}` for --{key}")),
        }
    }

    /// A required positional argument.
    pub fn positional(&self, index: usize, name: &str) -> Result<&str, String> {
        self.positionals
            .get(index)
            .map(String::as_str)
            .ok_or_else(|| format!("missing <{name}> argument"))
    }

    /// A comma-separated `usize` list option.
    pub fn usize_list(&self, key: &str) -> Result<Vec<usize>, String> {
        match self.options.get(key) {
            None => Ok(Vec::new()),
            Some(raw) => raw
                .split(',')
                .map(|p| {
                    p.trim()
                        .parse()
                        .map_err(|_| format!("invalid index `{p}` in --{key}"))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_positionals_and_options() {
        let p = parse(&argv(&["audit", "data.csv", "--rounds", "50", "--verbose"])).unwrap();
        assert_eq!(p.command, "audit");
        assert_eq!(p.positionals, vec!["data.csv"]);
        assert_eq!(p.options["rounds"], "50");
        assert_eq!(p.options["verbose"], "true");
    }

    #[test]
    fn missing_subcommand_errors() {
        assert!(parse(&[]).is_err());
        assert!(parse(&argv(&["--oops"])).is_err());
    }

    #[test]
    fn typed_option_access() {
        let p = parse(&argv(&["x", "--rounds", "50"])).unwrap();
        assert_eq!(p.get_or("rounds", 10usize).unwrap(), 50);
        assert_eq!(p.get_or("epsilon", 1.5f64).unwrap(), 1.5);
        assert!(p.get_or::<usize>("rounds", 0).is_ok());
        let bad = parse(&argv(&["x", "--rounds", "abc"])).unwrap();
        assert!(bad.get_or::<usize>("rounds", 0).is_err());
    }

    #[test]
    fn positional_access() {
        let p = parse(&argv(&["audit", "a.csv"])).unwrap();
        assert_eq!(p.positional(0, "file").unwrap(), "a.csv");
        assert!(p.positional(1, "other").is_err());
    }

    #[test]
    fn usize_lists() {
        let p = parse(&argv(&["x", "--qi", "0, 2,5"])).unwrap();
        assert_eq!(p.usize_list("qi").unwrap(), vec![0, 2, 5]);
        assert!(p.usize_list("missing").unwrap().is_empty());
        let bad = parse(&argv(&["x", "--qi", "a,b"])).unwrap();
        assert!(bad.usize_list("qi").is_err());
    }

    #[test]
    fn flag_before_value_option() {
        let p = parse(&argv(&["x", "--dry-run", "--k", "4"])).unwrap();
        assert_eq!(p.options["dry-run"], "true");
        assert_eq!(p.options["k"], "4");
    }
}
