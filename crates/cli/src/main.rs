//! `mpriv` — command-line metadata-privacy auditor.
//!
//! See `mpriv --help` (or [`commands::help`]) for usage. All heavy lifting
//! lives in the workspace libraries; this binary only parses arguments,
//! loads CSVs and prints reports.

mod args;
mod commands;

use mp_observe::Registry;
use mp_relation::csv;
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // `analyze` manages its own exit code: the report goes to stdout even
    // when violations make the exit non-zero (a lint hit is not a usage
    // error, so it must not be wrapped in the `mpriv: …` failure banner).
    if argv.first().map(String::as_str) == Some("analyze") {
        return match run_analyze(&argv) {
            Ok((report, clean)) => {
                print!("{report}");
                if clean {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(msg) => {
                eprintln!("mpriv: {msg}");
                ExitCode::from(2)
            }
        };
    }
    match run(&argv) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("mpriv: {msg}");
            eprintln!("run `mpriv help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: &[String]) -> Result<String, String> {
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        return Ok(commands::help());
    }
    let parsed = args::parse(argv)?;
    match parsed.command.as_str() {
        "profile" => {
            let csv_path = parsed.positional(0, "csv")?;
            let budget_mb = parsed.get_or("budget-mb", 0usize)?;
            let budget = if budget_mb == 0 {
                mp_discovery::MemoryBudget::unlimited()
            } else {
                mp_discovery::MemoryBudget::from_mb(budget_mb)
            };
            match parsed.options.get("metrics-json") {
                // Sequential: shared-cache hit/miss order is racy under a
                // thread pool, and the snapshot must be byte-reproducible.
                Some(path) => {
                    let registry = Arc::new(Registry::new());
                    // Observed ingest: the streaming decoder's chunk/record
                    // counters land in the same snapshot as the discovery
                    // metrics.
                    let rel = csv::read_path_observed(
                        csv_path,
                        &csv::CsvOptions::default(),
                        registry.as_ref(),
                    )
                    .map_err(|e| format!("cannot read `{csv_path}`: {e}"))?;
                    let report = commands::profile_observed(
                        &rel,
                        mp_discovery::ParallelConfig::sequential(),
                        budget,
                        registry.clone(),
                    )?;
                    write_metrics(&registry, path)?;
                    Ok(report)
                }
                None => {
                    let rel = load(csv_path)?;
                    commands::profile(&rel, budget)
                }
            }
        }
        "audit" if parsed.options.contains_key("matrix") => {
            let datasets = parsed.get_or("datasets", "echocardiogram,bank,car".to_owned())?;
            let adversaries = parsed.get_or(
                "adversaries",
                "baseline,partial50,collude2,noisy10".to_owned(),
            )?;
            let rounds = parsed.get_or("rounds", 40usize)?;
            let epsilon = parsed.get_or("epsilon", 0.5f64)?;
            let threads = parsed.get_or("threads", 0usize)?;
            let metrics_path = parsed.options.get("metrics-json").cloned();
            let registry = Registry::new();
            let recorder: &dyn mp_observe::Recorder = if metrics_path.is_some() {
                &registry
            } else {
                &mp_observe::NoopRecorder
            };
            let (matrix, markdown) = commands::audit_matrix(
                &datasets,
                &adversaries,
                rounds,
                epsilon,
                threads,
                recorder,
            )?;
            if let Some(path) = parsed.options.get("out") {
                std::fs::write(path, matrix.to_json())
                    .map_err(|e| format!("cannot write matrix JSON to `{path}`: {e}"))?;
            }
            if let Some(path) = parsed.options.get("md") {
                std::fs::write(path, &markdown)
                    .map_err(|e| format!("cannot write matrix markdown to `{path}`: {e}"))?;
            }
            if let Some(path) = metrics_path {
                write_metrics(&registry, &path)?;
            }
            Ok(markdown)
        }
        "audit" => {
            let rel = load(parsed.positional(0, "csv")?)?;
            let policy = commands::policy_by_name(&parsed.get_or("policy", "domains".to_owned())?)?;
            let rounds = parsed.get_or("rounds", 100usize)?;
            let epsilon = parsed.get_or("epsilon", 0.0f64)?;
            commands::audit(&rel, policy, rounds, epsilon)
        }
        "identifiability" => {
            let rel = load(parsed.positional(0, "csv")?)?;
            let max_size = parsed.get_or("max-size", 2usize)?;
            let qi = parsed.usize_list("qi")?;
            commands::identifiability(&rel, max_size, &qi)
        }
        "compare" => {
            let rel = load(parsed.positional(0, "csv")?)?;
            let rounds = parsed.get_or("rounds", 60usize)?;
            let epsilon = parsed.get_or("epsilon", 0.0f64)?;
            commands::compare_policies(&rel, rounds, epsilon)
        }
        "anonymize" => {
            let rel = load(parsed.positional(0, "csv")?)?;
            let qi = parsed.usize_list("qi")?;
            let k = parsed.get_or("k", 2usize)?;
            let (report, anon) = commands::anonymize(&rel, &qi, k)?;
            if let Some(out) = parsed.options.get("out") {
                csv::write_path(&anon, out).map_err(|e| e.to_string())?;
                Ok(format!("{report}written to {out}\n"))
            } else {
                Ok(format!("{report}{}", csv::write_str(&anon)))
            }
        }
        "simulate" => {
            let seed = parsed.get_or("seed", 0u64)?;
            let faults = parsed
                .options
                .get("faults")
                .cloned()
                .unwrap_or_else(|| "drop,dup,reorder".to_owned());
            let rows = parsed.get_or("rows", 120usize)?;
            match parsed.options.get("metrics-json") {
                Some(path) => {
                    let registry = Registry::new();
                    let result = commands::simulate_observed(seed, &faults, rows, &registry);
                    // Written even when the setup aborts: the wire metrics
                    // of a failed run are exactly what one wants to inspect.
                    write_metrics(&registry, path)?;
                    result
                }
                None => commands::simulate(seed, &faults, rows),
            }
        }
        "serve" => {
            let metrics_path = parsed.options.get("metrics-json").cloned();
            let registry = Arc::new(Registry::new());
            let recorder: Arc<dyn mp_observe::Recorder> = if metrics_path.is_some() {
                registry.clone()
            } else {
                Arc::new(mp_observe::NoopRecorder)
            };
            let result = match parsed.options.get("listen") {
                Some(flag) if flag == "true" => {
                    Err("--listen needs an address (host:port or unix:<path>)".to_owned())
                }
                Some(addr) => {
                    let server = commands::serve_bind(addr, recorder)?;
                    // The banner goes out before blocking so external
                    // clients learn the bound (possibly ephemeral) address.
                    println!("serve: listening on {} (EOF on stdin stops)", server.addr());
                    let mut sink = String::new();
                    use std::io::Read as _;
                    let _ = std::io::stdin().read_to_string(&mut sink);
                    Ok(commands::serve_report(&server.shutdown()))
                }
                None => {
                    let sessions = parsed.get_or("sessions", 4usize)?;
                    let rows = parsed.get_or("rows", 40usize)?;
                    commands::serve_drive(sessions, rows, recorder)
                }
            };
            if let Some(path) = metrics_path {
                write_metrics(&registry, &path)?;
            }
            result
        }
        "check" => {
            let parties = parsed.get_or("parties", 2usize)?;
            let ticks = parsed.get_or("ticks", 256u64)?;
            let budget = parsed.get_or("budget", 2usize)?;
            let delay = parsed.get_or("delay", 2u64)?;
            let crash_points = parsed.get_or("crash-points", 3u64)?;
            commands::check(parties, ticks, budget, delay, crash_points)
        }
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

/// `mpriv analyze`: run the workspace invariant linter. Returns the
/// rendered report plus whether the tree was clean.
fn run_analyze(argv: &[String]) -> Result<(String, bool), String> {
    let parsed = args::parse(argv)?;
    if parsed.options.contains_key("list-rules") {
        let mut out = String::new();
        for lint in mp_analyze::rules::registry() {
            out.push_str(&format!("{:<24} {}\n", lint.name(), lint.description()));
        }
        return Ok((out, true));
    }
    let root = match parsed.options.get("root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("getting cwd: {e}"))?;
            mp_analyze::find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory; pass --root")?
        }
    };
    let report = match parsed.options.get("config") {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            let config =
                mp_analyze::config::Config::parse(&text).map_err(|e| format!("{path}: {e}"))?;
            mp_analyze::analyze(&root, &config)?
        }
        None => mp_analyze::analyze_with_default_config(&root)?,
    };
    let mut clean = report.is_clean();
    let write_baseline = parsed.options.contains_key("write-baseline");
    if parsed.options.contains_key("ratchet") || write_baseline {
        let baseline = match parsed.options.get("baseline") {
            Some(p) => std::path::PathBuf::from(p),
            None => root.join("analyze-baseline.toml"),
        };
        let (outcome, summary) =
            mp_analyze::ratchet::apply(&report.facts, &baseline, write_baseline)?;
        // Ratchet chatter goes to stderr so stdout stays byte-stable.
        eprintln!("{}", summary.trim_end());
        clean &= outcome.passed();
    }
    let format = parsed.get_or("format", "human".to_owned())?;
    let rendered = match format.as_str() {
        "json" => report.render_json(),
        "human" => report.render_human(),
        other => return Err(format!("unknown format `{other}` (expected human|json)")),
    };
    Ok((rendered, clean))
}

fn write_metrics(registry: &Registry, path: &str) -> Result<(), String> {
    std::fs::write(path, registry.snapshot().to_json())
        .map_err(|e| format!("cannot write metrics to `{path}`: {e}"))
}

fn load(path: &str) -> Result<mp_relation::Relation, String> {
    csv::read_path(path, &csv::CsvOptions::default())
        .map_err(|e| format!("cannot read `{path}`: {e}"))
}
