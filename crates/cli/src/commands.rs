//! The `mpriv` subcommand implementations, as library functions returning
//! report strings so they are directly testable.

use mp_core::{
    identifiability_rate, k_anonymity, run_attack, uniqueness_profile, ExperimentConfig, TextTable,
};
use mp_discovery::{
    DependencyProfile, DiscoveryContext, MemoryBudget, ParallelConfig, ProfileConfig,
};
use mp_federated::{
    check_invariants, model_check, outcome_matches, run_client_session, simulate_setup_observed,
    small_world_session, CheckConfig, ClientConfig, FaultPlan, MultiPartySession, Party,
    RetryConfig, ServeConfig, Server,
};
use mp_metadata::{MetadataPackage, SharePolicy};
use mp_observe::{NoopRecorder, Recorder};
use mp_relation::Relation;
use std::sync::Arc;

/// Resolves a policy name (`names`, `domains`, `full`, `recommended`).
pub fn policy_by_name(name: &str) -> Result<SharePolicy, String> {
    match name {
        "names" => Ok(SharePolicy::NAMES_ONLY),
        "domains" => Ok(SharePolicy::NAMES_AND_DOMAINS),
        "full" => Ok(SharePolicy::FULL),
        "recommended" => Ok(SharePolicy::PAPER_RECOMMENDED),
        other => Err(format!(
            "unknown policy `{other}` (expected names|domains|full|recommended)"
        )),
    }
}

/// `mpriv profile <csv> [--budget-mb N]` — dependency discovery report,
/// including the shared PLI-cache statistics of the discovery engine. A
/// limited [`MemoryBudget`] bounds the partition cache by estimated
/// retained heap bytes (partitions spill and rebuild on demand).
pub fn profile(relation: &Relation, budget: MemoryBudget) -> Result<String, String> {
    profile_observed(
        relation,
        ParallelConfig::default(),
        budget,
        Arc::new(NoopRecorder),
    )
}

/// [`profile`] with an explicit [`Recorder`]. Callers that collect
/// metrics should pass [`ParallelConfig::sequential`]: the shared PLI
/// cache is consulted in nondeterministic order under a thread pool, so
/// hit/miss counts are only byte-reproducible sequentially.
pub fn profile_observed(
    relation: &Relation,
    parallel: ParallelConfig,
    budget: MemoryBudget,
    recorder: Arc<dyn Recorder>,
) -> Result<String, String> {
    let ctx = DiscoveryContext::instrumented_with_budget(relation, parallel, budget, recorder);
    let profile = DependencyProfile::discover_with(&ctx, &ProfileConfig::paper())
        .map_err(|e| e.to_string())?;
    let stats = ctx.cache_stats();
    let mut out = format!(
        "{} rows × {} attributes\n{} FDs, {} AFDs, {} ODs, {} NDs, {} DDs, {} OFDs\nPLI cache: {} ({} threads)\n\n",
        relation.n_rows(),
        relation.arity(),
        profile.fds.len(),
        profile.afds.len(),
        profile.ods.len(),
        profile.nds.len(),
        profile.dds.len(),
        profile.ofds.len(),
        stats,
        ctx.threads(),
    );
    let names: Vec<String> = relation
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name.clone())
        .collect();
    out.push_str("columns:\n");
    for (i, name) in names.iter().enumerate() {
        let col = relation.column(i).map_err(|e| e.to_string())?;
        out.push_str(&format!(
            "  {name}: {} ({} distinct, {} null)\n",
            col.repr_name(),
            col.distinct_count(),
            col.null_count()
        ));
    }
    out.push('\n');
    for dep in profile.to_dependencies() {
        out.push_str(&format!(
            "  {dep}    [{} -> {}]\n",
            dep.lhs().display_with(&names),
            names.get(dep.rhs()).cloned().unwrap_or_default()
        ));
    }
    Ok(out)
}

/// `mpriv audit <csv> --policy P --rounds N --epsilon E` — measures the
/// synthesis attack the chosen policy would enable.
pub fn audit(
    relation: &Relation,
    policy: SharePolicy,
    rounds: usize,
    epsilon: f64,
) -> Result<String, String> {
    let profile = DependencyProfile::discover(relation, &ProfileConfig::paper())
        .map_err(|e| e.to_string())?;
    let package = MetadataPackage::describe("me", relation, profile.to_dependencies())
        .map_err(|e| e.to_string())?;
    let shared = policy.apply(&package);
    let config = ExperimentConfig {
        rounds,
        base_seed: 0xC11,
        epsilon,
    };
    let result = run_attack(relation, &shared, true, &config).map_err(|e| e.to_string())?;

    let mut t = TextTable::new(vec![
        "attribute".into(),
        "mean matches".into(),
        "of N".into(),
        "MSE".into(),
    ]);
    for s in &result.per_attr {
        t.push_row(vec![
            s.name.clone(),
            format!("{:.2}", s.mean_matches),
            format!(
                "{:.1}%",
                100.0 * s.mean_matches / relation.n_rows().max(1) as f64
            ),
            s.mean_mse.map_or("—".into(), |m| format!("{m:.3}")),
        ]);
    }
    Ok(format!(
        "Attack simulation: {} rounds, ε = {epsilon}, policy shares domains: {}\n{}",
        rounds,
        shared.shares_domains(),
        t.render()
    ))
}

/// Resolves a matrix dataset name. The registry is fixed: the three
/// tables the leakage matrix ships with (ISSUE 9) — the paper's
/// echocardiogram reconstruction with its verified dependency inventory,
/// the Figure 1 bank table scaled to 500 customers, and the UCI-style
/// car-evaluation cross product.
pub fn matrix_dataset(name: &str) -> Result<mp_core::MatrixDataset, String> {
    match name {
        "echocardiogram" => Ok(mp_core::MatrixDataset {
            name: name.to_owned(),
            relation: mp_datasets::echocardiogram(),
            dependencies: mp_datasets::verified_dependencies(),
        }),
        "bank" => {
            let party = mp_datasets::bank_table(500);
            Ok(mp_core::MatrixDataset {
                name: name.to_owned(),
                relation: party.relation,
                dependencies: party.dependencies,
            })
        }
        "car" => {
            let (relation, dependencies) = mp_datasets::car_table();
            Ok(mp_core::MatrixDataset {
                name: name.to_owned(),
                relation,
                dependencies,
            })
        }
        other => Err(format!(
            "unknown dataset `{other}` (expected echocardiogram|bank|car)"
        )),
    }
}

/// `mpriv audit --matrix [--datasets a,b] [--adversaries m,n] [--rounds N]
/// [--epsilon E] [--threads T]` — the full leakage matrix: metadata class
/// × share policy × adversary model over the named datasets. Returns the
/// evaluated matrix plus its rendered markdown; the binary decides where
/// the JSON and markdown go. Byte-reproducible for any thread count.
pub fn audit_matrix(
    datasets: &str,
    adversaries: &str,
    rounds: usize,
    epsilon: f64,
    threads: usize,
    recorder: &dyn Recorder,
) -> Result<(mp_core::LeakageMatrix, String), String> {
    let datasets = datasets
        .split(',')
        .map(|name| matrix_dataset(name.trim()))
        .collect::<Result<Vec<_>, _>>()?;
    if datasets.is_empty() {
        return Err("--datasets must name at least one dataset".to_owned());
    }
    let adversaries = adversaries
        .split(',')
        .map(|label| mp_synth::AdversaryModel::parse(label.trim()))
        .collect::<Result<Vec<_>, _>>()?;
    if adversaries.is_empty() {
        return Err("--adversaries must name at least one model".to_owned());
    }
    let config = mp_core::MatrixConfig {
        rounds,
        epsilon,
        threads,
        adversaries,
    };
    let matrix =
        mp_core::LeakageMatrix::run(&datasets, &config, recorder).map_err(|e| e.to_string())?;
    let markdown = matrix.render_markdown();
    Ok((matrix, markdown))
}

/// `mpriv identifiability <csv> --max-size K --qi a,b,c`.
pub fn identifiability(
    relation: &Relation,
    max_size: usize,
    qi: &[usize],
) -> Result<String, String> {
    let mut out = String::new();
    for size in 1..=max_size.max(1) {
        let rate = identifiability_rate(relation, size).map_err(|e| e.to_string())?;
        out.push_str(&format!(
            "subsets of size ≤ {size}: {:.1}% of tuples identifiable\n",
            rate * 100.0
        ));
    }
    let unique = uniqueness_profile(relation).map_err(|e| e.to_string())?;
    out.push_str(&format!("tuples unique per single attribute: {unique:?}\n"));
    if !qi.is_empty() {
        let k = k_anonymity(relation, qi).map_err(|e| e.to_string())?;
        out.push_str(&format!("k-anonymity over QI {qi:?}: k = {k}\n"));
    }
    Ok(out)
}

/// `mpriv anonymize <csv> --qi a,b --k K` — generalises continuous QIs
/// until k-anonymous; returns (report, transformed relation).
pub fn anonymize(
    relation: &Relation,
    qi: &[usize],
    k: usize,
) -> Result<(String, Relation), String> {
    if qi.is_empty() {
        return Err("--qi must list at least one attribute index".into());
    }
    let before = k_anonymity(relation, qi).map_err(|e| e.to_string())?;
    let (anon, widths) =
        mp_core::generalize_to_k(relation, qi, k, 1.0, 16).map_err(|e| e.to_string())?;
    let after = k_anonymity(&anon, qi).map_err(|e| e.to_string())?;
    let report = format!(
        "k-anonymity over {qi:?}: {before} → {after} (target {k})\nbucket widths: {widths:?}\n"
    );
    Ok((report, anon))
}

/// `mpriv compare <csv>` — the policy matrix: leakage per attribute under
/// every preset policy, side by side.
pub fn compare_policies(
    relation: &Relation,
    rounds: usize,
    epsilon: f64,
) -> Result<String, String> {
    let profile = DependencyProfile::discover(relation, &ProfileConfig::paper())
        .map_err(|e| e.to_string())?;
    let package = MetadataPackage::describe("me", relation, profile.to_dependencies())
        .map_err(|e| e.to_string())?;
    let config = ExperimentConfig {
        rounds,
        base_seed: 0xC12,
        epsilon,
    };

    let presets = [
        ("names", SharePolicy::NAMES_ONLY),
        ("domains", SharePolicy::NAMES_AND_DOMAINS),
        ("full", SharePolicy::FULL),
        ("recommended", SharePolicy::PAPER_RECOMMENDED),
    ];
    let mut results = Vec::new();
    for (_, policy) in &presets {
        let shared = policy.apply(&package);
        results.push(run_attack(relation, &shared, true, &config).map_err(|e| e.to_string())?);
    }
    let mut header = vec!["attribute".to_owned()];
    header.extend(presets.iter().map(|(n, _)| n.to_string()));
    let mut t = TextTable::new(header);
    for attr in 0..relation.arity() {
        let mut row = vec![relation
            .schema()
            .attribute(attr)
            .map_err(|e| e.to_string())?
            .name
            .clone()];
        for r in &results {
            row.push(format!("{:.2}", r.attr(attr).unwrap().mean_matches));
        }
        t.push_row(row);
    }
    Ok(format!(
        "Mean index-aligned matches per policy ({} rounds, ε = {epsilon}):\n{}",
        rounds,
        t.render()
    ))
}

/// `mpriv simulate --seed N --faults drop,dup,reorder,crash` — replays
/// the VFL setup protocol of the paper's Figure 1 scenario under a
/// seeded fault schedule and reports the message trace plus the
/// invariant verdict. The scenario data is built from a *fixed* internal
/// seed, so the output depends only on `--seed` and `--faults`; aborted
/// setups surface as an `Err` (non-zero exit).
pub fn simulate(seed: u64, faults: &str, rows: usize) -> Result<String, String> {
    simulate_observed(seed, faults, rows, &NoopRecorder)
}

/// [`simulate`] with an explicit [`Recorder`]: the primary simulation
/// run records wire and protocol metrics (the invariant re-runs stay
/// unobserved so counters describe exactly one run).
pub fn simulate_observed(
    seed: u64,
    faults: &str,
    rows: usize,
    recorder: &dyn Recorder,
) -> Result<String, String> {
    // Fixed data seed: `--seed` drives the fault schedule, never the data.
    let data = mp_datasets::fintech_scenario(rows, 42);
    let bank = Party::new("bank", data.bank.relation, 0, data.bank.dependencies)
        .map_err(|e| e.to_string())?;
    let ecom = Party::new(
        "ecommerce",
        data.ecommerce.relation,
        0,
        data.ecommerce.dependencies,
    )
    .map_err(|e| e.to_string())?;
    let session = MultiPartySession::new(vec![bank, ecom], 0xF1A7);
    let policies = vec![SharePolicy::PAPER_RECOMMENDED, SharePolicy::FULL];

    let plan = FaultPlan::from_names(faults, seed, session.parties.len())?;
    let retry = RetryConfig::default();
    let sim = simulate_setup_observed(&session, &policies, &plan, &retry, recorder);

    let mut out = format!("fault simulation: seed {seed}, faults [{faults}], {rows} rows/party\n");
    out.push_str(&format!(
        "plan: drop {:.2}, duplicate {:.2}, max delay {}, scheduled crashes {}\n",
        plan.drop_rate,
        plan.duplicate_rate,
        plan.max_delay,
        plan.crashes.len()
    ));
    out.push_str(&format!("trace: {}\n", sim.summary));

    if let Err(violation) = check_invariants(&session, &policies, &plan, &retry) {
        return Err(format!("invariant violated: {violation}\n{out}"));
    }
    out.push_str("invariants: hold (bit-identical outcome, redaction audit, typed aborts)\n");

    match sim.result {
        Ok(outcome) => {
            out.push_str(&format!(
                "outcome: completed in {} ticks, {} aligned entities\n",
                sim.ticks,
                outcome.alignment.len()
            ));
            Ok(out)
        }
        Err(e) => Err(format!(
            "setup aborted after {} ticks: {e}\n{out}",
            sim.ticks
        )),
    }
}

/// The bank × e-commerce party pair every serve session runs, built from
/// a fixed data seed (same data as `mpriv simulate`).
fn serve_parties(rows: usize) -> Result<Vec<Party>, String> {
    let data = mp_datasets::fintech_scenario(rows, 42);
    Ok(vec![
        Party::new("bank", data.bank.relation, 0, data.bank.dependencies)
            .map_err(|e| e.to_string())?,
        Party::new(
            "ecommerce",
            data.ecommerce.relation,
            0,
            data.ecommerce.dependencies,
        )
        .map_err(|e| e.to_string())?,
    ])
}

/// `mpriv serve [--sessions N] [--rows N] [--metrics-json out.json]` —
/// self-drive mode: start the session-multiplexing relay daemon on an
/// ephemeral local port, run N concurrent two-party VFL setup sessions
/// against it over real TCP sockets, and verify every completed outcome
/// bit-identical to the same seeds through the in-process
/// [`mp_federated::PerfectTransport`] oracle. Non-zero exit on any abort
/// or oracle divergence. The report prints only schedule-independent
/// facts, so it is byte-stable across runs.
pub fn serve_drive(
    sessions: usize,
    rows: usize,
    recorder: Arc<dyn Recorder>,
) -> Result<String, String> {
    if sessions == 0 {
        return Err("--sessions must be at least 1".to_owned());
    }
    let parties = serve_parties(rows)?;
    let policies = [SharePolicy::PAPER_RECOMMENDED, SharePolicy::FULL];
    let salt = 0xF1A7;
    let reference = MultiPartySession::new(parties.clone(), salt)
        .run_setup(&policies)
        .map_err(|e| format!("in-process reference setup failed: {e}"))?;

    let retry = RetryConfig::default();
    let server = Server::start("127.0.0.1:0", ServeConfig::from_retry(&retry), recorder)
        .map_err(|e| format!("cannot bind serve socket: {e}"))?;
    let addr = server.addr().to_owned();

    let handles: Vec<_> = (0..sessions)
        .flat_map(|s| {
            parties.iter().zip(policies).enumerate().map({
                let addr = addr.clone();
                move |(p, (party, policy))| {
                    let addr = addr.clone();
                    let party = party.clone();
                    let cfg = ClientConfig::new(s as u64 + 1, p, 2, RetryConfig::default());
                    std::thread::spawn(move || {
                        run_client_session(&addr, &cfg, &party, &policy, salt, &NoopRecorder)
                            .map(|outcome| (p, outcome))
                    })
                }
            })
        })
        .collect();

    let mut completed = 0usize;
    let mut divergent = 0usize;
    let mut aborts: Vec<String> = Vec::new();
    for handle in handles {
        match handle.join() {
            Ok(Ok((p, outcome))) => {
                completed += 1;
                if !outcome_matches(&outcome, p, &reference) {
                    divergent += 1;
                }
            }
            Ok(Err(e)) => aborts.push(e.to_string()),
            Err(_) => aborts.push("client thread panicked".to_owned()),
        }
    }
    let report = server.shutdown();

    let mut out = format!("serve: TCP relay, {sessions} sessions × 2 parties, {rows} rows/party\n");
    out.push_str(&format!(
        "sessions: {} completed, {} aborted\n",
        report.sessions_completed, report.sessions_aborted
    ));
    let cap = ServeConfig::from_retry(&retry).queue_cap as u64;
    out.push_str(&format!(
        "backpressure: max queue depth within cap {cap}: {}\n",
        report.max_queue_depth <= cap
    ));
    if !aborts.is_empty() {
        return Err(format!(
            "{} client sessions aborted: {}\n{out}",
            aborts.len(),
            aborts[0]
        ));
    }
    if divergent > 0 {
        return Err(format!(
            "{divergent} outcomes diverged from the in-process oracle\n{out}"
        ));
    }
    out.push_str(&format!(
        "oracle: all {completed} outcomes bit-identical to the in-process reference\n"
    ));
    Ok(out)
}

/// Binds the relay daemon for `mpriv serve --listen <addr>`. The caller
/// (the binary) owns the returned [`Server`]: it prints the bound
/// address, decides when to stop, and renders the final report with
/// [`serve_report`].
pub fn serve_bind(addr: &str, recorder: Arc<dyn Recorder>) -> Result<Server, String> {
    let retry = RetryConfig::default();
    Server::start(addr, ServeConfig::from_retry(&retry), recorder)
        .map_err(|e| format!("cannot bind `{addr}`: {e}"))
}

/// Renders a daemon's lifetime [`mp_federated::ServeReport`].
pub fn serve_report(report: &mp_federated::ServeReport) -> String {
    format!(
        "sessions: {} started, {} completed, {} aborted\nframes: {} in, {} routed, {} spoof-rejected\nmax queue depth: {}\n",
        report.sessions_started,
        report.sessions_completed,
        report.sessions_aborted,
        report.frames_in,
        report.frames_routed,
        report.spoof_rejected,
        report.max_queue_depth
    )
}

/// `mpriv check --parties N --ticks K --budget B --delay D --crash-points C`
/// — exhaustively enumerates every fault interleaving of the VFL setup
/// protocol within the bounded small world and asserts the simulator's
/// invariants over all of them. Where `simulate` samples one seeded
/// schedule, `check` runs *every* schedule the bounds admit; any
/// violation surfaces as an `Err` (non-zero exit) with the replayable
/// schedule that produced it. The report is fully deterministic.
pub fn check(
    parties: usize,
    ticks: u64,
    budget: usize,
    delay: u64,
    crash_points: u64,
) -> Result<String, String> {
    let (session, policies) = small_world_session(parties)?;
    let cfg = CheckConfig {
        max_ticks: ticks,
        fault_budget: budget,
        max_delay: delay,
        crash_points,
    };
    let report = model_check(&session, &policies, &cfg)?;

    let mut out = format!(
        "exhaustive model check: {} parties, ticks ≤ {}, fault budget {}, delay ≤ {}, crash points {}\n",
        report.parties, cfg.max_ticks, cfg.fault_budget, cfg.max_delay, cfg.crash_points
    );
    out.push_str(&format!(
        "schedules executed: {} ({} crash schedules, decision depth ≤ {})\n",
        report.runs, report.crash_schedules, report.max_depth
    ));
    out.push_str(&format!(
        "outcomes: {} completed, {} crashed aborts, {} retry aborts ({} distinct)\n",
        report.completed, report.aborted_crashed, report.aborted_retries, report.distinct_outcomes
    ));
    out.push_str(&format!(
        "faults injected: {} drops, {} duplicates, {} delays\n",
        report.faults_injected[0], report.faults_injected[1], report.faults_injected[2]
    ));
    out.push_str(&format!(
        "states: {} visited, {} distinct, {} subtrees pruned\n",
        report.total_states, report.distinct_states, report.pruned_subtrees
    ));
    out.push_str(&format!("violations: {}\n", report.violations.len()));
    if report.violations.is_empty() {
        out.push_str("invariants: hold over the entire bounded schedule space\n");
        Ok(out)
    } else {
        for v in &report.violations {
            out.push_str(&format!("  [{}] {}\n", v.schedule, v.violation));
        }
        Err(format!("invariant violated under enumeration:\n{out}"))
    }
}

/// The help text.
pub fn help() -> String {
    "mpriv — metadata-privacy auditor (reproduction of 'Will Sharing Metadata Leak Privacy?', ICDE 2024)

USAGE:
  mpriv profile <csv> [--budget-mb N] [--metrics-json out.json]
      Discover FDs/AFDs/ODs/NDs/DDs/OFDs in the file. --budget-mb caps
      the PLI cache at N MiB of estimated partition heap (0 = unlimited;
      partitions spill and rebuild on demand). With --metrics-json, also
      write a deterministic metrics snapshot (streaming-ingest chunks,
      PLI builds, cache traffic, per-pass spans) to the path.
  mpriv audit <csv> [--policy names|domains|full|recommended] [--rounds N] [--epsilon E]
      Simulate the metadata synthesis attack the policy would enable.
  mpriv audit --matrix [--datasets echocardiogram,bank,car] [--adversaries baseline,partial50,collude2,noisy10]
              [--rounds N] [--epsilon E] [--threads T] [--out matrix.json] [--md matrix.md] [--metrics-json out.json]
      Leakage-audit matrix over the built-in datasets: metadata class
      (domains-only, +FD, +OD, +ND, +DD, +OFD, +CFD) × share policy
      (names|domains|full|recommended|redact-odd) × adversary model
      (baseline, partialNN alignment, colludeK pooling, noisyNN domains).
      Prints markdown; --out writes schema-versioned sorted-key JSON,
      --md writes the markdown. Byte-reproducible across runs and
      thread counts.
  mpriv identifiability <csv> [--max-size K] [--qi i,j,k]
      GDPR-style identifiability (Definition 2.1) and optional k-anonymity.
  mpriv anonymize <csv> --qi i,j [--k K] [--out out.csv]
      Generalise continuous quasi-identifiers until k-anonymous.
  mpriv compare <csv> [--rounds N] [--epsilon E]
      Leakage matrix: every preset policy side by side.
  mpriv simulate [--seed N] [--faults drop,dup,reorder,crash] [--rows N] [--metrics-json out.json]
      Replay VFL setup under a seeded fault schedule; non-zero exit on
      abort. With --metrics-json, also write a deterministic metrics
      snapshot (wire counters, tick latencies, retransmits) to the path.
  mpriv serve [--sessions N] [--rows N] [--listen ADDR] [--metrics-json out.json]
      Session-multiplexing relay daemon for VFL setup over real sockets.
      Default drive mode: bind an ephemeral port, run N concurrent
      two-party sessions against it, and verify every outcome
      bit-identical to the in-process fault-free reference; non-zero
      exit on abort or divergence. With --listen (host:port or
      unix:<path>), serve external clients until stdin closes. With
      --metrics-json, write the serve.* counters/gauges to the path.
  mpriv check [--parties N] [--ticks K] [--budget B] [--delay D] [--crash-points C]
      Exhaustively enumerate every fault interleaving (drop/duplicate/
      delay/crash schedules, up to B non-default decisions) of the VFL
      setup protocol in a bounded small world of N ≤ 3 parties, and
      assert the simulator's invariants over the full space; non-zero
      exit with a replayable schedule on any violation.
  mpriv analyze [--root DIR] [--config analyze.toml] [--format human|json] [--list-rules]
                [--ratchet] [--baseline PATH] [--write-baseline]
      Run the workspace invariant linter (determinism, panic-safety,
      crate layering, I/O hygiene); non-zero exit on violations. The
      JSON report is byte-stable across runs, call chains included.
      --ratchet additionally compares per-crate debt counters against
      analyze-baseline.toml and fails if any counter rose; after burning
      debt down, --write-baseline locks the lower counts in.

CSV parsing: first row is the header; `?`, `NA` and empty fields are missing.
"
    .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_relation::{csv, Attribute, Schema, Value};

    fn sample() -> Relation {
        let schema = Schema::new(vec![
            Attribute::categorical("name"),
            Attribute::continuous("age"),
            Attribute::categorical("dept"),
        ])
        .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec!["alice".into(), 18.0.into(), "sales".into()],
                vec!["bob".into(), 22.0.into(), "cs".into()],
                vec!["carol".into(), 22.0.into(), "sales".into()],
                vec!["dan".into(), 26.0.into(), "mgmt".into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn policy_names_resolve() {
        assert_eq!(policy_by_name("full").unwrap(), SharePolicy::FULL);
        assert_eq!(
            policy_by_name("recommended").unwrap(),
            SharePolicy::PAPER_RECOMMENDED
        );
        assert!(policy_by_name("nope").is_err());
    }

    #[test]
    fn profile_reports_dependencies() {
        let out = profile(&sample(), MemoryBudget::unlimited()).unwrap();
        assert!(out.contains("4 rows × 3 attributes"));
        assert!(out.contains("FD"));
        assert!(out.contains("name"));
        assert!(
            out.contains("PLI cache:"),
            "cache stats line missing: {out}"
        );
        assert!(out.contains("hit rate"), "hit rate missing: {out}");
        assert!(
            out.contains("columns:"),
            "columnar repr section missing: {out}"
        );
        assert!(out.contains("dict"), "dictionary repr missing: {out}");
    }

    #[test]
    fn profile_budget_caps_cache_without_changing_dependencies() {
        let unlimited = profile(&sample(), MemoryBudget::unlimited()).unwrap();
        let budgeted = profile(&sample(), MemoryBudget::from_bytes(1)).unwrap();
        assert!(unlimited.contains("budget unlimited"), "{unlimited}");
        assert!(budgeted.contains("budget 1 B"), "{budgeted}");
        let deps = |report: &str| -> Vec<String> {
            report
                .lines()
                .filter(|l| l.contains("->"))
                .map(str::to_owned)
                .collect()
        };
        assert_eq!(
            deps(&budgeted),
            deps(&unlimited),
            "a starved budget may cost rebuilds, never dependencies"
        );
    }

    #[test]
    fn audit_reports_leakage() {
        let out = audit(&sample(), SharePolicy::NAMES_AND_DOMAINS, 30, 1.0).unwrap();
        assert!(out.contains("dept"));
        assert!(out.contains("%"));
        // The recommended policy zeroes everything.
        let safe = audit(&sample(), SharePolicy::PAPER_RECOMMENDED, 5, 1.0).unwrap();
        assert!(safe.contains("shares domains: false"));
    }

    #[test]
    fn identifiability_reports() {
        let out = identifiability(&sample(), 2, &[1]).unwrap();
        assert!(out.contains("size ≤ 1"));
        assert!(out.contains("k-anonymity"));
    }

    #[test]
    fn anonymize_transforms() {
        let (report, anon) = anonymize(&sample(), &[1], 2).unwrap();
        assert!(report.contains("→"));
        assert!(mp_core::k_anonymity(&anon, &[1]).unwrap() >= 2);
        assert!(anonymize(&sample(), &[], 2).is_err());
    }

    #[test]
    fn csv_roundtrip_through_commands() {
        let text = "a,b\nx,1\ny,2\nx,1\n";
        let rel = csv::read_str(text, &csv::CsvOptions::default()).unwrap();
        assert!(profile(&rel, MemoryBudget::unlimited()).is_ok());
        assert!(identifiability(&rel, 2, &[]).is_ok());
        let _ = Value::Null; // silence unused import in some cfgs
    }

    #[test]
    fn help_mentions_every_subcommand() {
        let h = help();
        for cmd in [
            "profile",
            "audit",
            "identifiability",
            "anonymize",
            "compare",
            "simulate",
            "serve",
            "check",
            "analyze",
        ] {
            assert!(h.contains(cmd), "help missing {cmd}");
        }
    }

    #[test]
    fn check_is_deterministic_and_clean() {
        let a = check(2, 256, 1, 1, 1).unwrap();
        let b = check(2, 256, 1, 1, 1).unwrap();
        assert_eq!(a, b, "exhaustive check must be byte-reproducible");
        assert!(a.contains("violations: 0"), "{a}");
        assert!(check(5, 256, 1, 1, 1).is_err(), "party bound must hold");
    }

    #[test]
    fn simulate_is_seed_deterministic() {
        let a = simulate(7, "drop,dup", 60).unwrap();
        let b = simulate(7, "drop,dup", 60).unwrap();
        assert_eq!(a, b, "same seed must reproduce the same report");
        assert!(a.contains("trace:"));
        assert!(a.contains("invariants: hold"));
        assert!(a.contains("completed"));
    }

    #[test]
    fn simulate_crash_aborts_with_error() {
        let err = simulate(3, "crash", 60).unwrap_err();
        assert!(err.contains("aborted"), "expected abort report: {err}");
        assert!(err.contains("crashed"), "typed crash missing: {err}");
    }

    #[test]
    fn simulate_rejects_unknown_fault() {
        assert!(simulate(0, "gremlins", 60).is_err());
    }

    #[test]
    fn matrix_dataset_registry() {
        for name in ["echocardiogram", "bank", "car"] {
            let ds = matrix_dataset(name).unwrap();
            assert_eq!(ds.name, name);
            assert!(ds.relation.n_rows() > 0);
            assert!(!ds.dependencies.is_empty());
        }
        assert!(matrix_dataset("nope").is_err());
    }

    #[test]
    fn audit_matrix_runs_and_rejects_bad_input() {
        let (matrix, md) = audit_matrix("car", "baseline", 3, 0.5, 1, &NoopRecorder).unwrap();
        // 1 dataset × 1 adversary × 7 classes × 5 policies.
        assert_eq!(matrix.cells.len(), 35);
        assert!(md.contains("## car — adversary: baseline"));
        assert!(matrix.to_json().contains("\"schema_version\": 1"));
        assert!(audit_matrix("nope", "baseline", 3, 0.5, 1, &NoopRecorder).is_err());
        assert!(audit_matrix("car", "mallory", 3, 0.5, 1, &NoopRecorder).is_err());
    }

    #[test]
    fn compare_policies_matrix() {
        let out = compare_policies(&sample(), 20, 0.5).unwrap();
        for policy in ["names", "domains", "full", "recommended"] {
            assert!(out.contains(policy), "missing column {policy}");
        }
        assert!(out.contains("dept"));
    }
}
