//! Golden regression tests for `mpriv ... --metrics-json`.
//!
//! The metrics snapshot is part of the determinism contract: it contains
//! only logical-clock integers (PLI builds, transport ticks), never wall
//! time, so for a fixed input (and, for `simulate`, a fixed seed) the
//! emitted JSON is byte-reproducible. These tests pin the exact snapshots
//! for the checked-in fixture CSV and for `simulate --seed 7` against
//! golden files, and assert the zero-perturbation half of the contract:
//! collecting metrics must not change the report on stdout.
//!
//! To regenerate after an *intentional* change:
//! `cargo run -p mp-cli --bin mpriv -- profile crates/cli/tests/fixtures/demo.csv \
//!    --metrics-json crates/cli/tests/golden/profile_demo_metrics.json`
//! `cargo run -p mp-cli --bin mpriv -- simulate --seed 7 --faults drop,dup,reorder \
//!    --rows 120 --metrics-json crates/cli/tests/golden/simulate_seed7_metrics.json`

use std::path::{Path, PathBuf};
use std::process::Command;

fn mpriv() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mpriv"))
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join(name)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mpriv-metrics-golden");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Runs `argv` with `--metrics-json` appended, checks the stdout report is
/// byte-identical to the metrics-free run, and returns the snapshot JSON.
fn run_with_metrics(argv: &[&str], out_name: &str, expect_success: bool) -> String {
    let plain = mpriv().args(argv).output().unwrap();
    let out_path = tmp(out_name);
    let observed = mpriv()
        .args(argv)
        .arg("--metrics-json")
        .arg(&out_path)
        .output()
        .unwrap();
    assert_eq!(
        plain.status.success(),
        expect_success,
        "unexpected status for {argv:?}: {}",
        String::from_utf8_lossy(&plain.stderr)
    );
    assert_eq!(observed.status.success(), expect_success);
    assert_eq!(
        plain.stdout, observed.stdout,
        "--metrics-json must not perturb the report of {argv:?}"
    );
    assert_eq!(
        plain.stderr, observed.stderr,
        "--metrics-json must not perturb diagnostics of {argv:?}"
    );
    std::fs::read_to_string(&out_path).unwrap()
}

fn assert_matches_golden(got: &str, golden: &str) {
    let want = std::fs::read_to_string(fixture(golden)).unwrap();
    assert_eq!(
        got,
        want,
        "metrics snapshot drifted from {golden}; regenerate the golden file if the change is intended"
    );
}

#[test]
fn profile_metrics_match_golden_snapshot() {
    let csv = fixture("fixtures/demo.csv");
    let got = run_with_metrics(&["profile", csv.to_str().unwrap()], "profile.json", true);
    assert_matches_golden(&got, "golden/profile_demo_metrics.json");
}

#[test]
fn simulate_seed7_metrics_match_golden_snapshot() {
    let got = run_with_metrics(
        &[
            "simulate",
            "--seed",
            "7",
            "--faults",
            "drop,dup,reorder",
            "--rows",
            "120",
        ],
        "simulate7.json",
        true,
    );
    assert_matches_golden(&got, "golden/simulate_seed7_metrics.json");
}

#[test]
fn metrics_snapshots_are_run_to_run_identical() {
    let csv = fixture("fixtures/demo.csv");
    let a = run_with_metrics(&["profile", csv.to_str().unwrap()], "p_a.json", true);
    let b = run_with_metrics(&["profile", csv.to_str().unwrap()], "p_b.json", true);
    assert_eq!(a, b, "profile metrics vary across runs");
    let sim = ["simulate", "--seed", "3", "--faults", "drop,dup"];
    let a = run_with_metrics(&sim, "s_a.json", true);
    let b = run_with_metrics(&sim, "s_b.json", true);
    assert_eq!(a, b, "simulate metrics vary across runs");
}

#[test]
fn aborted_simulation_still_writes_metrics() {
    // A crash schedule aborts the run (non-zero exit), but the wire
    // metrics of the failed attempt are still written — they are exactly
    // what one inspects after an abort.
    let got = run_with_metrics(
        &[
            "simulate", "--seed", "5", "--faults", "crash", "--rows", "60",
        ],
        "crash.json",
        false,
    );
    assert!(got.contains("\"schema_version\": 1"), "snapshot: {got}");
    assert!(got.contains("transport.crashes"), "snapshot: {got}");
}

#[test]
fn metrics_snapshot_carries_no_wall_clock() {
    // Belt and braces for the determinism contract: every numeric field
    // in the snapshot is a small logical quantity, so any wall-clock
    // timestamp (seconds or nanoseconds since the epoch) sneaking in
    // would stand out by sheer magnitude.
    let csv = fixture("fixtures/demo.csv");
    let got = run_with_metrics(&["profile", csv.to_str().unwrap()], "wall.json", true);
    for token in got.split(|c: char| !c.is_ascii_digit()) {
        if !token.is_empty() {
            let v: u64 = token.parse().unwrap();
            assert!(v < 1_000_000_000, "suspiciously large value {v} in: {got}");
        }
    }
}
