//! Golden regression tests for `mpriv audit --matrix`.
//!
//! The leakage matrix is the PR's reproducibility contract: for a fixed
//! `(datasets, adversaries, rounds, epsilon)` configuration every cell is
//! seeded from its own coordinate (`mp_core::seed_for`), so the JSON and
//! markdown artefacts are byte-reproducible — across repeated runs *and*
//! across worker-thread counts, because the sweep order is fixed and
//! `par_map` preserves it. These tests pin the echocardiogram matrix
//! against golden files and assert both halves of that contract.
//!
//! To regenerate after an *intentional* change:
//! `cargo run -p mp-cli --bin mpriv -- audit --matrix --datasets echocardiogram \
//!    --adversaries baseline,partial50,collude2,noisy10 --rounds 12 \
//!    --out crates/cli/tests/golden/matrix_echo.json \
//!    --md crates/cli/tests/golden/matrix_echo.md`

use std::path::{Path, PathBuf};
use std::process::Command;

const ARGS: [&str; 8] = [
    "audit",
    "--matrix",
    "--datasets",
    "echocardiogram",
    "--adversaries",
    "baseline,partial50,collude2,noisy10",
    "--rounds",
    "12",
];

fn mpriv() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mpriv"))
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join(name)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("mpriv-matrix-golden");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Runs the pinned matrix configuration with `--out`/`--md` sinks and
/// returns `(stdout, json, markdown)`.
fn run_matrix(extra: &[&str], tag: &str) -> (String, String, String) {
    let json_path = tmp(&format!("{tag}.json"));
    let md_path = tmp(&format!("{tag}.md"));
    let output = mpriv()
        .args(ARGS)
        .args(extra)
        .arg("--out")
        .arg(&json_path)
        .arg("--md")
        .arg(&md_path)
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "matrix run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    (
        String::from_utf8(output.stdout).unwrap(),
        std::fs::read_to_string(&json_path).unwrap(),
        std::fs::read_to_string(&md_path).unwrap(),
    )
}

fn golden(name: &str) -> String {
    std::fs::read_to_string(fixture(name)).unwrap()
}

#[test]
fn echocardiogram_matrix_matches_golden_json_and_markdown() {
    let (stdout, json, md) = run_matrix(&[], "echo");
    assert_eq!(
        json,
        golden("golden/matrix_echo.json"),
        "matrix JSON drifted from golden/matrix_echo.json; regenerate if intended"
    );
    assert_eq!(
        md,
        golden("golden/matrix_echo.md"),
        "matrix markdown drifted from golden/matrix_echo.md; regenerate if intended"
    );
    assert_eq!(stdout, md, "stdout must be exactly the markdown artefact");
}

#[test]
fn matrix_is_byte_identical_across_thread_counts() {
    let (stdout1, json1, md1) = run_matrix(&["--threads", "1"], "t1");
    let (stdout4, json4, md4) = run_matrix(&["--threads", "4"], "t4");
    assert_eq!(json1, json4, "JSON must not depend on worker-thread count");
    assert_eq!(md1, md4, "markdown must not depend on worker-thread count");
    assert_eq!(stdout1, stdout4);
    // The thread-count runs must also agree with the default (0 = auto).
    assert_eq!(json1, golden("golden/matrix_echo.json"));
}

#[test]
fn matrix_is_byte_identical_across_repeated_runs() {
    let (_, json_a, md_a) = run_matrix(&[], "rep-a");
    let (_, json_b, md_b) = run_matrix(&[], "rep-b");
    assert_eq!(json_a, json_b, "repeated runs must reproduce the JSON");
    assert_eq!(md_a, md_b, "repeated runs must reproduce the markdown");
}

#[test]
fn metrics_json_does_not_perturb_the_matrix_report() {
    let plain = mpriv().args(ARGS).output().unwrap();
    let metrics_path = tmp("metrics.json");
    let observed = mpriv()
        .args(ARGS)
        .arg("--metrics-json")
        .arg(&metrics_path)
        .output()
        .unwrap();
    assert!(plain.status.success());
    assert!(observed.status.success());
    assert_eq!(
        plain.stdout, observed.stdout,
        "--metrics-json must not perturb the matrix report"
    );
    let metrics = std::fs::read_to_string(&metrics_path).unwrap();
    // 1 dataset × 4 adversaries × 7 classes × 5 policies = 140 cells.
    assert!(
        metrics.contains("\"matrix.cells\": 140"),
        "metrics snapshot missing the cell counter: {metrics}"
    );
    assert!(metrics.contains("\"matrix.synth.rounds\""));
}

#[test]
fn matrix_rejects_unknown_dataset_and_adversary() {
    let bad_ds = mpriv()
        .args(["audit", "--matrix", "--datasets", "no-such-table"])
        .output()
        .unwrap();
    assert!(!bad_ds.status.success());
    assert!(String::from_utf8_lossy(&bad_ds.stderr).contains("no-such-table"));
    let bad_adv = mpriv()
        .args(["audit", "--matrix", "--adversaries", "psychic"])
        .output()
        .unwrap();
    assert!(!bad_adv.status.success());
    assert!(String::from_utf8_lossy(&bad_adv.stderr).contains("psychic"));
}
