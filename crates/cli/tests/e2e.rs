//! End-to-end tests of the `mpriv` binary via `std::process`.

use std::path::PathBuf;
use std::process::Command;

fn mpriv() -> Command {
    // Cargo exposes the binary under test via this env var for integration
    // tests of the same package.
    Command::new(env!("CARGO_BIN_EXE_mpriv"))
}

fn demo_csv() -> PathBuf {
    let dir = std::env::temp_dir().join("mpriv-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("demo.csv");
    std::fs::write(
        &path,
        "name,age,dept\nalice,18,sales\nbob,22,cs\ncarol,22,sales\ndan,26,mgmt\n",
    )
    .unwrap();
    path
}

#[test]
fn help_succeeds() {
    let out = mpriv().arg("help").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("mpriv"));
    assert!(text.contains("audit"));
}

#[test]
fn profile_runs_on_csv() {
    let out = mpriv().arg("profile").arg(demo_csv()).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("4 rows"));
    assert!(text.contains("FD"));
}

#[test]
fn profile_accepts_memory_budget() {
    let out = mpriv()
        .arg("profile")
        .arg(demo_csv())
        .args(["--budget-mb", "1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("budget 1048576 B"), "{text}");
    assert!(text.contains("FD"));
}

#[test]
fn audit_with_options() {
    let out = mpriv()
        .args(["audit"])
        .arg(demo_csv())
        .args(["--policy", "domains", "--rounds", "20", "--epsilon", "1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("dept"));
    assert!(text.contains("shares domains: true"));
}

#[test]
fn anonymize_writes_output_file() {
    let out_path = std::env::temp_dir().join("mpriv-e2e").join("anon.csv");
    let out = mpriv()
        .arg("anonymize")
        .arg(demo_csv())
        .args(["--qi", "1", "--k", "2", "--out"])
        .arg(&out_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(&out_path).unwrap();
    assert!(written.starts_with("name,age,dept"));
    assert_eq!(written.lines().count(), 5);
}

#[test]
fn unknown_subcommand_fails_with_message() {
    let out = mpriv().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand"));
}

#[test]
fn missing_file_fails_cleanly() {
    let out = mpriv()
        .args(["profile", "/nonexistent/nope.csv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn simulate_same_seed_same_output() {
    let run = || {
        mpriv()
            .args([
                "simulate", "--seed", "11", "--faults", "drop,dup", "--rows", "60",
            ])
            .output()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert!(a.status.success(), "{}", String::from_utf8_lossy(&a.stderr));
    assert_eq!(a.stdout, b.stdout, "seeded trace summary must be stable");
    let text = String::from_utf8_lossy(&a.stdout);
    assert!(text.contains("seed 11"));
    assert!(text.contains("trace:"));
    assert!(text.contains("invariants: hold"));
    assert!(text.contains("completed"));
}

#[test]
fn simulate_different_seeds_change_the_trace() {
    let run = |seed: &str| {
        let out = mpriv()
            .args([
                "simulate",
                "--seed",
                seed,
                "--faults",
                "drop,dup,reorder",
                "--rows",
                "60",
            ])
            .output()
            .unwrap();
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    // At least one of a handful of seeds must produce a different trace
    // line — the faults are really seed-driven.
    let base = run("0");
    assert!(
        (1..6).any(|s| run(&s.to_string()) != base),
        "every seed produced an identical trace"
    );
}

#[test]
fn simulate_crash_exits_non_zero_with_typed_abort() {
    let out = mpriv()
        .args([
            "simulate", "--seed", "5", "--faults", "crash", "--rows", "60",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "crash schedule must abort");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("aborted"), "stderr: {err}");
    assert!(err.contains("crashed"), "stderr: {err}");
}

#[test]
fn simulate_rejects_unknown_fault_name() {
    let out = mpriv()
        .args(["simulate", "--faults", "gremlins"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}
