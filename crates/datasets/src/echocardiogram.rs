//! Reconstructed echocardiogram dataset.
//!
//! The paper evaluates on the UCI *echocardiogram* dataset (132 rows, 13
//! attributes) from the HPI FD-repeatability project. The raw clinical
//! values are not redistributable here, so this module builds a
//! deterministic, seeded reconstruction that preserves everything the
//! paper's experiments are a function of (see DESIGN.md §4):
//!
//! * the UCI schema and the paper's categorical/continuous split —
//!   categorical attrs 1, 3, 11, 12 (plus the constant `name` attr 10),
//!   continuous attrs 0, 2, 4–9;
//! * 132 tuples with missing values on the attributes UCI reports them on,
//!   so categorical domains include `?` (this is what makes random-match
//!   expectations land at `N/3` for binary attributes, as in Table IV);
//! * planted, *exactly verifiable* FD/OD/ND/OFD structure between the same
//!   attribute families the paper's discovery step found dependencies on.
//!
//! Planted structure (all verified by tests):
//!
//! | dependency | mechanism |
//! |---|---|
//! | FD/OD `age(2) → group(11)` | group is an age band |
//! | FD/OD `survival(0) → still_alive(1)` | threshold at 24 months |
//! | FD/OD `wall_motion_score(7) → pericardial(3)` | 3 score bands |
//! | FD/OD/OFD `wall_motion_score(7) ↔ wall_motion_index(8)` | exact linear map |
//! | FD/OD `lvdd(6) → epss(5)` | monotone rescaling |
//! | OD `fractional_shortening(4) → mult(9)` | monotone map on non-nulls |
//! | ND `group(11) →≤k survival(0)` | per-group survival value grids |
//!
//! `alive_at_1(12)` is a function of *two* attributes (survival and wall
//! motion), so no single-attribute FD determines it — matching the `NA`
//! cell for FDs on attr 12 in the paper's Table IV.

use mp_metadata::{Dependency, Fd, NumericalDep, OrderDep, OrderedFd};
use mp_relation::{Attribute, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default RNG seed for the reconstruction.
pub const DEFAULT_SEED: u64 = 0xEC40_CA4D;

/// Number of tuples, matching the UCI dataset.
pub const N_ROWS: usize = 132;

/// Attribute indices, following the UCI/paper numbering.
pub mod attrs {
    /// Months the patient survived (continuous, some missing).
    pub const SURVIVAL: usize = 0;
    /// Whether the patient is still alive (categorical 0/1/?).
    pub const STILL_ALIVE: usize = 1;
    /// Age at heart attack (continuous).
    pub const AGE: usize = 2;
    /// Pericardial effusion (categorical, 3 codes).
    pub const PERICARDIAL: usize = 3;
    /// Fractional shortening (continuous, some missing).
    pub const FRACTIONAL_SHORTENING: usize = 4;
    /// E-point septal separation (continuous).
    pub const EPSS: usize = 5;
    /// Left ventricular end-diastolic dimension (continuous).
    pub const LVDD: usize = 6;
    /// Wall motion score (continuous).
    pub const WALL_MOTION_SCORE: usize = 7;
    /// Wall motion index (continuous).
    pub const WALL_MOTION_INDEX: usize = 8;
    /// Derived multiplier (continuous).
    pub const MULT: usize = 9;
    /// Patient name placeholder (constant categorical, excluded from
    /// experiments as in the paper).
    pub const NAME: usize = 10;
    /// Cohort group (categorical, 4 age bands).
    pub const GROUP: usize = 11;
    /// Alive at one year (categorical 0/1/?).
    pub const ALIVE_AT_1: usize = 12;
}

/// The continuous attributes evaluated in the paper's Table III.
pub const CONTINUOUS_ATTRS: [usize; 8] = [0, 2, 4, 5, 6, 7, 8, 9];

/// The categorical attributes evaluated in the paper's Table IV.
pub const CATEGORICAL_ATTRS: [usize; 4] = [1, 3, 11, 12];

fn round_to(x: f64, decimals: i32) -> f64 {
    let f = 10f64.powi(decimals);
    (x * f).round() / f
}

/// The UCI echocardiogram schema with the paper's kind assignment.
pub fn echocardiogram_schema() -> Schema {
    Schema::new(vec![
        Attribute::continuous("survival"),
        Attribute::categorical("still_alive"),
        Attribute::continuous("age_at_heart_attack"),
        Attribute::categorical("pericardial_effusion"),
        Attribute::continuous("fractional_shortening"),
        Attribute::continuous("epss"),
        Attribute::continuous("lvdd"),
        Attribute::continuous("wall_motion_score"),
        Attribute::continuous("wall_motion_index"),
        Attribute::continuous("mult"),
        Attribute::categorical("name"),
        Attribute::categorical("group"),
        Attribute::categorical("alive_at_1"),
    ])
    .expect("echocardiogram schema is valid")
}

/// Builds the reconstruction with the default seed.
pub fn echocardiogram() -> Relation {
    echocardiogram_with_seed(DEFAULT_SEED)
}

/// Builds the reconstruction with an explicit seed (planted dependencies
/// hold for *every* seed; only the noise varies).
pub fn echocardiogram_with_seed(seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);

    // Rows with missing survival / still_alive / fractional_shortening,
    // spread deterministically across the table.
    let survival_nulls = [12usize, 44, 76, 108];
    let unique_survival_rows = [5usize, 20, 35, 50, 65, 80, 95, 110];
    let fs_nulls = [3usize, 19, 37, 55, 71, 89, 103, 121];

    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(N_ROWS);
    for i in 0..N_ROWS {
        // Age and its band (group): FD/OD age → group.
        let age = round_to(35.0 + 51.0 * rng.gen::<f64>(), 1);
        let group: i64 = match age {
            a if a < 48.0 => 1,
            a if a < 60.0 => 2,
            a if a < 73.0 => 3,
            _ => 4,
        };

        // Survival: per-group value grids (ND group →≤k survival), eight
        // rows with unique off-grid values, four missing.
        let survival: Value = if survival_nulls.contains(&i) {
            Value::Null
        } else if unique_survival_rows.contains(&i) {
            // Unique off-grid values, all below the grid floor of 2.0.
            Value::Float(0.25 + i as f64 * 0.01)
        } else {
            // Per-group grids are offset by 0.75 so they are disjoint
            // across groups, keeping the ND group →≤k survival informative
            // (k « distinct survival values).
            let j: i64 = rng.gen_range(0..13);
            Value::Float(2.0 + (group - 1) as f64 * 0.75 + (3 * j) as f64)
        };

        // still_alive is a threshold function of survival (FD/OD 0 → 1);
        // unknown where survival is unknown or off-grid (below 2 months).
        let still_alive: Value = match survival.as_f64() {
            None => Value::Null,
            Some(s) if s < 2.0 => Value::Null,
            Some(s) if s < 24.0 => Value::Int(0),
            Some(_) => Value::Int(1),
        };

        // Wall motion score (0.5 grid) and its exact linear index:
        // FD/OD/OFD in both directions between 7 and 8.
        let score = ((2.0 + 37.0 * rng.gen::<f64>()) * 2.0).round() / 2.0;
        let index = 1.0 + (score - 2.0) * 0.05;

        // Pericardial effusion: three score bands (FD/OD 7 → 3).
        let pericardial: i64 = if score < 14.0 {
            0
        } else if score < 27.0 {
            1
        } else {
            2
        };

        // alive_at_1 needs BOTH survival and wall motion — no
        // single-attribute FD determines it (paper Table IV: FD attr12 NA).
        let alive_at_1: Value = match &still_alive {
            Value::Null => Value::Null,
            Value::Int(1) if score < 20.0 => Value::Int(1),
            _ => Value::Int(0),
        };

        // lvdd and its monotone rescaling epss (FD/OD 6 → 5).
        let lvdd = round_to(2.3 + 4.5 * rng.gen::<f64>(), 2);
        let epss = round_to((lvdd - 2.3) / 4.5 * 40.0, 1);

        // Fractional shortening (8 missing) and mult, a monotone map of it
        // on non-null rows (OD 4 → 9) but random on nulls (so no FD 4 → 9).
        let fs: Value = if fs_nulls.contains(&i) {
            Value::Null
        } else {
            Value::Float(round_to(0.01 + 0.6 * rng.gen::<f64>(), 2))
        };
        let mult: f64 = match fs.as_f64() {
            Some(v) => round_to(0.14 + (v - 0.01) / 0.6 * 1.86, 2),
            None => round_to(0.14 + 1.86 * rng.gen::<f64>(), 2),
        };

        rows.push(vec![
            survival,
            still_alive,
            Value::Float(age),
            Value::Int(pericardial),
            fs,
            Value::Float(epss),
            Value::Float(lvdd),
            Value::Float(score),
            Value::Float(index),
            Value::Float(mult),
            Value::Text("name".into()),
            Value::Int(group),
            alive_at_1,
        ]);
    }

    Relation::from_rows(echocardiogram_schema(), rows)
        .expect("reconstruction rows match the schema")
}

/// Dependencies planted by construction; every one of these holds exactly
/// on the reconstruction (any seed) and is asserted by tests.
pub fn verified_dependencies() -> Vec<Dependency> {
    use attrs::*;
    vec![
        Fd::new(SURVIVAL, STILL_ALIVE).into(),
        Fd::new(AGE, GROUP).into(),
        Fd::new(WALL_MOTION_SCORE, PERICARDIAL).into(),
        Fd::new(WALL_MOTION_SCORE, WALL_MOTION_INDEX).into(),
        Fd::new(WALL_MOTION_INDEX, WALL_MOTION_SCORE).into(),
        Fd::new(LVDD, EPSS).into(),
        OrderDep::ascending(SURVIVAL, STILL_ALIVE).into(),
        OrderDep::ascending(AGE, GROUP).into(),
        OrderDep::ascending(WALL_MOTION_SCORE, PERICARDIAL).into(),
        OrderDep::ascending(WALL_MOTION_SCORE, WALL_MOTION_INDEX).into(),
        OrderDep::ascending(WALL_MOTION_INDEX, WALL_MOTION_SCORE).into(),
        OrderDep::ascending(LVDD, EPSS).into(),
        OrderDep::ascending(FRACTIONAL_SHORTENING, MULT).into(),
        OrderedFd::new(WALL_MOTION_SCORE, WALL_MOTION_INDEX).into(),
        NumericalDep::new(GROUP, SURVIVAL, 22).into(),
        NumericalDep::new(GROUP, STILL_ALIVE, 3).into(),
    ]
}

/// The per-attribute dependency inventory used to regenerate the paper's
/// Tables III and IV: for each evaluated attribute, the dependency (if any)
/// of each class used to generate it. Attributes absent from a class's map
/// are the paper's `NA` cells.
///
/// Mirrors the paper's coverage pattern exactly: FDs exist for categorical
/// attrs 1, 3, 11 (not 12) and continuous attrs 0, 2, 4–8 (not 9); ODs
/// exist for all evaluated attributes; NDs exist only for attrs 0 and 1.
/// Dependencies marked *predefined* in the comments do not hold exactly on
/// the reconstruction — they play the role of the weaker discovered
/// dependencies the paper generated from (e.g. its OD for attr 2, whose MSE
/// came out *worse* than random generation).
#[derive(Debug, Clone)]
pub struct PaperInventory {
    /// FD used to generate each attribute (paper Tables III/IV, row "Func Dep").
    pub fd: Vec<(usize, Dependency)>,
    /// OD used for each attribute (row "Ord Dep").
    pub od: Vec<(usize, Dependency)>,
    /// ND used for each attribute (row "Num Dep").
    pub nd: Vec<(usize, Dependency)>,
}

impl PaperInventory {
    /// Looks up the dependency of a class (`"FD"`, `"OD"`, `"ND"`) for an
    /// attribute, `None` for the paper's `NA` cells.
    pub fn lookup(&self, class: &str, attr: usize) -> Option<&Dependency> {
        let list = match class {
            "FD" => &self.fd,
            "OD" => &self.od,
            "ND" => &self.nd,
            _ => return None,
        };
        list.iter().find(|(a, _)| *a == attr).map(|(_, d)| d)
    }
}

/// Builds the inventory (see [`PaperInventory`]).
pub fn paper_inventory() -> PaperInventory {
    use attrs::*;
    let fd: Vec<(usize, Dependency)> = vec![
        (SURVIVAL, Fd::new(GROUP, SURVIVAL).into()), // predefined
        (STILL_ALIVE, Fd::new(SURVIVAL, STILL_ALIVE).into()),
        (AGE, Fd::new(GROUP, AGE).into()), // predefined
        (PERICARDIAL, Fd::new(WALL_MOTION_SCORE, PERICARDIAL).into()),
        (
            FRACTIONAL_SHORTENING,
            Fd::new(LVDD, FRACTIONAL_SHORTENING).into(),
        ), // predefined
        (EPSS, Fd::new(LVDD, EPSS).into()),
        (LVDD, Fd::new(EPSS, LVDD).into()), // predefined
        (
            WALL_MOTION_SCORE,
            Fd::new(WALL_MOTION_INDEX, WALL_MOTION_SCORE).into(),
        ),
        (
            WALL_MOTION_INDEX,
            Fd::new(WALL_MOTION_SCORE, WALL_MOTION_INDEX).into(),
        ),
        (GROUP, Fd::new(AGE, GROUP).into()),
    ];
    let od: Vec<(usize, Dependency)> = vec![
        (SURVIVAL, OrderDep::ascending(GROUP, SURVIVAL).into()), // predefined
        (
            STILL_ALIVE,
            OrderDep::ascending(SURVIVAL, STILL_ALIVE).into(),
        ),
        (AGE, OrderDep::ascending(GROUP, AGE).into()), // predefined
        (
            PERICARDIAL,
            OrderDep::ascending(WALL_MOTION_SCORE, PERICARDIAL).into(),
        ),
        (
            FRACTIONAL_SHORTENING,
            OrderDep::ascending(MULT, FRACTIONAL_SHORTENING).into(),
        ),
        (EPSS, OrderDep::ascending(LVDD, EPSS).into()),
        (LVDD, OrderDep::ascending(EPSS, LVDD).into()), // predefined
        (
            WALL_MOTION_SCORE,
            OrderDep::ascending(WALL_MOTION_INDEX, WALL_MOTION_SCORE).into(),
        ),
        (
            WALL_MOTION_INDEX,
            OrderDep::ascending(WALL_MOTION_SCORE, WALL_MOTION_INDEX).into(),
        ),
        (
            MULT,
            OrderDep::ascending(FRACTIONAL_SHORTENING, MULT).into(),
        ),
        (GROUP, OrderDep::ascending(AGE, GROUP).into()),
        (ALIVE_AT_1, OrderDep::ascending(SURVIVAL, ALIVE_AT_1).into()), // predefined
    ];
    let nd: Vec<(usize, Dependency)> = vec![
        (SURVIVAL, NumericalDep::new(GROUP, SURVIVAL, 22).into()),
        (STILL_ALIVE, NumericalDep::new(GROUP, STILL_ALIVE, 3).into()),
    ];
    PaperInventory { fd, od, nd }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_relation::Domain;

    #[test]
    fn shape_matches_uci() {
        let r = echocardiogram();
        assert_eq!(r.n_rows(), N_ROWS);
        assert_eq!(r.arity(), 13);
    }

    #[test]
    fn determinism() {
        assert_eq!(echocardiogram(), echocardiogram());
        assert_ne!(echocardiogram_with_seed(1), echocardiogram_with_seed(2));
    }

    #[test]
    fn categorical_domains_have_paper_cardinalities() {
        // Table IV's random-match counts are N/|D|: 44 ⇒ |D| = 3 for attrs
        // 1, 3, 12 and 33 ⇒ |D| = 4 for attr 11.
        let r = echocardiogram();
        assert_eq!(
            Domain::infer(&r, attrs::STILL_ALIVE).unwrap().cardinality(),
            Some(3)
        );
        assert_eq!(
            Domain::infer(&r, attrs::PERICARDIAL).unwrap().cardinality(),
            Some(3)
        );
        assert_eq!(
            Domain::infer(&r, attrs::GROUP).unwrap().cardinality(),
            Some(4)
        );
        assert_eq!(
            Domain::infer(&r, attrs::ALIVE_AT_1).unwrap().cardinality(),
            Some(3)
        );
    }

    #[test]
    fn verified_dependencies_hold_on_default_seed() {
        let r = echocardiogram();
        for dep in verified_dependencies() {
            assert!(dep.holds(&r).unwrap(), "{dep} should hold");
        }
    }

    #[test]
    fn verified_dependencies_hold_on_other_seeds() {
        for seed in [1u64, 7, 42] {
            let r = echocardiogram_with_seed(seed);
            for dep in verified_dependencies() {
                assert!(dep.holds(&r).unwrap(), "{dep} should hold at seed {seed}");
            }
        }
    }

    #[test]
    fn alive_at_1_has_no_single_attr_fd() {
        // The paper's Table IV marks FDs for attr 12 as NA; the
        // reconstruction guarantees no single-attribute determinant.
        let r = echocardiogram();
        for lhs in 0..13 {
            if lhs == attrs::ALIVE_AT_1 {
                continue;
            }
            assert!(
                !Fd::new(lhs, attrs::ALIVE_AT_1).holds(&r).unwrap(),
                "attr {lhs} should not determine alive_at_1"
            );
        }
    }

    #[test]
    fn mult_has_no_fd_from_fractional_shortening() {
        // Nulls on attr 4 map to random mult values, so only the OD holds.
        let r = echocardiogram();
        assert!(!Fd::new(attrs::FRACTIONAL_SHORTENING, attrs::MULT)
            .holds(&r)
            .unwrap());
        assert!(
            OrderDep::ascending(attrs::FRACTIONAL_SHORTENING, attrs::MULT)
                .holds(&r)
                .unwrap()
        );
    }

    #[test]
    fn predefined_inventory_covers_paper_pattern() {
        let inv = paper_inventory();
        // FDs: continuous 0,2,4,5,6,7,8 present; 9 NA.
        for a in [0, 2, 4, 5, 6, 7, 8] {
            assert!(inv.lookup("FD", a).is_some(), "FD for attr {a}");
        }
        assert!(inv.lookup("FD", attrs::MULT).is_none());
        // FDs: categorical 1,3,11 present; 12 NA.
        for a in [1, 3, 11] {
            assert!(inv.lookup("FD", a).is_some());
        }
        assert!(inv.lookup("FD", attrs::ALIVE_AT_1).is_none());
        // ODs cover every evaluated attribute.
        for a in CONTINUOUS_ATTRS.iter().chain(CATEGORICAL_ATTRS.iter()) {
            assert!(inv.lookup("OD", *a).is_some(), "OD for attr {a}");
        }
        // NDs: only attrs 0 and 1.
        assert!(inv.lookup("ND", attrs::SURVIVAL).is_some());
        assert!(inv.lookup("ND", attrs::STILL_ALIVE).is_some());
        assert!(inv.lookup("ND", attrs::AGE).is_none());
        assert!(inv.lookup("ND", 99).is_none());
        assert!(inv.lookup("XX", 0).is_none());
    }

    #[test]
    fn group_fanout_bounded_for_nd() {
        use mp_metadata::NumericalDep;
        let r = echocardiogram();
        let k = NumericalDep::max_fanout(attrs::GROUP, attrs::SURVIVAL, &r).unwrap();
        assert!(k <= 22, "fanout {k} exceeds planted ND bound");
        // And the bound is meaningful: far fewer than the distinct count.
        assert!(k < r.distinct_count(attrs::SURVIVAL).unwrap());
    }

    #[test]
    fn missing_values_present_where_planted() {
        let r = echocardiogram();
        let nulls = |c: usize| r.column(c).unwrap().iter().filter(|v| v.is_null()).count();
        assert_eq!(nulls(attrs::SURVIVAL), 4);
        assert_eq!(nulls(attrs::STILL_ALIVE), 12);
        assert_eq!(nulls(attrs::FRACTIONAL_SHORTENING), 8);
        assert_eq!(nulls(attrs::AGE), 0);
    }
}
