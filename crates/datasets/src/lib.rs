//! # mp-datasets — datasets for the metadata-privacy reproduction
//!
//! * [`employee`] — the paper's Table II running example;
//! * [`echocardiogram()`](fn@echocardiogram) — a deterministic reconstruction of the UCI
//!   echocardiogram dataset the paper evaluates on (see the module docs and
//!   DESIGN.md §4 for the substitution argument), plus the per-attribute
//!   dependency inventory ([`paper_inventory`]) that regenerates the `NA`
//!   pattern of Tables III and IV;
//! * [`fintech_scenario`] — the Figure 1 bank × e-commerce VFL scenario;
//! * [`SyntheticSpec`] — configurable relations with planted FD/AFD/OD/ND
//!   ground truth for discovery tests and benches;
//! * [`scale_relation`] — the same dependency classes generated straight
//!   into typed columns, fast enough for million-row scale benches.

#![warn(missing_docs)]

mod bank;
mod car;
pub mod echocardiogram;
mod employee;
mod fintech;
mod generator;
mod iris;
mod scale;

pub use bank::bank_table;
pub use car::car_table;
pub use echocardiogram::{
    echocardiogram, echocardiogram_schema, echocardiogram_with_seed, paper_inventory,
    verified_dependencies, PaperInventory, CATEGORICAL_ATTRS, CONTINUOUS_ATTRS, N_ROWS,
};
pub use employee::{attrs as employee_attrs, employee};
pub use fintech::{fintech_scenario, FintechParty, FintechScenario};
pub use generator::{all_classes_spec, ColumnSpec, SyntheticRelation, SyntheticSpec};
pub use iris::{iris_attrs, iris_dependencies, iris_like, iris_like_with_seed, IRIS_ROWS};
pub use scale::{scale_relation, SCALE_ARITY, SCALE_BASE_CARDINALITY};
