//! The paper's Figure 1 scenario: a bank and an e-commerce company hold
//! vertical slices of a common customer population.
//!
//! The bank holds credit features; the e-commerce company holds purchase
//! features. Both relations lead with a `customer_id` key column used for
//! (simulated) private set intersection. The bank's side carries planted
//! dependency structure so the scenario exercises metadata exchange with
//! FDs and RFDs, as the paper's introduction motivates.

use mp_metadata::{Dependency, Fd, NumericalDep, OrderDep};
use mp_relation::{Attribute, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One side of the fintech scenario.
#[derive(Debug, Clone)]
pub struct FintechParty {
    /// The party's relation, leading with `customer_id`.
    pub relation: Relation,
    /// Dependencies that hold on the relation by construction.
    pub dependencies: Vec<Dependency>,
}

/// Both parties of the Figure 1 scenario.
#[derive(Debug, Clone)]
pub struct FintechScenario {
    /// Party A: the bank.
    pub bank: FintechParty,
    /// Party B: the e-commerce company.
    pub ecommerce: FintechParty,
}

/// Builds the scenario: `n_customers` shared customers, of which the bank
/// sees all and the e-commerce company sees a deterministic ~80% subset
/// (so PSI has something to intersect), plus 10% e-commerce-only IDs.
pub fn fintech_scenario(n_customers: usize, seed: u64) -> FintechScenario {
    let mut rng = StdRng::seed_from_u64(seed);

    // ---- Bank side ------------------------------------------------------
    let bank_schema = Schema::new(vec![
        Attribute::categorical("customer_id"),
        Attribute::continuous("income"),
        Attribute::categorical("credit_tier"),
        Attribute::continuous("credit_limit"),
        Attribute::categorical("region"),
        Attribute::categorical("loan_approved"),
    ])
    .expect("bank schema is valid");

    let regions = ["north", "south", "east", "west"];
    let mut bank_rows = Vec::with_capacity(n_customers);
    for i in 0..n_customers {
        let income = (20_000.0 + 130_000.0 * rng.gen::<f64>()).round();
        // credit_tier is an income band: FD/OD income → tier.
        let tier: i64 = match income {
            x if x < 45_000.0 => 0,
            x if x < 90_000.0 => 1,
            x if x < 120_000.0 => 2,
            _ => 3,
        };
        // credit_limit is a deterministic multiple of the tier: FD tier →
        // limit with tiny fanout, and ND tier →≤1 limit.
        let limit = 2_000.0 * (tier + 1) as f64;
        let region = regions[rng.gen_range(0..regions.len())];
        // Approval depends on tier and region jointly.
        let approved = i64::from(tier >= 1 && region != "west");
        bank_rows.push(vec![
            Value::Text(format!("C{i:05}")),
            Value::Float(income),
            Value::Int(tier),
            Value::Float(limit),
            Value::Text(region.into()),
            Value::Int(approved),
        ]);
    }
    let bank_rel = Relation::from_rows(bank_schema, bank_rows).expect("bank rows valid");
    let bank_deps: Vec<Dependency> = vec![
        Fd::new(1usize, 2).into(),         // income → tier
        OrderDep::ascending(1, 2).into(),  // income ≤ → tier ≤
        Fd::new(2usize, 3).into(),         // tier → limit
        OrderDep::ascending(2, 3).into(),  // tier ≤ → limit ≤
        NumericalDep::new(2, 3, 1).into(), // tier →≤1 limit
        Fd::new(vec![2, 4], 5).into(),     // {tier, region} → approved
    ];

    // ---- E-commerce side -------------------------------------------------
    let ecom_schema = Schema::new(vec![
        Attribute::categorical("customer_id"),
        Attribute::continuous("annual_spend"),
        Attribute::categorical("loyalty_level"),
        Attribute::continuous("orders_per_year"),
    ])
    .expect("ecom schema is valid");

    let mut ecom_rows = Vec::new();
    for i in 0..n_customers {
        if i % 5 == 4 {
            continue; // 20% of bank customers unseen by the e-commerce side
        }
        let spend = (100.0 + 20_000.0 * rng.gen::<f64>()).round();
        let loyalty: i64 = match spend {
            x if x < 2_000.0 => 0,
            x if x < 8_000.0 => 1,
            _ => 2,
        };
        let orders = (1.0 + spend / 400.0 + 5.0 * rng.gen::<f64>()).round();
        ecom_rows.push(vec![
            Value::Text(format!("C{i:05}")),
            Value::Float(spend),
            Value::Int(loyalty),
            Value::Float(orders),
        ]);
    }
    // E-commerce-only customers, invisible to the bank.
    for j in 0..n_customers / 10 {
        let spend = (100.0 + 20_000.0 * rng.gen::<f64>()).round();
        let loyalty: i64 = match spend {
            x if x < 2_000.0 => 0,
            x if x < 8_000.0 => 1,
            _ => 2,
        };
        ecom_rows.push(vec![
            Value::Text(format!("X{j:05}")),
            Value::Float(spend),
            Value::Int(loyalty),
            Value::Float((1.0 + spend / 400.0).round()),
        ]);
    }
    let ecom_rel = Relation::from_rows(ecom_schema, ecom_rows).expect("ecom rows valid");
    let ecom_deps: Vec<Dependency> = vec![
        Fd::new(1usize, 2).into(),        // spend → loyalty
        OrderDep::ascending(1, 2).into(), // spend ≤ → loyalty ≤
    ];

    FintechScenario {
        bank: FintechParty {
            relation: bank_rel,
            dependencies: bank_deps,
        },
        ecommerce: FintechParty {
            relation: ecom_rel,
            dependencies: ecom_deps,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_shapes() {
        let s = fintech_scenario(100, 7);
        assert_eq!(s.bank.relation.n_rows(), 100);
        // 80 shared + 10 e-commerce-only.
        assert_eq!(s.ecommerce.relation.n_rows(), 90);
        assert_eq!(s.bank.relation.arity(), 6);
        assert_eq!(s.ecommerce.relation.arity(), 4);
    }

    #[test]
    fn planted_dependencies_hold() {
        let s = fintech_scenario(200, 11);
        for d in &s.bank.dependencies {
            assert!(d.holds(&s.bank.relation).unwrap(), "bank: {d}");
        }
        for d in &s.ecommerce.dependencies {
            assert!(d.holds(&s.ecommerce.relation).unwrap(), "ecom: {d}");
        }
    }

    #[test]
    fn customer_ids_overlap_partially() {
        let s = fintech_scenario(50, 3);
        let bank_ids: Vec<_> = s.bank.relation.column_values(0).unwrap();
        let ecom_ids: Vec<_> = s.ecommerce.relation.column_values(0).unwrap();
        let shared = ecom_ids.iter().filter(|v| bank_ids.contains(v)).count();
        assert_eq!(shared, 40);
        assert!(ecom_ids.iter().any(|v| !bank_ids.contains(v)));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            fintech_scenario(30, 5).bank.relation,
            fintech_scenario(30, 5).bank.relation
        );
        assert_ne!(
            fintech_scenario(30, 5).bank.relation,
            fintech_scenario(30, 6).bank.relation
        );
    }
}
