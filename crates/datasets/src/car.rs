//! A UCI *car evaluation*-style categorical table.
//!
//! The second new matrix dataset is all-categorical, complementing the
//! mixed echocardiogram and bank tables: the full cross product of five
//! ordinal feature columns plus an acceptability class computed by a
//! fixed rule (like UCI `car`, whose class is a published decision rule
//! over the features). Everything is enumerated — no RNG — so the table
//! is a pure constant.
//!
//! Planted inventory: the decision rule is a function of
//! `{buying, persons, safety}` (an exact FD), `safety = low` forces
//! `class = unacc` (a constant CFD — the value-carrying class), and the
//! cross product makes `buying →≤4 maint` a trivially tight numerical
//! dependency. No OD/DD/OFD holds, so those matrix rows coincide with
//! domains-only here.

use mp_metadata::{ConditionalFd, Dependency, Fd, NumericalDep};
use mp_relation::{Attribute, Relation, Schema, Value};

/// Cardinalities of the five feature columns, in schema order.
const LEVELS: [i64; 5] = [4, 4, 4, 3, 3];

/// The acceptability rule: a total function of buying price, capacity
/// and safety (maintenance and doors are deliberately ignored so the FD
/// determinant is a strict attribute subset).
fn acceptability(buying: i64, persons: i64, safety: i64) -> i64 {
    if safety == 0 || persons == 0 {
        0 // unacceptable: unsafe or zero capacity
    } else if buying <= 1 && safety == 2 {
        2 // good: cheap and maximally safe
    } else {
        1 // acceptable
    }
}

/// The 576-row car-evaluation table and its planted dependencies.
///
/// Rows enumerate the full `4 × 4 × 4 × 3 × 3` feature cross product in
/// lexicographic order; the sixth column is `acceptability` applied to
/// columns 0, 3 and 4. Deterministic by construction.
pub fn car_table() -> (Relation, Vec<Dependency>) {
    let schema = Schema::new(vec![
        Attribute::categorical("buying"),
        Attribute::categorical("maint"),
        Attribute::categorical("doors"),
        Attribute::categorical("persons"),
        Attribute::categorical("safety"),
        Attribute::categorical("class"),
    ])
    .expect("car schema is valid");

    let mut rows = Vec::with_capacity(576);
    for buying in 0..LEVELS[0] {
        for maint in 0..LEVELS[1] {
            for doors in 0..LEVELS[2] {
                for persons in 0..LEVELS[3] {
                    for safety in 0..LEVELS[4] {
                        rows.push(vec![
                            Value::Int(buying),
                            Value::Int(maint),
                            Value::Int(doors),
                            Value::Int(persons),
                            Value::Int(safety),
                            Value::Int(acceptability(buying, persons, safety)),
                        ]);
                    }
                }
            }
        }
    }
    let relation = Relation::from_rows(schema, rows).expect("car rows valid");

    let dependencies: Vec<Dependency> = vec![
        Fd::new(vec![0, 3, 4], 5).into(), // {buying, persons, safety} → class
        ConditionalFd::constant(4, 0i64, 5, 0i64).into(), // safety = low ⇒ unacc
        NumericalDep::new(0, 1, 4).into(), // buying →≤4 maint (cross product)
    ];
    (relation, dependencies)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cross_product() {
        let (rel, _) = car_table();
        assert_eq!(rel.n_rows(), 576);
        assert_eq!(rel.arity(), 6);
        for (col, levels) in LEVELS.iter().enumerate() {
            assert_eq!(rel.distinct_count(col).unwrap(), *levels as usize);
        }
        assert_eq!(rel.distinct_count(5).unwrap(), 3);
    }

    #[test]
    fn all_planted_dependencies_hold() {
        let (rel, deps) = car_table();
        for dep in &deps {
            assert!(dep.holds(&rel).unwrap(), "{dep}");
        }
    }

    #[test]
    fn class_ignores_maint_and_doors() {
        // The FD determinant is strictly {0, 3, 4}: neither maint nor
        // doors influence the class, pinned by checking the *smaller*
        // FDs do NOT hold (class genuinely needs all three determinants).
        let (rel, _) = car_table();
        assert!(!Fd::new(vec![0, 3], 5).holds(&rel).unwrap());
        assert!(!Fd::new(vec![0, 4], 5).holds(&rel).unwrap());
        assert!(!Fd::new(vec![3, 4], 5).holds(&rel).unwrap());
    }

    #[test]
    fn deterministic() {
        assert_eq!(car_table().0, car_table().0);
    }
}
