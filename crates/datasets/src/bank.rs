//! The Figure 1 bank table scaled for the leakage matrix.
//!
//! [`bank_table`] reuses the deterministic bank side of
//! [`crate::fintech_scenario`] and widens its dependency inventory so the
//! matrix's per-class rows all have something to gate: on top of the
//! planted FD/OD/ND structure it adds
//!
//! * a constant CFD `credit_tier = 1 ⇒ credit_limit = 4000` — true by the
//!   generator's `limit = 2000 · (tier + 1)` rule, and the value-carrying
//!   dependency class the paper flags as privacy-special;
//! * a differential dependency `income ±1000 ⇒ credit_limit ±6000` —
//!   incomes within 1000 straddle at most one tier boundary (bands are
//!   ≥ 30 000 wide), so limits differ by at most 2000.
//!
//! No OFD holds on this table, so the matrix's `ofd` row degenerates to
//! the domains-only row here — itself a useful fixed point.

use crate::fintech::{fintech_scenario, FintechParty};
use mp_metadata::{ConditionalFd, DifferentialDep};

/// Seed pinning the bank table; the matrix goldens depend on it.
const BANK_SEED: u64 = 42;

/// The scaled Figure 1 bank table with its full dependency inventory.
///
/// Deterministic in `n_customers`: same input, same relation, same
/// dependencies — every planted dependency holds exactly (tested below).
pub fn bank_table(n_customers: usize) -> FintechParty {
    let mut party = fintech_scenario(n_customers, BANK_SEED).bank;
    party
        .dependencies
        .push(ConditionalFd::constant(2, 1i64, 3, 4000.0f64).into());
    party
        .dependencies
        .push(DifferentialDep::new(1, 3, 1000.0, 6000.0).into());
    party
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_metadata::Dependency;

    #[test]
    fn all_planted_dependencies_hold() {
        let party = bank_table(300);
        assert_eq!(party.relation.n_rows(), 300);
        assert_eq!(party.relation.arity(), 6);
        for dep in &party.dependencies {
            assert!(dep.holds(&party.relation).unwrap(), "{dep}");
        }
    }

    #[test]
    fn inventory_covers_the_expected_classes() {
        let party = bank_table(100);
        let classes: Vec<&str> = party.dependencies.iter().map(Dependency::class).collect();
        for class in ["FD", "OD", "ND", "CFD", "DD"] {
            assert!(classes.contains(&class), "missing {class}");
        }
        assert!(!classes.contains(&"OFD"), "no OFD is planted on purpose");
    }

    #[test]
    fn deterministic() {
        assert_eq!(bank_table(50).relation, bank_table(50).relation);
    }
}
