//! Million-row planted-dependency relations, generated straight into
//! typed columns.
//!
//! [`SyntheticSpec::generate`](crate::SyntheticSpec::generate) goes through
//! boxed [`Value`](mp_relation::Value) cells and per-cell hash-map lookups,
//! which is fine at thousands of rows but dominates wall-clock at millions.
//! [`scale_relation`] plants the same dependency classes (FD, OD, ND, AFD
//! and a noisy negative control) while writing dictionary codes and float
//! buffers directly, so generating the 1M-row bench input takes a fraction
//! of a second instead of minutes.
//!
//! The layout is fixed at seven columns:
//!
//! | # | name        | kind        | planted                        |
//! |---|-------------|-------------|--------------------------------|
//! | 0 | `base`      | categorical | (source column)                |
//! | 1 | `fd_child`  | categorical | FD `base → fd_child`           |
//! | 2 | `x`         | continuous  | (source column)                |
//! | 3 | `mono`      | continuous  | FD + ascending OD `x → mono`   |
//! | 4 | `fan`       | categorical | ND `base →≤3 fan`              |
//! | 5 | `afd_child` | categorical | AFD `base → afd_child` (g3≈5%) |
//! | 6 | `noisy`     | continuous  | nothing (negative control)     |

use crate::generator::SyntheticRelation;
use mp_metadata::{Afd, Dependency, Fd, NumericalDep, OrderDep};
use mp_relation::{Attribute, Bitmap, Column, Relation, Result, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of columns produced by [`scale_relation`].
pub const SCALE_ARITY: usize = 7;

/// Distinct labels in the `base` column (upper bound; fewer appear when
/// `n_rows` is small).
pub const SCALE_BASE_CARDINALITY: u32 = 4096;

/// Distinct labels in the `fd_child` and `afd_child` images.
const CHILD_CARDINALITY: u32 = 64;

/// Distinct labels in the `fan` column and the planted fanout bound.
const FAN_CARDINALITY: u32 = 16;
const FAN_K: usize = 3;

/// Fraction of `afd_child` rows perturbed away from the exact mapping.
const AFD_ERROR_RATE: f64 = 0.05;

/// Builds a dictionary column from raw label ids, remapping them to
/// first-occurrence order so the column is bit-identical to the one a CSV
/// round trip would rebuild.
fn dictionary_column(prefix: &str, max_id: u32, ids: &[u32]) -> Column {
    let mut remap: Vec<u32> = vec![0; max_id as usize + 1];
    let mut dict: Vec<String> = Vec::new();
    let codes = ids
        .iter()
        .map(|&id| {
            let slot = &mut remap[id as usize];
            if *slot == 0 {
                dict.push(format!("{prefix}{id}"));
                *slot = dict.len() as u32;
            }
            *slot
        })
        .collect();
    Column::Categorical { dict, codes }
}

/// Wraps a float buffer in a fully non-null continuous column.
fn float_column(values: Vec<f64>) -> Column {
    let n = values.len();
    Column::Float {
        values,
        nulls: Bitmap::filled(n, false),
        ints: Bitmap::filled(n, false),
    }
}

/// Generates an `n_rows × 7` relation with planted dependencies, directly
/// into typed columns (see the module docs for the layout).
///
/// Deterministic per `(n_rows, seed)`: the same arguments always produce a
/// bit-identical relation and the same planted ground truth.
pub fn scale_relation(n_rows: usize, seed: u64) -> Result<SyntheticRelation> {
    let mut rng = StdRng::seed_from_u64(seed);

    // Column 0: independent uniform base labels.
    let base_ids: Vec<u32> = (0..n_rows)
        .map(|_| rng.gen_range(0..SCALE_BASE_CARDINALITY))
        .collect();

    // Column 1: deterministic image of base — plants the FD.
    let fd_ids: Vec<u32> = base_ids.iter().map(|&b| b % CHILD_CARDINALITY).collect();

    // Column 2: independent uniform floats.
    let x: Vec<f64> = (0..n_rows).map(|_| rng.gen_range(0.0..100.0)).collect();

    // Column 3: strictly increasing affine image of x — plants the FD and
    // the ascending OD without any data-dependent normalisation.
    let mono: Vec<f64> = x.iter().map(|&v| v * 0.02 - 1.0).collect();

    // Column 4: each base label owns a fixed 3-element label subset; rows
    // pick uniformly inside it — plants the ND `base →≤3 fan`.
    let fan_ids: Vec<u32> = base_ids
        .iter()
        .map(|&b| (b.wrapping_mul(7) + rng.gen_range(0..FAN_K as u32)) % FAN_CARDINALITY)
        .collect();

    // Column 5: the FD image with a perturbed fraction — plants AFD
    // material with g3 ≲ AFD_ERROR_RATE.
    let afd_ids: Vec<u32> = base_ids
        .iter()
        .map(|&b| {
            let label = b % CHILD_CARDINALITY;
            if rng.gen::<f64>() < AFD_ERROR_RATE {
                (label + 1 + rng.gen_range(0..CHILD_CARDINALITY)) % CHILD_CARDINALITY
            } else {
                label
            }
        })
        .collect();

    // Column 6: x plus bounded noise — correlated, plants nothing.
    let noisy: Vec<f64> = x.iter().map(|&v| v + rng.gen_range(-5.0..=5.0)).collect();

    let schema = Schema::new(vec![
        Attribute::categorical("base"),
        Attribute::categorical("fd_child"),
        Attribute::continuous("x"),
        Attribute::continuous("mono"),
        Attribute::categorical("fan"),
        Attribute::categorical("afd_child"),
        Attribute::continuous("noisy"),
    ])?;
    let columns = vec![
        dictionary_column("v", SCALE_BASE_CARDINALITY - 1, &base_ids),
        dictionary_column("f", CHILD_CARDINALITY - 1, &fd_ids),
        float_column(x),
        float_column(mono),
        dictionary_column("n", FAN_CARDINALITY - 1, &fan_ids),
        dictionary_column("f", CHILD_CARDINALITY - 1, &afd_ids),
        float_column(noisy),
    ];
    let relation = Relation::from_typed_columns(schema, columns)?;

    let planted: Vec<Dependency> = vec![
        Fd::new(0usize, 1).into(),
        Fd::new(2usize, 3).into(),
        OrderDep::ascending(2, 3).into(),
        NumericalDep::new(0, 4, FAN_K).into(),
        Afd::new(0usize, 5, AFD_ERROR_RATE * 1.5 + 0.02).into(),
    ];
    Ok(SyntheticRelation { relation, planted })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_dependencies_hold_at_ten_thousand_rows() {
        let out = scale_relation(10_000, 7).unwrap();
        assert_eq!(out.relation.n_rows(), 10_000);
        assert_eq!(out.relation.arity(), SCALE_ARITY);
        for dep in &out.planted {
            assert!(dep.holds(&out.relation).unwrap(), "{dep} should hold");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = scale_relation(2_000, 42).unwrap();
        let b = scale_relation(2_000, 42).unwrap();
        assert_eq!(a.relation, b.relation);
        let c = scale_relation(2_000, 43).unwrap();
        assert_ne!(a.relation, c.relation);
    }

    #[test]
    fn cardinalities_respected() {
        let out = scale_relation(50_000, 1).unwrap();
        let rel = &out.relation;
        assert!(rel.distinct_count(0).unwrap() <= SCALE_BASE_CARDINALITY as usize);
        assert!(rel.distinct_count(1).unwrap() <= CHILD_CARDINALITY as usize);
        assert!(rel.distinct_count(4).unwrap() <= FAN_CARDINALITY as usize);
    }

    #[test]
    fn fanout_respects_k() {
        let out = scale_relation(5_000, 3).unwrap();
        let k = mp_metadata::NumericalDep::max_fanout(0, 4, &out.relation).unwrap();
        assert!(k <= FAN_K);
    }

    #[test]
    fn afd_g3_close_to_error_rate() {
        let out = scale_relation(20_000, 8).unwrap();
        let g3 = Fd::new(0usize, 5).g3_error(&out.relation).unwrap();
        assert!(g3 > 0.0, "perturbations must create violations");
        assert!(g3 < 0.12, "g3 {g3} too far above the 5% error rate");
    }

    #[test]
    fn empty_and_tiny_relations_generate() {
        assert_eq!(scale_relation(0, 0).unwrap().relation.n_rows(), 0);
        assert_eq!(scale_relation(1, 0).unwrap().relation.n_rows(), 1);
    }

    #[test]
    fn dictionaries_are_in_first_occurrence_order() {
        // The invariant a CSV round trip relies on: code k (≥ 1) must point
        // at the k-th distinct label in row order.
        let out = scale_relation(3_000, 11).unwrap();
        for attr in [0usize, 1, 4, 5] {
            let (dict, codes) = out
                .relation
                .column(attr)
                .unwrap()
                .as_categorical_parts()
                .expect("scale categorical columns are dictionary-encoded");
            let mut seen: Vec<&str> = Vec::new();
            for &code in codes {
                let label = &dict[code as usize - 1];
                if !seen.contains(&label.as_str()) {
                    seen.push(label);
                }
            }
            let dict_refs: Vec<&str> = dict.iter().map(String::as_str).collect();
            assert_eq!(seen, dict_refs, "attribute {attr}");
        }
    }
}
