//! Configurable synthetic relations with *planted* dependencies.
//!
//! Discovery algorithms need ground truth: relations where we know exactly
//! which dependencies hold and which do not. A [`SyntheticSpec`] describes
//! a relation column by column; later columns may be deterministic,
//! monotone, bounded-fanout or noisy functions of earlier ones, planting
//! FDs, ODs, NDs and AFD material respectively. The generator returns both
//! the relation and the dependencies guaranteed by construction.

use mp_metadata::{Afd, Dependency, Fd, NumericalDep, OrderDep};
use mp_relation::{Attribute, Relation, Result, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// How one column of a synthetic relation is produced.
#[derive(Debug, Clone)]
pub enum ColumnSpec {
    /// Independent uniform categorical labels `v0..v{cardinality-1}`.
    CategoricalUniform {
        /// Attribute name.
        name: String,
        /// Number of distinct labels.
        cardinality: usize,
    },
    /// Independent uniform continuous values in `[min, max]`.
    ContinuousUniform {
        /// Attribute name.
        name: String,
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
    },
    /// A deterministic function of an earlier column: plants the FD
    /// `source → this`.
    FdOf {
        /// Attribute name.
        name: String,
        /// Index of the determining column (must precede this one).
        source: usize,
        /// Number of distinct labels in the image.
        cardinality: usize,
    },
    /// A deterministic function of an earlier column with a fraction of
    /// rows perturbed: plants AFD material with `g3 ≲ error_rate`.
    ApproxFdOf {
        /// Attribute name.
        name: String,
        /// Index of the determining column.
        source: usize,
        /// Number of distinct labels.
        cardinality: usize,
        /// Fraction of rows that violate the mapping.
        error_rate: f64,
    },
    /// A monotone increasing rescaling of an earlier numeric column:
    /// plants both the FD and the ascending OD `source → this`.
    MonotoneOf {
        /// Attribute name.
        name: String,
        /// Index of the source column (numeric).
        source: usize,
        /// Output lower bound.
        min: f64,
        /// Output upper bound.
        max: f64,
    },
    /// Each distinct source value maps into a fixed random subset of at
    /// most `k` labels: plants the ND `source →≤k this`.
    BoundedFanout {
        /// Attribute name.
        name: String,
        /// Index of the determining column.
        source: usize,
        /// Fanout bound.
        k: usize,
        /// Number of distinct labels overall.
        cardinality: usize,
    },
    /// Source value plus bounded uniform noise — correlated, but plants no
    /// exact dependency (negative-control material).
    NoisyOf {
        /// Attribute name.
        name: String,
        /// Index of the source column (numeric).
        source: usize,
        /// Noise half-width.
        noise: f64,
    },
}

impl ColumnSpec {
    /// The attribute name of the spec.
    pub fn name(&self) -> &str {
        match self {
            ColumnSpec::CategoricalUniform { name, .. }
            | ColumnSpec::ContinuousUniform { name, .. }
            | ColumnSpec::FdOf { name, .. }
            | ColumnSpec::ApproxFdOf { name, .. }
            | ColumnSpec::MonotoneOf { name, .. }
            | ColumnSpec::BoundedFanout { name, .. }
            | ColumnSpec::NoisyOf { name, .. } => name,
        }
    }

    fn is_categorical(&self) -> bool {
        matches!(
            self,
            ColumnSpec::CategoricalUniform { .. }
                | ColumnSpec::FdOf { .. }
                | ColumnSpec::ApproxFdOf { .. }
                | ColumnSpec::BoundedFanout { .. }
        )
    }
}

/// A full synthetic-relation specification.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Number of tuples to generate.
    pub n_rows: usize,
    /// RNG seed (generation is deterministic per seed).
    pub seed: u64,
    /// Column specifications; `source` indices must point at earlier
    /// columns.
    pub columns: Vec<ColumnSpec>,
}

/// Output of [`SyntheticSpec::generate`].
#[derive(Debug, Clone)]
pub struct SyntheticRelation {
    /// The generated relation.
    pub relation: Relation,
    /// Dependencies guaranteed to hold by construction.
    pub planted: Vec<Dependency>,
}

impl SyntheticSpec {
    /// Generates the relation and its planted-dependency ground truth.
    ///
    /// # Panics
    /// Panics if a `source` index does not precede its column, or a source
    /// column is non-numeric where a numeric one is required.
    pub fn generate(&self) -> Result<SyntheticRelation> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut columns: Vec<Vec<Value>> = Vec::with_capacity(self.columns.len());
        let mut planted: Vec<Dependency> = Vec::new();

        for (ci, spec) in self.columns.iter().enumerate() {
            let col = match spec {
                ColumnSpec::CategoricalUniform { cardinality, .. } => (0..self.n_rows)
                    .map(|_| Value::Text(format!("v{}", rng.gen_range(0..*cardinality))))
                    .collect(),
                ColumnSpec::ContinuousUniform { min, max, .. } => (0..self.n_rows)
                    .map(|_| Value::Float(rng.gen_range(*min..=*max)))
                    .collect(),
                ColumnSpec::FdOf {
                    source,
                    cardinality,
                    ..
                } => {
                    assert!(*source < ci, "FdOf source must precede column");
                    let mut map: HashMap<Value, usize> = HashMap::new();
                    let src = &columns[*source];
                    let out = src
                        .iter()
                        .map(|v| {
                            let next = map.len() % *cardinality;
                            let label = *map.entry(v.clone()).or_insert(next);
                            Value::Text(format!("f{label}"))
                        })
                        .collect();
                    planted.push(Fd::new(*source, ci).into());
                    out
                }
                ColumnSpec::ApproxFdOf {
                    source,
                    cardinality,
                    error_rate,
                    ..
                } => {
                    assert!(*source < ci, "ApproxFdOf source must precede column");
                    let mut map: HashMap<Value, usize> = HashMap::new();
                    let src = columns[*source].clone();
                    let out = src
                        .iter()
                        .map(|v| {
                            let next = map.len() % *cardinality;
                            let mut label = *map.entry(v.clone()).or_insert(next);
                            if rng.gen::<f64>() < *error_rate {
                                label = (label + 1 + rng.gen_range(0..*cardinality)) % *cardinality;
                            }
                            Value::Text(format!("f{label}"))
                        })
                        .collect();
                    planted.push(Afd::new(*source, ci, *error_rate * 1.5 + 0.02).into());
                    out
                }
                ColumnSpec::MonotoneOf {
                    source, min, max, ..
                } => {
                    assert!(*source < ci, "MonotoneOf source must precede column");
                    let src: Vec<f64> = columns[*source]
                        .iter()
                        .map(|v| v.as_f64().expect("MonotoneOf source must be numeric"))
                        .collect();
                    let lo = src.iter().copied().fold(f64::INFINITY, f64::min);
                    let hi = src.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let span = (hi - lo).max(f64::MIN_POSITIVE);
                    let out = src
                        .iter()
                        .map(|&x| Value::Float(min + (x - lo) / span * (max - min)))
                        .collect();
                    planted.push(Fd::new(*source, ci).into());
                    planted.push(OrderDep::ascending(*source, ci).into());
                    out
                }
                ColumnSpec::BoundedFanout {
                    source,
                    k,
                    cardinality,
                    ..
                } => {
                    assert!(*source < ci, "BoundedFanout source must precede column");
                    assert!(*k >= 1 && *k <= *cardinality, "fanout k out of range");
                    let mut subsets: HashMap<Value, Vec<usize>> = HashMap::new();
                    let src = columns[*source].clone();
                    let out = src
                        .iter()
                        .map(|v| {
                            if !subsets.contains_key(v) {
                                let mut pool: Vec<usize> = (0..*cardinality).collect();
                                for i in (1..pool.len()).rev() {
                                    pool.swap(i, rng.gen_range(0..=i));
                                }
                                pool.truncate(*k);
                                subsets.insert(v.clone(), pool);
                            }
                            let subset = &subsets[v];
                            Value::Text(format!("n{}", subset[rng.gen_range(0..subset.len())]))
                        })
                        .collect();
                    planted.push(NumericalDep::new(*source, ci, *k).into());
                    out
                }
                ColumnSpec::NoisyOf { source, noise, .. } => {
                    assert!(*source < ci, "NoisyOf source must precede column");
                    let src = columns[*source].clone();
                    src.iter()
                        .map(|v| {
                            let x = v.as_f64().expect("NoisyOf source must be numeric");
                            Value::Float(x + rng.gen_range(-*noise..=*noise))
                        })
                        .collect()
                }
            };
            columns.push(col);
        }

        let attrs: Vec<Attribute> = self
            .columns
            .iter()
            .map(|s| {
                if s.is_categorical() {
                    Attribute::categorical(s.name())
                } else {
                    Attribute::continuous(s.name())
                }
            })
            .collect();
        let relation = Relation::from_columns(Schema::new(attrs)?, columns)?;
        Ok(SyntheticRelation { relation, planted })
    }
}

/// A ready-made spec exercising every dependency class at once: key-ish
/// base column, FD chain, monotone pair, bounded fanout and a noisy
/// negative control. Useful for discovery smoke tests and benches.
pub fn all_classes_spec(n_rows: usize, seed: u64) -> SyntheticSpec {
    SyntheticSpec {
        n_rows,
        seed,
        columns: vec![
            ColumnSpec::CategoricalUniform {
                name: "base".into(),
                cardinality: 12,
            },
            ColumnSpec::FdOf {
                name: "fd_child".into(),
                source: 0,
                cardinality: 5,
            },
            ColumnSpec::ContinuousUniform {
                name: "x".into(),
                min: 0.0,
                max: 100.0,
            },
            ColumnSpec::MonotoneOf {
                name: "mono".into(),
                source: 2,
                min: -1.0,
                max: 1.0,
            },
            ColumnSpec::BoundedFanout {
                name: "fan".into(),
                source: 0,
                k: 3,
                cardinality: 10,
            },
            ColumnSpec::ApproxFdOf {
                name: "afd_child".into(),
                source: 0,
                cardinality: 5,
                error_rate: 0.05,
            },
            ColumnSpec::NoisyOf {
                name: "noisy".into(),
                source: 2,
                noise: 5.0,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_dependencies_hold() {
        let out = all_classes_spec(300, 42).generate().unwrap();
        for dep in &out.planted {
            assert!(dep.holds(&out.relation).unwrap(), "{dep} should hold");
        }
    }

    #[test]
    fn planted_holds_across_seeds() {
        for seed in [0u64, 9, 1234] {
            let out = all_classes_spec(150, seed).generate().unwrap();
            for dep in &out.planted {
                assert!(dep.holds(&out.relation).unwrap(), "{dep} at seed {seed}");
            }
        }
    }

    #[test]
    fn fanout_respects_k() {
        let out = all_classes_spec(500, 1).generate().unwrap();
        let k = mp_metadata::NumericalDep::max_fanout(0, 4, &out.relation).unwrap();
        assert!(k <= 3);
    }

    #[test]
    fn noisy_column_plants_nothing() {
        let out = all_classes_spec(200, 5).generate().unwrap();
        assert!(out.planted.iter().all(|d| d.rhs() != 6));
        // And indeed no FD 2 → 6 holds at this scale (duplicate x values
        // are measure-zero; the FD holds only trivially when x is a key —
        // which it is — so check instead that noise decorrelates order).
        let od = mp_metadata::OrderDep::ascending(2, 6);
        assert!(!od.holds(&out.relation).unwrap());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = all_classes_spec(100, 77).generate().unwrap();
        let b = all_classes_spec(100, 77).generate().unwrap();
        assert_eq!(a.relation, b.relation);
    }

    #[test]
    fn cardinalities_respected() {
        let out = all_classes_spec(1000, 3).generate().unwrap();
        assert!(out.relation.distinct_count(0).unwrap() <= 12);
        assert!(out.relation.distinct_count(1).unwrap() <= 5);
        assert!(out.relation.distinct_count(4).unwrap() <= 10);
    }

    #[test]
    fn afd_g3_close_to_error_rate() {
        let out = all_classes_spec(2000, 8).generate().unwrap();
        let g3 = mp_metadata::Fd::new(0usize, 5)
            .g3_error(&out.relation)
            .unwrap();
        assert!(g3 > 0.0, "perturbations must create violations");
        assert!(g3 < 0.12, "g3 {g3} too far above the 5% error rate");
    }

    #[test]
    #[should_panic(expected = "source must precede")]
    fn forward_reference_panics() {
        let spec = SyntheticSpec {
            n_rows: 10,
            seed: 0,
            columns: vec![ColumnSpec::FdOf {
                name: "bad".into(),
                source: 0,
                cardinality: 2,
            }],
        };
        let _ = spec.generate();
    }

    #[test]
    fn empty_relation_generates() {
        let out = all_classes_spec(0, 0).generate().unwrap();
        assert_eq!(out.relation.n_rows(), 0);
    }
}
