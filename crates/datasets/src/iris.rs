//! An iris-like secondary dataset.
//!
//! The paper notes that from datasets other than echocardiogram it could
//! "only discover trivial dependencies or oversimplified mappings". This
//! reconstruction of the classic 150×5 iris shape exists to demonstrate
//! exactly that regime: four continuous measurements plus a species label
//! that is a *band function of one measurement* — so the only non-trivial
//! pairwise structure is FD/OD `petal_length → species`, and everything
//! else is near-key noise. Useful as a contrast dataset in tests and
//! benches.

use mp_metadata::{Dependency, Fd, OrderDep};
use mp_relation::{Attribute, Relation, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of tuples, matching the classic dataset.
pub const IRIS_ROWS: usize = 150;

/// Attribute indices.
pub mod iris_attrs {
    /// Sepal length (continuous).
    pub const SEPAL_LENGTH: usize = 0;
    /// Sepal width (continuous).
    pub const SEPAL_WIDTH: usize = 1;
    /// Petal length (continuous) — determines the species band.
    pub const PETAL_LENGTH: usize = 2;
    /// Petal width (continuous).
    pub const PETAL_WIDTH: usize = 3;
    /// Species (categorical, 3 values).
    pub const SPECIES: usize = 4;
}

/// Builds the reconstruction with the given seed.
pub fn iris_like_with_seed(seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::new(vec![
        Attribute::continuous("sepal_length"),
        Attribute::continuous("sepal_width"),
        Attribute::continuous("petal_length"),
        Attribute::continuous("petal_width"),
        Attribute::categorical("species"),
    ])
    .expect("iris schema");
    let round1 = |x: f64| (x * 10.0).round() / 10.0;
    let mut rows = Vec::with_capacity(IRIS_ROWS);
    for i in 0..IRIS_ROWS {
        // Three clusters of 50, as in the original.
        let cluster = i / 50;
        let petal_length = round1(match cluster {
            0 => 1.0 + 0.9 * rng.gen::<f64>(),
            1 => 3.0 + 2.0 * rng.gen::<f64>(),
            _ => 4.6 + 2.3 * rng.gen::<f64>(),
        });
        // Species is a band function of petal length (FD/OD 2 → 4); band
        // edges sit between the cluster supports so the bands are exact.
        let species = match petal_length {
            x if x < 2.5 => "setosa",
            x if x < 5.05 => "versicolor",
            _ => "virginica",
        };
        // A deliberate overlap between clusters 1 and 2 on [4.6, 5.0] means
        // species is NOT determined by cluster alone — only by the value.
        let sepal_length = round1(4.3 + 3.6 * rng.gen::<f64>());
        let sepal_width = round1(2.0 + 2.4 * rng.gen::<f64>());
        let petal_width = round1(0.1 + 2.4 * rng.gen::<f64>());
        rows.push(vec![
            Value::Float(sepal_length),
            Value::Float(sepal_width),
            Value::Float(petal_length),
            Value::Float(petal_width),
            Value::Text(species.into()),
        ]);
    }
    Relation::from_rows(schema, rows).expect("iris rows")
}

/// Builds the reconstruction with the default seed.
pub fn iris_like() -> Relation {
    iris_like_with_seed(0x1815)
}

/// The dependencies guaranteed by construction.
pub fn iris_dependencies() -> Vec<Dependency> {
    use iris_attrs::*;
    vec![
        Fd::new(PETAL_LENGTH, SPECIES).into(),
        OrderDep::ascending(PETAL_LENGTH, SPECIES).into(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use iris_attrs::*;
    use mp_relation::Domain;

    #[test]
    fn shape_and_domains() {
        let r = iris_like();
        assert_eq!(r.n_rows(), IRIS_ROWS);
        assert_eq!(r.arity(), 5);
        assert_eq!(Domain::infer(&r, SPECIES).unwrap().cardinality(), Some(3));
    }

    #[test]
    fn planted_dependencies_hold_across_seeds() {
        for seed in [0u64, 3, 99] {
            let r = iris_like_with_seed(seed);
            for dep in iris_dependencies() {
                assert!(dep.holds(&r).unwrap(), "{dep} at seed {seed}");
            }
        }
    }

    #[test]
    fn species_ordering_matches_band_order() {
        // The OD holds because the band labels happen to sort
        // lexicographically in band order: setosa < versicolor < virginica.
        let r = iris_like();
        assert!(OrderDep::ascending(PETAL_LENGTH, SPECIES)
            .holds(&r)
            .unwrap());
    }

    #[test]
    fn other_measurements_are_structureless() {
        // The paper's "trivial dependencies" regime: no single-attribute FD
        // onto the other continuous measurements.
        let r = iris_like();
        for rhs in [SEPAL_LENGTH, SEPAL_WIDTH, PETAL_WIDTH] {
            for lhs in 0..5 {
                if lhs == rhs {
                    continue;
                }
                // Near-key LHS columns (1 decimal over a small range give
                // duplicates) must not determine the noise columns.
                if r.distinct_count(lhs).unwrap() < r.n_rows() {
                    assert!(
                        !Fd::new(lhs, rhs).holds(&r).unwrap(),
                        "unexpected FD {lhs} → {rhs}"
                    );
                }
            }
        }
    }

    #[test]
    fn determinism() {
        assert_eq!(iris_like(), iris_like());
        assert_ne!(iris_like_with_seed(1), iris_like_with_seed(2));
    }
}
