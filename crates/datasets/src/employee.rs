//! The paper's Table II running example.

use mp_relation::{Attribute, Relation, Schema};

/// Builds the employee table of the paper's Table II:
///
/// | Name    | Age | Department       | Salary |
/// |---------|-----|------------------|--------|
/// | Alice   | 18  | Sales            | 20000  |
/// | Bob     | 22  | Customer Service | 25000  |
/// | Charlie | 22  | Sales            | 27000  |
/// | Danny   | 26  | Management       | 35000  |
///
/// `Name` is unique (Example 2.1), `Name → Age` and `Name → Salary` are
/// FDs, and `Age → Salary` holds only as a relaxed dependency.
pub fn employee() -> Relation {
    let schema = Schema::new(vec![
        Attribute::categorical("Name"),
        Attribute::continuous("Age"),
        Attribute::categorical("Department"),
        Attribute::continuous("Salary"),
    ])
    .expect("employee schema is valid");
    Relation::from_rows(
        schema,
        vec![
            vec![
                "Alice".into(),
                18i64.into(),
                "Sales".into(),
                20_000i64.into(),
            ],
            vec![
                "Bob".into(),
                22i64.into(),
                "Customer Service".into(),
                25_000i64.into(),
            ],
            vec![
                "Charlie".into(),
                22i64.into(),
                "Sales".into(),
                27_000i64.into(),
            ],
            vec![
                "Danny".into(),
                26i64.into(),
                "Management".into(),
                35_000i64.into(),
            ],
        ],
    )
    .expect("employee rows are valid")
}

/// Attribute indices of the employee table, for readable test code.
pub mod attrs {
    /// Name (categorical, unique).
    pub const NAME: usize = 0;
    /// Age (continuous).
    pub const AGE: usize = 1;
    /// Department (categorical).
    pub const DEPARTMENT: usize = 2;
    /// Salary (continuous).
    pub const SALARY: usize = 3;
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_metadata::Fd;

    #[test]
    fn shape_matches_table_ii() {
        let r = employee();
        assert_eq!(r.n_rows(), 4);
        assert_eq!(r.arity(), 4);
        assert_eq!(
            r.schema().attribute(attrs::DEPARTMENT).unwrap().name,
            "Department"
        );
    }

    #[test]
    fn example_21_dependencies() {
        let r = employee();
        assert!(Fd::new(attrs::NAME, attrs::AGE).holds(&r).unwrap());
        assert!(Fd::new(attrs::NAME, attrs::SALARY).holds(&r).unwrap());
        // Age → Salary is NOT a strict FD (Bob and Charlie share age 22).
        assert!(!Fd::new(attrs::AGE, attrs::SALARY).holds(&r).unwrap());
    }

    #[test]
    fn name_is_unique() {
        let r = employee();
        assert_eq!(r.distinct_count(attrs::NAME).unwrap(), 4);
    }
}
