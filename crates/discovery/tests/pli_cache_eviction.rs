//! Regression: a [`DiscoveryContext`] whose cache holds a single entry must
//! still return bit-identical partitions under an adversarial request order
//! that evicts the resident entry on every step, and the cache counters
//! must account for exactly those evictions.

use mp_discovery::{
    discover_fds, discover_fds_naive, DiscoveryContext, ParallelConfig, TaneConfig,
};
use mp_metadata::{pli_of_set, AttrSet};

#[test]
fn capacity_one_alternating_singletons_stay_bit_identical() {
    let rel = mp_datasets::employee();
    let ctx = DiscoveryContext::new(
        &rel,
        ParallelConfig {
            threads: 1,
            cache_capacity: 1,
        },
    );

    // Alternate between two attributes: with one slot, every request misses
    // and every insert (after the first) evicts the other attribute's
    // partition.
    let rounds = 8;
    for i in 0..rounds {
        for attr in [0usize, 1] {
            let got = ctx.pli_of_single(attr).unwrap();
            let direct = pli_of_set(&rel, &AttrSet::from_iter([attr])).unwrap();
            assert_eq!(*got, direct, "round {i}, attribute {attr}");
        }
    }

    let stats = ctx.cache_stats();
    assert_eq!(stats.hits, 0, "no request may survive to be hit: {stats}");
    assert_eq!(stats.misses, 2 * rounds, "every request misses: {stats}");
    // Every miss triggers a build + insert; each insert except the very
    // first evicts the resident entry.
    assert_eq!(stats.evictions, 2 * rounds - 1, "{stats}");
    assert_eq!(
        stats.entries, 1,
        "exactly one partition stays resident: {stats}"
    );
}

#[test]
fn capacity_one_alternating_pairs_stay_bit_identical() {
    let rel = mp_datasets::employee();
    let ctx = DiscoveryContext::new(
        &rel,
        ParallelConfig {
            threads: 1,
            cache_capacity: 1,
        },
    );

    // Each pair request recurses through its parent singleton and the last
    // attribute's singleton, so one request performs three misses and three
    // inserts — all evicting each other through the single slot.
    let sets = [
        AttrSet::from_iter([0usize, 1]),
        AttrSet::from_iter([2usize, 3]),
    ];
    let rounds = 5;
    for i in 0..rounds {
        for set in &sets {
            let got = ctx.pli_of(set).unwrap();
            let direct = pli_of_set(&rel, set).unwrap();
            assert_eq!(*got, direct, "round {i}, set {set:?}");
        }
    }

    let stats = ctx.cache_stats();
    assert_eq!(stats.hits, 0, "{stats}");
    assert_eq!(stats.misses, 2 * rounds * 3, "{stats}");
    assert_eq!(stats.evictions, 2 * rounds * 3 - 1, "{stats}");
    assert_eq!(stats.entries, 1, "{stats}");
}

#[test]
fn capacity_one_discovery_output_matches_naive_oracle() {
    // Full TANE under the thrashing cache must reproduce the naive
    // baseline exactly — eviction may cost time, never correctness.
    for rel in [mp_datasets::employee(), mp_datasets::echocardiogram()] {
        let naive = discover_fds_naive(&rel, 2).unwrap();
        let config = TaneConfig {
            max_lhs: 2,
            g3_threshold: 0.0,
            parallel: ParallelConfig {
                threads: 2,
                cache_capacity: 1,
            },
        };
        let engine = discover_fds(&rel, &config).unwrap();
        let canon = |fds: &[mp_metadata::Fd]| {
            let mut v: Vec<(Vec<usize>, usize)> = fds
                .iter()
                .map(|f| (f.lhs.indices().to_vec(), f.rhs))
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(&engine), canon(&naive));
    }
}
