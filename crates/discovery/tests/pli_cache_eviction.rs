//! Regression: a [`DiscoveryContext`] whose cache holds a single entry must
//! still return bit-identical partitions under an adversarial request order
//! that evicts the resident entry on every step, and the cache counters
//! must account for exactly those evictions.

use mp_discovery::{
    discover_fds, discover_fds_naive, DiscoveryContext, MemoryBudget, ParallelConfig, TaneConfig,
};
use mp_metadata::{pli_of_set, AttrSet};

#[test]
fn capacity_one_alternating_singletons_stay_bit_identical() {
    let rel = mp_datasets::employee();
    let ctx = DiscoveryContext::new(
        &rel,
        ParallelConfig {
            threads: 1,
            cache_capacity: 1,
            ..ParallelConfig::default()
        },
    );

    // Alternate between two attributes: with one slot, every request misses
    // and every insert (after the first) evicts the other attribute's
    // partition.
    let rounds = 8;
    for i in 0..rounds {
        for attr in [0usize, 1] {
            let got = ctx.pli_of_single(attr).unwrap();
            let direct = pli_of_set(&rel, &AttrSet::from_iter([attr])).unwrap();
            assert_eq!(*got, direct, "round {i}, attribute {attr}");
        }
    }

    let stats = ctx.cache_stats();
    assert_eq!(stats.hits, 0, "no request may survive to be hit: {stats}");
    assert_eq!(stats.misses, 2 * rounds, "every request misses: {stats}");
    // Every miss triggers a build + insert; each insert except the very
    // first evicts the resident entry.
    assert_eq!(stats.evictions, 2 * rounds - 1, "{stats}");
    assert_eq!(
        stats.entries, 1,
        "exactly one partition stays resident: {stats}"
    );
}

#[test]
fn capacity_one_alternating_pairs_stay_bit_identical() {
    let rel = mp_datasets::employee();
    let ctx = DiscoveryContext::new(
        &rel,
        ParallelConfig {
            threads: 1,
            cache_capacity: 1,
            ..ParallelConfig::default()
        },
    );

    // Each pair request recurses through its parent singleton and the last
    // attribute's singleton, so one request performs three misses and three
    // inserts — all evicting each other through the single slot.
    let sets = [
        AttrSet::from_iter([0usize, 1]),
        AttrSet::from_iter([2usize, 3]),
    ];
    let rounds = 5;
    for i in 0..rounds {
        for set in &sets {
            let got = ctx.pli_of(set).unwrap();
            let direct = pli_of_set(&rel, set).unwrap();
            assert_eq!(*got, direct, "round {i}, set {set:?}");
        }
    }

    let stats = ctx.cache_stats();
    assert_eq!(stats.hits, 0, "{stats}");
    assert_eq!(stats.misses, 2 * rounds * 3, "{stats}");
    assert_eq!(stats.evictions, 2 * rounds * 3 - 1, "{stats}");
    assert_eq!(stats.entries, 1, "{stats}");
}

#[test]
fn starved_byte_budget_alternating_requests_stay_bit_identical() {
    // The byte-budget analogue of the capacity-1 case: plenty of entry
    // capacity, but a budget sized to the larger of two non-key singleton
    // partitions, so the two can never be resident together — every insert
    // after the first must spill through the budget, and the accounting must
    // stay exact (never exceeding the budget).
    let rel = mp_datasets::employee();
    let sets = [AttrSet::from_iter([1usize]), AttrSet::from_iter([2usize])];
    let sizes: Vec<usize> = sets
        .iter()
        .map(|s| pli_of_set(&rel, s).unwrap().heap_bytes())
        .collect();
    assert!(
        sizes.iter().all(|&b| b > 0),
        "both attributes must be non-keys so their partitions occupy bytes"
    );
    let budget = *sizes.iter().max().unwrap();
    let ctx = DiscoveryContext::with_budget(
        &rel,
        ParallelConfig {
            threads: 1,
            cache_capacity: 4096,
            ..ParallelConfig::default()
        },
        MemoryBudget::from_bytes(budget),
    );
    for i in 0..5 {
        for set in &sets {
            let got = ctx.pli_of(set).unwrap();
            let direct = pli_of_set(&rel, set).unwrap();
            assert_eq!(*got, direct, "round {i}, set {set:?}");
            let stats = ctx.cache_stats();
            assert!(
                stats.bytes <= budget,
                "round {i}: resident {} exceeds budget {budget}: {stats}",
                stats.bytes
            );
        }
    }
    let stats = ctx.cache_stats();
    assert_eq!(stats.budget_bytes, budget, "{stats}");
    assert!(
        stats.budget_evictions > 0,
        "the starved budget must have forced evictions: {stats}"
    );
}

#[test]
fn byte_budgeted_discovery_output_matches_naive_oracle() {
    // Full TANE under a starved byte budget (and sharded single-column
    // builds) must reproduce the naive baseline exactly — spilling and
    // rebuilding partitions may cost time, never correctness.
    for rel in [mp_datasets::employee(), mp_datasets::echocardiogram()] {
        let naive = discover_fds_naive(&rel, 2).unwrap();
        let config = TaneConfig {
            max_lhs: 2,
            g3_threshold: 0.0,
            parallel: ParallelConfig {
                threads: 2,
                cache_capacity: 4096,
                cache_budget_bytes: 512,
                pli_shards: 5,
            },
        };
        let engine = discover_fds(&rel, &config).unwrap();
        let canon = |fds: &[mp_metadata::Fd]| {
            let mut v: Vec<(Vec<usize>, usize)> = fds
                .iter()
                .map(|f| (f.lhs.indices().to_vec(), f.rhs))
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(&engine), canon(&naive));
    }
}

#[test]
fn capacity_one_discovery_output_matches_naive_oracle() {
    // Full TANE under the thrashing cache must reproduce the naive
    // baseline exactly — eviction may cost time, never correctness.
    for rel in [mp_datasets::employee(), mp_datasets::echocardiogram()] {
        let naive = discover_fds_naive(&rel, 2).unwrap();
        let config = TaneConfig {
            max_lhs: 2,
            g3_threshold: 0.0,
            parallel: ParallelConfig {
                threads: 2,
                cache_capacity: 1,
                ..ParallelConfig::default()
            },
        };
        let engine = discover_fds(&rel, &config).unwrap();
        let canon = |fds: &[mp_metadata::Fd]| {
            let mut v: Vec<(Vec<usize>, usize)> = fds
                .iter()
                .map(|f| (f.lhs.indices().to_vec(), f.rhs))
                .collect();
            v.sort();
            v
        };
        assert_eq!(canon(&engine), canon(&naive));
    }
}
