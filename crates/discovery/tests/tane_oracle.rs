//! Oracle test: TANE must agree with the exhaustive minimal-FD baseline on
//! randomized relations at every lattice depth.

use mp_discovery::{discover_fds, discover_fds_naive, TaneConfig};
use mp_relation::{Attribute, Relation, Schema, Value};
use proptest::prelude::*;

fn canon(fds: Vec<mp_metadata::Fd>) -> Vec<(Vec<usize>, usize)> {
    let mut v: Vec<(Vec<usize>, usize)> =
        fds.into_iter().map(|f| (f.lhs.indices().to_vec(), f.rhs)).collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn tane_agrees_with_exhaustive_baseline(
        n_attrs in 2usize..7,
        rows in prop::collection::vec(
            prop::collection::vec(0i64..4, 6),
            0..40,
        ),
        depth in 1usize..4,
    ) {
        let attrs: Vec<Attribute> =
            (0..n_attrs).map(|i| Attribute::categorical(format!("a{i}"))).collect();
        let schema = Schema::new(attrs).unwrap();
        let data: Vec<Vec<Value>> = rows
            .into_iter()
            .map(|r| r.into_iter().take(n_attrs).map(Value::Int).collect())
            .collect();
        let rel = Relation::from_rows(schema, data).unwrap();

        let tane = discover_fds(&rel, &TaneConfig { max_lhs: depth, g3_threshold: 0.0 })
            .unwrap();
        let naive = discover_fds_naive(&rel, depth).unwrap();
        prop_assert_eq!(canon(tane.clone()), canon(naive));

        // Soundness: every discovered FD holds.
        for fd in &tane {
            prop_assert!(fd.holds(&rel).unwrap(), "{:?} does not hold", fd);
        }
    }

    #[test]
    fn approximate_tane_is_sound(
        rows in prop::collection::vec(prop::collection::vec(0i64..3, 3), 5..60),
        threshold in 0.0f64..0.4,
    ) {
        let attrs: Vec<Attribute> =
            (0..3).map(|i| Attribute::categorical(format!("a{i}"))).collect();
        let schema = Schema::new(attrs).unwrap();
        let data: Vec<Vec<Value>> =
            rows.into_iter().map(|r| r.into_iter().map(Value::Int).collect()).collect();
        let rel = Relation::from_rows(schema, data).unwrap();
        let approx = discover_fds(
            &rel,
            &TaneConfig { max_lhs: 2, g3_threshold: threshold },
        )
        .unwrap();
        // Every reported AFD really has g3 within the threshold (floored to
        // a violation count, as the implementation documents).
        let n = rel.n_rows() as f64;
        for fd in &approx {
            let g3 = fd.g3_error(&rel).unwrap();
            prop_assert!(
                g3 * n <= (threshold * n).floor() + 1e-9,
                "g3 {} over threshold {}",
                g3,
                threshold
            );
        }
    }
}
