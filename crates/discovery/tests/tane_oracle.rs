//! Oracle suite: the cached / parallel discovery engine must agree with the
//! exhaustive naive baseline — on the bundled datasets, on seeded generator
//! relations, and on randomized relations at every lattice depth, under
//! every parallel/cache configuration.
//!
//! The naive oracle (`discover_fds_naive`) deliberately bypasses the
//! [`DiscoveryContext`] and rebuilds each partition from scratch, so the
//! two sides share no code path beyond the `Pli` primitive itself.

use mp_discovery::{
    discover_fds, discover_fds_naive, discover_fds_with, DiscoveryContext, ParallelConfig,
    TaneConfig,
};
use mp_relation::{Attribute, Relation, Schema, Value};
use proptest::prelude::*;

fn canon(fds: Vec<mp_metadata::Fd>) -> Vec<(Vec<usize>, usize)> {
    let mut v: Vec<(Vec<usize>, usize)> = fds
        .into_iter()
        .map(|f| (f.lhs.indices().to_vec(), f.rhs))
        .collect();
    v.sort();
    v
}

/// The parallel/cache configurations every oracle comparison runs under:
/// sequential, default (all threads, default cache), oversubscribed with a
/// tiny cache that forces evictions, a single-entry cache that thrashes on
/// every step, and fully uncached ablation.
fn engine_configs() -> Vec<ParallelConfig> {
    vec![
        ParallelConfig::sequential(),
        ParallelConfig::default(),
        ParallelConfig {
            threads: 3,
            cache_capacity: 8,
            ..ParallelConfig::default()
        },
        ParallelConfig {
            threads: 2,
            cache_capacity: 1,
            ..ParallelConfig::default()
        },
        ParallelConfig::uncached(4),
    ]
}

/// Round-trips `rel` through the `Value` boundary twice — typed columns →
/// `Value` rows → typed columns, and typed columns → `Value` columns →
/// typed columns — asserting both reconstructions are identical relations.
fn roundtrip_through_values(rel: &Relation, label: &str) -> Relation {
    let via_rows = Relation::from_rows(rel.schema().clone(), rel.rows().collect()).unwrap();
    assert_eq!(
        &via_rows, rel,
        "{label}: columns → rows → columns round-trip changed the relation"
    );
    let via_cols = Relation::from_columns(
        rel.schema().clone(),
        (0..rel.arity())
            .map(|i| rel.column_values(i).unwrap())
            .collect(),
    )
    .unwrap();
    assert_eq!(
        &via_cols, rel,
        "{label}: columns → Values → columns round-trip changed the relation"
    );
    via_rows
}

/// Asserts that the engine output equals the naive oracle on `rel` for
/// every engine configuration, at lattice depth `max_lhs` — and that the
/// same holds on the columnar representation round-tripped through `Value`
/// rows (freshly rebuilt dictionaries and null bitmaps).
fn assert_matches_oracle(rel: &Relation, max_lhs: usize, label: &str) {
    let naive = canon(discover_fds_naive(rel, max_lhs).unwrap());
    let roundtripped = roundtrip_through_values(rel, label);
    for parallel in engine_configs() {
        let config = TaneConfig {
            max_lhs,
            g3_threshold: 0.0,
            parallel,
        };
        let engine = canon(discover_fds(rel, &config).unwrap());
        assert_eq!(
            engine, naive,
            "{label}: engine ({parallel:?}) disagrees with naive oracle at depth {max_lhs}"
        );
        let engine_rt = canon(discover_fds(&roundtripped, &config).unwrap());
        assert_eq!(
            engine_rt, naive,
            "{label}: engine ({parallel:?}) disagrees with naive oracle on the \
             round-tripped relation at depth {max_lhs}"
        );
    }
}

#[test]
fn echocardiogram_matches_oracle() {
    assert_matches_oracle(&mp_datasets::echocardiogram(), 2, "echocardiogram");
}

#[test]
fn employee_matches_oracle() {
    assert_matches_oracle(&mp_datasets::employee(), 3, "employee");
}

#[test]
fn iris_like_matches_oracle() {
    assert_matches_oracle(&mp_datasets::iris_like(), 2, "iris_like");
}

#[test]
fn seeded_generator_relations_match_oracle() {
    for seed in [7, 19, 42] {
        let out = mp_datasets::all_classes_spec(120, seed).generate().unwrap();
        assert_matches_oracle(&out.relation, 2, &format!("all_classes seed {seed}"));
    }
}

#[test]
fn shared_context_matches_fresh_context() {
    // A context reused across calls (warm cache, nonzero hit counters) must
    // give the same answer as a cold one.
    let rel = mp_datasets::echocardiogram();
    let config = TaneConfig {
        max_lhs: 2,
        g3_threshold: 0.0,
        ..TaneConfig::default()
    };
    let cold = discover_fds(&rel, &config).unwrap();

    let ctx = DiscoveryContext::new(&rel, ParallelConfig::default());
    let first = discover_fds_with(&ctx, &config).unwrap();
    let warm = discover_fds_with(&ctx, &config).unwrap();
    assert_eq!(canon(cold), canon(first.clone()));
    assert_eq!(canon(first), canon(warm));
    assert!(ctx.cache_stats().hits > 0, "warm rerun must hit the cache");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn tane_agrees_with_exhaustive_baseline(
        n_attrs in 2usize..7,
        rows in prop::collection::vec(
            prop::collection::vec(0i64..4, 6),
            0..40,
        ),
        depth in 1usize..4,
    ) {
        let attrs: Vec<Attribute> =
            (0..n_attrs).map(|i| Attribute::categorical(format!("a{i}"))).collect();
        let schema = Schema::new(attrs).unwrap();
        let data: Vec<Vec<Value>> = rows
            .into_iter()
            .map(|r| r.into_iter().take(n_attrs).map(Value::Int).collect())
            .collect();
        let rel = Relation::from_rows(schema, data).unwrap();

        let naive = canon(discover_fds_naive(&rel, depth).unwrap());
        for parallel in engine_configs() {
            let tane = discover_fds(
                &rel,
                &TaneConfig { max_lhs: depth, g3_threshold: 0.0, parallel },
            )
            .unwrap();
            prop_assert_eq!(canon(tane.clone()), naive.clone());

            // Soundness: every discovered FD holds.
            for fd in &tane {
                prop_assert!(fd.holds(&rel).unwrap(), "{:?} does not hold", fd);
            }
        }
    }

    #[test]
    fn approximate_tane_is_sound(
        rows in prop::collection::vec(prop::collection::vec(0i64..3, 3), 5..60),
        threshold in 0.0f64..0.4,
    ) {
        let attrs: Vec<Attribute> =
            (0..3).map(|i| Attribute::categorical(format!("a{i}"))).collect();
        let schema = Schema::new(attrs).unwrap();
        let data: Vec<Vec<Value>> =
            rows.into_iter().map(|r| r.into_iter().map(Value::Int).collect()).collect();
        let rel = Relation::from_rows(schema, data).unwrap();
        let approx = discover_fds(
            &rel,
            &TaneConfig { max_lhs: 2, g3_threshold: threshold, ..TaneConfig::default() },
        )
        .unwrap();
        // Every reported AFD really has g3 within the threshold (floored to
        // a violation count, as the implementation documents).
        let n = rel.n_rows() as f64;
        for fd in &approx {
            let g3 = fd.g3_error(&rel).unwrap();
            prop_assert!(
                g3 * n <= (threshold * n).floor() + 1e-9,
                "g3 {} over threshold {}",
                g3,
                threshold
            );
        }
    }

    #[test]
    fn approximate_tane_identical_across_engine_configs(
        rows in prop::collection::vec(prop::collection::vec(0i64..3, 4), 5..50),
        threshold in 0.0f64..0.3,
    ) {
        let attrs: Vec<Attribute> =
            (0..4).map(|i| Attribute::categorical(format!("a{i}"))).collect();
        let schema = Schema::new(attrs).unwrap();
        let data: Vec<Vec<Value>> =
            rows.into_iter().map(|r| r.into_iter().map(Value::Int).collect()).collect();
        let rel = Relation::from_rows(schema, data).unwrap();

        let mut outputs = Vec::new();
        for parallel in engine_configs() {
            let config = TaneConfig { max_lhs: 3, g3_threshold: threshold, parallel };
            outputs.push(discover_fds(&rel, &config).unwrap());
        }
        for pair in outputs.windows(2) {
            // Vec equality, not set equality: output order must also be
            // independent of threading and cache budget.
            prop_assert_eq!(&pair[0], &pair[1]);
        }
    }
}
