//! Property tests for the discovery engine's PLI cache: partitions served
//! from the cache must be *bit-identical* to partitions rebuilt from
//! scratch, for arbitrary relations, attribute sets, cache budgets, and
//! request orders.

use mp_discovery::{DiscoveryContext, ParallelConfig};
use mp_metadata::{pli_of_set, AttrSet};
use mp_relation::{Attribute, Relation, Schema, Value};
use proptest::prelude::*;

fn build(rows: Vec<Vec<i64>>, n_attrs: usize) -> Relation {
    let attrs: Vec<Attribute> = (0..n_attrs)
        .map(|i| Attribute::categorical(format!("a{i}")))
        .collect();
    let schema = Schema::new(attrs).unwrap();
    let data: Vec<Vec<Value>> = rows
        .into_iter()
        .map(|r| r.into_iter().take(n_attrs).map(Value::Int).collect())
        .collect();
    Relation::from_rows(schema, data).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cached_pli_bit_identical_to_uncached(
        rows in prop::collection::vec(prop::collection::vec(0i64..4, 5), 0..50),
        sets in prop::collection::vec(prop::collection::vec(0usize..5, 1..4), 1..8),
        cache_capacity in prop::option::of(1usize..6),
    ) {
        let rel = build(rows, 5);
        // A tiny Some(capacity) forces evictions mid-sequence; None means
        // the uncached ablation path.
        let parallel = ParallelConfig {
            threads: 1,
            cache_capacity: cache_capacity.unwrap_or(0),
        ..ParallelConfig::default()
        };
        let cached = DiscoveryContext::new(&rel, parallel);
        let reference = DiscoveryContext::new(&rel, ParallelConfig::uncached(1));

        for set in &sets {
            let set = AttrSet::from_iter(set.iter().copied());
            let from_cache = cached.pli_of(&set).unwrap();
            let fresh = reference.pli_of(&set).unwrap();
            // Bit-identical: same clusters in the same order, same row
            // count — Pli's derived PartialEq compares the full structure.
            prop_assert_eq!(&*from_cache, &*fresh);
            // And both agree with the independent linear-scan builder.
            prop_assert_eq!(&*from_cache, &pli_of_set(&rel, &set).unwrap());
        }
    }

    #[test]
    fn repeated_requests_return_identical_partitions(
        rows in prop::collection::vec(prop::collection::vec(0i64..3, 4), 1..40),
        set in prop::collection::vec(0usize..4, 1..4),
    ) {
        // Cache hit (second request) must return the same Arc contents as
        // the miss that populated it, even after other sets evicted it.
        let rel = build(rows, 4);
        let ctx = DiscoveryContext::new(&rel, ParallelConfig { threads: 1, cache_capacity: 2, ..ParallelConfig::default() });
        let set = AttrSet::from_iter(set.iter().copied());
        let first = ctx.pli_of(&set).unwrap();
        // Churn the tiny cache with every single-attribute partition.
        for a in 0..4 {
            ctx.pli_of(&AttrSet::single(a)).unwrap();
        }
        let second = ctx.pli_of(&set).unwrap();
        prop_assert_eq!(&*first, &*second);
    }
}
