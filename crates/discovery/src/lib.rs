//! # mp-discovery — dependency discovery
//!
//! From-scratch discovery of every dependency class the paper analyses
//! (there is no FD-discovery crate in the ecosystem):
//!
//! * [`discover_fds`] — TANE-style level-wise FD discovery over stripped
//!   partitions (paper ref \[13\]), with a `g3` threshold for approximate
//!   FDs (refs \[6\], \[14\]) and [`discover_fds_naive`] as the exhaustive
//!   cross-check / ablation baseline;
//! * [`discover_ods`] — pairwise order dependencies (§IV-C);
//! * [`discover_nds`] — numerical dependencies with tight fanout bounds
//!   (§IV-B);
//! * [`discover_dds`] — differential dependencies with tight deltas
//!   (§IV-D);
//! * [`discover_ofds`] — ordered functional dependencies (§IV-E);
//! * [`DependencyProfile`] — the one-call orchestrator producing the
//!   dependency inventory a party would attach to its metadata package.

#![warn(missing_docs)]

mod cfd;
mod dd;
mod engine;
mod mfd;
mod nd;
mod od;
mod ofd;
mod profiler;
mod tane;

pub use cfd::{discover_cfds, CfdConfig};
pub use dd::{discover_dds, discover_dds_with, tight_delta, DdConfig};
pub use engine::{DiscoveryContext, MemoryBudget, ParallelConfig};
pub use mfd::{
    discover_mfds, discover_sds, discover_variable_cfds, MfdConfig, SdConfig, VariableCfdConfig,
};
pub use nd::{discover_nds, discover_nds_with, NdConfig};
pub use od::{
    discover_approx_ods, discover_ods, discover_ods_with, od_error, od_violations, OdConfig,
};
pub use ofd::{discover_ofds, discover_ofds_with};
pub use profiler::{DependencyProfile, ProfileConfig};
pub use tane::{discover_fds, discover_fds_naive, discover_fds_with, TaneConfig};
