//! One-call dependency profiling: every class the paper analyses.

use crate::cfd::{discover_cfds, CfdConfig};
use crate::dd::{discover_dds_with, DdConfig};
use crate::engine::DiscoveryContext;
use crate::mfd::{discover_mfds, MfdConfig};
use crate::nd::{discover_nds_with, NdConfig};
use crate::od::{discover_ods_with, OdConfig};
use crate::ofd::discover_ofds_with;
use crate::tane::{discover_fds_with, TaneConfig};
use mp_metadata::{
    Afd, ConditionalFd, Dependency, DifferentialDep, Fd, MetricFd, NumericalDep, OrderDep,
    OrderedFd,
};
use mp_relation::{Relation, Result};

/// Configuration for a full profiling pass.
#[derive(Debug, Clone, Default)]
pub struct ProfileConfig {
    /// FD discovery limits.
    pub fd: TaneConfig,
    /// AFD `g3` threshold; `None` skips AFD discovery.
    pub afd_threshold: Option<f64>,
    /// OD discovery options.
    pub od: OdConfig,
    /// ND discovery options.
    pub nd: NdConfig,
    /// DD discovery options; `None` skips DD discovery.
    pub dd: Option<DdConfig>,
    /// Whether to discover OFDs.
    pub ofds: bool,
    /// Constant-CFD discovery options; `None` skips it.
    pub cfd: Option<CfdConfig>,
    /// MFD discovery options; `None` skips it.
    pub mfd: Option<MfdConfig>,
}

impl ProfileConfig {
    /// The configuration used by the paper-reproduction binaries: pairwise
    /// dependencies only (`max_lhs = 1`), all classes on.
    pub fn paper() -> Self {
        Self {
            fd: TaneConfig {
                max_lhs: 1,
                g3_threshold: 0.0,
                ..TaneConfig::default()
            },
            afd_threshold: Some(0.05),
            od: OdConfig::default(),
            nd: NdConfig::default(),
            dd: Some(DdConfig::default()),
            ofds: true,
            cfd: Some(CfdConfig::default()),
            mfd: Some(MfdConfig::default()),
        }
    }
}

/// The discovered dependency inventory of a relation.
#[derive(Debug, Clone, Default)]
pub struct DependencyProfile {
    /// Minimal exact FDs.
    pub fds: Vec<Fd>,
    /// Approximate FDs (at the configured threshold) that are not exact.
    pub afds: Vec<Afd>,
    /// Order dependencies.
    pub ods: Vec<OrderDep>,
    /// Numerical dependencies with tight bounds.
    pub nds: Vec<NumericalDep>,
    /// Differential dependencies with tight deltas.
    pub dds: Vec<DifferentialDep>,
    /// Ordered functional dependencies.
    pub ofds: Vec<OrderedFd>,
    /// Constant conditional FDs (value-carrying metadata — see
    /// `mp_metadata::ConditionalFd` for the privacy caveat).
    pub cfds: Vec<ConditionalFd>,
    /// Metric FDs.
    pub mfds: Vec<MetricFd>,
}

impl DependencyProfile {
    /// Runs every configured discovery pass.
    ///
    /// A [`DiscoveryContext`] is created from `config.fd.parallel` and
    /// shared by every pass, so PLIs built during FD discovery are reused
    /// by the AFD, OD and ND passes. Use [`DependencyProfile::discover_with`]
    /// to supply (and inspect) the context yourself.
    pub fn discover(relation: &Relation, config: &ProfileConfig) -> Result<Self> {
        let ctx = DiscoveryContext::new(relation, config.fd.parallel);
        Self::discover_with(&ctx, config)
    }

    /// [`DependencyProfile::discover`] against a caller-supplied
    /// [`DiscoveryContext`]. All passes draw single-attribute and lattice
    /// PLIs from the context's shared cache and fan out on its thread
    /// budget; afterwards `ctx.cache_stats()` reports the cross-pass hit
    /// rate.
    pub fn discover_with(ctx: &DiscoveryContext<'_>, config: &ProfileConfig) -> Result<Self> {
        let relation = ctx.relation();
        // One span per pass. Durations are logical units — one unit per
        // partition the context materialises — so they answer "which pass
        // did the partition work" deterministically, not wall time.
        let span = |pass: &str| ctx.recorder().span(&format!("discovery.pass.{pass}"));
        let fds = {
            let _g = span("fds").enter();
            discover_fds_with(ctx, &config.fd)?
        };
        let afds = match config.afd_threshold {
            Some(eps) if eps > 0.0 => {
                let _g = span("afds").enter();
                let approx = discover_fds_with(
                    ctx,
                    &TaneConfig {
                        g3_threshold: eps,
                        ..config.fd.clone()
                    },
                )?;
                approx
                    .into_iter()
                    // Keep only genuinely approximate ones: not implied by
                    // an exact minimal FD.
                    .filter(|f| {
                        !fds.iter()
                            .any(|e| e.rhs == f.rhs && e.lhs.is_subset_of(&f.lhs))
                    })
                    .map(|f| Afd {
                        fd: f,
                        g3_threshold: eps,
                    })
                    .collect()
            }
            _ => Vec::new(),
        };
        let ods = {
            let _g = span("ods").enter();
            discover_ods_with(ctx, &config.od)?
        };
        let nds = {
            let _g = span("nds").enter();
            discover_nds_with(ctx, &config.nd)?
        };
        let dds = match &config.dd {
            Some(cfg) => {
                let _g = span("dds").enter();
                discover_dds_with(ctx, cfg)?
            }
            None => Vec::new(),
        };
        let ofds = if config.ofds {
            let _g = span("ofds").enter();
            discover_ofds_with(ctx, true)?
        } else {
            Vec::new()
        };
        let cfds = match &config.cfd {
            Some(cfg) => {
                let _g = span("cfds").enter();
                discover_cfds(relation, cfg)?
            }
            None => Vec::new(),
        };
        let mfds = match &config.mfd {
            Some(cfg) => {
                let _g = span("mfds").enter();
                discover_mfds(relation, cfg)?
            }
            None => Vec::new(),
        };
        Ok(Self {
            fds,
            afds,
            ods,
            nds,
            dds,
            ofds,
            cfds,
            mfds,
        })
    }

    /// Total number of discovered dependencies.
    pub fn len(&self) -> usize {
        self.fds.len()
            + self.afds.len()
            + self.ods.len()
            + self.nds.len()
            + self.dds.len()
            + self.ofds.len()
            + self.cfds.len()
            + self.mfds.len()
    }

    /// `true` if nothing was discovered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flattens the profile into the unified [`Dependency`] enum, the form
    /// a [`mp_metadata::MetadataPackage`] carries.
    pub fn to_dependencies(&self) -> Vec<Dependency> {
        let mut out: Vec<Dependency> = Vec::with_capacity(self.len());
        out.extend(self.fds.iter().cloned().map(Dependency::from));
        out.extend(self.afds.iter().cloned().map(Dependency::from));
        out.extend(self.ods.iter().cloned().map(Dependency::from));
        out.extend(self.nds.iter().cloned().map(Dependency::from));
        out.extend(self.dds.iter().cloned().map(Dependency::from));
        out.extend(self.ofds.iter().cloned().map(Dependency::from));
        out.extend(self.cfds.iter().cloned().map(Dependency::from));
        // MFDs have no Dependency variant (their generation strategy is the
        // DD one); they are exported separately.
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datasets::{all_classes_spec, employee};

    #[test]
    fn profile_finds_every_planted_class() {
        let out = all_classes_spec(500, 19).generate().unwrap();
        let profile = DependencyProfile::discover(&out.relation, &ProfileConfig::paper()).unwrap();
        assert!(!profile.fds.is_empty(), "FDs");
        assert!(!profile.afds.is_empty(), "AFDs");
        assert!(!profile.ods.is_empty(), "ODs");
        assert!(!profile.nds.is_empty(), "NDs");
        assert!(!profile.dds.is_empty(), "DDs");
        assert!(!profile.is_empty());
        // MFDs are exported separately (no Dependency variant).
        assert_eq!(
            profile.to_dependencies().len(),
            profile.len() - profile.mfds.len()
        );
    }

    #[test]
    fn afds_are_not_exact_fds() {
        let out = all_classes_spec(500, 23).generate().unwrap();
        let profile = DependencyProfile::discover(&out.relation, &ProfileConfig::paper()).unwrap();
        for afd in &profile.afds {
            assert!(
                !afd.fd.holds(&out.relation).unwrap(),
                "AFD {:?} should be genuinely approximate",
                afd.fd
            );
            assert!(afd.holds(&out.relation).unwrap());
        }
    }

    #[test]
    fn every_discovered_dependency_holds() {
        let profile = DependencyProfile::discover(&employee(), &ProfileConfig::paper()).unwrap();
        for dep in profile.to_dependencies() {
            assert!(dep.holds(&employee()).unwrap(), "{dep}");
        }
    }

    #[test]
    fn shared_context_profile_matches_and_hits_cache() {
        use crate::engine::ParallelConfig;
        let out = all_classes_spec(300, 19).generate().unwrap();
        let config = ProfileConfig::paper();
        let baseline = DependencyProfile::discover(&out.relation, &config).unwrap();

        let ctx = DiscoveryContext::new(&out.relation, ParallelConfig::default());
        let shared = DependencyProfile::discover_with(&ctx, &config).unwrap();
        assert_eq!(format!("{:?}", baseline), format!("{:?}", shared));

        let stats = ctx.cache_stats();
        // The FD pass and the AFD pass walk the same lattice; the ND pass
        // re-reads single-attribute PLIs. Sharing one context must produce
        // cache hits.
        assert!(stats.hits > 0, "shared context should reuse PLIs: {stats}");
    }

    #[test]
    fn disabled_passes_stay_empty() {
        let config = ProfileConfig {
            afd_threshold: None,
            dd: None,
            ofds: false,
            cfd: None,
            mfd: None,
            ..ProfileConfig::paper()
        };
        let profile = DependencyProfile::discover(&employee(), &config).unwrap();
        assert!(profile.afds.is_empty());
        assert!(profile.dds.is_empty());
        assert!(profile.ofds.is_empty());
        assert!(profile.cfds.is_empty());
        assert!(profile.mfds.is_empty());
        assert!(!profile.fds.is_empty());
    }
}
