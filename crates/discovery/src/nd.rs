//! Pairwise numerical-dependency discovery (§IV-B).
//!
//! For every attribute pair `(X, Y)` the tightest cardinality bound `k`
//! (the maximum number of distinct Y values associated with one X value)
//! is computed from the stripped partition of X. A pair is reported as the
//! ND `X →≤k Y` only when the bound is *informative*: much smaller than
//! `|dom(Y)|`, since `k = |dom(Y)|` holds for every pair vacuously.

use crate::engine::{DiscoveryContext, ParallelConfig};
use mp_metadata::NumericalDep;
use mp_relation::{Relation, Result};

/// Options for ND discovery.
#[derive(Debug, Clone)]
pub struct NdConfig {
    /// Absolute cap: report only NDs with `k ≤ max_k`.
    pub max_k: usize,
    /// Relative cap: report only NDs with `k ≤ ratio · distinct(Y)`.
    pub max_fanout_ratio: f64,
    /// Skip NDs that are already FDs (`k = 1`); those are reported by FD
    /// discovery.
    pub exclude_fds: bool,
}

impl Default for NdConfig {
    fn default() -> Self {
        Self {
            max_k: 32,
            max_fanout_ratio: 0.5,
            exclude_fds: true,
        }
    }
}

/// Discovers informative numerical dependencies between attribute pairs.
///
/// Each reported ND carries the *tightest* `k` for which it holds on the
/// relation, so `NumericalDep::holds` is true by construction and false
/// for `k − 1` (asserted in tests).
pub fn discover_nds(relation: &Relation, config: &NdConfig) -> Result<Vec<NumericalDep>> {
    let ctx = DiscoveryContext::new(relation, ParallelConfig::default());
    discover_nds_with(&ctx, config)
}

/// [`discover_nds`] against a shared [`DiscoveryContext`]: LHS partitions
/// and RHS signatures come from the context's PLI cache (so a preceding
/// FD pass has already paid for them), and the pair sweep fans out over
/// determinants on the context's thread budget. Output is identical to
/// the sequential scan.
pub fn discover_nds_with(
    ctx: &DiscoveryContext<'_>,
    config: &NdConfig,
) -> Result<Vec<NumericalDep>> {
    let relation = ctx.relation();
    let m = relation.arity();
    if relation.n_rows() == 0 {
        return Ok(Vec::new());
    }
    let distinct: Vec<usize> = (0..m)
        .map(|c| relation.distinct_count(c))
        .collect::<Result<_>>()?;
    // RHS full signatures, shared by every determinant's sweep.
    let rhs_sigs: Vec<Vec<usize>> = (0..m)
        .map(|c| Ok(ctx.pli_of_single(c)?.full_signature()))
        .collect::<Result<_>>()?;

    let per_lhs: Vec<Result<Vec<NumericalDep>>> = ctx.par_map((0..m).collect(), |lhs| {
        let lhs_pli = ctx.pli_of_single(lhs)?;
        let mut out = Vec::new();
        for (rhs, &rhs_distinct) in distinct.iter().enumerate() {
            if lhs == rhs {
                continue;
            }
            let k = max_fanout(&lhs_pli, &rhs_sigs[rhs]);
            if k == 0 {
                continue;
            }
            if config.exclude_fds && k == 1 {
                continue;
            }
            let informative =
                k <= config.max_k && (k as f64) <= config.max_fanout_ratio * rhs_distinct as f64;
            if informative {
                out.push(NumericalDep::new(lhs, rhs, k));
            }
        }
        Ok(out)
    });

    let mut out = Vec::new();
    for found in per_lhs {
        out.extend(found?);
    }
    Ok(out)
}

/// Tightest fanout bound from a stripped LHS partition and an RHS full
/// signature — the same computation as [`NumericalDep::max_fanout`], but
/// over partitions the discovery context has already built.
fn max_fanout(lhs_pli: &mp_relation::Pli, rhs_sig: &[usize]) -> usize {
    let mut max = if rhs_sig.is_empty() { 0 } else { 1 };
    let mut seen: Vec<usize> = Vec::new();
    for cluster in lhs_pli.clusters() {
        seen.clear();
        seen.extend(cluster.iter().map(|&r| rhs_sig[r]));
        seen.sort_unstable();
        seen.dedup();
        max = max.max(seen.len());
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datasets::{all_classes_spec, echocardiogram};

    #[test]
    fn planted_bounded_fanout_found() {
        let out = all_classes_spec(600, 4).generate().unwrap();
        let nds = discover_nds(&out.relation, &NdConfig::default()).unwrap();
        // Planted: base(0) →≤3 fan(4); discovery reports the tightest k ≤ 3.
        let nd = nds
            .iter()
            .find(|d| d.lhs == 0 && d.rhs == 4)
            .expect("planted ND discovered");
        assert!(nd.k <= 3 && nd.k >= 2);
    }

    #[test]
    fn tightness_of_reported_k() {
        let out = all_classes_spec(400, 10).generate().unwrap();
        let nds = discover_nds(&out.relation, &NdConfig::default()).unwrap();
        assert!(!nds.is_empty());
        for nd in &nds {
            assert!(nd.holds(&out.relation).unwrap());
            let tighter = NumericalDep::new(nd.lhs, nd.rhs, nd.k - 1);
            assert!(
                nd.k == 1 || !tighter.holds(&out.relation).unwrap(),
                "reported k must be tight"
            );
        }
    }

    #[test]
    fn echocardiogram_group_survival_nd() {
        use mp_datasets::echocardiogram::attrs::*;
        let r = echocardiogram();
        let nds = discover_nds(
            &r,
            &NdConfig {
                max_k: 24,
                max_fanout_ratio: 0.6,
                exclude_fds: true,
            },
        )
        .unwrap();
        assert!(
            nds.iter().any(|d| d.lhs == GROUP && d.rhs == SURVIVAL),
            "planted group →≤k survival ND must be informative"
        );
    }

    #[test]
    fn fd_pairs_excluded_by_default() {
        let out = all_classes_spec(300, 6).generate().unwrap();
        let nds = discover_nds(&out.relation, &NdConfig::default()).unwrap();
        // base(0) → fd_child(1) is an FD (k = 1): excluded.
        assert!(!nds.iter().any(|d| d.lhs == 0 && d.rhs == 1));

        let with_fds = discover_nds(
            &out.relation,
            &NdConfig {
                exclude_fds: false,
                max_k: 32,
                max_fanout_ratio: 0.5,
            },
        )
        .unwrap();
        assert!(with_fds
            .iter()
            .any(|d| d.lhs == 0 && d.rhs == 1 && d.k == 1));
    }

    #[test]
    fn uninformative_pairs_skipped() {
        let out = all_classes_spec(300, 6).generate().unwrap();
        let strict = discover_nds(
            &out.relation,
            &NdConfig {
                max_k: 1,
                max_fanout_ratio: 0.01,
                exclude_fds: true,
            },
        )
        .unwrap();
        assert!(strict.is_empty());
    }

    #[test]
    fn empty_relation() {
        let out = all_classes_spec(0, 0).generate().unwrap();
        assert!(discover_nds(&out.relation, &NdConfig::default())
            .unwrap()
            .is_empty());
    }
}
