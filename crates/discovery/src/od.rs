//! Pairwise order-dependency discovery (§IV-C).
//!
//! The paper's order dependencies are between attribute pairs, so discovery
//! checks every ordered pair `(X, Y)` for the ascending and descending
//! variants. Constant columns are excluded by default: an OD onto a
//! constant attribute holds vacuously and carries no structure.

use crate::engine::{DiscoveryContext, ParallelConfig};
use mp_metadata::{OrderDep, OrderDirection};
use mp_relation::{Relation, Result, ValueRef};

/// Options for OD discovery.
#[derive(Debug, Clone)]
pub struct OdConfig {
    /// Skip ODs whose RHS (or LHS) column is constant on non-null rows.
    pub exclude_constant: bool,
    /// Also search for descending ODs.
    pub include_descending: bool,
}

impl Default for OdConfig {
    fn default() -> Self {
        Self {
            exclude_constant: true,
            include_descending: true,
        }
    }
}

fn non_null_constant(relation: &Relation, col: usize) -> Result<bool> {
    let column = relation.column(col)?;
    let mut non_null = column.iter().filter(|v| !v.is_null());
    let Some(first) = non_null.next() else {
        return Ok(true);
    };
    Ok(non_null.all(|v| v == first))
}

/// Discovers all pairwise order dependencies of `relation`.
///
/// The validation semantics are exactly [`OrderDep::holds`]: tuples with a
/// null on either side are skipped, X-ties must be Y-ties, and Y must be
/// monotone in the direction of the dependency. When a pair satisfies both
/// directions (possible only if Y is constant across distinct X values,
/// which `exclude_constant` usually rules out), both are returned.
pub fn discover_ods(relation: &Relation, config: &OdConfig) -> Result<Vec<OrderDep>> {
    let ctx = DiscoveryContext::new(relation, ParallelConfig::default());
    discover_ods_with(&ctx, config)
}

/// [`discover_ods`] against a shared [`DiscoveryContext`]: the candidate
/// set fans out over determinants on the context's thread budget (each
/// determinant's column sort and RHS sweeps are independent), and results
/// are merged in determinant order, so the output is identical to the
/// sequential scan.
pub fn discover_ods_with(ctx: &DiscoveryContext<'_>, config: &OdConfig) -> Result<Vec<OrderDep>> {
    let relation = ctx.relation();
    let m = relation.arity();
    let mut constant = vec![false; m];
    for (c, flag) in constant.iter_mut().enumerate() {
        *flag = non_null_constant(relation, c)?;
    }

    let per_lhs: Vec<Result<Vec<OrderDep>>> = ctx.par_map((0..m).collect(), |lhs| {
        let mut out = Vec::new();
        if config.exclude_constant && constant[lhs] {
            return Ok(out);
        }
        // Pre-sort the LHS once per determinant; reuse for all RHS checks.
        let xs = relation.column(lhs)?;
        let mut order: Vec<usize> = (0..relation.n_rows()).filter(|&r| !xs.is_null(r)).collect();
        order.sort_by(|&a, &b| xs.value_ref(a).cmp(&xs.value_ref(b)));

        for (rhs, &rhs_constant) in constant.iter().enumerate() {
            if rhs == lhs || (config.exclude_constant && rhs_constant) {
                continue;
            }
            let ys = relation.column(rhs)?;
            let (mut asc, mut desc) = (true, config.include_descending);
            let mut prev: Option<(ValueRef<'_>, ValueRef<'_>)> = None;
            for &r in &order {
                if ys.is_null(r) {
                    continue;
                }
                let (x, y) = (xs.value_ref(r), ys.value_ref(r));
                if let Some((px, py)) = prev {
                    if px == x {
                        if py != y {
                            asc = false;
                            desc = false;
                        }
                    } else {
                        if py > y {
                            asc = false;
                        }
                        if py < y {
                            desc = false;
                        }
                    }
                    if !asc && !desc {
                        break;
                    }
                }
                prev = Some((x, y));
            }
            if asc {
                out.push(OrderDep::ascending(lhs, rhs));
            }
            if desc {
                out.push(OrderDep::descending(lhs, rhs));
            }
        }
        Ok(out)
    });

    let mut out = Vec::new();
    for found in per_lhs {
        out.extend(found?);
    }
    Ok(out)
}

/// The minimum number of tuples to delete so the OD holds — the `g3`
/// analogue for order dependencies, computed as (non-null pairs) minus the
/// longest subsequence that is order-compatible (non-decreasing Y along
/// ascending X with ties consistent). Exposed for approximate-OD
/// discovery.
pub fn od_violations(relation: &Relation, od: &OrderDep) -> Result<usize> {
    let xs = relation.column(od.lhs)?;
    let ys = relation.column(od.rhs)?;
    // Collect non-null pairs sorted by X (stable, so equal X keeps row
    // order; we then require Y non-decreasing overall, which subsumes the
    // tie condition up to the deletion metric).
    let mut pairs: Vec<(ValueRef<'_>, ValueRef<'_>)> = xs
        .iter()
        .zip(ys.iter())
        .filter(|(x, y)| !x.is_null() && !y.is_null())
        .collect();
    pairs.sort_by(|a, b| a.0.cmp(&b.0));
    let seq: Vec<ValueRef<'_>> = pairs
        .iter()
        .map(|(_, y)| match od.direction {
            OrderDirection::Ascending => *y,
            OrderDirection::Descending => *y,
        })
        .collect();
    // Longest non-decreasing (or non-increasing) subsequence length via
    // patience sorting, O(n log n).
    let keep = match od.direction {
        OrderDirection::Ascending => longest_monotone(&seq, false),
        OrderDirection::Descending => longest_monotone(&seq, true),
    };
    Ok(seq.len() - keep)
}

/// Length of the longest non-decreasing (or non-increasing when `rev`)
/// subsequence.
fn longest_monotone(seq: &[ValueRef<'_>], rev: bool) -> usize {
    // tails[k] = smallest possible tail of a monotone subsequence of
    // length k+1 (for non-decreasing; mirrored for non-increasing).
    let mut tails: Vec<ValueRef<'_>> = Vec::new();
    for &v in seq {
        let pos = tails.partition_point(|&t| {
            if rev {
                t >= v // non-increasing: extendable while tail ≥ v
            } else {
                t <= v // non-decreasing: extendable while tail ≤ v
            }
        });
        if pos == tails.len() {
            tails.push(v);
        } else {
            tails[pos] = v;
        }
    }
    tails.len()
}

/// The approximate-OD error: `od_violations / non-null pairs` (0 iff the
/// OD holds up to the deletion metric).
pub fn od_error(relation: &Relation, od: &OrderDep) -> Result<f64> {
    let n = relation
        .column(od.lhs)?
        .iter()
        .zip(relation.column(od.rhs)?.iter())
        .filter(|(x, y)| !x.is_null() && !y.is_null())
        .count();
    if n == 0 {
        return Ok(0.0);
    }
    Ok(od_violations(relation, od)? as f64 / n as f64)
}

/// Discovers *approximate* order dependencies: pairs whose OD error is
/// within `threshold` but that do not hold exactly. Mirrors the AFD
/// relaxation of FDs (§IV-A) for the order class.
pub fn discover_approx_ods(
    relation: &Relation,
    threshold: f64,
    config: &OdConfig,
) -> Result<Vec<(OrderDep, f64)>> {
    let exact = discover_ods(relation, config)?;
    let m = relation.arity();
    let mut out = Vec::new();
    for lhs in 0..m {
        for rhs in 0..m {
            if lhs == rhs {
                continue;
            }
            let mut candidates = vec![OrderDep::ascending(lhs, rhs)];
            if config.include_descending {
                candidates.push(OrderDep::descending(lhs, rhs));
            }
            for od in candidates {
                if exact.contains(&od) {
                    continue;
                }
                let err = od_error(relation, &od)?;
                if err > 0.0 && err <= threshold {
                    out.push((od, err));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datasets::{echocardiogram, employee};
    use mp_relation::{Attribute, Schema};

    #[test]
    fn employee_ods() {
        let ods = discover_ods(&employee(), &OdConfig::default()).unwrap();
        // Salary ≤ → Age ≤ (salaries unique, ages monotone).
        assert!(ods.contains(&OrderDep::ascending(3, 1)));
        // Age does not order salary (ties on 22 break it).
        assert!(!ods.contains(&OrderDep::ascending(1, 3)));
        // Every discovered OD must hold by the exact semantics.
        for od in &ods {
            assert!(od.holds(&employee()).unwrap(), "{od:?}");
        }
    }

    #[test]
    fn echocardiogram_planted_ods_found() {
        use mp_datasets::echocardiogram::attrs::*;
        let r = echocardiogram();
        let ods = discover_ods(&r, &OdConfig::default()).unwrap();
        for (l, rr) in [
            (AGE, GROUP),
            (WALL_MOTION_SCORE, WALL_MOTION_INDEX),
            (LVDD, EPSS),
            (FRACTIONAL_SHORTENING, MULT),
            (SURVIVAL, STILL_ALIVE),
        ] {
            assert!(
                ods.contains(&OrderDep::ascending(l, rr)),
                "expected OD {l} -> {rr}"
            );
        }
    }

    #[test]
    fn descending_found() {
        let schema =
            Schema::new(vec![Attribute::continuous("x"), Attribute::continuous("y")]).unwrap();
        let r = Relation::from_rows(
            schema,
            vec![
                vec![1.0.into(), 9.0.into()],
                vec![2.0.into(), 5.0.into()],
                vec![3.0.into(), 1.0.into()],
            ],
        )
        .unwrap();
        let ods = discover_ods(&r, &OdConfig::default()).unwrap();
        assert!(ods.contains(&OrderDep::descending(0, 1)));
        assert!(!ods.contains(&OrderDep::ascending(0, 1)));

        let no_desc = discover_ods(
            &r,
            &OdConfig {
                include_descending: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(no_desc.iter().all(|od| od.lhs != 0 || od.rhs != 1));
    }

    #[test]
    fn constant_columns_excluded_by_default() {
        let schema = Schema::new(vec![
            Attribute::continuous("x"),
            Attribute::categorical("c"),
        ])
        .unwrap();
        let r = Relation::from_rows(
            schema,
            vec![vec![1.0.into(), "k".into()], vec![2.0.into(), "k".into()]],
        )
        .unwrap();
        assert!(discover_ods(&r, &OdConfig::default()).unwrap().is_empty());
        let with_const = discover_ods(
            &r,
            &OdConfig {
                exclude_constant: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(with_const.contains(&OrderDep::ascending(0, 1)));
    }

    #[test]
    fn empty_relation_yields_nothing() {
        let schema =
            Schema::new(vec![Attribute::continuous("x"), Attribute::continuous("y")]).unwrap();
        let r = Relation::empty(schema);
        assert!(discover_ods(&r, &OdConfig::default()).unwrap().is_empty());
    }

    #[test]
    fn discovery_agrees_with_holds_semantics() {
        // Cross-check the incremental single-pass check against the
        // definition-level validator on a relation with nulls and ties.
        let out = mp_datasets::all_classes_spec(120, 33).generate().unwrap();
        let r = &out.relation;
        let ods = discover_ods(r, &OdConfig::default()).unwrap();
        for lhs in 0..r.arity() {
            for rhs in 0..r.arity() {
                if lhs == rhs {
                    continue;
                }
                for od in [
                    OrderDep::ascending(lhs, rhs),
                    OrderDep::descending(lhs, rhs),
                ] {
                    let found = ods.contains(&od);
                    let holds = od.holds(r).unwrap();
                    if found {
                        assert!(holds, "discovered OD must hold: {od:?}");
                    }
                    // `holds` without `found` is possible only via the
                    // constant-column exclusion.
                    if holds && !found {
                        let c_l = non_null_constant(r, lhs).unwrap();
                        let c_r = non_null_constant(r, rhs).unwrap();
                        assert!(c_l || c_r, "missed OD {od:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn od_violations_counts_minimum_deletions() {
        let schema =
            Schema::new(vec![Attribute::continuous("x"), Attribute::continuous("y")]).unwrap();
        // Sorted by x, y = 1, 2, 9, 3, 4: delete the single 9 → holds.
        let r = Relation::from_rows(
            schema,
            vec![
                vec![1.0.into(), 1.0.into()],
                vec![2.0.into(), 2.0.into()],
                vec![3.0.into(), 9.0.into()],
                vec![4.0.into(), 3.0.into()],
                vec![5.0.into(), 4.0.into()],
            ],
        )
        .unwrap();
        let od = OrderDep::ascending(0, 1);
        assert_eq!(od_violations(&r, &od).unwrap(), 1);
        assert!((od_error(&r, &od).unwrap() - 0.2).abs() < 1e-12);
        // Exact OD fails, approximate at 20% succeeds.
        assert!(!od.holds(&r).unwrap());
        let approx = discover_approx_ods(&r, 0.2, &OdConfig::default()).unwrap();
        assert!(approx
            .iter()
            .any(|(d, e)| *d == od && (*e - 0.2).abs() < 1e-12));
        // Tighter threshold excludes it.
        let none = discover_approx_ods(&r, 0.1, &OdConfig::default()).unwrap();
        assert!(!none.iter().any(|(d, _)| *d == od));
    }

    #[test]
    fn od_violations_zero_for_exact_ods() {
        let r = employee();
        let od = OrderDep::ascending(3, 1);
        assert!(od.holds(&r).unwrap());
        assert_eq!(od_violations(&r, &od).unwrap(), 0);
    }

    #[test]
    fn descending_violations() {
        let schema =
            Schema::new(vec![Attribute::continuous("x"), Attribute::continuous("y")]).unwrap();
        let r = Relation::from_rows(
            schema,
            vec![
                vec![1.0.into(), 9.0.into()],
                vec![2.0.into(), 10.0.into()], // the one ascent
                vec![3.0.into(), 5.0.into()],
                vec![4.0.into(), 1.0.into()],
            ],
        )
        .unwrap();
        let od = OrderDep::descending(0, 1);
        assert_eq!(od_violations(&r, &od).unwrap(), 1);
    }

    #[test]
    fn approx_discovery_excludes_exact_ods() {
        let r = echocardiogram();
        let exact = discover_ods(&r, &OdConfig::default()).unwrap();
        let approx = discover_approx_ods(&r, 0.1, &OdConfig::default()).unwrap();
        for (od, err) in &approx {
            assert!(!exact.contains(od), "{od:?} is exact");
            assert!(*err > 0.0 && *err <= 0.1);
        }
    }
}
