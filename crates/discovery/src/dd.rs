//! Pairwise differential-dependency discovery (§IV-D).
//!
//! Given a closeness threshold `ε_X` on the source attribute (expressed as
//! a fraction of its range), the tightest implied threshold `δ_Y` is the
//! maximum `|Δy|` over all tuple pairs with `|Δx| ≤ ε_X`. The DD
//! `X (ε) → Y (δ)` is informative only when `δ_Y` is substantially smaller
//! than Y's range — otherwise the "dependency" says nothing.

use crate::engine::{DiscoveryContext, ParallelConfig};
use mp_metadata::DifferentialDep;
use mp_relation::{AttrKind, Relation, Result};

/// Options for DD discovery.
#[derive(Debug, Clone)]
pub struct DdConfig {
    /// `ε_X` as a fraction of the source attribute's observed range.
    pub eps_fraction: f64,
    /// Keep DDs whose tight `δ_Y ≤ delta_fraction · range(Y)`.
    pub delta_fraction: f64,
}

impl Default for DdConfig {
    fn default() -> Self {
        Self {
            eps_fraction: 0.05,
            delta_fraction: 0.25,
        }
    }
}

/// The tightest `δ_Y` for the DD `lhs (eps) → rhs` on `relation`: the
/// maximum RHS gap over all ε-close LHS pairs, or `None` if fewer than two
/// non-null pairs exist.
pub fn tight_delta(relation: &Relation, lhs: usize, rhs: usize, eps: f64) -> Result<Option<f64>> {
    let xs = relation.column(lhs)?;
    let ys = relation.column(rhs)?;
    let mut pairs: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys.iter())
        .filter_map(|(x, y)| Some((x.as_f64()?, y.as_f64()?)))
        .collect();
    if pairs.len() < 2 {
        return Ok(None);
    }
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut delta = 0.0f64;
    for i in 0..pairs.len() {
        for j in (i + 1)..pairs.len() {
            if pairs[j].0 - pairs[i].0 > eps {
                break;
            }
            delta = delta.max((pairs[j].1 - pairs[i].1).abs());
        }
    }
    Ok(Some(delta))
}

fn numeric_range(relation: &Relation, col: usize) -> Result<Option<f64>> {
    let nums: Vec<f64> = relation
        .column(col)?
        .iter()
        .filter_map(|v| v.as_f64())
        .collect();
    if nums.is_empty() {
        return Ok(None);
    }
    let lo = nums.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = nums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Ok(Some(hi - lo))
}

/// Discovers informative differential dependencies between continuous
/// attribute pairs.
pub fn discover_dds(relation: &Relation, config: &DdConfig) -> Result<Vec<DifferentialDep>> {
    let ctx = DiscoveryContext::new(relation, ParallelConfig::default());
    discover_dds_with(&ctx, config)
}

/// [`discover_dds`] against a shared [`DiscoveryContext`]: the quadratic
/// ε-window sweeps — the expensive part — fan out over source attributes
/// on the context's thread budget, merged in attribute order so the
/// output is identical to the sequential scan.
pub fn discover_dds_with(
    ctx: &DiscoveryContext<'_>,
    config: &DdConfig,
) -> Result<Vec<DifferentialDep>> {
    let relation = ctx.relation();
    let continuous = relation.schema().indices_of_kind(AttrKind::Continuous);
    // Ranges once per attribute, shared by both loop roles.
    let mut ranges: Vec<(usize, f64)> = Vec::new();
    for &c in &continuous {
        if let Some(range) = numeric_range(relation, c)? {
            if range > 0.0 {
                ranges.push((c, range));
            }
        }
    }

    let per_lhs: Vec<Result<Vec<DifferentialDep>>> =
        ctx.par_map(ranges.clone(), |(lhs, range_x)| {
            let eps = config.eps_fraction * range_x;
            let mut out = Vec::new();
            for &(rhs, range_y) in &ranges {
                if lhs == rhs {
                    continue;
                }
                let Some(delta) = tight_delta(relation, lhs, rhs, eps)? else {
                    continue;
                };
                if delta <= config.delta_fraction * range_y {
                    out.push(DifferentialDep::new(lhs, rhs, eps, delta));
                }
            }
            Ok(out)
        });

    let mut out = Vec::new();
    for found in per_lhs {
        out.extend(found?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datasets::all_classes_spec;
    use mp_relation::{Attribute, Schema};

    fn xy(rows: &[(f64, f64)]) -> Relation {
        let schema =
            Schema::new(vec![Attribute::continuous("x"), Attribute::continuous("y")]).unwrap();
        Relation::from_rows(
            schema,
            rows.iter()
                .map(|&(x, y)| vec![x.into(), y.into()])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn tight_delta_matches_definition() {
        let r = xy(&[(0.0, 0.0), (1.0, 10.0), (2.0, 11.0), (10.0, 0.0)]);
        // eps = 1.5: close pairs (0,1), (1,2) → max |Δy| = 10.
        assert_eq!(tight_delta(&r, 0, 1, 1.5).unwrap(), Some(10.0));
        // eps = 0.5: no close pairs → delta 0.
        assert_eq!(tight_delta(&r, 0, 1, 0.5).unwrap(), Some(0.0));
    }

    #[test]
    fn discovered_dds_hold_and_are_tight() {
        let out = all_classes_spec(200, 12).generate().unwrap();
        let dds = discover_dds(&out.relation, &DdConfig::default()).unwrap();
        // mono(3) is a monotone rescaling of x(2): their DD must be found
        // in both directions.
        assert!(dds.iter().any(|d| d.lhs == 2 && d.rhs == 3));
        assert!(dds.iter().any(|d| d.lhs == 3 && d.rhs == 2));
        for d in &dds {
            assert!(d.holds(&out.relation).unwrap(), "discovered DD must hold");
            // Tightness: shrinking delta below the reported value breaks it
            // (unless delta is 0, i.e. ε-close pairs agree exactly).
            if d.delta_rhs > 0.0 {
                let tighter = DifferentialDep::new(d.lhs, d.rhs, d.eps_lhs, d.delta_rhs * 0.999);
                assert!(!tighter.holds(&out.relation).unwrap());
            }
        }
    }

    #[test]
    fn uncorrelated_pair_rejected() {
        // noisy(6) has ±5 noise on a 100-range x; with delta_fraction tiny
        // the pair is not informative.
        let out = all_classes_spec(300, 13).generate().unwrap();
        let dds = discover_dds(
            &out.relation,
            &DdConfig {
                eps_fraction: 0.05,
                delta_fraction: 0.02,
            },
        )
        .unwrap();
        assert!(!dds.iter().any(|d| d.lhs == 2 && d.rhs == 6));
    }

    #[test]
    fn categorical_attributes_ignored() {
        let out = all_classes_spec(100, 14).generate().unwrap();
        let dds = discover_dds(&out.relation, &DdConfig::default()).unwrap();
        for d in &dds {
            for a in [d.lhs, d.rhs] {
                assert_eq!(
                    out.relation.schema().attribute(a).unwrap().kind,
                    AttrKind::Continuous
                );
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        let r = xy(&[(1.0, 1.0)]);
        assert_eq!(tight_delta(&r, 0, 1, 1.0).unwrap(), None);
        assert!(discover_dds(&r, &DdConfig::default()).unwrap().is_empty());

        // Constant x: zero range → skipped.
        let r = xy(&[(1.0, 1.0), (1.0, 5.0)]);
        assert!(discover_dds(&r, &DdConfig::default())
            .unwrap()
            .iter()
            .all(|d| d.lhs != 0));
    }
}
