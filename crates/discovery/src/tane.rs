//! TANE-style level-wise discovery of (approximate) functional
//! dependencies over stripped partitions.
//!
//! This is the algorithm the paper cites (\[13\], Huhtala et al.) for FD
//! discovery, extended with the `g3`-threshold validity test of \[14\]
//! (Kivinen & Mannila) for approximate FDs as in \[6\]. The lattice is
//! traversed level by level; candidate right-hand sides are pruned with
//! TANE's `C⁺` sets and key pruning.

use mp_metadata::{AttrSet, Fd};
use mp_relation::{Pli, Relation, Result};
use std::collections::HashMap;

/// Limits and thresholds for FD discovery.
#[derive(Debug, Clone)]
pub struct TaneConfig {
    /// Maximum LHS size explored (lattice depth). The paper's evaluation
    /// uses pairwise dependencies, i.e. `max_lhs = 1`; the default explores
    /// composite determinants too.
    pub max_lhs: usize,
    /// `g3` validity threshold: `0.0` discovers exact FDs, a positive value
    /// discovers approximate FDs (AFDs) that hold after removing at most
    /// this fraction of tuples.
    pub g3_threshold: f64,
}

impl Default for TaneConfig {
    fn default() -> Self {
        Self { max_lhs: 3, g3_threshold: 0.0 }
    }
}

/// Bitset over attributes; schemas are capped at 64 attributes, far above
/// the paper-scale relations this workspace targets.
type Bits = u64;

fn bit(a: usize) -> Bits {
    1u64 << a
}

fn set_to_bits(s: &AttrSet) -> Bits {
    s.iter().fold(0, |acc, a| acc | bit(a))
}

/// One lattice node: the attribute set's PLI and its `C⁺` candidate set.
struct Node {
    pli: Pli,
    cplus: Bits,
}

/// Discovers the minimal non-trivial FDs of `relation` with LHS size up to
/// `config.max_lhs`.
///
/// With `g3_threshold = 0` the result is exactly the set of minimal valid
/// FDs (every returned FD holds; every valid FD within the depth bound is
/// implied). With a positive threshold the result is the TANE-approximate
/// generalisation: returned FDs have `g3 ≤ threshold` and no strict subset
/// of their LHS does.
///
/// # Errors
/// Propagates column-access errors; relations wider than 64 attributes are
/// rejected via `RelationError::IndexOutOfBounds`.
pub fn discover_fds(relation: &Relation, config: &TaneConfig) -> Result<Vec<Fd>> {
    let m = relation.arity();
    if m > 64 {
        return Err(mp_relation::RelationError::IndexOutOfBounds { index: m, len: 64 });
    }
    let n = relation.n_rows();
    let all: Bits = if m == 64 { !0 } else { bit(m) - 1 };
    let mut results: Vec<Fd> = Vec::new();
    if m == 0 || n == 0 {
        return Ok(results);
    }

    // Full signatures of single attributes, for g3 checks.
    let mut rhs_sigs: Vec<Vec<usize>> = Vec::with_capacity(m);
    // Level 1 nodes.
    let mut level: HashMap<AttrSet, Node> = HashMap::new();
    for a in 0..m {
        let pli = Pli::from_column(relation.column(a)?);
        rhs_sigs.push(pli.full_signature());
        level.insert(AttrSet::single(a), Node { pli, cplus: all });
    }
    let threshold_violations = (config.g3_threshold * n as f64).floor() as usize;

    // Empty-set partition error, for level-1 validity checks (∅ → A).
    let unit = Pli::unit(n);
    // ∅ → A holds iff column A is constant; handle as level-0 so level-1
    // pruning is correct.
    let mut constant_attrs: Bits = 0;
    for (a, sig) in rhs_sigs.iter().enumerate() {
        if unit.g3_violations(sig) <= threshold_violations {
            results.push(Fd::new(AttrSet::empty(), a));
            constant_attrs |= bit(a);
        }
    }

    // Level ℓ holds attribute sets of size ℓ and tests FDs with LHS size
    // ℓ − 1, so discovering FDs with |LHS| ≤ max_lhs needs ℓ up to
    // max_lhs + 1.
    let mut depth = 1;
    while !level.is_empty() && depth <= config.max_lhs + 1 {
        // Compute dependencies at this level.
        let keys: Vec<AttrSet> = level.keys().cloned().collect();
        for x in &keys {
            // C⁺(X) = ∩_{A∈X} C⁺(X \ {A}) was folded in during generation;
            // at level 1 it is `all` minus constants found at level 0.
            let x_bits = set_to_bits(x);
            let mut cplus = level[x].cplus;
            if depth == 1 {
                cplus &= !constant_attrs;
            }
            // Candidates to test: A ∈ X ∩ C⁺(X).
            for a in x.iter() {
                if cplus & bit(a) == 0 {
                    continue;
                }
                let lhs = x.without(a);
                let violations = if lhs.is_empty() {
                    unit.g3_violations(&rhs_sigs[a])
                } else {
                    lhs_violations(relation, &lhs, &rhs_sigs[a])?
                };
                if violations <= threshold_violations {
                    results.push(Fd::new(lhs, a));
                    // Prune: remove A and all attributes outside X from C⁺(X).
                    cplus &= !bit(a);
                    cplus &= x_bits;
                }
            }
            if let Some(node) = level.get_mut(x) {
                node.cplus = cplus;
            }
        }

        // Key pruning: a (super)key X determines every attribute, so its
        // lattice descendants carry no new minimal FDs. Before dropping X,
        // emit the minimal FDs X → A for outside attributes A still in
        // C⁺(X); X → A is minimal iff no immediate subset of X determines
        // A (monotonicity makes checking immediate subsets sufficient).
        for x in &keys {
            let Some(node) = level.get(x) else { continue };
            if !node.pli.is_key() {
                continue;
            }
            let x_bits = set_to_bits(x);
            let cplus = node.cplus;
            if x.len() <= config.max_lhs {
                let mut a_bits = cplus & !x_bits;
                while a_bits != 0 {
                    let a = a_bits.trailing_zeros() as usize;
                    a_bits &= a_bits - 1;
                    let mut minimal = true;
                    for b in x.iter() {
                        let sub = x.without(b);
                        let v = if sub.is_empty() {
                            unit.g3_violations(&rhs_sigs[a])
                        } else {
                            lhs_violations(relation, &sub, &rhs_sigs[a])?
                        };
                        if v <= threshold_violations {
                            minimal = false;
                            break;
                        }
                    }
                    if minimal {
                        results.push(Fd::new(x.clone(), a));
                    }
                }
            }
            level.remove(x);
        }

        if depth == config.max_lhs + 1 {
            break;
        }
        let mut next: HashMap<AttrSet, Node> = HashMap::new();
        let mut names: Vec<&AttrSet> = level.keys().collect();
        names.sort();
        for i in 0..names.len() {
            for j in (i + 1)..names.len() {
                let (a, b) = (names[i], names[j]);
                // Prefix join: sets must agree on all but their last element.
                if a.indices()[..depth - 1] != b.indices()[..depth - 1] {
                    continue;
                }
                let union = a.union(b);
                if next.contains_key(&union) {
                    continue;
                }
                // All subsets of size `depth` must be present (apriori).
                let mut cplus = level[a].cplus & level[b].cplus;
                let mut ok = true;
                for attr in union.iter() {
                    let sub = union.without(attr);
                    match level.get(&sub) {
                        Some(node) => cplus &= node.cplus,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok || cplus == 0 {
                    continue;
                }
                let pli = level[a].pli.intersect(&level[b].pli);
                next.insert(union, Node { pli, cplus });
            }
        }
        level = next;
        depth += 1;
    }

    Ok(results)
}

/// `g3` violation count of `lhs → rhs` with the LHS partition recomputed
/// from single-column PLIs. LHS sizes are bounded by `max_lhs`, so the
/// intersection chain is short; this avoids keeping two lattice levels
/// alive at once.
fn lhs_violations(relation: &Relation, lhs: &AttrSet, rhs_sig: &[usize]) -> Result<usize> {
    let pli = mp_metadata::pli_of_set(relation, lhs)?;
    Ok(pli.g3_violations(rhs_sig))
}

/// Reference implementation: exhaustive minimal-FD discovery by direct
/// validation of every LHS subset (ascending by size) for every RHS.
/// Exponential; used to cross-check TANE in tests and as the ablation
/// baseline in benches.
pub fn discover_fds_naive(relation: &Relation, max_lhs: usize) -> Result<Vec<Fd>> {
    let m = relation.arity();
    let mut results = Vec::new();
    if m == 0 || relation.n_rows() == 0 {
        return Ok(results);
    }
    let rhs_sigs: Vec<Vec<usize>> = (0..m)
        .map(|a| Ok(Pli::from_column(relation.column(a)?).full_signature()))
        .collect::<Result<_>>()?;

    for (rhs, rhs_sig) in rhs_sigs.iter().enumerate() {
        let mut minimal: Vec<AttrSet> = Vec::new();
        // Enumerate subsets of attributes (excluding rhs) by ascending size.
        let others: Vec<usize> = (0..m).filter(|&a| a != rhs).collect();
        for size in 0..=max_lhs.min(others.len()) {
            for combo in combinations(&others, size) {
                let lhs = AttrSet::from_iter(combo.iter().copied());
                if minimal.iter().any(|s| s.is_subset_of(&lhs)) {
                    continue;
                }
                let pli = mp_metadata::pli_of_set(relation, &lhs)?;
                if pli.satisfies_fd(rhs_sig) {
                    minimal.push(lhs);
                }
            }
        }
        results.extend(minimal.into_iter().map(|lhs| Fd::new(lhs, rhs)));
    }
    Ok(results)
}

/// All `size`-element combinations of `items`.
fn combinations(items: &[usize], size: usize) -> Vec<Vec<usize>> {
    if size == 0 {
        return vec![Vec::new()];
    }
    if size > items.len() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..size).collect();
    loop {
        out.push(idx.iter().map(|&i| items[i]).collect());
        // Advance the combination indices.
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + items.len() - size {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in (i + 1)..size {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datasets::{employee, employee_attrs as ea};
    use mp_relation::{Attribute, Schema, Value};

    fn exact(max_lhs: usize) -> TaneConfig {
        TaneConfig { max_lhs, g3_threshold: 0.0 }
    }

    /// Canonical form for comparing FD sets.
    fn canon(mut fds: Vec<Fd>) -> Vec<(Vec<usize>, usize)> {
        let mut v: Vec<(Vec<usize>, usize)> =
            fds.drain(..).map(|f| (f.lhs.indices().to_vec(), f.rhs)).collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn employee_single_attr_fds() {
        let fds = discover_fds(&employee(), &exact(1)).unwrap();
        // Name is a key: Name → everything.
        for rhs in [ea::AGE, ea::DEPARTMENT, ea::SALARY] {
            assert!(fds.iter().any(|f| f.lhs == AttrSet::single(ea::NAME) && f.rhs == rhs));
        }
        // Salary is unique too: Salary → everything.
        assert!(fds.iter().any(|f| f.lhs == AttrSet::single(ea::SALARY) && f.rhs == ea::AGE));
        // Age does NOT determine Salary.
        assert!(!fds.iter().any(|f| f.lhs == AttrSet::single(ea::AGE) && f.rhs == ea::SALARY));
        // Every discovered FD actually holds.
        for f in &fds {
            assert!(f.holds(&employee()).unwrap(), "discovered FD must hold");
        }
    }

    #[test]
    fn tane_matches_naive_on_employee() {
        let r = employee();
        for depth in 1..=3 {
            let tane = canon(discover_fds(&r, &exact(depth)).unwrap());
            let naive = canon(discover_fds_naive(&r, depth).unwrap());
            assert_eq!(tane, naive, "depth {depth}");
        }
    }

    #[test]
    fn tane_matches_naive_on_synthetic() {
        for seed in [3u64, 17] {
            let out = mp_datasets::all_classes_spec(80, seed).generate().unwrap();
            let tane = canon(discover_fds(&out.relation, &exact(2)).unwrap());
            let naive = canon(discover_fds_naive(&out.relation, 2).unwrap());
            assert_eq!(tane, naive, "seed {seed}");
        }
    }

    #[test]
    fn discovers_planted_fd() {
        let out = mp_datasets::all_classes_spec(300, 9).generate().unwrap();
        let fds = discover_fds(&out.relation, &exact(1)).unwrap();
        // Planted: base(0) → fd_child(1).
        assert!(fds.iter().any(|f| f.lhs == AttrSet::single(0) && f.rhs == 1));
    }

    #[test]
    fn constant_column_yields_empty_lhs_fd() {
        let schema = Schema::new(vec![
            Attribute::categorical("k"),
            Attribute::categorical("c"),
        ])
        .unwrap();
        let r = Relation::from_rows(
            schema,
            vec![
                vec!["a".into(), "z".into()],
                vec!["b".into(), "z".into()],
            ],
        )
        .unwrap();
        let fds = discover_fds(&r, &exact(2)).unwrap();
        assert!(fds.iter().any(|f| f.lhs.is_empty() && f.rhs == 1));
        // And no non-minimal {0} → 1 is emitted.
        assert!(!fds.iter().any(|f| f.lhs == AttrSet::single(0) && f.rhs == 1));
    }

    #[test]
    fn approximate_discovery_relaxes() {
        let out = mp_datasets::all_classes_spec(400, 21).generate().unwrap();
        // afd_child(5) is a 5%-perturbed function of base(0): exact TANE
        // must not find 0 → 5, approximate TANE (10%) must.
        let exact_fds = discover_fds(&out.relation, &exact(1)).unwrap();
        assert!(!exact_fds.iter().any(|f| f.lhs == AttrSet::single(0) && f.rhs == 5));
        let approx = discover_fds(
            &out.relation,
            &TaneConfig { max_lhs: 1, g3_threshold: 0.10 },
        )
        .unwrap();
        assert!(approx.iter().any(|f| f.lhs == AttrSet::single(0) && f.rhs == 5));
    }

    #[test]
    fn empty_and_degenerate_relations() {
        let schema = Schema::new(vec![Attribute::categorical("a")]).unwrap();
        let empty = Relation::empty(schema.clone());
        assert!(discover_fds(&empty, &exact(2)).unwrap().is_empty());

        let single = Relation::from_rows(schema, vec![vec![Value::Null]]).unwrap();
        let fds = discover_fds(&single, &exact(1)).unwrap();
        // One row: the column is constant → ∅ → 0.
        assert!(fds.iter().any(|f| f.lhs.is_empty() && f.rhs == 0));
    }

    #[test]
    fn composite_lhs_found_when_needed() {
        // c = f(a, b) but neither a nor b alone determines c.
        let schema = Schema::new(vec![
            Attribute::categorical("a"),
            Attribute::categorical("b"),
            Attribute::categorical("c"),
        ])
        .unwrap();
        let rows = vec![
            vec!["a0".into(), "b0".into(), "x".into()],
            vec!["a0".into(), "b1".into(), "y".into()],
            vec!["a1".into(), "b0".into(), "y".into()],
            vec!["a1".into(), "b1".into(), "x".into()],
            // duplicates so nothing is spuriously a key
            vec!["a0".into(), "b0".into(), "x".into()],
            vec!["a1".into(), "b1".into(), "x".into()],
        ];
        let r = Relation::from_rows(schema, rows).unwrap();
        let fds = discover_fds(&r, &exact(2)).unwrap();
        assert!(fds
            .iter()
            .any(|f| f.lhs == AttrSet::from_iter([0, 1]) && f.rhs == 2));
        assert!(!fds.iter().any(|f| f.lhs == AttrSet::single(0) && f.rhs == 2));
        assert!(!fds.iter().any(|f| f.lhs == AttrSet::single(1) && f.rhs == 2));
    }

    #[test]
    fn max_lhs_bounds_depth() {
        let out = mp_datasets::all_classes_spec(100, 2).generate().unwrap();
        let fds = discover_fds(&out.relation, &exact(2)).unwrap();
        assert!(fds.iter().all(|f| f.lhs.len() <= 2));
    }

    #[test]
    fn combinations_enumerate_correctly() {
        let c = combinations(&[1, 2, 3, 4], 2);
        assert_eq!(c.len(), 6);
        assert!(c.contains(&vec![1, 4]));
        assert_eq!(combinations(&[1, 2], 3), Vec::<Vec<usize>>::new());
        assert_eq!(combinations(&[1, 2], 0), vec![Vec::<usize>::new()]);
    }
}
