//! TANE-style level-wise discovery of (approximate) functional
//! dependencies over stripped partitions.
//!
//! This is the algorithm the paper cites (\[13\], Huhtala et al.) for FD
//! discovery, extended with the `g3`-threshold validity test of \[14\]
//! (Kivinen & Mannila) for approximate FDs as in \[6\]. The lattice is
//! traversed level by level; candidate right-hand sides are pruned with
//! TANE's `C⁺` sets and key pruning.

use crate::engine::{DiscoveryContext, ParallelConfig};
use mp_metadata::{AttrSet, Fd};
use mp_relation::{Pli, Relation, Result};
use std::collections::{HashMap, HashSet};

/// Limits and thresholds for FD discovery.
#[derive(Debug, Clone)]
pub struct TaneConfig {
    /// Maximum LHS size explored (lattice depth). The paper's evaluation
    /// uses pairwise dependencies, i.e. `max_lhs = 1`; the default explores
    /// composite determinants too.
    pub max_lhs: usize,
    /// `g3` validity threshold: `0.0` discovers exact FDs, a positive value
    /// discovers approximate FDs (AFDs) that hold after removing at most
    /// this fraction of tuples.
    pub g3_threshold: f64,
    /// Thread and PLI-cache budget. Only consulted by [`discover_fds`],
    /// which builds a private [`DiscoveryContext`] from it;
    /// [`discover_fds_with`] uses the budget of the context it is given.
    pub parallel: ParallelConfig,
}

impl Default for TaneConfig {
    fn default() -> Self {
        Self {
            max_lhs: 3,
            g3_threshold: 0.0,
            parallel: ParallelConfig::default(),
        }
    }
}

/// Bitset over attributes; schemas are capped at 64 attributes, far above
/// the paper-scale relations this workspace targets.
type Bits = u64;

fn bit(a: usize) -> Bits {
    1u64 << a
}

fn set_to_bits(s: &AttrSet) -> Bits {
    s.iter().fold(0, |acc, a| acc | bit(a))
}

/// One lattice node: its `C⁺` candidate set plus the only fact the
/// traversal needs from the set's partition — whether it is a superkey.
///
/// Deliberately does *not* pin an `Arc<Pli>`: partitions live solely in
/// the context's (byte-budgeted) cache, so a whole lattice level retains
/// a few machine words per node instead of `O(n_rows)` each. Under
/// memory pressure the cache spills partitions and the memoized
/// intersection chain rebuilds them on demand — that spill/rebuild is
/// what keeps million-row traversals inside a fixed [`MemoryBudget`]
/// (`crate::MemoryBudget`).
struct Node {
    is_key: bool,
    cplus: Bits,
}

/// Discovers the minimal non-trivial FDs of `relation` with LHS size up to
/// `config.max_lhs`.
///
/// With `g3_threshold = 0` the result is exactly the set of minimal valid
/// FDs (every returned FD holds; every valid FD within the depth bound is
/// implied). With a positive threshold the result is the TANE-approximate
/// generalisation: returned FDs have `g3 ≤ threshold` and no strict subset
/// of their LHS does.
///
/// Builds a private [`DiscoveryContext`] from `config.parallel`; to share
/// one PLI cache across several discovery calls, use
/// [`discover_fds_with`].
///
/// # Errors
/// Propagates column-access errors; relations wider than 64 attributes are
/// rejected via `RelationError::IndexOutOfBounds`.
pub fn discover_fds(relation: &Relation, config: &TaneConfig) -> Result<Vec<Fd>> {
    let ctx = DiscoveryContext::new(relation, config.parallel);
    discover_fds_with(&ctx, config)
}

/// [`discover_fds`] against a caller-supplied [`DiscoveryContext`]: the
/// context's PLI cache memoizes every LHS partition the lattice touches
/// (so a later pass — the approximate sweep, ND discovery, a repeated
/// run — reuses them), and each lattice level's candidate tests, key
/// minimality checks and child-PLI constructions are evaluated on the
/// context's thread budget. The result is identical to the sequential
/// traversal for every thread count and cache capacity: nodes are
/// processed in sorted attribute-set order and merged sequentially.
pub fn discover_fds_with(ctx: &DiscoveryContext<'_>, config: &TaneConfig) -> Result<Vec<Fd>> {
    let relation = ctx.relation();
    let m = relation.arity();
    if m > 64 {
        return Err(mp_relation::RelationError::IndexOutOfBounds { index: m, len: 64 });
    }
    let n = relation.n_rows();
    let all: Bits = if m == 64 { !0 } else { bit(m) - 1 };
    let mut results: Vec<Fd> = Vec::new();
    if m == 0 || n == 0 {
        return Ok(results);
    }

    // Full signatures of single attributes, for g3 checks.
    let mut rhs_sigs: Vec<Vec<usize>> = Vec::with_capacity(m);
    // Level 1 nodes.
    // lint: allow(no-unordered-iteration) reason="level keys are collected and sorted before every traversal below"
    let mut level: HashMap<AttrSet, Node> = HashMap::new();
    for a in 0..m {
        let pli = ctx.pli_of_single(a)?;
        rhs_sigs.push(pli.full_signature());
        level.insert(
            AttrSet::single(a),
            Node {
                is_key: pli.is_key(),
                cplus: all,
            },
        );
    }
    let threshold_violations = (config.g3_threshold * n as f64).floor() as usize;

    // Lattice-shape metrics: width of each level and total candidate FD
    // tests. Both are functions of the input alone (independent of thread
    // count and cache capacity), so they are safe for golden snapshots.
    let level_width = ctx.recorder().histogram(
        "discovery.lattice.level_width",
        &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
    );
    let candidates_tested = ctx.recorder().counter("discovery.candidates.tested");

    // Empty-set partition error, for level-1 validity checks (∅ → A).
    let unit = Pli::unit(n);
    // ∅ → A holds iff column A is constant; handle as level-0 so level-1
    // pruning is correct.
    let mut constant_attrs: Bits = 0;
    for (a, sig) in rhs_sigs.iter().enumerate() {
        if unit.g3_violations(sig) <= threshold_violations {
            results.push(Fd::new(AttrSet::empty(), a));
            constant_attrs |= bit(a);
        }
    }

    // Level ℓ holds attribute sets of size ℓ and tests FDs with LHS size
    // ℓ − 1, so discovering FDs with |LHS| ≤ max_lhs needs ℓ up to
    // max_lhs + 1.
    let mut depth = 1;
    while !level.is_empty() && depth <= config.max_lhs + 1 {
        // Nodes are processed in sorted order and merged sequentially, so
        // the discovered set (and its order) is independent of both hash
        // iteration order and the thread count.
        let mut keys: Vec<AttrSet> = level.keys().cloned().collect();
        keys.sort();
        level_width.record(keys.len() as u64);

        // Phase 1 — candidate tests, in parallel over lattice nodes. Each
        // node's test reads only its own `C⁺` and the shared PLI cache.
        let tested: Vec<Result<(Bits, Vec<Fd>)>> = ctx.par_map(keys.clone(), |x| {
            // C⁺(X) = ∩_{A∈X} C⁺(X \ {A}) was folded in during generation;
            // at level 1 it is `all` minus constants found at level 0.
            let x_bits = set_to_bits(&x);
            let mut cplus = level[&x].cplus;
            if depth == 1 {
                cplus &= !constant_attrs;
            }
            let mut found = Vec::new();
            // Candidates to test: A ∈ X ∩ C⁺(X).
            for a in x.iter() {
                if cplus & bit(a) == 0 {
                    continue;
                }
                candidates_tested.inc();
                let lhs = x.without(a);
                let violations = if lhs.is_empty() {
                    unit.g3_violations(&rhs_sigs[a])
                } else {
                    ctx.lhs_violations(&lhs, &rhs_sigs[a])?
                };
                if violations <= threshold_violations {
                    found.push(Fd::new(lhs, a));
                    // Prune: remove A and all attributes outside X from C⁺(X).
                    cplus &= !bit(a);
                    cplus &= x_bits;
                }
            }
            Ok((cplus, found))
        });
        for (x, outcome) in keys.iter().zip(tested) {
            let (cplus, found) = outcome?;
            results.extend(found);
            if let Some(node) = level.get_mut(x) {
                node.cplus = cplus;
            }
        }

        // Phase 2 — key pruning: a (super)key X determines every
        // attribute, so its lattice descendants carry no new minimal FDs.
        // Before dropping X, emit the minimal FDs X → A for outside
        // attributes A still in C⁺(X); X → A is minimal iff no immediate
        // subset of X determines A (monotonicity makes checking immediate
        // subsets sufficient). The per-key minimality checks are
        // independent, so they too run on the thread budget.
        let pruned: Vec<Result<Option<Vec<Fd>>>> = ctx.par_map(keys.clone(), |x| {
            let node = &level[&x];
            if !node.is_key {
                return Ok(None);
            }
            let x_bits = set_to_bits(&x);
            let cplus = node.cplus;
            let mut emitted = Vec::new();
            if x.len() <= config.max_lhs {
                let mut a_bits = cplus & !x_bits;
                while a_bits != 0 {
                    let a = a_bits.trailing_zeros() as usize;
                    a_bits &= a_bits - 1;
                    let mut minimal = true;
                    for b in x.iter() {
                        let sub = x.without(b);
                        let v = if sub.is_empty() {
                            unit.g3_violations(&rhs_sigs[a])
                        } else {
                            ctx.lhs_violations(&sub, &rhs_sigs[a])?
                        };
                        if v <= threshold_violations {
                            minimal = false;
                            break;
                        }
                    }
                    if minimal {
                        emitted.push(Fd::new(x.clone(), a));
                    }
                }
            }
            Ok(Some(emitted))
        });
        for (x, outcome) in keys.iter().zip(pruned) {
            if let Some(emitted) = outcome? {
                results.extend(emitted);
                level.remove(x);
            }
        }

        if depth == config.max_lhs + 1 {
            break;
        }

        // Phase 3 — generate the next level. The prefix joins and C⁺
        // intersections are cheap bit work (sequential); the child PLIs —
        // the expensive part — are built in parallel through the cache,
        // which turns each into a single intersection with the memoized
        // parent partition.
        let mut names: Vec<&AttrSet> = level.keys().collect();
        names.sort();
        let mut joins: Vec<(AttrSet, Bits)> = Vec::new();
        let mut seen: HashSet<AttrSet> = HashSet::new();
        for i in 0..names.len() {
            for j in (i + 1)..names.len() {
                let (a, b) = (names[i], names[j]);
                // Prefix join: sets must agree on all but their last element.
                if a.indices()[..depth - 1] != b.indices()[..depth - 1] {
                    continue;
                }
                let union = a.union(b);
                if seen.contains(&union) {
                    continue;
                }
                // All subsets of size `depth` must be present (apriori).
                let mut cplus = level[a].cplus & level[b].cplus;
                let mut ok = true;
                for attr in union.iter() {
                    let sub = union.without(attr);
                    match level.get(&sub) {
                        Some(node) => cplus &= node.cplus,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok || cplus == 0 {
                    continue;
                }
                seen.insert(union.clone());
                joins.push((union, cplus));
            }
        }
        let sets: Vec<AttrSet> = joins.iter().map(|(u, _)| u.clone()).collect();
        // Only keyness is kept; the partitions themselves stay behind in
        // the cache (or are dropped, if the memory budget spilled them).
        let keyness: Vec<Result<bool>> = ctx.par_map(sets, |u| ctx.pli_of(&u).map(|p| p.is_key()));
        let mut next: HashMap<AttrSet, Node> = HashMap::new();
        for ((union, cplus), is_key) in joins.into_iter().zip(keyness) {
            next.insert(
                union,
                Node {
                    is_key: is_key?,
                    cplus,
                },
            );
        }
        level = next;
        depth += 1;
    }

    Ok(results)
}

/// Reference implementation: exhaustive minimal-FD discovery by direct
/// validation of every LHS subset (ascending by size) for every RHS.
/// Exponential; used to cross-check TANE in tests and as the ablation
/// baseline in benches.
pub fn discover_fds_naive(relation: &Relation, max_lhs: usize) -> Result<Vec<Fd>> {
    let m = relation.arity();
    let mut results = Vec::new();
    if m == 0 || relation.n_rows() == 0 {
        return Ok(results);
    }
    let rhs_sigs: Vec<Vec<usize>> = (0..m)
        .map(|a| Ok(Pli::from_typed(relation.column(a)?).full_signature()))
        .collect::<Result<_>>()?;

    for (rhs, rhs_sig) in rhs_sigs.iter().enumerate() {
        let mut minimal: Vec<AttrSet> = Vec::new();
        // Enumerate subsets of attributes (excluding rhs) by ascending size.
        let others: Vec<usize> = (0..m).filter(|&a| a != rhs).collect();
        for size in 0..=max_lhs.min(others.len()) {
            for combo in combinations(&others, size) {
                let lhs = AttrSet::from_iter(combo.iter().copied());
                if minimal.iter().any(|s| s.is_subset_of(&lhs)) {
                    continue;
                }
                let pli = mp_metadata::pli_of_set(relation, &lhs)?;
                if pli.satisfies_fd(rhs_sig) {
                    minimal.push(lhs);
                }
            }
        }
        results.extend(minimal.into_iter().map(|lhs| Fd::new(lhs, rhs)));
    }
    Ok(results)
}

/// All `size`-element combinations of `items`.
fn combinations(items: &[usize], size: usize) -> Vec<Vec<usize>> {
    if size == 0 {
        return vec![Vec::new()];
    }
    if size > items.len() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..size).collect();
    loop {
        out.push(idx.iter().map(|&i| items[i]).collect());
        // Advance the combination indices.
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + items.len() - size {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in (i + 1)..size {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datasets::{employee, employee_attrs as ea};
    use mp_relation::{Attribute, Schema, Value};

    fn exact(max_lhs: usize) -> TaneConfig {
        TaneConfig {
            max_lhs,
            g3_threshold: 0.0,
            ..TaneConfig::default()
        }
    }

    /// Canonical form for comparing FD sets.
    fn canon(mut fds: Vec<Fd>) -> Vec<(Vec<usize>, usize)> {
        let mut v: Vec<(Vec<usize>, usize)> = fds
            .drain(..)
            .map(|f| (f.lhs.indices().to_vec(), f.rhs))
            .collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn employee_single_attr_fds() {
        let fds = discover_fds(&employee(), &exact(1)).unwrap();
        // Name is a key: Name → everything.
        for rhs in [ea::AGE, ea::DEPARTMENT, ea::SALARY] {
            assert!(fds
                .iter()
                .any(|f| f.lhs == AttrSet::single(ea::NAME) && f.rhs == rhs));
        }
        // Salary is unique too: Salary → everything.
        assert!(fds
            .iter()
            .any(|f| f.lhs == AttrSet::single(ea::SALARY) && f.rhs == ea::AGE));
        // Age does NOT determine Salary.
        assert!(!fds
            .iter()
            .any(|f| f.lhs == AttrSet::single(ea::AGE) && f.rhs == ea::SALARY));
        // Every discovered FD actually holds.
        for f in &fds {
            assert!(f.holds(&employee()).unwrap(), "discovered FD must hold");
        }
    }

    #[test]
    fn tane_matches_naive_on_employee() {
        let r = employee();
        for depth in 1..=3 {
            let tane = canon(discover_fds(&r, &exact(depth)).unwrap());
            let naive = canon(discover_fds_naive(&r, depth).unwrap());
            assert_eq!(tane, naive, "depth {depth}");
        }
    }

    #[test]
    fn tane_matches_naive_on_synthetic() {
        for seed in [3u64, 17] {
            let out = mp_datasets::all_classes_spec(80, seed).generate().unwrap();
            let tane = canon(discover_fds(&out.relation, &exact(2)).unwrap());
            let naive = canon(discover_fds_naive(&out.relation, 2).unwrap());
            assert_eq!(tane, naive, "seed {seed}");
        }
    }

    #[test]
    fn discovers_planted_fd() {
        let out = mp_datasets::all_classes_spec(300, 9).generate().unwrap();
        let fds = discover_fds(&out.relation, &exact(1)).unwrap();
        // Planted: base(0) → fd_child(1).
        assert!(fds
            .iter()
            .any(|f| f.lhs == AttrSet::single(0) && f.rhs == 1));
    }

    #[test]
    fn constant_column_yields_empty_lhs_fd() {
        let schema = Schema::new(vec![
            Attribute::categorical("k"),
            Attribute::categorical("c"),
        ])
        .unwrap();
        let r = Relation::from_rows(
            schema,
            vec![vec!["a".into(), "z".into()], vec!["b".into(), "z".into()]],
        )
        .unwrap();
        let fds = discover_fds(&r, &exact(2)).unwrap();
        assert!(fds.iter().any(|f| f.lhs.is_empty() && f.rhs == 1));
        // And no non-minimal {0} → 1 is emitted.
        assert!(!fds
            .iter()
            .any(|f| f.lhs == AttrSet::single(0) && f.rhs == 1));
    }

    #[test]
    fn approximate_discovery_relaxes() {
        let out = mp_datasets::all_classes_spec(400, 21).generate().unwrap();
        // afd_child(5) is a 5%-perturbed function of base(0): exact TANE
        // must not find 0 → 5, approximate TANE (10%) must.
        let exact_fds = discover_fds(&out.relation, &exact(1)).unwrap();
        assert!(!exact_fds
            .iter()
            .any(|f| f.lhs == AttrSet::single(0) && f.rhs == 5));
        let approx = discover_fds(
            &out.relation,
            &TaneConfig {
                max_lhs: 1,
                g3_threshold: 0.10,
                ..TaneConfig::default()
            },
        )
        .unwrap();
        assert!(approx
            .iter()
            .any(|f| f.lhs == AttrSet::single(0) && f.rhs == 5));
    }

    #[test]
    fn empty_and_degenerate_relations() {
        let schema = Schema::new(vec![Attribute::categorical("a")]).unwrap();
        let empty = Relation::empty(schema.clone());
        assert!(discover_fds(&empty, &exact(2)).unwrap().is_empty());

        let single = Relation::from_rows(schema, vec![vec![Value::Null]]).unwrap();
        let fds = discover_fds(&single, &exact(1)).unwrap();
        // One row: the column is constant → ∅ → 0.
        assert!(fds.iter().any(|f| f.lhs.is_empty() && f.rhs == 0));
    }

    #[test]
    fn composite_lhs_found_when_needed() {
        // c = f(a, b) but neither a nor b alone determines c.
        let schema = Schema::new(vec![
            Attribute::categorical("a"),
            Attribute::categorical("b"),
            Attribute::categorical("c"),
        ])
        .unwrap();
        let rows = vec![
            vec!["a0".into(), "b0".into(), "x".into()],
            vec!["a0".into(), "b1".into(), "y".into()],
            vec!["a1".into(), "b0".into(), "y".into()],
            vec!["a1".into(), "b1".into(), "x".into()],
            // duplicates so nothing is spuriously a key
            vec!["a0".into(), "b0".into(), "x".into()],
            vec!["a1".into(), "b1".into(), "x".into()],
        ];
        let r = Relation::from_rows(schema, rows).unwrap();
        let fds = discover_fds(&r, &exact(2)).unwrap();
        assert!(fds
            .iter()
            .any(|f| f.lhs == AttrSet::from_iter([0, 1]) && f.rhs == 2));
        assert!(!fds
            .iter()
            .any(|f| f.lhs == AttrSet::single(0) && f.rhs == 2));
        assert!(!fds
            .iter()
            .any(|f| f.lhs == AttrSet::single(1) && f.rhs == 2));
    }

    #[test]
    fn max_lhs_bounds_depth() {
        let out = mp_datasets::all_classes_spec(100, 2).generate().unwrap();
        let fds = discover_fds(&out.relation, &exact(2)).unwrap();
        assert!(fds.iter().all(|f| f.lhs.len() <= 2));
    }

    #[test]
    fn output_is_identical_across_thread_and_cache_budgets() {
        let out = mp_datasets::all_classes_spec(150, 41).generate().unwrap();
        let reference = discover_fds(
            &out.relation,
            &TaneConfig {
                max_lhs: 2,
                g3_threshold: 0.0,
                parallel: ParallelConfig::sequential(),
            },
        )
        .unwrap();
        for parallel in [
            ParallelConfig::default(),
            ParallelConfig {
                threads: 4,
                cache_capacity: 4096,
                ..ParallelConfig::default()
            },
            ParallelConfig {
                threads: 3,
                cache_capacity: 8,
                ..ParallelConfig::default()
            },
            ParallelConfig::uncached(4),
            ParallelConfig::uncached(1),
            // Forced sharded single-column builds.
            ParallelConfig {
                threads: 4,
                pli_shards: 7,
                ..ParallelConfig::default()
            },
            // Starved byte budget: every level spills and rebuilds.
            ParallelConfig {
                threads: 2,
                cache_budget_bytes: 512,
                ..ParallelConfig::default()
            },
            // Byte budget of a single small partition.
            ParallelConfig {
                threads: 1,
                cache_budget_bytes: 4096,
                pli_shards: 3,
                ..ParallelConfig::default()
            },
        ] {
            let got = discover_fds(
                &out.relation,
                &TaneConfig {
                    max_lhs: 2,
                    g3_threshold: 0.0,
                    parallel,
                },
            )
            .unwrap();
            // Not just the same set: the same Vec, element for element.
            assert_eq!(got, reference, "{parallel:?}");
        }
    }

    #[test]
    fn shared_context_reuses_partitions_across_calls() {
        let r = employee();
        let ctx = DiscoveryContext::new(&r, ParallelConfig::default());
        let first = discover_fds_with(&ctx, &exact(2)).unwrap();
        let misses_after_first = ctx.cache_stats().misses;
        let second = discover_fds_with(&ctx, &exact(2)).unwrap();
        assert_eq!(first, second);
        // The repeat run finds every partition it needs in the cache.
        assert_eq!(ctx.cache_stats().misses, misses_after_first);
        assert!(ctx.cache_stats().hits > 0);
    }

    #[test]
    fn combinations_enumerate_correctly() {
        let c = combinations(&[1, 2, 3, 4], 2);
        assert_eq!(c.len(), 6);
        assert!(c.contains(&vec![1, 4]));
        assert_eq!(combinations(&[1, 2], 3), Vec::<Vec<usize>>::new());
        assert_eq!(combinations(&[1, 2], 0), vec![Vec::<usize>::new()]);
    }
}
