//! The shared discovery engine: one PLI cache + one thread budget for
//! every discovery pass over a relation.
//!
//! All dependency classes the paper profiles reduce their data access to
//! stripped partitions: TANE intersects them up the lattice, `g3` checks
//! recompute LHS partitions, ND fanout bounds group by the LHS partition.
//! A [`DiscoveryContext`] binds a relation to a [`PliCache`] so every
//! pass — and every level and thread within a pass — shares the
//! partitions already built, and to a [`ParallelConfig`] so passes fan
//! candidate evaluation out over scoped worker threads.

use mp_metadata::AttrSet;
use mp_observe::{Counter, NoopRecorder, Recorder};
use mp_relation::{par, Pli, PliCache, PliCacheStats, Relation, Result};
use std::sync::Arc;

/// Thread and cache budget for a discovery run.
///
/// `threads == 0` means "use the machine's available parallelism";
/// `threads == 1` forces fully sequential evaluation. `cache_capacity`
/// bounds the number of memoized partitions: each resident entry costs
/// `O(n_rows)` memory, so the cache's footprint is at most
/// `cache_capacity × O(n_rows)` regardless of lattice size;
/// `cache_capacity == 0` disables memoization entirely (the ablation
/// baseline — every partition is rebuilt on demand).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads for candidate evaluation (`0` = auto-detect).
    pub threads: usize,
    /// Maximum number of memoized partitions (`0` = no caching).
    pub cache_capacity: usize,
    /// Radix shards for single-column PLI construction (`0` = auto:
    /// sharded on large relations, single-pass on small ones; `1` =
    /// always single-pass).
    pub pli_shards: usize,
    /// Byte budget for memoized partitions (`0` = unlimited): the cache
    /// evicts by estimated retained heap ([`Pli::heap_bytes`]) on top of
    /// the entry-count bound. Usually set via [`MemoryBudget`] and
    /// [`DiscoveryContext::with_budget`].
    pub cache_budget_bytes: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            cache_capacity: 4096,
            pli_shards: 0,
            cache_budget_bytes: 0,
        }
    }
}

impl ParallelConfig {
    /// Fully sequential, cache on: the reference configuration whose
    /// output every parallel configuration must reproduce.
    pub fn sequential() -> Self {
        Self {
            threads: 1,
            cache_capacity: 4096,
            pli_shards: 1,
            cache_budget_bytes: 0,
        }
    }

    /// Cache off, threads as configured: the ablation baseline.
    pub fn uncached(threads: usize) -> Self {
        Self {
            threads,
            cache_capacity: 0,
            ..Self::default()
        }
    }

    /// The resolved worker count (`threads == 0` → machine parallelism).
    pub fn effective_threads(&self) -> usize {
        par::effective_threads(self.threads)
    }
}

/// Rows below which auto shard resolution stays single-pass: sharding
/// overhead (per-shard counting scans) only pays off once the scatter
/// phase dominates.
const AUTO_SHARD_MIN_ROWS: usize = 65_536;

/// Upper bound on auto-resolved shards; beyond this the per-shard
/// counting scans outweigh the extra parallelism.
const AUTO_SHARD_MAX: usize = 16;

/// A memory budget for discovery, in bytes of estimated retained
/// partition heap (`0` = unlimited).
///
/// Threaded through [`DiscoveryContext::with_budget`], it sizes the
/// [`PliCache`] by *bytes* rather than entry count: partitions the budget
/// cannot hold are evicted (LRU) or bypass the cache, and the lattice
/// traversal rebuilds them on demand through the memoized intersection
/// chain. Pressure is observable as `pli_cache.budget_evictions`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemoryBudget {
    bytes: usize,
}

impl MemoryBudget {
    /// No limit: the cache is bounded by entry count alone.
    pub fn unlimited() -> Self {
        Self { bytes: 0 }
    }

    /// A budget of `mb` mebibytes (`0` = unlimited).
    pub fn from_mb(mb: usize) -> Self {
        Self {
            bytes: mb.saturating_mul(1024 * 1024),
        }
    }

    /// A budget of exactly `bytes` bytes (`0` = unlimited).
    pub fn from_bytes(bytes: usize) -> Self {
        Self { bytes }
    }

    /// The budget in bytes (`0` = unlimited).
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// `true` when no byte bound applies.
    pub fn is_unlimited(&self) -> bool {
        self.bytes == 0
    }
}

/// A relation bound to a shared partition cache and a thread budget.
///
/// Create one context per relation and pass it to the `*_with` discovery
/// entry points ([`discover_fds_with`](crate::discover_fds_with),
/// [`DependencyProfile::discover_with`](crate::DependencyProfile::discover_with),
/// …) to share partitions across passes; the plain entry points create a
/// private context per call. The context is `Sync`: worker threads
/// spawned by a pass borrow it concurrently.
pub struct DiscoveryContext<'r> {
    relation: &'r Relation,
    cache: PliCache,
    parallel: ParallelConfig,
    recorder: Arc<dyn Recorder>,
    /// Resolved once at construction; bumped (with a 1-unit clock
    /// advance) for every partition actually materialised.
    pli_builds: Counter,
    /// Single-column partitions built through the sharded path.
    sharded_builds: Counter,
}

impl<'r> DiscoveryContext<'r> {
    /// Binds `relation` to a fresh cache sized by `parallel`.
    ///
    /// Relations wider than 64 attributes cannot be keyed by a `u64`
    /// bitset; their context degrades to an always-miss cache (capacity
    /// forced to 0) and discovery still works, just without memoization.
    pub fn new(relation: &'r Relation, parallel: ParallelConfig) -> Self {
        Self::instrumented(relation, parallel, Arc::new(NoopRecorder))
    }

    /// [`new`](Self::new) under a [`MemoryBudget`]: the budget (when
    /// limited) overrides `parallel.cache_budget_bytes`, bounding the
    /// partition cache by estimated retained heap bytes.
    pub fn with_budget(
        relation: &'r Relation,
        parallel: ParallelConfig,
        budget: MemoryBudget,
    ) -> Self {
        Self::instrumented_with_budget(relation, parallel, budget, Arc::new(NoopRecorder))
    }

    /// [`instrumented`](Self::instrumented) under a [`MemoryBudget`].
    pub fn instrumented_with_budget(
        relation: &'r Relation,
        mut parallel: ParallelConfig,
        budget: MemoryBudget,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        if !budget.is_unlimited() {
            parallel.cache_budget_bytes = budget.bytes();
        }
        Self::instrumented(relation, parallel, recorder)
    }

    /// [`new`](Self::new) with an explicit [`Recorder`]. The context
    /// registers `pli_cache.*` counters and `discovery.pli.builds`, and
    /// advances the recorder's logical clock by one unit per partition it
    /// materialises — which is what gives the per-pass spans recorded by
    /// the profiler their (deterministic) durations.
    pub fn instrumented(
        relation: &'r Relation,
        parallel: ParallelConfig,
        recorder: Arc<dyn Recorder>,
    ) -> Self {
        let capacity = if relation.arity() > 64 {
            0
        } else {
            parallel.cache_capacity
        };
        DiscoveryContext {
            relation,
            cache: PliCache::with_recorder_and_budget(
                capacity,
                parallel.cache_budget_bytes,
                recorder.as_ref(),
            ),
            parallel,
            pli_builds: recorder.counter("discovery.pli.builds"),
            sharded_builds: recorder.counter("discovery.pli.sharded_builds"),
            recorder,
        }
    }

    /// The recorder this context reports to (a [`NoopRecorder`] unless
    /// built via [`instrumented`](Self::instrumented)).
    pub fn recorder(&self) -> &dyn Recorder {
        self.recorder.as_ref()
    }

    /// Counts one materialised partition: bumps `discovery.pli.builds`
    /// and advances the logical clock one work unit.
    fn note_build(&self) {
        self.pli_builds.inc();
        self.recorder.advance(1);
    }

    /// The bound relation.
    pub fn relation(&self) -> &'r Relation {
        self.relation
    }

    /// The configured budget.
    pub fn parallel(&self) -> &ParallelConfig {
        &self.parallel
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.parallel.effective_threads()
    }

    /// Snapshot of the shared cache's counters.
    pub fn cache_stats(&self) -> PliCacheStats {
        self.cache.stats()
    }

    /// Order-preserving parallel map on this context's thread budget.
    pub fn par_map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        par::par_map(items, self.parallel.threads, f)
    }

    /// The resolved radix shard count for single-column PLI builds:
    /// explicit when `parallel.pli_shards > 0`, otherwise sharded across
    /// the thread budget on relations large enough to amortise the
    /// per-shard scans.
    pub fn pli_shards(&self) -> usize {
        if self.parallel.pli_shards > 0 {
            self.parallel.pli_shards
        } else if self.relation.n_rows() >= AUTO_SHARD_MIN_ROWS {
            self.parallel.effective_threads().min(AUTO_SHARD_MAX)
        } else {
            1
        }
    }

    /// The single-attribute partition `Π_{a}`, memoized. Built through
    /// the radix-sharded path when [`pli_shards`](Self::pli_shards)
    /// resolves above 1 — bit-identical output either way.
    pub fn pli_of_single(&self, attr: usize) -> Result<Arc<Pli>> {
        let key = 1u64 << (attr.min(63));
        if self.cacheable() {
            if let Some(pli) = self.cache.get(key) {
                return Ok(pli);
            }
        }
        let shards = self.pli_shards();
        let pli = if shards > 1 {
            self.sharded_builds.inc();
            Pli::from_typed_sharded(self.relation.column(attr)?, shards)
        } else {
            Pli::from_typed(self.relation.column(attr)?)
        };
        self.note_build();
        Ok(self.store(key, pli))
    }

    /// The partition `Π_X` for an attribute set, memoized.
    ///
    /// Built by intersecting the (memoized) partition of `X` minus its
    /// largest attribute with that attribute's single-column partition,
    /// so a lattice traversal that already cached the parent level pays
    /// exactly one intersection per new node — and later passes
    /// requesting the same set pay nothing.
    pub fn pli_of(&self, set: &AttrSet) -> Result<Arc<Pli>> {
        let mut iter = set.iter();
        let Some(first) = iter.next() else {
            return Ok(Arc::new(Pli::unit(self.relation.n_rows())));
        };
        if set.len() == 1 {
            return self.pli_of_single(first);
        }
        if !self.cacheable() {
            // No memoization: build the chain linearly, like
            // `mp_metadata::pli_of_set`, instead of recursing (which
            // would rebuild each parent prefix from scratch).
            let mut pli = Pli::from_typed(self.relation.column(first)?);
            self.note_build();
            for attr in set.iter().skip(1) {
                pli = pli.intersect(&Pli::from_typed(self.relation.column(attr)?));
                self.note_build();
            }
            return Ok(Arc::new(pli));
        }
        let key = self.key_of(set);
        if let Some(pli) = self.cache.get(key) {
            return Ok(pli);
        }
        let last = set.iter().last().unwrap_or(first);
        let parent = set.without(last);
        let a = self.pli_of(&parent)?;
        let b = self.pli_of_single(last)?;
        let pli = a.intersect(&b);
        self.note_build();
        Ok(self.store(key, pli))
    }

    /// `g3` violation count of `lhs → rhs` against a precomputed RHS full
    /// signature, using the memoized LHS partition.
    pub fn lhs_violations(&self, lhs: &AttrSet, rhs_full_sig: &[usize]) -> Result<usize> {
        Ok(self.pli_of(lhs)?.g3_violations(rhs_full_sig))
    }

    fn cacheable(&self) -> bool {
        self.cache.capacity() > 0 && self.relation.arity() <= 64
    }

    fn key_of(&self, set: &AttrSet) -> u64 {
        set.iter().fold(0u64, |acc, a| acc | (1u64 << a.min(63)))
    }

    fn store(&self, key: u64, pli: Pli) -> Arc<Pli> {
        if self.cacheable() {
            self.cache.insert(key, pli)
        } else {
            Arc::new(pli)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datasets::employee;
    use mp_metadata::pli_of_set;

    #[test]
    fn cached_plis_equal_direct_construction() {
        let r = employee();
        let ctx = DiscoveryContext::new(&r, ParallelConfig::default());
        for a in 0..r.arity() {
            let direct = Pli::from_typed(r.column(a).unwrap());
            assert_eq!(*ctx.pli_of_single(a).unwrap(), direct);
        }
        for (a, b) in [(0usize, 1usize), (1, 2), (0, 3), (2, 3)] {
            let set = AttrSet::from_iter([a, b]);
            let direct = pli_of_set(&r, &set).unwrap();
            assert_eq!(*ctx.pli_of(&set).unwrap(), direct, "set {{{a},{b}}}");
        }
        let set = AttrSet::from_iter([0usize, 1, 2]);
        assert_eq!(*ctx.pli_of(&set).unwrap(), pli_of_set(&r, &set).unwrap());
    }

    #[test]
    fn empty_set_is_unit_partition() {
        let r = employee();
        let ctx = DiscoveryContext::new(&r, ParallelConfig::default());
        let unit = ctx.pli_of(&AttrSet::empty()).unwrap();
        assert_eq!(*unit, Pli::unit(r.n_rows()));
    }

    #[test]
    fn repeated_requests_hit_the_cache() {
        let r = employee();
        let ctx = DiscoveryContext::new(&r, ParallelConfig::default());
        let set = AttrSet::from_iter([0usize, 2]);
        let first = ctx.pli_of(&set).unwrap();
        let hits_before = ctx.cache_stats().hits;
        let second = ctx.pli_of(&set).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "second lookup shares the Arc");
        assert!(ctx.cache_stats().hits > hits_before);
    }

    #[test]
    fn uncached_context_still_correct() {
        let r = employee();
        let ctx = DiscoveryContext::new(&r, ParallelConfig::uncached(1));
        let set = AttrSet::from_iter([1usize, 3]);
        assert_eq!(*ctx.pli_of(&set).unwrap(), pli_of_set(&r, &set).unwrap());
        assert_eq!(ctx.cache_stats().hits, 0);
        assert_eq!(ctx.cache_stats().entries, 0);
    }

    #[test]
    fn instrumented_context_reports_builds_and_cache_traffic() {
        use mp_observe::Registry;
        let r = employee();
        let registry = Arc::new(Registry::new());
        let ctx =
            DiscoveryContext::instrumented(&r, ParallelConfig::sequential(), registry.clone());
        let set = AttrSet::from_iter([0usize, 2]);
        ctx.pli_of(&set).unwrap(); // builds Π_0, Π_2, Π_{0,2}
        ctx.pli_of(&set).unwrap(); // pure cache hit
        let snap = registry.snapshot();
        assert_eq!(snap.counters["discovery.pli.builds"], 3);
        assert_eq!(snap.clock, 3, "clock advances one unit per build");
        assert!(snap.counters["pli_cache.hits"] >= 1);
        // Registry and local stats read the same atomics.
        assert_eq!(snap.counters["pli_cache.hits"], ctx.cache_stats().hits);
        assert_eq!(snap.counters["pli_cache.misses"], ctx.cache_stats().misses);
    }

    #[test]
    fn memory_budget_constructors() {
        assert!(MemoryBudget::unlimited().is_unlimited());
        assert!(MemoryBudget::from_mb(0).is_unlimited());
        assert_eq!(MemoryBudget::from_mb(2).bytes(), 2 * 1024 * 1024);
        assert_eq!(MemoryBudget::from_bytes(77).bytes(), 77);
        assert!(!MemoryBudget::from_bytes(1).is_unlimited());
        // Saturates instead of overflowing on absurd budgets.
        assert_eq!(MemoryBudget::from_mb(usize::MAX).bytes(), usize::MAX);
    }

    #[test]
    fn memory_budget_bounds_resident_cache_bytes() {
        let r = employee();
        let ctx = DiscoveryContext::with_budget(
            &r,
            ParallelConfig::default(),
            MemoryBudget::from_bytes(256),
        );
        for a in 0..r.arity() {
            ctx.pli_of_single(a).unwrap();
        }
        for (a, b) in [(0usize, 1usize), (1, 2), (0, 3), (2, 3)] {
            let set = AttrSet::from_iter([a, b]);
            assert_eq!(*ctx.pli_of(&set).unwrap(), pli_of_set(&r, &set).unwrap());
        }
        let stats = ctx.cache_stats();
        assert_eq!(stats.budget_bytes, 256);
        assert!(stats.bytes <= 256, "resident {} > budget", stats.bytes);
    }

    #[test]
    fn forced_sharding_produces_identical_partitions() {
        let r = employee();
        let sharded_ctx = DiscoveryContext::new(
            &r,
            ParallelConfig {
                pli_shards: 7,
                ..ParallelConfig::default()
            },
        );
        assert_eq!(sharded_ctx.pli_shards(), 7);
        let plain_ctx = DiscoveryContext::new(&r, ParallelConfig::sequential());
        assert_eq!(plain_ctx.pli_shards(), 1);
        for a in 0..r.arity() {
            assert_eq!(
                *sharded_ctx.pli_of_single(a).unwrap(),
                *plain_ctx.pli_of_single(a).unwrap(),
                "attr {a}"
            );
        }
    }

    #[test]
    fn sharded_builds_counter_is_reported() {
        use mp_observe::Registry;
        let r = employee();
        let registry = Arc::new(Registry::new());
        let ctx = DiscoveryContext::instrumented(
            &r,
            ParallelConfig {
                pli_shards: 4,
                ..ParallelConfig::default()
            },
            registry.clone(),
        );
        for a in 0..r.arity() {
            ctx.pli_of_single(a).unwrap();
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counters["discovery.pli.sharded_builds"],
            r.arity() as u64
        );
    }

    #[test]
    fn concurrent_pli_requests_agree() {
        let r = employee();
        let ctx = DiscoveryContext::new(
            &r,
            ParallelConfig {
                threads: 4,
                cache_capacity: 64,
                ..ParallelConfig::default()
            },
        );
        let sets: Vec<AttrSet> = (0..r.arity())
            .flat_map(|a| (0..r.arity()).map(move |b| AttrSet::from_iter([a, b])))
            .collect();
        let plis = ctx.par_map(sets.clone(), |s| (*ctx.pli_of(&s).unwrap()).clone());
        for (set, pli) in sets.iter().zip(&plis) {
            assert_eq!(*pli, pli_of_set(&r, set).unwrap(), "{set:?}");
        }
    }
}
