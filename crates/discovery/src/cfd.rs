//! Constant-CFD discovery.
//!
//! For every attribute pair `(X, Y)` and every LHS value `x` with support
//! at least `min_support`, report the constant CFD `(X = x → Y = y)` when
//! all supporting tuples agree on `Y = y`. CFDs implied by a full FD
//! `X → Y` are excluded by default: they carry no conditional information
//! beyond the FD, only the (privacy-relevant!) constants.

use mp_metadata::{ConditionalFd, Fd};
use mp_relation::{Pli, Relation, Result};

/// Options for constant-CFD discovery.
#[derive(Debug, Clone)]
pub struct CfdConfig {
    /// Minimum number of tuples matching the LHS pattern.
    pub min_support: usize,
    /// Skip pairs where the unconditional FD `X → Y` already holds.
    pub exclude_fd_pairs: bool,
}

impl Default for CfdConfig {
    fn default() -> Self {
        Self {
            min_support: 3,
            exclude_fd_pairs: true,
        }
    }
}

/// Discovers constant CFDs between attribute pairs.
pub fn discover_cfds(relation: &Relation, config: &CfdConfig) -> Result<Vec<ConditionalFd>> {
    let m = relation.arity();
    let mut out = Vec::new();
    if relation.n_rows() == 0 {
        return Ok(out);
    }
    for lhs in 0..m {
        let lhs_col = relation.column(lhs)?;
        let lhs_pli = Pli::from_typed(lhs_col);
        for rhs in 0..m {
            if rhs == lhs {
                continue;
            }
            if config.exclude_fd_pairs && Fd::new(lhs, rhs).holds(relation)? {
                continue;
            }
            let rhs_col = relation.column(rhs)?;
            for cluster in lhs_pli.clusters() {
                if cluster.len() < config.min_support {
                    continue;
                }
                let Some((&row0, rest)) = cluster.split_first() else {
                    continue;
                };
                let y = rhs_col.value_ref(row0);
                if rest.iter().all(|&r| rhs_col.value_ref(r) == y) {
                    out.push(ConditionalFd::constant(
                        lhs,
                        lhs_col.value(row0),
                        rhs,
                        y.to_value(),
                    ));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_relation::{Attribute, Schema, Value};

    fn rel() -> Relation {
        let schema = Schema::new(vec![
            Attribute::categorical("dept"),
            Attribute::categorical("bonus"),
        ])
        .unwrap();
        // Sales → always 1 (support 3); CS → mixed; Mgmt → always 2 but
        // support only 2.
        Relation::from_rows(
            schema,
            vec![
                vec!["Sales".into(), "1".into()],
                vec!["Sales".into(), "1".into()],
                vec!["Sales".into(), "1".into()],
                vec!["CS".into(), "0".into()],
                vec!["CS".into(), "2".into()],
                vec!["Mgmt".into(), "2".into()],
                vec!["Mgmt".into(), "2".into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn finds_supported_constant_patterns() {
        let cfds = discover_cfds(&rel(), &CfdConfig::default()).unwrap();
        let sales = ConditionalFd::constant(0, "Sales", 1, "1");
        assert!(cfds.contains(&sales));
        // Mgmt pattern has support 2 < min_support 3.
        let mgmt = ConditionalFd::constant(0, "Mgmt", 1, "2");
        assert!(!cfds.contains(&mgmt));
        // CS does not determine bonus.
        assert!(!cfds
            .iter()
            .any(|c| { c.lhs[0].1.constant() == Some(&Value::Text("CS".into())) }));
    }

    #[test]
    fn min_support_is_honoured() {
        let cfds = discover_cfds(
            &rel(),
            &CfdConfig {
                min_support: 2,
                exclude_fd_pairs: true,
            },
        )
        .unwrap();
        assert!(cfds.contains(&ConditionalFd::constant(0, "Mgmt", 1, "2")));
    }

    #[test]
    fn every_discovered_cfd_holds() {
        let out = mp_datasets::all_classes_spec(200, 3).generate().unwrap();
        for cfd in discover_cfds(&out.relation, &CfdConfig::default()).unwrap() {
            assert!(cfd.holds(&out.relation).unwrap(), "{cfd}");
            assert!(cfd.support(&out.relation).unwrap() >= 3);
        }
    }

    #[test]
    fn fd_pairs_excluded_by_default() {
        let out = mp_datasets::all_classes_spec(300, 5).generate().unwrap();
        // base(0) → fd_child(1) is an FD: its constant patterns are
        // redundant and must be excluded...
        let cfds = discover_cfds(&out.relation, &CfdConfig::default()).unwrap();
        assert!(!cfds.iter().any(|c| c.lhs[0].0 == 0 && c.rhs == 1));
        // ...unless asked for.
        let all = discover_cfds(
            &out.relation,
            &CfdConfig {
                min_support: 3,
                exclude_fd_pairs: false,
            },
        )
        .unwrap();
        assert!(all.iter().any(|c| c.lhs[0].0 == 0 && c.rhs == 1));
    }

    #[test]
    fn empty_relation() {
        let schema = Schema::new(vec![Attribute::categorical("a")]).unwrap();
        let r = Relation::empty(schema);
        assert!(discover_cfds(&r, &CfdConfig::default()).unwrap().is_empty());
    }
}
