//! Pairwise ordered-functional-dependency discovery (§IV-E).
//!
//! An OFD `X → Y` is the conjunction of the FD and the strict order
//! condition `t[X] < u[X] ⇒ t[Y] < u[Y]`; discovery checks every ordered
//! attribute pair with [`OrderedFd::holds`]. Constant columns are excluded
//! (an OFD onto a constant holds only for constant X and says nothing).

use crate::engine::{DiscoveryContext, ParallelConfig};
use mp_metadata::OrderedFd;
use mp_relation::{Relation, Result};

/// Discovers all pairwise ordered functional dependencies.
///
/// `exclude_constant` skips pairs where either side is constant over its
/// non-null rows.
pub fn discover_ofds(relation: &Relation, exclude_constant: bool) -> Result<Vec<OrderedFd>> {
    let ctx = DiscoveryContext::new(relation, ParallelConfig::default());
    discover_ofds_with(&ctx, exclude_constant)
}

/// [`discover_ofds`] against a shared [`DiscoveryContext`]: the pairwise
/// validations fan out over determinants on the context's thread budget,
/// merged in determinant order.
pub fn discover_ofds_with(
    ctx: &DiscoveryContext<'_>,
    exclude_constant: bool,
) -> Result<Vec<OrderedFd>> {
    let relation = ctx.relation();
    let m = relation.arity();
    let mut constant = vec![false; m];
    if exclude_constant {
        for (c, flag) in constant.iter_mut().enumerate() {
            let col = relation.column(c)?;
            let mut non_null = col.iter().filter(|v| !v.is_null());
            *flag = match non_null.next() {
                None => true,
                Some(first) => non_null.all(|v| v == first),
            };
        }
    }

    let per_lhs: Vec<Result<Vec<OrderedFd>>> = ctx.par_map((0..m).collect(), |lhs| {
        let mut out = Vec::new();
        if constant[lhs] {
            return Ok(out);
        }
        for (rhs, &rhs_constant) in constant.iter().enumerate() {
            if rhs == lhs || rhs_constant {
                continue;
            }
            let ofd = OrderedFd::new(lhs, rhs);
            if ofd.holds(relation)? {
                out.push(ofd);
            }
        }
        Ok(out)
    });

    let mut out = Vec::new();
    for found in per_lhs {
        out.extend(found?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_datasets::{echocardiogram, employee};

    #[test]
    fn employee_ofds() {
        let ofds = discover_ofds(&employee(), true).unwrap();
        // Name → Salary: lexicographic names happen to order salaries.
        assert!(ofds.contains(&OrderedFd::new(0, 3)));
        // Salary → Age violated: ages repeat across distinct salaries.
        assert!(!ofds.contains(&OrderedFd::new(3, 1)));
    }

    #[test]
    fn echocardiogram_planted_ofd_found() {
        use mp_datasets::echocardiogram::attrs::*;
        let ofds = discover_ofds(&echocardiogram(), true).unwrap();
        assert!(ofds.contains(&OrderedFd::new(WALL_MOTION_SCORE, WALL_MOTION_INDEX)));
        assert!(ofds.contains(&OrderedFd::new(WALL_MOTION_INDEX, WALL_MOTION_SCORE)));
    }

    #[test]
    fn every_discovered_ofd_holds() {
        let out = mp_datasets::all_classes_spec(150, 40).generate().unwrap();
        for ofd in discover_ofds(&out.relation, true).unwrap() {
            assert!(ofd.holds(&out.relation).unwrap());
        }
    }

    #[test]
    fn ofd_implies_fd_and_od() {
        use mp_metadata::{Fd, OrderDep};
        let r = echocardiogram();
        for ofd in discover_ofds(&r, true).unwrap() {
            // The order part is implied unconditionally (nulls are skipped
            // by both validators).
            assert!(OrderDep::ascending(ofd.lhs, ofd.rhs).holds(&r).unwrap());
            // The FD part is implied on null-free column pairs; FD
            // validation treats nulls as values while OFD skips them.
            let null_free = |c: usize| r.column(c).unwrap().iter().all(|v| !v.is_null());
            if null_free(ofd.lhs) && null_free(ofd.rhs) {
                assert!(Fd::new(ofd.lhs, ofd.rhs).holds(&r).unwrap());
            }
        }
    }

    #[test]
    fn constant_exclusion() {
        use mp_datasets::echocardiogram::attrs::NAME;
        // attr 10 ("name") is constant: no OFDs may involve it when
        // exclusion is on.
        let ofds = discover_ofds(&echocardiogram(), true).unwrap();
        assert!(ofds.iter().all(|d| d.lhs != NAME && d.rhs != NAME));
    }
}
