//! Metric-FD discovery and variable-CFD discovery.
//!
//! * **MFDs** (`X → Y (δ)`): for every pair with a numeric dependent
//!   attribute, compute the tight δ (maximum Y-spread within an
//!   X-partition) and keep the informative ones — small relative to Y's
//!   range and not already exact FDs.
//! * **Variable CFDs** (`(C = c, X → Y)`): for every condition value `c`
//!   with enough support, check whether the embedded FD `X → Y` holds on
//!   the matching partition even though it fails globally.

use mp_metadata::{ConditionalFd, Fd, MetricFd};
use mp_relation::{Pli, Relation, Result};

/// Options for MFD discovery.
#[derive(Debug, Clone)]
pub struct MfdConfig {
    /// Keep MFDs whose tight δ is at most this fraction of the dependent
    /// attribute's range.
    pub delta_fraction: f64,
    /// Skip pairs where the exact FD already holds (δ = 0 everywhere).
    pub exclude_fds: bool,
}

impl Default for MfdConfig {
    fn default() -> Self {
        Self {
            delta_fraction: 0.2,
            exclude_fds: true,
        }
    }
}

/// Discovers informative metric FDs between attribute pairs.
pub fn discover_mfds(relation: &Relation, config: &MfdConfig) -> Result<Vec<MetricFd>> {
    let m = relation.arity();
    let mut out = Vec::new();
    if relation.n_rows() == 0 {
        return Ok(out);
    }
    for rhs in 0..m {
        let nums: Vec<f64> = relation
            .column(rhs)?
            .iter()
            .filter_map(|v| v.as_f64())
            .collect();
        if nums.len() < 2 {
            continue;
        }
        let lo = nums.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = nums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let range = hi - lo;
        if range <= 0.0 {
            continue;
        }
        for lhs in 0..m {
            if lhs == rhs {
                continue;
            }
            let Some(delta) = MetricFd::tight_delta(lhs, rhs, relation)? else {
                continue;
            };
            if config.exclude_fds && delta == 0.0 {
                continue;
            }
            if delta <= config.delta_fraction * range {
                out.push(MetricFd::new(lhs, rhs, delta));
            }
        }
    }
    Ok(out)
}

/// Options for variable-CFD discovery.
#[derive(Debug, Clone)]
pub struct VariableCfdConfig {
    /// Minimum tuples matching the condition value.
    pub min_support: usize,
    /// Skip (X, Y) pairs where the unconditional FD holds.
    pub exclude_global_fds: bool,
}

impl Default for VariableCfdConfig {
    fn default() -> Self {
        Self {
            min_support: 4,
            exclude_global_fds: true,
        }
    }
}

/// Discovers variable CFDs `(C = c, X → Y)` over attribute triples.
pub fn discover_variable_cfds(
    relation: &Relation,
    config: &VariableCfdConfig,
) -> Result<Vec<ConditionalFd>> {
    let m = relation.arity();
    let mut out = Vec::new();
    if relation.n_rows() == 0 {
        return Ok(out);
    }
    for cond in 0..m {
        let cond_col = relation.column(cond)?;
        let cond_pli = Pli::from_typed(cond_col);
        for fd_lhs in 0..m {
            if fd_lhs == cond {
                continue;
            }
            for rhs in 0..m {
                if rhs == cond || rhs == fd_lhs {
                    continue;
                }
                if config.exclude_global_fds && Fd::new(fd_lhs, rhs).holds(relation)? {
                    continue;
                }
                for cluster in cond_pli.clusters() {
                    if cluster.len() < config.min_support {
                        continue;
                    }
                    let Some(&row0) = cluster.first() else {
                        continue;
                    };
                    let subset = relation.select_rows(cluster)?;
                    if Fd::new(fd_lhs, rhs).holds(&subset)? {
                        out.push(ConditionalFd::variable(
                            cond,
                            cond_col.value(row0),
                            fd_lhs,
                            rhs,
                        ));
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Options for SD discovery.
#[derive(Debug, Clone)]
pub struct SdConfig {
    /// Keep SDs whose gap-interval width is at most this fraction of the
    /// dependent attribute's range.
    pub width_fraction: f64,
    /// Minimum number of consecutive pairs needed for the bounds to mean
    /// anything.
    pub min_pairs: usize,
}

impl Default for SdConfig {
    fn default() -> Self {
        Self {
            width_fraction: 0.3,
            min_pairs: 4,
        }
    }
}

/// Discovers informative sequential dependencies between attribute pairs:
/// tight gap bounds whose width is small relative to the dependent range.
pub fn discover_sds(
    relation: &Relation,
    config: &SdConfig,
) -> Result<Vec<mp_metadata::SequentialDep>> {
    use mp_metadata::SequentialDep;
    let m = relation.arity();
    let mut out = Vec::new();
    for rhs in 0..m {
        let nums: Vec<f64> = relation
            .column(rhs)?
            .iter()
            .filter_map(|v| v.as_f64())
            .collect();
        if nums.len() < 2 {
            continue;
        }
        let lo = nums.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = nums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let range = hi - lo;
        if range <= 0.0 {
            continue;
        }
        for lhs in 0..m {
            if lhs == rhs {
                continue;
            }
            let Some(gaps) = SequentialDep::gaps(lhs, rhs, relation)? else {
                continue;
            };
            if gaps.len() < config.min_pairs {
                continue;
            }
            let g_lo = gaps.iter().copied().fold(f64::INFINITY, f64::min);
            let g_hi = gaps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            if g_hi - g_lo <= config.width_fraction * range {
                out.push(SequentialDep::new(lhs, rhs, g_lo, g_hi));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mp_relation::{Attribute, Schema, Value};

    #[test]
    fn mfd_discovery_finds_bounded_spread() {
        let schema = Schema::new(vec![
            Attribute::categorical("k"),
            Attribute::continuous("y"),
        ])
        .unwrap();
        // Partitions with spread ≤ 1 over a range of 100.
        let r = Relation::from_rows(
            schema,
            vec![
                vec!["a".into(), 10.0.into()],
                vec!["a".into(), 10.8.into()],
                vec!["b".into(), 50.0.into()],
                vec!["b".into(), 50.5.into()],
                vec!["c".into(), 110.0.into()],
            ],
        )
        .unwrap();
        let mfds = discover_mfds(&r, &MfdConfig::default()).unwrap();
        let found = mfds
            .iter()
            .find(|d| d.lhs == 0 && d.rhs == 1)
            .expect("MFD 0→1");
        assert!((found.delta - 0.8).abs() < 1e-12, "tight delta");
        assert!(found.holds(&r).unwrap());
    }

    #[test]
    fn mfd_excludes_exact_fds_by_default() {
        let schema = Schema::new(vec![
            Attribute::categorical("k"),
            Attribute::continuous("y"),
        ])
        .unwrap();
        let r = Relation::from_rows(
            schema,
            vec![
                vec!["a".into(), 1.0.into()],
                vec!["a".into(), 1.0.into()],
                vec!["b".into(), 2.0.into()],
            ],
        )
        .unwrap();
        assert!(discover_mfds(&r, &MfdConfig::default()).unwrap().is_empty());
        let with = discover_mfds(
            &r,
            &MfdConfig {
                exclude_fds: false,
                delta_fraction: 0.2,
            },
        )
        .unwrap();
        assert!(with
            .iter()
            .any(|d| d.lhs == 0 && d.rhs == 1 && d.delta == 0.0));
    }

    #[test]
    fn mfd_discovery_on_planted_data() {
        let out = mp_datasets::all_classes_spec(300, 7).generate().unwrap();
        for mfd in discover_mfds(&out.relation, &MfdConfig::default()).unwrap() {
            assert!(mfd.holds(&out.relation).unwrap(), "{mfd}");
        }
    }

    #[test]
    fn variable_cfd_discovery() {
        let schema = Schema::new(vec![
            Attribute::categorical("dept"),
            Attribute::categorical("role"),
            Attribute::categorical("bonus"),
        ])
        .unwrap();
        // Within dept=CS role → bonus holds; within dept=Mgmt it fails;
        // globally it fails.
        let r = Relation::from_rows(
            schema,
            vec![
                vec!["CS".into(), "jr".into(), "0".into()],
                vec!["CS".into(), "jr".into(), "0".into()],
                vec!["CS".into(), "sr".into(), "2".into()],
                vec!["CS".into(), "sr".into(), "2".into()],
                vec!["Mgmt".into(), "jr".into(), "9".into()],
                vec!["Mgmt".into(), "jr".into(), "1".into()],
                vec!["Mgmt".into(), "sr".into(), "1".into()],
                vec!["Mgmt".into(), "sr".into(), "1".into()],
            ],
        )
        .unwrap();
        let cfds = discover_variable_cfds(&r, &VariableCfdConfig::default()).unwrap();
        let target = ConditionalFd::variable(0, "CS", 1, 2);
        assert!(cfds.contains(&target), "found: {cfds:?}");
        assert!(!cfds.contains(&ConditionalFd::variable(0, "Mgmt", 1, 2)));
        for c in &cfds {
            assert!(c.holds(&r).unwrap(), "{c}");
        }
    }

    #[test]
    fn variable_cfd_respects_support() {
        let schema = Schema::new(vec![
            Attribute::categorical("c"),
            Attribute::categorical("x"),
            Attribute::categorical("y"),
        ])
        .unwrap();
        let r = Relation::from_rows(
            schema,
            vec![
                vec!["a".into(), "1".into(), "p".into()],
                vec!["a".into(), "2".into(), "q".into()],
                vec!["b".into(), "1".into(), "p".into()],
                vec!["b".into(), "1".into(), "q".into()],
            ],
        )
        .unwrap();
        // Support 2 < min_support 4 → nothing reported.
        assert!(discover_variable_cfds(&r, &VariableCfdConfig::default())
            .unwrap()
            .is_empty());
        let relaxed = discover_variable_cfds(
            &r,
            &VariableCfdConfig {
                min_support: 2,
                exclude_global_fds: true,
            },
        )
        .unwrap();
        assert!(relaxed.contains(&ConditionalFd::variable(0, "a", 1, 2)));
    }

    #[test]
    fn empty_relation() {
        let schema = Schema::new(vec![Attribute::categorical("a")]).unwrap();
        let r = Relation::empty(schema);
        assert!(discover_mfds(&r, &MfdConfig::default()).unwrap().is_empty());
        assert!(discover_variable_cfds(&r, &VariableCfdConfig::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn sd_discovery_finds_bounded_gaps() {
        use mp_metadata::SequentialDep;
        let schema =
            Schema::new(vec![Attribute::continuous("x"), Attribute::continuous("y")]).unwrap();
        // y increases by 1.0–1.2 per step of x over a range of ~6.
        let r = Relation::from_rows(
            schema,
            (0..6)
                .map(|i| {
                    vec![
                        Value::Float(i as f64),
                        Value::Float(i as f64 * 1.1 + if i % 2 == 0 { 0.05 } else { 0.0 }),
                    ]
                })
                .collect(),
        )
        .unwrap();
        let sds = discover_sds(
            &r,
            &SdConfig {
                width_fraction: 0.3,
                min_pairs: 4,
            },
        )
        .unwrap();
        let sd = sds
            .iter()
            .find(|d| d.lhs == 0 && d.rhs == 1)
            .expect("SD 0→1");
        assert!(sd.holds(&r).unwrap());
        // Tightness: shrinking the window breaks it.
        let tighter = SequentialDep::new(0, 1, sd.min_gap + 0.01, sd.max_gap);
        assert!(!tighter.holds(&r).unwrap());
    }

    #[test]
    fn sd_discovery_respects_min_pairs_and_width() {
        let out = mp_datasets::all_classes_spec(200, 11).generate().unwrap();
        for sd in discover_sds(&out.relation, &SdConfig::default()).unwrap() {
            assert!(sd.holds(&out.relation).unwrap(), "{sd}");
        }
        // An absurdly tight width filter returns nothing.
        let none = discover_sds(
            &out.relation,
            &SdConfig {
                width_fraction: 1e-12,
                min_pairs: 4,
            },
        )
        .unwrap();
        assert!(none.iter().all(|sd| sd.max_gap - sd.min_gap <= 1e-9));
    }
}
