//! The [`Recorder`] trait plus its two implementations: the default
//! [`NoopRecorder`] and the live interning [`Registry`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::metrics::{Counter, Gauge, Histogram, Span, SpanCore};
use crate::snapshot::{Snapshot, SpanSnapshot};

/// A shared logical clock.
///
/// The clock counts *work units*, never wall time: discovery advances it
/// one unit per partition built, the protocol simulator sets it to the
/// transport tick. [`Span`] durations are deltas on this clock, which is
/// what makes snapshots reproducible.
#[derive(Clone, Debug, Default)]
pub struct Clock(pub(crate) Arc<AtomicU64>);

impl Clock {
    /// A fresh clock at time 0.
    pub fn new() -> Self {
        Clock::default()
    }

    /// Advances the clock by `units`.
    #[inline]
    pub fn advance(&self, units: u64) {
        self.0.fetch_add(units, Ordering::Relaxed);
    }

    /// Sets the clock to an absolute logical time (e.g. a transport tick).
    #[inline]
    pub fn set(&self, units: u64) {
        self.0.store(units, Ordering::Relaxed);
    }

    /// Current logical time.
    #[inline]
    pub fn now(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The facade instrumented code talks to.
///
/// Components resolve handles once (at construction) and update them on
/// the hot path; they never look metrics up by name per event. The
/// default methods make new recorder impls cheap: only handle resolution
/// is required.
pub trait Recorder: Send + Sync {
    /// Resolves (or creates) the counter named `name`.
    fn counter(&self, name: &str) -> Counter;

    /// Resolves (or creates) the gauge named `name`.
    fn gauge(&self, name: &str) -> Gauge;

    /// Resolves (or creates) the histogram named `name` with the given
    /// inclusive upper bucket `bounds`. If the name is already registered
    /// the existing histogram is returned and `bounds` is ignored (first
    /// registration wins).
    fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram;

    /// Resolves (or creates) the span timer named `name`.
    fn span(&self, name: &str) -> Span;

    /// Advances the logical clock by `units` (no-op by default).
    fn advance(&self, _units: u64) {}

    /// Sets the logical clock to an absolute time (no-op by default).
    fn set_time(&self, _units: u64) {}

    /// Current logical time (always 0 for clock-less recorders).
    fn now(&self) -> u64 {
        0
    }
}

/// The default recorder: hands out detached handles whose updates are
/// discarded. This is what un-instrumented runs use, and it costs one
/// `Option` branch per (skipped) update.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter(&self, _name: &str) -> Counter {
        Counter::noop()
    }

    fn gauge(&self, _name: &str) -> Gauge {
        Gauge::noop()
    }

    fn histogram(&self, _name: &str, _bounds: &[u64]) -> Histogram {
        Histogram::noop()
    }

    fn span(&self, _name: &str) -> Span {
        Span::noop()
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    Span(Span),
}

/// The live recorder: interns metrics by name and serves the same shared
/// handle to every requester, so component-local statistics and the
/// exported [`Snapshot`] read identical state.
///
/// Interning takes a mutex, but only at handle-resolution time (once per
/// component), never on the update path.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    clock: Clock,
}

impl Registry {
    /// An empty registry with its clock at 0.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The registry's logical clock (shared with every span it creates).
    pub fn clock(&self) -> Clock {
        self.clock.clone()
    }

    /// Captures the current state of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        let mut snap = Snapshot::new(self.clock.now());
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
                Metric::Span(s) => {
                    snap.spans.insert(
                        name.clone(),
                        SpanSnapshot {
                            count: s.count(),
                            units: s.units(),
                        },
                    );
                }
            }
        }
        snap
    }
}

impl Recorder for Registry {
    fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::live()))
        {
            Metric::Counter(c) => c.clone(),
            // lint: allow(no-panic) reason="name/type conflicts are programming errors; the panic is pinned by a should_panic test below"
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::live()))
        {
            Metric::Gauge(g) => g.clone(),
            // lint: allow(no-panic) reason="name/type conflicts are programming errors; the panic is pinned by a should_panic test below"
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::live(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            // lint: allow(no-panic) reason="name/type conflicts are programming errors; the panic is pinned by a should_panic test below"
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    fn span(&self, name: &str) -> Span {
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        match metrics.entry(name.to_string()).or_insert_with(|| {
            Metric::Span(Span(Some((
                Arc::new(SpanCore {
                    count: AtomicU64::new(0),
                    units: AtomicU64::new(0),
                }),
                self.clock.clone(),
            ))))
        }) {
            Metric::Span(s) => s.clone(),
            // lint: allow(no-panic) reason="name/type conflicts are programming errors; the panic is pinned by a should_panic test below"
            _ => panic!("metric `{name}` already registered with a different type"),
        }
    }

    fn advance(&self, units: u64) {
        self.clock.advance(units);
    }

    fn set_time(&self, units: u64) {
        self.clock.set(units);
    }

    fn now(&self) -> u64 {
        self.clock.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_interns_by_name() {
        let r = Registry::new();
        let a = r.counter("x.hits");
        let b = r.counter("x.hits");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn histogram_first_registration_wins() {
        let r = Registry::new();
        let a = r.histogram("lat", &[1, 2, 3]);
        let b = r.histogram("lat", &[99]);
        assert_eq!(a.bounds(), b.bounds());
        assert_eq!(b.bounds(), vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("m");
        let _ = r.gauge("m");
    }

    #[test]
    fn noop_recorder_hands_out_dead_handles() {
        let r = NoopRecorder;
        let c = r.counter("anything");
        c.add(10);
        assert_eq!(c.get(), 0);
        assert_eq!(r.now(), 0);
        r.advance(5);
        r.set_time(9);
        assert_eq!(r.now(), 0);
    }

    #[test]
    fn clock_drives_registry_time() {
        let r = Registry::new();
        r.advance(4);
        r.set_time(100);
        assert_eq!(r.now(), 100);
        assert_eq!(r.clock().now(), 100);
    }

    #[test]
    fn snapshot_reflects_all_metric_kinds() {
        let r = Registry::new();
        r.counter("c").add(5);
        r.gauge("g").set(7);
        r.histogram("h", &[10]).record(3);
        let s = r.span("s");
        {
            let _guard = s.enter();
            r.advance(2);
        }
        let snap = r.snapshot();
        assert_eq!(snap.counters["c"], 5);
        assert_eq!(snap.gauges["g"], 7);
        assert_eq!(snap.histograms["h"].count, 1);
        assert_eq!(snap.histograms["h"].buckets, vec![1, 0]);
        assert_eq!(snap.spans["s"].count, 1);
        assert_eq!(snap.spans["s"].units, 2);
        assert_eq!(snap.clock, 2);
    }
}
