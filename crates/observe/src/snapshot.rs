//! Point-in-time, schema-versioned metric snapshots with a deterministic
//! JSON encoding.
//!
//! The encoding is hand-rolled (this crate has zero dependencies) and
//! intentionally boring: two-space pretty-printing, keys in sorted order
//! (`BTreeMap` iteration), integers only. Two snapshots of equal state
//! serialise to byte-identical strings on every platform, which is what
//! the golden e2e tests assert.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Version stamp embedded in every snapshot as `"schema_version"`.
/// Bump it whenever the JSON layout changes shape.
pub const SCHEMA_VERSION: u64 = 1;

/// State of one histogram at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bucket bounds (sorted, deduplicated).
    pub bounds: Vec<u64>,
    /// Observation counts per bucket; `bounds.len() + 1` entries, the
    /// last being the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// State of one span timer at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Completed entries.
    pub count: u64,
    /// Total logical units spent inside.
    pub units: u64,
}

/// A complete, self-describing capture of a [`Registry`](crate::Registry).
///
/// All values are integers in logical units (event counts, virtual-clock
/// ticks) — never wall-clock time — so snapshots taken under a fixed seed
/// are byte-reproducible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    /// The schema version this snapshot was produced under.
    pub schema_version: u64,
    /// The registry's logical clock at capture time.
    pub clock: u64,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span states by name.
    pub spans: BTreeMap<String, SpanSnapshot>,
}

impl Snapshot {
    /// An empty snapshot at the given logical time.
    pub fn new(clock: u64) -> Self {
        Snapshot {
            schema_version: SCHEMA_VERSION,
            clock,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            spans: BTreeMap::new(),
        }
    }

    /// Merges `other` into `self`: counters, histogram buckets and span
    /// totals add; gauges take the maximum (so merge stays commutative);
    /// the clock takes the maximum.
    ///
    /// # Panics
    ///
    /// Panics if the same histogram name appears in both snapshots with
    /// different bucket bounds — merging those would silently misbucket.
    pub fn merge(&mut self, other: &Snapshot) {
        self.clock = self.clock.max(other.clock);
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
                Some(mine) => {
                    assert_eq!(
                        mine.bounds, h.bounds,
                        "cannot merge histogram `{name}`: bucket bounds differ"
                    );
                    for (b, o) in mine.buckets.iter_mut().zip(&h.buckets) {
                        *b += o;
                    }
                    mine.count += h.count;
                    mine.sum += h.sum;
                }
            }
        }
        for (name, s) in &other.spans {
            let slot = self
                .spans
                .entry(name.clone())
                .or_insert(SpanSnapshot { count: 0, units: 0 });
            slot.count += s.count;
            slot.units += s.units;
        }
    }

    /// Serialises to pretty-printed JSON with sorted keys and a trailing
    /// newline. Byte-deterministic for equal snapshots.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(out, "  \"clock\": {},", self.clock);

        out.push_str("  \"counters\": {");
        write_scalar_map(&mut out, &self.counters);
        out.push_str(",\n  \"gauges\": {");
        write_scalar_map(&mut out, &self.gauges);

        out.push_str(",\n  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    {}: {{", json_string(name));
            let _ = write!(out, "\n      \"bounds\": {},", json_u64_array(&h.bounds));
            let _ = write!(out, "\n      \"buckets\": {},", json_u64_array(&h.buckets));
            let _ = write!(out, "\n      \"count\": {},", h.count);
            let _ = write!(out, "\n      \"sum\": {}", h.sum);
            out.push_str("\n    }");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push('}');

        out.push_str(",\n  \"spans\": {");
        let mut first = true;
        for (name, s) in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {}: {{ \"count\": {}, \"units\": {} }}",
                json_string(name),
                s.count,
                s.units
            );
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push('}');

        out.push_str("\n}\n");
        out
    }
}

fn write_scalar_map(out: &mut String, map: &BTreeMap<String, u64>) {
    let mut first = true;
    for (name, v) in map {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    {}: {}", json_string(name), v);
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
    out.push('}');
}

fn json_u64_array(vals: &[u64]) -> String {
    let mut s = String::from("[");
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{v}");
    }
    s.push(']');
    s
}

/// Escapes a metric name as a JSON string literal. Metric names are
/// ASCII dot-paths by convention, but escape defensively anyway.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, Registry};

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter("pli_cache.hits").add(12);
        r.counter("pli_cache.misses").add(3);
        r.gauge("discovery.lattice.width").set(9);
        let h = r.histogram("transport.latency_ticks", &[1, 4, 16]);
        h.record(0);
        h.record(5);
        h.record(99);
        let s = r.span("discovery.pass.fds");
        {
            let _g = s.enter();
            r.advance(7);
        }
        r.snapshot()
    }

    #[test]
    fn json_is_deterministic_and_sorted() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        let hits = a.find("pli_cache.hits").unwrap();
        let misses = a.find("pli_cache.misses").unwrap();
        assert!(hits < misses, "keys must serialise in sorted order");
        assert!(a.contains("\"schema_version\": 1"));
        assert!(a.ends_with("}\n"));
    }

    #[test]
    fn json_shape_for_empty_snapshot() {
        let s = Snapshot::new(0);
        let j = s.to_json();
        assert!(j.contains("\"counters\": {}"));
        assert!(j.contains("\"spans\": {}"));
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counters["pli_cache.hits"], 24);
        assert_eq!(a.histograms["transport.latency_ticks"].count, 6);
        assert_eq!(
            a.histograms["transport.latency_ticks"].buckets,
            vec![2, 0, 2, 2]
        );
        assert_eq!(a.spans["discovery.pass.fds"].units, 14);
        // Gauges take max, not sum.
        assert_eq!(a.gauges["discovery.lattice.width"], 9);
    }

    #[test]
    #[should_panic(expected = "bucket bounds differ")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Snapshot::new(0);
        a.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                bounds: vec![1],
                buckets: vec![0, 0],
                count: 0,
                sum: 0,
            },
        );
        let mut b = Snapshot::new(0);
        b.histograms.insert(
            "h".into(),
            HistogramSnapshot {
                bounds: vec![2],
                buckets: vec![0, 0],
                count: 0,
                sum: 0,
            },
        );
        a.merge(&b);
    }

    #[test]
    fn json_escapes_hostile_names() {
        let mut s = Snapshot::new(0);
        s.counters.insert("weird\"name\\with\nstuff".into(), 1);
        let j = s.to_json();
        assert!(j.contains("\"weird\\\"name\\\\with\\nstuff\": 1"));
    }
}
