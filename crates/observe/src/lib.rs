//! # mp-observe — deterministic observability substrate
//!
//! Counters, gauges, fixed-bucket histograms and hierarchical span timers
//! for the `metadata-privacy` workspace, with no dependencies outside the
//! standard library (the build environment has no crates.io access, so
//! this crate is vendored-style like everything under `vendor/`).
//!
//! ## Design
//!
//! * **Handles, not names, on the hot path.** Instrumented code resolves a
//!   [`Counter`] / [`Gauge`] / [`Histogram`] / [`Span`] handle *once* from
//!   a [`Recorder`] and then updates it with a single relaxed atomic
//!   operation. The [`NoopRecorder`] hands out detached handles whose
//!   update methods branch on a `None` and compile to (almost) nothing, so
//!   un-instrumented runs pay no observable cost.
//! * **One source of truth.** A [`Registry`] is the live [`Recorder`]: it
//!   interns every named metric and serves the same `Arc`'d atomics to all
//!   requesters, so component-local statistics (e.g. the PLI cache's
//!   hit/miss counters) and the exported snapshot read identical state.
//! * **Determinism contract.** Snapshots never contain wall-clock values.
//!   Span timers measure *logical units* from the registry's virtual
//!   clock: discovery advances it one unit per partition built, the
//!   protocol simulator drives it from the transport's tick clock. Under a
//!   fixed seed (and sequential evaluation) a snapshot is therefore
//!   byte-reproducible across runs and machines — see
//!   [`Snapshot::to_json`].
//!
//! ## Metric naming scheme
//!
//! Dot-separated lowercase paths, `<layer>.<component>.<metric>`:
//! `pli_cache.hits`, `discovery.pli.builds`, `transport.party.0.sent`,
//! `protocol.retransmits`, `core.leakage.cells_compared`. Span names use
//! the same scheme with the spanned phase last: `discovery.pass.fds`,
//! `protocol.setup`. Hierarchy is expressed by path prefix.

#![warn(missing_docs)]

mod metrics;
mod recorder;
mod snapshot;

pub use metrics::{Counter, Gauge, Histogram, Span, SpanGuard};
pub use recorder::{Clock, NoopRecorder, Recorder, Registry};
pub use snapshot::{HistogramSnapshot, Snapshot, SpanSnapshot, SCHEMA_VERSION};
