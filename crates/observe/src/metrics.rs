//! The metric handle types: cheap, cloneable, update-through-`Arc`.
//!
//! Every handle is either *live* (backed by shared atomics, usually
//! interned in a [`Registry`](crate::Registry)) or *detached-noop* (the
//! [`NoopRecorder`](crate::NoopRecorder) form: updates branch on a `None`
//! and do nothing). Components that need working local statistics without
//! a registry — the PLI cache's `stats()` — create live handles directly
//! with [`Counter::live`] and friends.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count.
#[derive(Clone, Debug, Default)]
pub struct Counter(pub(crate) Option<Arc<AtomicU64>>);

impl Counter {
    /// A live, unregistered counter (starts at 0).
    pub fn live() -> Self {
        Counter(Some(Arc::new(AtomicU64::new(0))))
    }

    /// A no-op counter: every update is discarded, reads return 0.
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for no-op handles).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// `true` when updates are actually recorded.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }
}

/// A last-write-wins instantaneous value.
#[derive(Clone, Debug, Default)]
pub struct Gauge(pub(crate) Option<Arc<AtomicU64>>);

impl Gauge {
    /// A live, unregistered gauge (starts at 0).
    pub fn live() -> Self {
        Gauge(Some(Arc::new(AtomicU64::new(0))))
    }

    /// A no-op gauge.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for no-op handles).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// Shared state of a live histogram.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    /// Strictly increasing upper bucket bounds (inclusive). A value `v`
    /// lands in the first bucket with `v <= bounds[i]`; values above the
    /// last bound land in the implicit overflow bucket, so there are
    /// `bounds.len() + 1` buckets.
    pub(crate) bounds: Vec<u64>,
    pub(crate) buckets: Vec<AtomicU64>,
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new(bounds: &[u64]) -> Self {
        let mut bounds = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        HistogramCore {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket histogram over `u64` values (ticks, counts, sizes).
///
/// Bucket bounds are fixed at creation, sorted and deduplicated, so they
/// are always strictly monotone; re-requesting a registered histogram
/// under the same name returns the existing buckets regardless of the
/// bounds passed (first registration wins).
#[derive(Clone, Debug, Default)]
pub struct Histogram(pub(crate) Option<Arc<HistogramCore>>);

impl Histogram {
    /// A live, unregistered histogram with the given inclusive upper
    /// bucket bounds (plus an implicit overflow bucket).
    pub fn live(bounds: &[u64]) -> Self {
        Histogram(Some(Arc::new(HistogramCore::new(bounds))))
    }

    /// A no-op histogram.
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            let idx = h.bounds.partition_point(|&b| b < v);
            h.buckets[idx].fetch_add(1, Ordering::Relaxed);
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Number of recorded observations (0 for no-op handles).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    /// Sum of recorded observations (0 for no-op handles).
    pub fn sum(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.sum.load(Ordering::Relaxed))
    }

    /// The (sorted, deduplicated) upper bucket bounds.
    pub fn bounds(&self) -> Vec<u64> {
        self.0.as_ref().map_or_else(Vec::new, |h| h.bounds.clone())
    }

    /// The current state as a [`crate::HistogramSnapshot`]. No-op handles
    /// yield an empty snapshot (no bounds, one empty overflow bucket).
    pub fn snapshot(&self) -> crate::HistogramSnapshot {
        match &self.0 {
            None => crate::HistogramSnapshot {
                bounds: Vec::new(),
                buckets: vec![0],
                count: 0,
                sum: 0,
            },
            Some(h) => crate::HistogramSnapshot {
                bounds: h.bounds.clone(),
                buckets: h
                    .buckets
                    .iter()
                    .map(|b| b.load(Ordering::Relaxed))
                    .collect(),
                count: self.count(),
                sum: self.sum(),
            },
        }
    }
}

/// Shared state of a live span timer.
#[derive(Debug)]
pub(crate) struct SpanCore {
    pub(crate) count: AtomicU64,
    pub(crate) units: AtomicU64,
}

/// A hierarchical span timer: counts entries and accumulates the logical
/// units (virtual-clock delta) spent inside.
///
/// Hierarchy is by name: `discovery.pass.fds` is a child of `discovery`
/// by path convention. Durations are measured on the owning recorder's
/// *logical* clock (see [`Clock`](crate::Clock)) — never wall time — so
/// they are deterministic wherever the instrumented code is.
#[derive(Clone, Debug, Default)]
pub struct Span(pub(crate) Option<(Arc<SpanCore>, crate::Clock)>);

impl Span {
    /// A no-op span.
    pub fn noop() -> Self {
        Span(None)
    }

    /// Enters the span; the returned guard records the elapsed logical
    /// units and increments the entry count when dropped.
    pub fn enter(&self) -> SpanGuard {
        SpanGuard {
            span: self.clone(),
            start: self.0.as_ref().map_or(0, |(_, clock)| clock.now()),
        }
    }

    /// Number of completed entries (0 for no-op handles).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |(core, _)| core.count.load(Ordering::Relaxed))
    }

    /// Total logical units spent inside (0 for no-op handles).
    pub fn units(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |(core, _)| core.units.load(Ordering::Relaxed))
    }
}

/// RAII guard returned by [`Span::enter`].
#[must_use = "dropping the guard immediately records a zero-length span"]
pub struct SpanGuard {
    span: Span,
    start: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((core, clock)) = &self.span.0 {
            let elapsed = clock.now().saturating_sub(self.start);
            core.units.fetch_add(elapsed, Ordering::Relaxed);
            core.count.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Clock, Recorder, Registry};

    #[test]
    fn counters_add_and_read() {
        let c = Counter::live();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert!(c.is_live());
        let n = Counter::noop();
        n.add(100);
        assert_eq!(n.get(), 0);
        assert!(!n.is_live());
    }

    #[test]
    fn gauges_last_write_wins() {
        let g = Gauge::live();
        g.set(3);
        g.set(7);
        assert_eq!(g.get(), 7);
        let n = Gauge::noop();
        n.set(9);
        assert_eq!(n.get(), 0);
    }

    #[test]
    fn histogram_buckets_values_inclusively() {
        let h = Histogram::live(&[10, 100]);
        for v in [0, 10, 11, 100, 101, 5000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 10 + 11 + 100 + 101 + 5000);
        let core = h.0.as_ref().unwrap();
        let loads: Vec<u64> = core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // ≤10: {0, 10}; ≤100: {11, 100}; overflow: {101, 5000}.
        assert_eq!(loads, vec![2, 2, 2]);
    }

    #[test]
    fn histogram_bounds_sorted_and_deduped() {
        let h = Histogram::live(&[50, 1, 50, 7]);
        assert_eq!(h.bounds(), vec![1, 7, 50]);
    }

    #[test]
    fn span_measures_logical_clock_delta() {
        let registry = Registry::new();
        let span = registry.span("phase.a");
        {
            let _g = span.enter();
            registry.advance(3);
            {
                let _inner = span.enter();
                registry.advance(2);
            }
        }
        assert_eq!(span.count(), 2);
        // Outer saw 5 units, inner saw 2.
        assert_eq!(span.units(), 7);
    }

    #[test]
    fn noop_span_records_nothing() {
        let span = Span::noop();
        let _ = Clock::default(); // the clock type itself is public
        {
            let _g = span.enter();
        }
        assert_eq!(span.count(), 0);
        assert_eq!(span.units(), 0);
    }
}
