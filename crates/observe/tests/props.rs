//! Property tests for the mp-observe primitives.
//!
//! Three algebraic contracts keep the metrics pipeline trustworthy:
//!
//! 1. [`Snapshot::merge`] is associative and commutative (counters and
//!    histogram buckets add, gauges and clocks take the maximum), so
//!    aggregating per-shard snapshots is order-independent;
//! 2. serialization is a pure function of the snapshot *value* — the
//!    same content always yields byte-identical, key-sorted JSON,
//!    regardless of construction order;
//! 3. histogram bucketing respects its bounds: bounds come out strictly
//!    increasing no matter how they went in, every recorded value lands
//!    in exactly one bucket, and the bucket prefix sums are monotone in
//!    the recorded values.

use mp_observe::{Histogram, HistogramSnapshot, Snapshot, SpanSnapshot};
use proptest::prelude::*;

/// Fixed name pool so merged snapshots overlap on some keys and not
/// others — both paths of the merge are exercised.
const NAMES: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

/// Shared histogram bounds: merge requires equal bounds per name.
const BOUNDS: [u64; 4] = [2, 4, 8, 16];

/// Strategy: a snapshot with arbitrary-but-small counter/gauge values,
/// one histogram and one span drawn from the same name pool. Values are
/// kept below 2^32 so triple merges cannot overflow u64.
fn snapshot_strategy() -> impl Strategy<Value = Snapshot> {
    (
        0u64..1000,
        prop::collection::vec((0usize..NAMES.len(), 0u64..1 << 32), 0..6),
        prop::collection::vec((0usize..NAMES.len(), 0u64..1 << 32), 0..6),
        prop::collection::vec((0usize..NAMES.len(), 0u64..64), 0..6),
    )
        .prop_map(|(clock, counters, gauges, hist_values)| {
            let mut snap = Snapshot::new(clock);
            for (name, v) in counters {
                *snap.counters.entry(NAMES[name].to_owned()).or_insert(0) += v;
            }
            for (name, v) in gauges {
                let g = snap.gauges.entry(NAMES[name].to_owned()).or_insert(0);
                *g = (*g).max(v);
            }
            for (name, v) in hist_values {
                let h = Histogram::live(&BOUNDS);
                h.record(v);
                snap.histograms
                    .entry(NAMES[name].to_owned())
                    .and_modify(|existing: &mut HistogramSnapshot| {
                        for (b, add) in existing.buckets.iter_mut().zip(h.snapshot().buckets) {
                            *b += add;
                        }
                        existing.count += 1;
                        existing.sum += v;
                    })
                    .or_insert_with(|| h.snapshot());
                snap.spans
                    .entry(NAMES[name].to_owned())
                    .and_modify(|s: &mut SpanSnapshot| {
                        s.count += 1;
                        s.units += v;
                    })
                    .or_insert(SpanSnapshot { count: 1, units: v });
            }
            snap
        })
}

fn merged(a: &Snapshot, b: &Snapshot) -> Snapshot {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    fn merge_is_commutative(a in snapshot_strategy(), b in snapshot_strategy()) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    fn merge_is_associative(
        a in snapshot_strategy(),
        b in snapshot_strategy(),
        c in snapshot_strategy(),
    ) {
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    fn merge_identity_is_the_empty_snapshot(a in snapshot_strategy()) {
        // Merging the zero-clock empty snapshot changes nothing, on
        // either side.
        let empty = Snapshot::new(0);
        prop_assert_eq!(merged(&a, &empty), a.clone());
        prop_assert_eq!(merged(&empty, &a), a.clone());
    }

    fn serialization_is_deterministic_and_key_sorted(a in snapshot_strategy()) {
        let json = a.to_json();
        // Pure function of the value: a clone built through merge with
        // the empty snapshot (fresh allocations, different insertion
        // history) serializes byte-identically.
        let rebuilt = merged(&Snapshot::new(0), &a);
        prop_assert_eq!(&json, &rebuilt.to_json());

        // Every quoted key in each section appears in sorted order.
        // Keys are drawn from NAMES, which contains no JSON escapes.
        let keys: Vec<&str> = json
            .lines()
            .filter_map(|l| {
                let l = l.trim_start();
                let rest = l.strip_prefix('"')?;
                rest.split('"').next()
            })
            .filter(|k| NAMES.contains(k))
            .collect();
        // Four sections (counters, gauges, histograms, spans), each
        // independently sorted: split whenever order resets.
        let mut section: Vec<&str> = Vec::new();
        let mut sections = 0;
        for k in keys {
            if section.last().is_some_and(|last| *last > k) {
                section.clear();
                sections += 1;
            }
            prop_assert!(sections < 4, "more than four key sections in: {json}");
            section.push(k);
        }
        prop_assert!(json.ends_with('\n'), "snapshot JSON must end in a newline");
    }

    fn histogram_bounds_are_strictly_increasing(
        raw in prop::collection::vec(0u64..50, 0..12),
    ) {
        // Whatever mess goes in — duplicates, descending runs — the
        // effective bounds come out strictly increasing.
        let h = Histogram::live(&raw);
        let bounds = h.snapshot().bounds;
        prop_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds not strictly increasing: {bounds:?}"
        );
        let mut expect: Vec<u64> = raw.clone();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(bounds, expect);
    }

    fn histogram_accounts_for_every_recorded_value(
        raw_bounds in prop::collection::vec(1u64..100, 1..8),
        values in prop::collection::vec(0u64..120, 0..40),
    ) {
        let h = Histogram::live(&raw_bounds);
        for &v in &values {
            h.record(v);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
        prop_assert_eq!(snap.buckets.len(), snap.bounds.len() + 1);
        // Each bucket holds exactly the values its (inclusive) upper
        // bound admits and the previous bound excludes.
        for (i, &got) in snap.buckets.iter().enumerate() {
            let lo = if i == 0 { None } else { Some(snap.bounds[i - 1]) };
            let hi = snap.bounds.get(i).copied();
            let want = values
                .iter()
                .filter(|&&v| lo.is_none_or(|lo| v > lo) && hi.is_none_or(|hi| v <= hi))
                .count() as u64;
            prop_assert_eq!(got, want, "bucket {i} ({lo:?}, {hi:?}]");
        }
    }
}
