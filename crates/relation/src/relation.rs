//! Column-oriented relations (tables).

use crate::error::{RelationError, Result};
use crate::schema::{AttrKind, Attribute, Schema};
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A relation: a schema plus column-oriented storage.
///
/// Storage is one `Vec<Value>` per attribute, which suits the access
/// patterns of dependency discovery (whole-column scans) and of the paper's
/// leakage measurements (index-aligned column comparisons).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Relation {
    schema: Schema,
    columns: Vec<Vec<Value>>,
    n_rows: usize,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = vec![Vec::new(); schema.arity()];
        Self { schema, columns, n_rows: 0 }
    }

    /// Builds a relation from rows, checking arity and column type
    /// homogeneity (nulls are allowed in any column).
    pub fn from_rows(schema: Schema, rows: Vec<Vec<Value>>) -> Result<Self> {
        let mut builder = RelationBuilder::new(schema);
        for row in rows {
            builder.push_row(row)?;
        }
        Ok(builder.finish())
    }

    /// Builds a relation directly from columns.
    ///
    /// All columns must have equal length; types are checked the same way as
    /// [`Relation::from_rows`].
    pub fn from_columns(schema: Schema, columns: Vec<Vec<Value>>) -> Result<Self> {
        if columns.len() != schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: schema.arity(),
                got: columns.len(),
            });
        }
        let n_rows = columns.first().map_or(0, Vec::len);
        for (i, col) in columns.iter().enumerate() {
            if col.len() != n_rows {
                return Err(RelationError::ArityMismatch { expected: n_rows, got: col.len() });
            }
            check_column_homogeneous(schema.attribute(i)?, col)?;
        }
        Ok(Self { schema, columns, n_rows })
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Returns `true` if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// The column at `index`.
    pub fn column(&self, index: usize) -> Result<&[Value]> {
        self.columns
            .get(index)
            .map(Vec::as_slice)
            .ok_or(RelationError::IndexOutOfBounds { index, len: self.columns.len() })
    }

    /// The column named `name`.
    pub fn column_by_name(&self, name: &str) -> Result<&[Value]> {
        let idx = self.schema.index_of(name)?;
        self.column(idx)
    }

    /// The cell at (`row`, `col`).
    pub fn value(&self, row: usize, col: usize) -> Result<&Value> {
        let column = self.column(col)?;
        column.get(row).ok_or(RelationError::IndexOutOfBounds { index: row, len: self.n_rows })
    }

    /// Materialises row `row` as an owned vector.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.n_rows {
            return Err(RelationError::IndexOutOfBounds { index: row, len: self.n_rows });
        }
        Ok(self.columns.iter().map(|c| c[row].clone()).collect())
    }

    /// Iterator over materialised rows.
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.n_rows).map(move |r| self.columns.iter().map(|c| c[r].clone()).collect())
    }

    /// Projection onto the attributes at `indices` (vertical slice).
    pub fn project(&self, indices: &[usize]) -> Result<Relation> {
        let schema = self.schema.project(indices)?;
        let mut columns = Vec::with_capacity(indices.len());
        for &i in indices {
            columns.push(self.column(i)?.to_vec());
        }
        Ok(Relation { schema, columns, n_rows: self.n_rows })
    }

    /// Projection by attribute names.
    pub fn project_names(&self, names: &[&str]) -> Result<Relation> {
        let indices: Vec<usize> =
            names.iter().map(|n| self.schema.index_of(n)).collect::<Result<_>>()?;
        self.project(&indices)
    }

    /// Horizontal slice keeping only the tuples at `row_indices`
    /// (in the given order). Used to realise PSI-aligned intersections.
    pub fn select_rows(&self, row_indices: &[usize]) -> Result<Relation> {
        for &r in row_indices {
            if r >= self.n_rows {
                return Err(RelationError::IndexOutOfBounds { index: r, len: self.n_rows });
            }
        }
        let columns = self
            .columns
            .iter()
            .map(|c| row_indices.iter().map(|&r| c[r].clone()).collect())
            .collect();
        Ok(Relation { schema: self.schema.clone(), columns, n_rows: row_indices.len() })
    }

    /// Appends a row (type-checked).
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        for (i, v) in row.iter().enumerate() {
            check_value(self.schema.attribute(i)?, &self.columns[i], v)?;
        }
        for (i, v) in row.into_iter().enumerate() {
            self.columns[i].push(v);
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Appends all rows of `other` (schemas must be equal). Used when
    /// recombining horizontal slices.
    pub fn append(&mut self, other: &Relation) -> Result<()> {
        if self.schema != *other.schema() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                got: other.schema().arity(),
            });
        }
        for (mine, theirs) in self.columns.iter_mut().zip(&other.columns) {
            mine.extend(theirs.iter().cloned());
        }
        self.n_rows += other.n_rows;
        Ok(())
    }

    /// A copy of the relation with rows sorted by column `col` ascending
    /// (stable, nulls first per `Value`'s total order).
    pub fn sorted_by_column(&self, col: usize) -> Result<Relation> {
        let key = self.column(col)?;
        let mut order: Vec<usize> = (0..self.n_rows).collect();
        order.sort_by(|&a, &b| key[a].cmp(&key[b]));
        self.select_rows(&order)
    }

    /// Rows where `predicate` holds on the value of column `col`.
    pub fn filter_rows<F>(&self, col: usize, predicate: F) -> Result<Relation>
    where
        F: Fn(&Value) -> bool,
    {
        let column = self.column(col)?;
        let keep: Vec<usize> =
            (0..self.n_rows).filter(|&r| predicate(&column[r])).collect();
        self.select_rows(&keep)
    }

    /// Number of distinct values in column `col` (nulls count as one value).
    pub fn distinct_count(&self, col: usize) -> Result<usize> {
        let mut vals: Vec<&Value> = self.column(col)?.iter().collect();
        vals.sort();
        vals.dedup();
        Ok(vals.len())
    }
}

/// Checks a single value against the column's established non-null type.
fn check_value(attr: &Attribute, column: &[Value], v: &Value) -> Result<()> {
    if v.is_null() {
        return Ok(());
    }
    // Continuous columns accept any numeric; categorical accept a single
    // non-null variant (established by the first non-null value).
    match attr.kind {
        AttrKind::Continuous => {
            if v.as_f64().is_none() {
                return Err(RelationError::TypeMismatch {
                    column: attr.name.clone(),
                    expected: "numeric",
                    got: v.type_name(),
                });
            }
        }
        AttrKind::Categorical => {
            if let Some(first) = column.iter().find(|x| !x.is_null()) {
                let same = matches!(
                    (first, v),
                    (Value::Int(_), Value::Int(_))
                        | (Value::Float(_), Value::Float(_))
                        | (Value::Text(_), Value::Text(_))
                );
                if !same {
                    return Err(RelationError::TypeMismatch {
                        column: attr.name.clone(),
                        expected: first.type_name(),
                        got: v.type_name(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Checks a whole column for homogeneity.
fn check_column_homogeneous(attr: &Attribute, col: &[Value]) -> Result<()> {
    let mut seen: Vec<Value> = Vec::new();
    for v in col {
        check_value(attr, &seen, v)?;
        if !v.is_null() && seen.is_empty() {
            seen.push(v.clone());
        }
    }
    Ok(())
}

/// Incremental, type-checked relation builder.
#[derive(Debug, Clone)]
pub struct RelationBuilder {
    relation: Relation,
}

impl RelationBuilder {
    /// Starts an empty builder over `schema`.
    pub fn new(schema: Schema) -> Self {
        Self { relation: Relation::empty(schema) }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<&mut Self> {
        self.relation.push_row(row)?;
        Ok(self)
    }

    /// Finishes the build.
    pub fn finish(self) -> Relation {
        self.relation
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for r in 0..self.n_rows.min(20) {
            let cells: Vec<String> = self.columns.iter().map(|c| c[r].to_string()).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        if self.n_rows > 20 {
            writeln!(f, "... ({} rows total)", self.n_rows)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical("name"),
            Attribute::continuous("age"),
            Attribute::categorical("dept"),
        ])
        .unwrap()
    }

    fn sample() -> Relation {
        Relation::from_rows(
            schema(),
            vec![
                vec!["Alice".into(), 18i64.into(), "Sales".into()],
                vec!["Bob".into(), 22i64.into(), "CS".into()],
                vec!["Charlie".into(), 22i64.into(), "Sales".into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_and_access() {
        let r = sample();
        assert_eq!(r.n_rows(), 3);
        assert_eq!(r.arity(), 3);
        assert_eq!(*r.value(1, 0).unwrap(), Value::Text("Bob".into()));
        assert_eq!(r.column_by_name("age").unwrap()[2], Value::Int(22));
        assert_eq!(r.row(0).unwrap()[2], Value::Text("Sales".into()));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = Relation::from_rows(schema(), vec![vec!["x".into()]]).unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { expected: 3, got: 1 }));
    }

    #[test]
    fn categorical_type_homogeneity_enforced() {
        let err = Relation::from_rows(
            schema(),
            vec![
                vec!["Alice".into(), 18i64.into(), "Sales".into()],
                vec![Value::Int(5), 20i64.into(), "CS".into()],
            ],
        )
        .unwrap_err();
        assert!(matches!(err, RelationError::TypeMismatch { .. }));
    }

    #[test]
    fn continuous_rejects_text() {
        let err = Relation::from_rows(
            schema(),
            vec![vec!["Alice".into(), "old".into(), "Sales".into()]],
        )
        .unwrap_err();
        assert!(matches!(err, RelationError::TypeMismatch { .. }));
    }

    #[test]
    fn nulls_allowed_anywhere() {
        let r = Relation::from_rows(
            schema(),
            vec![vec![Value::Null, Value::Null, Value::Null]],
        )
        .unwrap();
        assert_eq!(r.n_rows(), 1);
    }

    #[test]
    fn continuous_accepts_mixed_int_float() {
        let r = Relation::from_rows(
            schema(),
            vec![
                vec!["A".into(), Value::Int(18), "S".into()],
                vec!["B".into(), Value::Float(22.5), "S".into()],
            ],
        )
        .unwrap();
        assert_eq!(r.column(1).unwrap()[1], Value::Float(22.5));
    }

    #[test]
    fn projection_and_selection() {
        let r = sample();
        let p = r.project_names(&["dept", "name"]).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.column(0).unwrap()[0], Value::Text("Sales".into()));

        let s = r.select_rows(&[2, 0]).unwrap();
        assert_eq!(s.n_rows(), 2);
        assert_eq!(*s.value(0, 0).unwrap(), Value::Text("Charlie".into()));
        assert!(r.select_rows(&[9]).is_err());
    }

    #[test]
    fn from_columns_checks_lengths() {
        let err = Relation::from_columns(
            schema(),
            vec![vec!["A".into()], vec![], vec!["S".into()]],
        )
        .unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { .. }));
    }

    #[test]
    fn distinct_counts() {
        let r = sample();
        assert_eq!(r.distinct_count(2).unwrap(), 2); // Sales, CS
        assert_eq!(r.distinct_count(1).unwrap(), 2); // 18, 22
    }

    #[test]
    fn empty_relation_behaviour() {
        let r = Relation::empty(schema());
        assert!(r.is_empty());
        assert_eq!(r.rows().count(), 0);
        assert_eq!(r.distinct_count(0).unwrap(), 0);
    }

    #[test]
    fn append_concatenates_rows() {
        let mut r = sample();
        let other = sample();
        r.append(&other).unwrap();
        assert_eq!(r.n_rows(), 6);
        assert_eq!(*r.value(3, 0).unwrap(), Value::Text("Alice".into()));
        // Mismatched schemas rejected.
        let narrow = Relation::empty(
            Schema::new(vec![Attribute::categorical("x")]).unwrap(),
        );
        assert!(r.append(&narrow).is_err());
    }

    #[test]
    fn sorted_by_column_orders_rows() {
        let r = sample().sorted_by_column(1).unwrap();
        let ages: Vec<_> = r.column(1).unwrap().to_vec();
        let mut expected = ages.clone();
        expected.sort();
        assert_eq!(ages, expected);
        // Stability: Bob (row 1) precedes Charlie (row 2) among age ties.
        assert_eq!(*r.value(1, 0).unwrap(), Value::Text("Bob".into()));
        assert_eq!(*r.value(2, 0).unwrap(), Value::Text("Charlie".into()));
    }

    #[test]
    fn filter_rows_by_predicate() {
        let r = sample()
            .filter_rows(2, |v| *v == Value::Text("Sales".into()))
            .unwrap();
        assert_eq!(r.n_rows(), 2);
        assert!(r.column(2).unwrap().iter().all(|v| *v == Value::Text("Sales".into())));
        let none = sample().filter_rows(2, |_| false).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn display_truncates() {
        let r = sample();
        let d = r.to_string();
        assert!(d.contains("Alice"));
    }
}
