//! Column-oriented relations (tables).

use crate::column::{check_column_kind, check_kind, Column, ColumnBuilder};
use crate::error::{RelationError, Result};
use crate::schema::Schema;
use crate::value::{Value, ValueRef};
use serde::{content_get, Content, DeError, Deserialize, Serialize};
use std::fmt;

/// A relation: a schema plus typed column-oriented storage.
///
/// Storage is one [`Column`] per attribute — dictionary-encoded codes for
/// categorical text, `i64`/`f64` vectors with null bitmaps for numerics —
/// which suits the access patterns of dependency discovery (whole-column
/// PLI grouping) and of the paper's leakage measurements (index-aligned
/// column comparisons). [`Value`] remains the boundary type: rows go in
/// and out as `Vec<Value>`, and [`Relation::column_values`] materialises a
/// column for Value-level consumers (CSV, serde packages, naive oracle
/// baselines).
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = (0..schema.arity()).map(|_| Column::default()).collect();
        Self {
            schema,
            columns,
            n_rows: 0,
        }
    }

    /// Builds a relation from rows, checking arity and column type
    /// homogeneity (nulls are allowed in any column).
    pub fn from_rows(schema: Schema, rows: Vec<Vec<Value>>) -> Result<Self> {
        let mut builder = RelationBuilder::new(schema);
        for row in rows {
            builder.push_row(row)?;
        }
        Ok(builder.finish())
    }

    /// Builds a relation directly from `Value` columns (the boundary
    /// representation).
    ///
    /// All columns must have equal length; types are checked the same way
    /// as [`Relation::from_rows`].
    pub fn from_columns(schema: Schema, columns: Vec<Vec<Value>>) -> Result<Self> {
        if columns.len() != schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: schema.arity(),
                got: columns.len(),
            });
        }
        let n_rows = columns.first().map_or(0, Vec::len);
        let mut typed = Vec::with_capacity(columns.len());
        for (i, col) in columns.into_iter().enumerate() {
            let attr = schema.attribute(i)?.clone();
            if col.len() != n_rows {
                return Err(RelationError::ColumnLengthMismatch {
                    column: attr.name.clone(),
                    expected: n_rows,
                    got: col.len(),
                });
            }
            let mut b = ColumnBuilder::new(attr);
            for v in col {
                b.push(v)?;
            }
            typed.push(b.finish());
        }
        Ok(Self {
            schema,
            columns: typed,
            n_rows,
        })
    }

    /// Builds a relation directly from typed columns — the fast path for
    /// generators that already produce codes/floats. Lengths and kind
    /// compatibility are checked; homogeneity is implied by the typed
    /// layouts (boxed columns are scanned).
    pub fn from_typed_columns(schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if columns.len() != schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: schema.arity(),
                got: columns.len(),
            });
        }
        let n_rows = columns.first().map_or(0, Column::len);
        for (i, col) in columns.iter().enumerate() {
            let attr = schema.attribute(i)?;
            if col.len() != n_rows {
                return Err(RelationError::ColumnLengthMismatch {
                    column: attr.name.clone(),
                    expected: n_rows,
                    got: col.len(),
                });
            }
            check_column_kind(attr, col)?;
        }
        Ok(Self {
            schema,
            columns,
            n_rows,
        })
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Returns `true` if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// The typed column at `index`.
    pub fn column(&self, index: usize) -> Result<&Column> {
        self.columns
            .get(index)
            .ok_or(RelationError::IndexOutOfBounds {
                index,
                len: self.columns.len(),
            })
    }

    /// The typed column named `name`.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        let idx = self.schema.index_of(name)?;
        self.column(idx)
    }

    /// The column at `index` materialised as owned [`Value`]s — the
    /// boundary representation for Value-level consumers (naive baselines,
    /// exchange packages).
    pub fn column_values(&self, index: usize) -> Result<Vec<Value>> {
        Ok(self.column(index)?.to_values())
    }

    /// The column named `name` materialised as owned [`Value`]s.
    pub fn column_values_by_name(&self, name: &str) -> Result<Vec<Value>> {
        Ok(self.column_by_name(name)?.to_values())
    }

    /// The cell at (`row`, `col`), materialised.
    pub fn value(&self, row: usize, col: usize) -> Result<Value> {
        Ok(self.value_ref(row, col)?.to_value())
    }

    /// Borrowing view of the cell at (`row`, `col`).
    pub fn value_ref(&self, row: usize, col: usize) -> Result<ValueRef<'_>> {
        let column = self.column(col)?;
        if row >= self.n_rows {
            return Err(RelationError::IndexOutOfBounds {
                index: row,
                len: self.n_rows,
            });
        }
        Ok(column.value_ref(row))
    }

    /// Materialises row `row` as an owned vector.
    pub fn row(&self, row: usize) -> Result<Vec<Value>> {
        if row >= self.n_rows {
            return Err(RelationError::IndexOutOfBounds {
                index: row,
                len: self.n_rows,
            });
        }
        Ok(self.columns.iter().map(|c| c.value(row)).collect())
    }

    /// Iterator over materialised rows.
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.n_rows).map(move |r| self.columns.iter().map(|c| c.value(r)).collect())
    }

    /// Projection onto the attributes at `indices` (vertical slice).
    pub fn project(&self, indices: &[usize]) -> Result<Relation> {
        let schema = self.schema.project(indices)?;
        let mut columns = Vec::with_capacity(indices.len());
        for &i in indices {
            columns.push(self.column(i)?.clone());
        }
        Ok(Relation {
            schema,
            columns,
            n_rows: self.n_rows,
        })
    }

    /// Projection by attribute names.
    pub fn project_names(&self, names: &[&str]) -> Result<Relation> {
        let indices: Vec<usize> = names
            .iter()
            .map(|n| self.schema.index_of(n))
            .collect::<Result<_>>()?;
        self.project(&indices)
    }

    /// Horizontal slice keeping only the tuples at `row_indices`
    /// (in the given order). Used to realise PSI-aligned intersections.
    /// Dictionary-encoded columns copy codes, not strings.
    pub fn select_rows(&self, row_indices: &[usize]) -> Result<Relation> {
        for &r in row_indices {
            if r >= self.n_rows {
                return Err(RelationError::IndexOutOfBounds {
                    index: r,
                    len: self.n_rows,
                });
            }
        }
        let columns = self.columns.iter().map(|c| c.select(row_indices)).collect();
        Ok(Relation {
            schema: self.schema.clone(),
            columns,
            n_rows: row_indices.len(),
        })
    }

    /// Appends a row (type-checked; a failed row leaves the relation
    /// unchanged).
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        for (i, v) in row.iter().enumerate() {
            check_kind(self.schema.attribute(i)?, &self.columns[i], v)?;
        }
        for (i, v) in row.into_iter().enumerate() {
            self.columns[i].push_value(v);
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Appends all rows of `other` (schemas must be equal). Used when
    /// recombining horizontal slices. Dictionary columns merge their
    /// dictionaries and remap codes.
    pub fn append(&mut self, other: &Relation) -> Result<()> {
        if self.schema != *other.schema() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                got: other.schema().arity(),
            });
        }
        for (mine, theirs) in self.columns.iter_mut().zip(&other.columns) {
            mine.extend_from(theirs);
        }
        self.n_rows += other.n_rows;
        Ok(())
    }

    /// A copy of the relation with rows sorted by column `col` ascending
    /// (stable, nulls first per `Value`'s total order).
    pub fn sorted_by_column(&self, col: usize) -> Result<Relation> {
        let key = self.column(col)?;
        let mut order: Vec<usize> = (0..self.n_rows).collect();
        order.sort_by(|&a, &b| key.value_ref(a).cmp(&key.value_ref(b)));
        self.select_rows(&order)
    }

    /// Rows where `predicate` holds on the value of column `col`.
    pub fn filter_rows<F>(&self, col: usize, predicate: F) -> Result<Relation>
    where
        F: Fn(ValueRef<'_>) -> bool,
    {
        let column = self.column(col)?;
        let keep: Vec<usize> = (0..self.n_rows)
            .filter(|&r| predicate(column.value_ref(r)))
            .collect();
        self.select_rows(&keep)
    }

    /// Number of distinct values in column `col` (nulls count as one value).
    pub fn distinct_count(&self, col: usize) -> Result<usize> {
        Ok(self.column(col)?.distinct_count())
    }
}

// Manual serde impls preserving the wire shape of the former derived
// `Vec<Vec<Value>>` storage: columns serialize as arrays of Values, so
// exchange packages written before the columnar refactor still parse and
// new packages stay readable by Value-level consumers.
impl Serialize for Relation {
    fn to_content(&self) -> Content {
        Content::Map(vec![
            ("schema".to_owned(), self.schema.to_content()),
            (
                "columns".to_owned(),
                Content::Seq(
                    self.columns
                        .iter()
                        .map(|c| c.to_values().to_content())
                        .collect(),
                ),
            ),
            ("n_rows".to_owned(), self.n_rows.to_content()),
        ])
    }
}

impl Deserialize for Relation {
    fn from_content(content: &Content) -> std::result::Result<Self, DeError> {
        let map = content
            .as_map()
            .ok_or_else(|| DeError::expected("object", "Relation", content))?;
        let schema = Schema::from_content(
            content_get(map, "schema")
                .ok_or_else(|| DeError::missing_field("schema", "Relation"))?,
        )?;
        let columns = Vec::<Vec<Value>>::from_content(
            content_get(map, "columns")
                .ok_or_else(|| DeError::missing_field("columns", "Relation"))?,
        )?;
        let n_rows = usize::from_content(
            content_get(map, "n_rows")
                .ok_or_else(|| DeError::missing_field("n_rows", "Relation"))?,
        )?;
        let relation = Relation::from_columns(schema, columns)
            .map_err(|e| DeError::custom(format!("invalid Relation: {e}")))?;
        if relation.n_rows() != n_rows {
            return Err(DeError::custom(format!(
                "Relation n_rows field says {n_rows} but columns have {} rows",
                relation.n_rows()
            )));
        }
        Ok(relation)
    }
}

/// Incremental, type-checked relation builder. Categorical cells go
/// through a hashed dictionary lookup, so bulk loads pay O(1) per cell.
#[derive(Debug, Clone)]
pub struct RelationBuilder {
    schema: Schema,
    builders: Vec<ColumnBuilder>,
    n_rows: usize,
}

impl RelationBuilder {
    /// Starts an empty builder over `schema`.
    pub fn new(schema: Schema) -> Self {
        let builders = schema
            .attributes()
            .iter()
            .map(|a| ColumnBuilder::new(a.clone()))
            .collect();
        Self {
            schema,
            builders,
            n_rows: 0,
        }
    }

    /// Appends a row (a failed row leaves no partial state).
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<&mut Self> {
        if row.len() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                got: row.len(),
            });
        }
        for (b, v) in self.builders.iter().zip(&row) {
            b.check(v)?;
        }
        for (b, v) in self.builders.iter_mut().zip(row) {
            b.push(v)?;
        }
        self.n_rows += 1;
        Ok(self)
    }

    /// Finishes the build.
    pub fn finish(self) -> Relation {
        Relation {
            schema: self.schema,
            columns: self
                .builders
                .into_iter()
                .map(ColumnBuilder::finish)
                .collect(),
            n_rows: self.n_rows,
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for r in 0..self.n_rows.min(20) {
            let cells: Vec<String> = self
                .columns
                .iter()
                .map(|c| c.value_ref(r).to_string())
                .collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        if self.n_rows > 20 {
            writeln!(f, "... ({} rows total)", self.n_rows)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn schema() -> Schema {
        Schema::new(vec![
            Attribute::categorical("name"),
            Attribute::continuous("age"),
            Attribute::categorical("dept"),
        ])
        .unwrap()
    }

    fn sample() -> Relation {
        Relation::from_rows(
            schema(),
            vec![
                vec!["Alice".into(), 18i64.into(), "Sales".into()],
                vec!["Bob".into(), 22i64.into(), "CS".into()],
                vec!["Charlie".into(), 22i64.into(), "Sales".into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn build_and_access() {
        let r = sample();
        assert_eq!(r.n_rows(), 3);
        assert_eq!(r.arity(), 3);
        assert_eq!(r.value(1, 0).unwrap(), Value::Text("Bob".into()));
        assert_eq!(r.value_ref(1, 0).unwrap(), ValueRef::Text("Bob"));
        assert_eq!(r.column_by_name("age").unwrap().value(2), Value::Int(22));
        assert_eq!(r.row(0).unwrap()[2], Value::Text("Sales".into()));
    }

    #[test]
    fn columns_are_typed() {
        let r = sample();
        assert!(matches!(r.column(0).unwrap(), Column::Categorical { .. }));
        assert!(matches!(r.column(1).unwrap(), Column::Int { .. }));
        let (dict, codes) = r.column(2).unwrap().as_categorical_parts().unwrap();
        assert_eq!(dict, ["Sales".to_owned(), "CS".to_owned()]);
        assert_eq!(codes, [1, 2, 1]);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = Relation::from_rows(schema(), vec![vec!["x".into()]]).unwrap_err();
        assert!(matches!(
            err,
            RelationError::ArityMismatch {
                expected: 3,
                got: 1
            }
        ));
    }

    #[test]
    fn categorical_type_homogeneity_enforced() {
        let err = Relation::from_rows(
            schema(),
            vec![
                vec!["Alice".into(), 18i64.into(), "Sales".into()],
                vec![Value::Int(5), 20i64.into(), "CS".into()],
            ],
        )
        .unwrap_err();
        assert!(matches!(err, RelationError::TypeMismatch { .. }));
    }

    #[test]
    fn continuous_rejects_text() {
        let err = Relation::from_rows(
            schema(),
            vec![vec!["Alice".into(), "old".into(), "Sales".into()]],
        )
        .unwrap_err();
        assert!(matches!(err, RelationError::TypeMismatch { .. }));
    }

    #[test]
    fn nulls_allowed_anywhere() {
        let r = Relation::from_rows(schema(), vec![vec![Value::Null, Value::Null, Value::Null]])
            .unwrap();
        assert_eq!(r.n_rows(), 1);
    }

    #[test]
    fn continuous_accepts_mixed_int_float() {
        let r = Relation::from_rows(
            schema(),
            vec![
                vec!["A".into(), Value::Int(18), "S".into()],
                vec!["B".into(), Value::Float(22.5), "S".into()],
            ],
        )
        .unwrap();
        assert_eq!(r.column(1).unwrap().value(1), Value::Float(22.5));
        assert_eq!(r.column(1).unwrap().value(0), Value::Int(18));
    }

    #[test]
    fn projection_and_selection() {
        let r = sample();
        let p = r.project_names(&["dept", "name"]).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.column(0).unwrap().value(0), Value::Text("Sales".into()));

        let s = r.select_rows(&[2, 0]).unwrap();
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.value(0, 0).unwrap(), Value::Text("Charlie".into()));
        assert!(r.select_rows(&[9]).is_err());
    }

    #[test]
    fn from_columns_checks_lengths() {
        let err =
            Relation::from_columns(schema(), vec![vec!["A".into()], vec![], vec!["S".into()]])
                .unwrap_err();
        assert!(matches!(
            err,
            RelationError::ColumnLengthMismatch {
                expected: 1,
                got: 0,
                ..
            }
        ));
        match err {
            RelationError::ColumnLengthMismatch { column, .. } => assert_eq!(column, "age"),
            _ => unreachable!(),
        }
    }

    #[test]
    fn from_typed_columns_validates() {
        let small = Schema::new(vec![
            Attribute::categorical("label"),
            Attribute::continuous("score"),
        ])
        .unwrap();
        let label = Column::Categorical {
            dict: vec!["a".into(), "b".into()],
            codes: vec![1, 2, 0],
        };
        let score = Column::Float {
            values: vec![0.5, 1.5, 0.0],
            nulls: {
                let mut b = crate::column::Bitmap::new();
                b.push(false);
                b.push(false);
                b.push(true);
                b
            },
            ints: crate::column::Bitmap::filled(3, false),
        };
        let r = Relation::from_typed_columns(small.clone(), vec![label.clone(), score]).unwrap();
        assert_eq!(r.n_rows(), 3);
        assert_eq!(r.value(2, 0).unwrap(), Value::Null);

        // Ragged lengths rejected with the dedicated variant.
        let short = Column::Int {
            values: vec![1],
            nulls: crate::column::Bitmap::filled(1, false),
        };
        let err =
            Relation::from_typed_columns(small.clone(), vec![label.clone(), short]).unwrap_err();
        assert!(matches!(
            err,
            RelationError::ColumnLengthMismatch {
                expected: 3,
                got: 1,
                ..
            }
        ));

        // Text column under a continuous attribute rejected.
        let err = Relation::from_typed_columns(
            Schema::new(vec![Attribute::continuous("x"), Attribute::continuous("y")]).unwrap(),
            vec![
                label,
                Column::Int {
                    values: vec![1, 2, 3],
                    nulls: crate::column::Bitmap::filled(3, false),
                },
            ],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            RelationError::TypeMismatch {
                expected: "numeric",
                got: "text",
                ..
            }
        ));
    }

    #[test]
    fn distinct_counts() {
        let r = sample();
        assert_eq!(r.distinct_count(2).unwrap(), 2); // Sales, CS
        assert_eq!(r.distinct_count(1).unwrap(), 2); // 18, 22
    }

    #[test]
    fn empty_relation_behaviour() {
        let r = Relation::empty(schema());
        assert!(r.is_empty());
        assert_eq!(r.rows().count(), 0);
        assert_eq!(r.distinct_count(0).unwrap(), 0);
    }

    #[test]
    fn append_concatenates_rows() {
        let mut r = sample();
        let other = sample();
        r.append(&other).unwrap();
        assert_eq!(r.n_rows(), 6);
        assert_eq!(r.value(3, 0).unwrap(), Value::Text("Alice".into()));
        // Dictionary stayed deduplicated across the append.
        let (dict, _) = r.column(0).unwrap().as_categorical_parts().unwrap();
        assert_eq!(dict.len(), 3);
        // Mismatched schemas rejected.
        let narrow = Relation::empty(Schema::new(vec![Attribute::categorical("x")]).unwrap());
        assert!(r.append(&narrow).is_err());
    }

    #[test]
    fn sorted_by_column_orders_rows() {
        let r = sample().sorted_by_column(1).unwrap();
        let ages: Vec<_> = r.column_values(1).unwrap();
        let mut expected = ages.clone();
        expected.sort();
        assert_eq!(ages, expected);
        // Stability: Bob (row 1) precedes Charlie (row 2) among age ties.
        assert_eq!(r.value(1, 0).unwrap(), Value::Text("Bob".into()));
        assert_eq!(r.value(2, 0).unwrap(), Value::Text("Charlie".into()));
    }

    #[test]
    fn filter_rows_by_predicate() {
        let r = sample()
            .filter_rows(2, |v| v == ValueRef::Text("Sales"))
            .unwrap();
        assert_eq!(r.n_rows(), 2);
        assert!(r
            .column(2)
            .unwrap()
            .iter()
            .all(|v| v == ValueRef::Text("Sales")));
        let none = sample().filter_rows(2, |_| false).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn serde_roundtrip_preserves_value_wire_shape() {
        let r = sample();
        let content = r.to_content();
        // Columns serialize as arrays of Values (the pre-columnar shape).
        let map = content.as_map().unwrap();
        let cols = content_get(map, "columns").unwrap().as_seq().unwrap();
        assert_eq!(cols.len(), 3);
        assert_eq!(cols[0].as_seq().unwrap().len(), 3);
        let back = Relation::from_content(&content).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn display_truncates() {
        let r = sample();
        let d = r.to_string();
        assert!(d.contains("Alice"));
    }
}
