//! Error type shared by the relational substrate.

use std::fmt;

/// Errors produced while building, reading or transforming relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A row had a different arity than the schema.
    ArityMismatch {
        /// Number of attributes in the schema.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A column supplied to `from_columns` had a different length than the
    /// first column.
    ColumnLengthMismatch {
        /// Name of the offending column.
        column: String,
        /// Length of the first column (the expected row count).
        expected: usize,
        /// Length of the offending column.
        got: usize,
    },
    /// A value's type did not match the column's established type.
    TypeMismatch {
        /// Column name.
        column: String,
        /// Type already established for the column.
        expected: &'static str,
        /// Type of the offending value.
        got: &'static str,
    },
    /// An attribute name was referenced that the schema does not contain.
    UnknownAttribute(String),
    /// An attribute index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// Number of attributes.
        len: usize,
    },
    /// Two attributes in a schema share a name.
    DuplicateAttribute(String),
    /// CSV input could not be parsed.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// Underlying I/O failure (message only, to keep the error `Clone + Eq`).
    Io(String),
    /// The operation requires a non-empty relation.
    EmptyRelation,
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "row arity mismatch: schema has {expected} attributes, row has {got}"
                )
            }
            RelationError::ColumnLengthMismatch {
                column,
                expected,
                got,
            } => {
                write!(
                    f,
                    "column `{column}` has {got} rows, expected {expected} to match the first column"
                )
            }
            RelationError::TypeMismatch {
                column,
                expected,
                got,
            } => {
                write!(
                    f,
                    "type mismatch in column `{column}`: expected {expected}, got {got}"
                )
            }
            RelationError::UnknownAttribute(name) => {
                write!(f, "unknown attribute `{name}`")
            }
            RelationError::IndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "attribute index {index} out of bounds for schema of {len} attributes"
                )
            }
            RelationError::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute name `{name}`")
            }
            RelationError::Csv { line, message } => {
                write!(f, "CSV parse error at line {line}: {message}")
            }
            RelationError::Io(msg) => write!(f, "I/O error: {msg}"),
            RelationError::EmptyRelation => write!(f, "operation requires a non-empty relation"),
        }
    }
}

impl std::error::Error for RelationError {}

impl From<std::io::Error> for RelationError {
    fn from(e: std::io::Error) -> Self {
        RelationError::Io(e.to_string())
    }
}

/// Convenience alias used across the substrate.
pub type Result<T> = std::result::Result<T, RelationError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = RelationError::ArityMismatch {
            expected: 4,
            got: 3,
        };
        assert!(e.to_string().contains("4"));
        assert!(e.to_string().contains("3"));

        let e = RelationError::TypeMismatch {
            column: "age".into(),
            expected: "int",
            got: "text",
        };
        assert!(e.to_string().contains("age"));
        assert!(e.to_string().contains("int"));

        let e = RelationError::Csv {
            line: 7,
            message: "unterminated quote".into(),
        };
        assert!(e.to_string().contains("line 7"));

        let e = RelationError::ColumnLengthMismatch {
            column: "score".into(),
            expected: 10,
            got: 7,
        };
        assert!(e.to_string().contains("score"));
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("7"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing.csv");
        let e: RelationError = io.into();
        assert!(matches!(e, RelationError::Io(_)));
        assert!(e.to_string().contains("missing.csv"));
    }
}
