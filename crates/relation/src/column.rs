//! Typed columnar storage — the representation underneath [`crate::Relation`].
//!
//! Every quantity the paper computes — PLIs for TANE/AFD discovery,
//! index-aligned exact-match counts (Definition 2.2), ε-ball hits and MSE
//! (Definition 2.3) — is a whole-column scan, so cells are stored in typed
//! columns instead of boxed [`Value`] enums:
//!
//! * [`Column::Categorical`] — dictionary-encoded text: one `u32` code per
//!   row, **code 0 reserved for null**, code `k ≥ 1` meaning `dict[k - 1]`.
//!   Equality tests and partition grouping compare codes, never strings.
//! * [`Column::Int`] — `Vec<i64>` plus a null [`Bitmap`] (null rows hold a
//!   `0` sentinel and are ignored through the mask).
//! * [`Column::Float`] — `Vec<f64>` plus a null bitmap, plus an `ints`
//!   bitmap marking rows that materialise as [`Value::Int`] (mixed
//!   int/float numeric columns are stored unified as `f64`; only integers
//!   exactly representable in an `f64` take this path).
//! * [`Column::Boxed`] — the boxed fallback for the rare heterogeneous
//!   column a typed layout cannot represent losslessly (e.g. an integer
//!   beyond ±2^53 mixed with floats). Semantically identical to the
//!   pre-columnar `Vec<Value>` storage.
//!
//! `Value` remains the *boundary* type: CSV I/O, serde exchange packages
//! and the public cell API materialise `Value`s at the edge, while the hot
//! paths (PLI construction, leakage counting, MSE) read the typed data
//! directly. All representations round-trip through `Value` rows exactly,
//! and grouping/equality semantics are bit-identical to `Value`'s
//! canonical comparison rules (NaN ≡ NaN, `-0.0` ≡ `0.0`, `Int(k)` ≡
//! `Float(k as f64)`).

use crate::error::{RelationError, Result};
use crate::schema::{AttrKind, Attribute};
use crate::value::{canonical_f64_bits, Value, ValueRef};
use std::collections::HashMap;

/// Largest integer magnitude exactly representable in an `f64`.
const INT_EXACT_IN_F64: i64 = 1 << 53;

#[inline]
fn int_fits_f64(i: i64) -> bool {
    (-INT_EXACT_IN_F64..=INT_EXACT_IN_F64).contains(&i)
}

/// A packed bitmap used as the null mask (and int-row mask) of typed
/// columns. Bit set = property holds for that row.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// A bitmap of `len` bits, all set to `value`.
    pub fn filled(len: usize, value: bool) -> Self {
        let mut words = vec![if value { !0u64 } else { 0u64 }; len.div_ceil(64)];
        if value {
            if let Some(last) = words.last_mut() {
                let used = len % 64;
                if used != 0 {
                    *last = (1u64 << used) - 1;
                }
            }
        }
        Self {
            words,
            len,
            ones: if value { len } else { 0 },
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the bitmap has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    /// `true` when no bit is set.
    pub fn none_set(&self) -> bool {
        self.ones == 0
    }

    /// `true` when every bit is set.
    pub fn all_set(&self) -> bool {
        self.ones == self.len
    }

    /// The bit at `i` (must be in bounds).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Appends one bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        if self.len.is_multiple_of(64) {
            self.words.push(0);
        }
        if bit {
            self.words[self.len / 64] |= 1u64 << (self.len % 64);
            self.ones += 1;
        }
        self.len += 1;
    }

    /// The bitmap restricted to `rows` (in the given order).
    pub fn select(&self, rows: &[usize]) -> Bitmap {
        let mut out = Bitmap::new();
        for &r in rows {
            out.push(self.get(r));
        }
        out
    }

    /// Appends all bits of `other`.
    pub fn extend_from(&mut self, other: &Bitmap) {
        for i in 0..other.len {
            self.push(other.get(i));
        }
    }
}

/// A typed column of a relation. See the module docs for the layout and
/// the null-code/bitmap conventions.
#[derive(Debug, Clone)]
pub enum Column {
    /// Dictionary-encoded text (code 0 = null, `k ≥ 1` → `dict[k - 1]`).
    Categorical {
        /// Distinct labels in first-occurrence order.
        dict: Vec<String>,
        /// Per-row codes into `dict` (shifted by one; 0 is null).
        codes: Vec<u32>,
    },
    /// 64-bit integers with a null mask (null rows hold `0`).
    Int {
        /// Per-row values (`0` sentinel under null).
        values: Vec<i64>,
        /// Null mask.
        nulls: Bitmap,
    },
    /// 64-bit floats with a null mask; `ints` marks rows that materialise
    /// as [`Value::Int`] so mixed numeric columns round-trip exactly.
    Float {
        /// Per-row values (`0.0` sentinel under null).
        values: Vec<f64>,
        /// Null mask.
        nulls: Bitmap,
        /// Rows that were pushed as integers.
        ints: Bitmap,
    },
    /// Boxed fallback for heterogeneous columns no typed layout represents
    /// losslessly.
    Boxed(Vec<Value>),
}

impl Default for Column {
    /// The empty column (starts as an all-null integer column and promotes
    /// itself on the first non-null push).
    fn default() -> Self {
        Column::Int {
            values: Vec::new(),
            nulls: Bitmap::new(),
        }
    }
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Categorical { codes, .. } => codes.len(),
            Column::Int { values, .. } => values.len(),
            Column::Float { values, .. } => values.len(),
            Column::Boxed(values) => values.len(),
        }
    }

    /// `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Categorical { codes, .. } => codes.iter().filter(|&&c| c == 0).count(),
            Column::Int { nulls, .. } => nulls.count_ones(),
            Column::Float { nulls, .. } => nulls.count_ones(),
            Column::Boxed(values) => values.iter().filter(|v| v.is_null()).count(),
        }
    }

    /// `true` when row `i` is null (must be in bounds).
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            Column::Categorical { codes, .. } => codes[i] == 0,
            Column::Int { nulls, .. } => nulls.get(i),
            Column::Float { nulls, .. } => nulls.get(i),
            Column::Boxed(values) => values[i].is_null(),
        }
    }

    /// Borrowing view of the cell at `i` (must be in bounds).
    #[inline]
    pub fn value_ref(&self, i: usize) -> ValueRef<'_> {
        match self {
            Column::Categorical { dict, codes } => match codes[i] {
                0 => ValueRef::Null,
                c => ValueRef::Text(&dict[(c - 1) as usize]),
            },
            Column::Int { values, nulls } => {
                if nulls.get(i) {
                    ValueRef::Null
                } else {
                    ValueRef::Int(values[i])
                }
            }
            Column::Float {
                values,
                nulls,
                ints,
            } => {
                if nulls.get(i) {
                    ValueRef::Null
                } else if ints.get(i) {
                    ValueRef::Int(values[i] as i64)
                } else {
                    ValueRef::Float(values[i])
                }
            }
            Column::Boxed(values) => values[i].as_value_ref(),
        }
    }

    /// Owned cell at `i` (must be in bounds).
    pub fn value(&self, i: usize) -> Value {
        self.value_ref(i).to_value()
    }

    /// Numeric view of the cell at `i` (`Int` widens to `f64`; nulls and
    /// text yield `None`). Must be in bounds.
    #[inline]
    pub fn f64_at(&self, i: usize) -> Option<f64> {
        match self {
            Column::Categorical { .. } => None,
            Column::Int { values, nulls } => {
                if nulls.get(i) {
                    None
                } else {
                    Some(values[i] as f64)
                }
            }
            Column::Float { values, nulls, .. } => {
                if nulls.get(i) {
                    None
                } else {
                    Some(values[i])
                }
            }
            Column::Boxed(values) => values[i].as_f64(),
        }
    }

    /// Iterator of borrowing cell views in row order.
    pub fn iter(&self) -> impl Iterator<Item = ValueRef<'_>> + '_ {
        (0..self.len()).map(move |i| self.value_ref(i))
    }

    /// Materialises the whole column as owned [`Value`]s (the boundary
    /// representation used by CSV/serde and the naive oracle baselines).
    pub fn to_values(&self) -> Vec<Value> {
        match self {
            Column::Boxed(values) => values.clone(),
            _ => self.iter().map(|v| v.to_value()).collect(),
        }
    }

    /// The float data and null mask of a [`Column::Float`] column.
    pub fn as_float_parts(&self) -> Option<(&[f64], &Bitmap)> {
        match self {
            Column::Float { values, nulls, .. } => Some((values, nulls)),
            _ => None,
        }
    }

    /// The integer data and null mask of a [`Column::Int`] column.
    pub fn as_int_parts(&self) -> Option<(&[i64], &Bitmap)> {
        match self {
            Column::Int { values, nulls } => Some((values, nulls)),
            _ => None,
        }
    }

    /// The dictionary and codes of a [`Column::Categorical`] column.
    pub fn as_categorical_parts(&self) -> Option<(&[String], &[u32])> {
        match self {
            Column::Categorical { dict, codes } => Some((dict, codes)),
            _ => None,
        }
    }

    /// A short name for the physical representation, for reports.
    pub fn repr_name(&self) -> &'static str {
        match self {
            Column::Categorical { .. } => "dict",
            Column::Int { .. } => "i64",
            Column::Float { .. } => "f64",
            Column::Boxed(_) => "boxed",
        }
    }

    /// The established cell type of the column — the variant name of the
    /// first non-null value, or `None` for an all-null column. This drives
    /// the categorical homogeneity check's error messages.
    pub fn established_type(&self) -> Option<&'static str> {
        match self {
            Column::Categorical { codes, .. } => codes.iter().any(|&c| c != 0).then_some("text"),
            Column::Int { nulls, .. } => (!nulls.all_set()).then_some("int"),
            Column::Float { nulls, ints, .. } => {
                if nulls.all_set() {
                    None
                } else {
                    // The first non-null row decides int vs float.
                    (0..nulls.len()).find(|&i| !nulls.get(i)).map(|i| {
                        if ints.get(i) {
                            "int"
                        } else {
                            "float"
                        }
                    })
                }
            }
            Column::Boxed(values) => values.iter().find(|v| !v.is_null()).map(|v| v.type_name()),
        }
    }

    /// Per-row equality-class codes plus an exclusive upper bound on the
    /// codes, for counting-style partition construction. Two rows receive
    /// the same code iff their cells compare equal under [`Value`]'s
    /// canonical semantics (nulls form one class of their own).
    pub fn group_codes(&self) -> (Vec<u32>, usize) {
        match self {
            Column::Categorical { dict, codes } => (codes.clone(), dict.len() + 1),
            Column::Int { values, nulls } => {
                let mut lookup: HashMap<i64, u32> = HashMap::with_capacity(values.len().min(1024));
                let mut next = 1u32;
                let codes = values
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        if nulls.get(i) {
                            0
                        } else {
                            *lookup.entry(v).or_insert_with(|| {
                                let c = next;
                                next += 1;
                                c
                            })
                        }
                    })
                    .collect();
                (codes, next as usize)
            }
            Column::Float { values, nulls, .. } => {
                let mut lookup: HashMap<u64, u32> = HashMap::with_capacity(values.len().min(1024));
                let mut next = 1u32;
                let codes = values
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| {
                        if nulls.get(i) {
                            0
                        } else {
                            *lookup.entry(canonical_f64_bits(v)).or_insert_with(|| {
                                let c = next;
                                next += 1;
                                c
                            })
                        }
                    })
                    .collect();
                (codes, next as usize)
            }
            Column::Boxed(values) => {
                let mut lookup: HashMap<&Value, u32> =
                    HashMap::with_capacity(values.len().min(1024));
                let mut next = 0u32;
                let codes = values
                    .iter()
                    .map(|v| {
                        *lookup.entry(v).or_insert_with(|| {
                            let c = next;
                            next += 1;
                            c
                        })
                    })
                    .collect();
                (codes, next as usize)
            }
        }
    }

    /// Number of distinct values (nulls count as one distinct value).
    pub fn distinct_count(&self) -> usize {
        match self {
            Column::Categorical { dict, codes } => {
                // After row selection some dict entries may be unused, so
                // count the codes actually present.
                let mut seen = vec![false; dict.len() + 1];
                let mut distinct = 0;
                for &c in codes {
                    if !seen[c as usize] {
                        seen[c as usize] = true;
                        distinct += 1;
                    }
                }
                distinct
            }
            Column::Int { values, nulls } => {
                let mut distinct: Vec<i64> = values
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| !nulls.get(i))
                    .map(|(_, &v)| v)
                    .collect();
                distinct.sort_unstable();
                distinct.dedup();
                distinct.len() + usize::from(!nulls.none_set())
            }
            Column::Float { values, nulls, .. } => {
                let mut distinct: Vec<u64> = values
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| !nulls.get(i))
                    .map(|(_, &v)| canonical_f64_bits(v))
                    .collect();
                distinct.sort_unstable();
                distinct.dedup();
                distinct.len() + usize::from(!nulls.none_set())
            }
            Column::Boxed(values) => {
                let mut vals: Vec<&Value> = values.iter().collect();
                vals.sort();
                vals.dedup();
                vals.len()
            }
        }
    }

    /// The column restricted to `rows` (in the given order; indices must
    /// be in bounds). Dictionary-encoded columns copy codes and share the
    /// dictionary — no per-cell string clones.
    pub fn select(&self, rows: &[usize]) -> Column {
        match self {
            Column::Categorical { dict, codes } => Column::Categorical {
                dict: dict.clone(),
                codes: rows.iter().map(|&r| codes[r]).collect(),
            },
            Column::Int { values, nulls } => Column::Int {
                values: rows.iter().map(|&r| values[r]).collect(),
                nulls: nulls.select(rows),
            },
            Column::Float {
                values,
                nulls,
                ints,
            } => Column::Float {
                values: rows.iter().map(|&r| values[r]).collect(),
                nulls: nulls.select(rows),
                ints: ints.select(rows),
            },
            Column::Boxed(values) => {
                Column::Boxed(rows.iter().map(|&r| values[r].clone()).collect())
            }
        }
    }

    /// Appends one [`Value`], promoting the physical representation when
    /// the value does not fit the current one (all-null columns adopt the
    /// first non-null value's layout; `Int` + `Float` unify as `Float`
    /// when exact, and anything unrepresentable falls back to
    /// [`Column::Boxed`]). Storage-level only — kind/homogeneity checking
    /// happens in [`ColumnBuilder`] / `Relation`.
    pub fn push_value(&mut self, v: Value) {
        match v {
            Value::Null => match self {
                Column::Categorical { codes, .. } => codes.push(0),
                Column::Int { values, nulls } => {
                    values.push(0);
                    nulls.push(true);
                }
                Column::Float {
                    values,
                    nulls,
                    ints,
                } => {
                    values.push(0.0);
                    nulls.push(true);
                    ints.push(false);
                }
                Column::Boxed(values) => values.push(Value::Null),
            },
            Value::Int(i) => match self {
                Column::Boxed(values) => values.push(Value::Int(i)),
                Column::Int { values, nulls } => {
                    values.push(i);
                    nulls.push(false);
                }
                Column::Float {
                    values,
                    nulls,
                    ints,
                } if int_fits_f64(i) => {
                    values.push(i as f64);
                    nulls.push(false);
                    ints.push(true);
                }
                _ if self.null_count() == self.len() => {
                    let n = self.len();
                    let mut values = vec![0i64; n];
                    values.push(i);
                    let mut nulls = Bitmap::filled(n, true);
                    nulls.push(false);
                    *self = Column::Int { values, nulls };
                }
                _ => {
                    self.demote_to_boxed();
                    self.push_value(Value::Int(i));
                }
            },
            Value::Float(f) => match self {
                Column::Boxed(values) => values.push(Value::Float(f)),
                Column::Float {
                    values,
                    nulls,
                    ints,
                } => {
                    values.push(f);
                    nulls.push(false);
                    ints.push(false);
                }
                Column::Int { values, nulls }
                    if values
                        .iter()
                        .enumerate()
                        .all(|(r, &x)| nulls.get(r) || int_fits_f64(x)) =>
                {
                    // Promote int → float: prior non-null rows keep their
                    // integer identity through the `ints` mask.
                    let floats: Vec<f64> = values.iter().map(|&x| x as f64).collect();
                    let mut ints = Bitmap::new();
                    for r in 0..values.len() {
                        ints.push(!nulls.get(r));
                    }
                    let mut nulls = nulls.clone();
                    let mut values = floats;
                    values.push(f);
                    nulls.push(false);
                    ints.push(false);
                    *self = Column::Float {
                        values,
                        nulls,
                        ints,
                    };
                }
                _ if self.null_count() == self.len() => {
                    let n = self.len();
                    let mut values = vec![0.0f64; n];
                    values.push(f);
                    let mut nulls = Bitmap::filled(n, true);
                    nulls.push(false);
                    let mut ints = Bitmap::filled(n, false);
                    ints.push(false);
                    *self = Column::Float {
                        values,
                        nulls,
                        ints,
                    };
                }
                _ => {
                    self.demote_to_boxed();
                    self.push_value(Value::Float(f));
                }
            },
            Value::Text(s) => match self {
                Column::Boxed(values) => values.push(Value::Text(s)),
                Column::Categorical { dict, codes } => {
                    // Linear dict scan; bulk construction goes through
                    // `ColumnBuilder`, which keeps a hash lookup instead.
                    let code = match dict.iter().position(|d| *d == s) {
                        Some(p) => (p + 1) as u32,
                        None => {
                            dict.push(s);
                            dict.len() as u32
                        }
                    };
                    codes.push(code);
                }
                _ if self.null_count() == self.len() => {
                    let n = self.len();
                    let mut codes = vec![0u32; n];
                    codes.push(1);
                    *self = Column::Categorical {
                        dict: vec![s],
                        codes,
                    };
                }
                _ => {
                    self.demote_to_boxed();
                    self.push_value(Value::Text(s));
                }
            },
        }
    }

    /// Appends all rows of `other`, merging representations (dictionary
    /// columns remap codes through a merged dictionary; mismatched layouts
    /// rebuild through [`Value`]s).
    pub fn extend_from(&mut self, other: &Column) {
        match (&mut *self, other) {
            (
                Column::Categorical { dict, codes },
                Column::Categorical {
                    dict: odict,
                    codes: ocodes,
                },
            ) => {
                let mut lookup: HashMap<&str, u32> = dict
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.as_str(), (i + 1) as u32))
                    .collect();
                let mut remap = vec![0u32; odict.len() + 1];
                for (i, s) in odict.iter().enumerate() {
                    remap[i + 1] = match lookup.get(s.as_str()) {
                        Some(&c) => c,
                        None => {
                            dict.push(s.clone());
                            let c = dict.len() as u32;
                            // The borrow into `dict` above is append-only,
                            // so stale keys stay valid; re-inserting keeps
                            // the map consistent for later duplicates.
                            lookup = dict
                                .iter()
                                .enumerate()
                                .map(|(i, s)| (s.as_str(), (i + 1) as u32))
                                .collect();
                            c
                        }
                    };
                }
                codes.extend(ocodes.iter().map(|&c| remap[c as usize]));
            }
            (
                Column::Int { values, nulls },
                Column::Int {
                    values: ovalues,
                    nulls: onulls,
                },
            ) => {
                values.extend_from_slice(ovalues);
                nulls.extend_from(onulls);
            }
            (
                Column::Float {
                    values,
                    nulls,
                    ints,
                },
                Column::Float {
                    values: ovalues,
                    nulls: onulls,
                    ints: oints,
                },
            ) => {
                values.extend_from_slice(ovalues);
                nulls.extend_from(onulls);
                ints.extend_from(oints);
            }
            _ => {
                for v in other.iter() {
                    self.push_value(v.to_value());
                }
            }
        }
    }

    fn demote_to_boxed(&mut self) {
        if !matches!(self, Column::Boxed(_)) {
            *self = Column::Boxed(self.to_values());
        }
    }
}

impl PartialEq for Column {
    /// Logical row-wise equality under [`Value`] semantics — two columns
    /// with different physical layouts (or dictionary orders) compare
    /// equal iff every row does.
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        match (self, other) {
            (
                Column::Categorical {
                    dict: d1,
                    codes: c1,
                },
                Column::Categorical {
                    dict: d2,
                    codes: c2,
                },
            ) if d1 == d2 => c1 == c2,
            _ => (0..self.len()).all(|i| self.value_ref(i) == other.value_ref(i)),
        }
    }
}

impl Eq for Column {}

/// Incremental, kind-checked builder of one typed column.
///
/// Performs the same homogeneity checks as the pre-columnar substrate
/// (continuous columns accept any numeric; categorical columns accept a
/// single non-null variant established by the first non-null value) and
/// keeps a hash lookup for dictionary codes so bulk categorical builds
/// cost O(1) per cell instead of a linear dictionary scan.
#[derive(Debug, Clone)]
pub struct ColumnBuilder {
    attr: Attribute,
    column: Column,
    dict_lookup: HashMap<String, u32>,
}

impl ColumnBuilder {
    /// Starts an empty builder for `attr`.
    pub fn new(attr: Attribute) -> Self {
        Self {
            attr,
            column: Column::default(),
            dict_lookup: HashMap::new(),
        }
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.column.len()
    }

    /// `true` when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.column.is_empty()
    }

    /// Checks `v` against the attribute's kind and the column's
    /// established type without appending. Row-wise relation builders
    /// pre-check every cell of a row so a failed row leaves no partial
    /// state behind.
    pub fn check(&self, v: &Value) -> Result<()> {
        check_kind(&self.attr, &self.column, v)
    }

    /// Checks `v` against the attribute's kind and the column's
    /// established type, then appends it.
    pub fn push(&mut self, v: Value) -> Result<()> {
        check_kind(&self.attr, &self.column, &v)?;
        if let (Column::Categorical { dict, codes }, Value::Text(s)) = (&mut self.column, &v) {
            // Fast dictionary path with the hash lookup.
            let code = match self.dict_lookup.get(s.as_str()) {
                Some(&c) => c,
                None => {
                    dict.push(s.clone());
                    let c = dict.len() as u32;
                    self.dict_lookup.insert(s.clone(), c);
                    c
                }
            };
            codes.push(code);
            return Ok(());
        }
        self.column.push_value(v);
        // The first text promotes the column to Categorical; seed the
        // lookup so subsequent pushes take the fast path.
        if let Column::Categorical { dict, .. } = &self.column {
            if self.dict_lookup.len() != dict.len() {
                self.dict_lookup = dict
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.clone(), (i + 1) as u32))
                    .collect();
            }
        }
        Ok(())
    }

    /// Finishes the build.
    pub fn finish(self) -> Column {
        self.column
    }
}

/// Incremental, kind-*agnostic* builder of one typed column, for streaming
/// ingest.
///
/// Unlike [`ColumnBuilder`], no homogeneity checking happens while rows
/// arrive: a CSV column's attribute kind is only known once the whole
/// column has been seen (or a `#kinds` row declared it up front), so kind
/// validation is deferred to finalisation
/// ([`Relation::from_typed_columns`](crate::Relation::from_typed_columns)
/// runs the whole-column equivalent of the per-value checks). Promotion
/// rules are exactly [`Column::push_value`]'s, and categorical appends use
/// the same hashed dictionary fast path as [`ColumnBuilder`], so the
/// finished column is identical to one built by pushing the same values
/// through either path.
///
/// The builder also tracks whether any text and any numeric value was
/// pushed — the two facts CSV kind inference and the mixed-column
/// stringify pass need, gathered here so ingest never has to re-scan the
/// column.
#[derive(Debug, Clone, Default)]
pub struct StreamingColumnBuilder {
    column: Column,
    dict_lookup: HashMap<String, u32>,
    saw_text: bool,
    saw_numeric: bool,
}

impl StreamingColumnBuilder {
    /// Starts an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rows pushed so far.
    pub fn len(&self) -> usize {
        self.column.len()
    }

    /// `true` when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.column.is_empty()
    }

    /// `true` when any [`Value::Text`] was pushed.
    pub fn saw_text(&self) -> bool {
        self.saw_text
    }

    /// `true` when any non-null numeric ([`Value::Int`] / [`Value::Float`])
    /// was pushed.
    pub fn saw_numeric(&self) -> bool {
        self.saw_numeric
    }

    /// Appends one value, promoting the physical layout as needed (see
    /// [`Column::push_value`]).
    pub fn push(&mut self, v: Value) {
        match &v {
            Value::Text(_) => self.saw_text = true,
            Value::Int(_) | Value::Float(_) => self.saw_numeric = true,
            Value::Null => {}
        }
        if let (Column::Categorical { dict, codes }, Value::Text(s)) = (&mut self.column, &v) {
            // Fast dictionary path with the hash lookup.
            let code = match self.dict_lookup.get(s.as_str()) {
                Some(&c) => c,
                None => {
                    dict.push(s.clone());
                    let c = dict.len() as u32;
                    self.dict_lookup.insert(s.clone(), c);
                    c
                }
            };
            codes.push(code);
            return;
        }
        self.column.push_value(v);
        // The first text promotes the column to Categorical; seed the
        // lookup so subsequent pushes take the fast path.
        if let Column::Categorical { dict, .. } = &self.column {
            if self.dict_lookup.len() != dict.len() {
                self.dict_lookup = dict
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.clone(), (i + 1) as u32))
                    .collect();
            }
        }
    }

    /// Finishes the build.
    pub fn finish(self) -> Column {
        self.column
    }
}

/// Checks a single value against the attribute kind and the column's
/// established non-null type (the typed equivalent of the pre-columnar
/// `check_value`).
pub(crate) fn check_kind(attr: &Attribute, column: &Column, v: &Value) -> Result<()> {
    if v.is_null() {
        return Ok(());
    }
    match attr.kind {
        AttrKind::Continuous => {
            if v.as_f64().is_none() {
                return Err(RelationError::TypeMismatch {
                    column: attr.name.clone(),
                    expected: "numeric",
                    got: v.type_name(),
                });
            }
        }
        AttrKind::Categorical => {
            if let Some(established) = column.established_type() {
                if established != v.type_name() {
                    return Err(RelationError::TypeMismatch {
                        column: attr.name.clone(),
                        expected: established,
                        got: v.type_name(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Checks a whole prebuilt column against the attribute kind (the typed
/// equivalent of validating every cell through [`check_kind`] in push
/// order, exploiting that typed layouts are homogeneous by construction).
pub(crate) fn check_column_kind(attr: &Attribute, col: &Column) -> Result<()> {
    let mismatch = |expected: &'static str, got: &'static str| RelationError::TypeMismatch {
        column: attr.name.clone(),
        expected,
        got,
    };
    match attr.kind {
        AttrKind::Continuous => match col {
            Column::Int { .. } | Column::Float { .. } => Ok(()),
            Column::Categorical { codes, .. } => {
                if codes.iter().any(|&c| c != 0) {
                    Err(mismatch("numeric", "text"))
                } else {
                    Ok(())
                }
            }
            Column::Boxed(values) => {
                for v in values {
                    if !v.is_null() && v.as_f64().is_none() {
                        return Err(mismatch("numeric", v.type_name()));
                    }
                }
                Ok(())
            }
        },
        AttrKind::Categorical => match col {
            Column::Categorical { .. } | Column::Int { .. } => Ok(()),
            Column::Float { nulls, ints, .. } => {
                // Non-null rows must all share the first row's int-ness.
                let mut first: Option<bool> = None;
                for i in 0..nulls.len() {
                    if nulls.get(i) {
                        continue;
                    }
                    let is_int = ints.get(i);
                    match first {
                        None => first = Some(is_int),
                        Some(f) if f != is_int => {
                            return Err(if f {
                                mismatch("int", "float")
                            } else {
                                mismatch("float", "int")
                            });
                        }
                        _ => {}
                    }
                }
                Ok(())
            }
            Column::Boxed(values) => {
                let mut established: Option<&'static str> = None;
                for v in values {
                    if v.is_null() {
                        continue;
                    }
                    match established {
                        None => established = Some(v.type_name()),
                        Some(e) if e != v.type_name() => {
                            return Err(mismatch(e, v.type_name()));
                        }
                        _ => {}
                    }
                }
                Ok(())
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col_from(attr: Attribute, values: &[Value]) -> Column {
        let mut b = ColumnBuilder::new(attr);
        for v in values {
            b.push(v.clone()).unwrap();
        }
        b.finish()
    }

    #[test]
    fn bitmap_basics() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        assert_eq!(b.count_ones(), 44);
        assert!(b.get(0) && !b.get(1) && b.get(129));
        let sel = b.select(&[0, 1, 129]);
        assert_eq!(sel.count_ones(), 2);
        let full = Bitmap::filled(70, true);
        assert!(full.all_set());
        assert_eq!(full.count_ones(), 70);
        assert!(Bitmap::filled(70, false).none_set());
    }

    #[test]
    fn text_column_dictionary_encodes() {
        let c = col_from(
            Attribute::categorical("x"),
            &["a".into(), "b".into(), Value::Null, "a".into()],
        );
        let (dict, codes) = c.as_categorical_parts().expect("dict layout");
        assert_eq!(dict, ["a".to_owned(), "b".to_owned()]);
        assert_eq!(codes, [1, 2, 0, 1]);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.distinct_count(), 3);
        assert_eq!(c.value(3), Value::Text("a".into()));
        assert_eq!(c.value(2), Value::Null);
    }

    #[test]
    fn int_column_roundtrips() {
        let c = col_from(
            Attribute::continuous("x"),
            &[Value::Int(5), Value::Null, Value::Int(i64::MAX)],
        );
        assert!(matches!(c, Column::Int { .. }));
        assert_eq!(
            c.to_values(),
            vec![Value::Int(5), Value::Null, Value::Int(i64::MAX)]
        );
        assert_eq!(c.f64_at(0), Some(5.0));
        assert_eq!(c.f64_at(1), None);
    }

    #[test]
    fn mixed_numeric_unifies_as_float_with_int_mask() {
        let c = col_from(
            Attribute::continuous("x"),
            &[
                Value::Int(2),
                Value::Float(2.5),
                Value::Null,
                Value::Int(-7),
            ],
        );
        assert!(matches!(c, Column::Float { .. }));
        assert_eq!(
            c.to_values(),
            vec![
                Value::Int(2),
                Value::Float(2.5),
                Value::Null,
                Value::Int(-7)
            ]
        );
    }

    #[test]
    fn huge_int_mixed_with_float_falls_back_to_boxed() {
        let vals = [Value::Int(i64::MAX), Value::Float(0.5)];
        let c = col_from(Attribute::continuous("x"), &vals);
        assert!(matches!(c, Column::Boxed(_)), "{c:?}");
        assert_eq!(c.to_values(), vals);
        // And in the reverse push order too.
        let vals = [Value::Float(0.5), Value::Int(i64::MAX)];
        let c = col_from(Attribute::continuous("x"), &vals);
        assert!(matches!(c, Column::Boxed(_)), "{c:?}");
        assert_eq!(c.to_values(), vals);
    }

    #[test]
    fn leading_nulls_adopt_first_non_null_layout() {
        let c = col_from(
            Attribute::categorical("x"),
            &[Value::Null, Value::Null, "z".into()],
        );
        assert!(matches!(c, Column::Categorical { .. }));
        assert_eq!(
            c.to_values(),
            vec![Value::Null, Value::Null, Value::Text("z".into())]
        );

        let c = col_from(
            Attribute::continuous("x"),
            &[Value::Null, Value::Float(1.5)],
        );
        assert!(matches!(c, Column::Float { .. }));
        assert_eq!(c.to_values(), vec![Value::Null, Value::Float(1.5)]);
    }

    #[test]
    fn kind_checks_match_boxed_semantics() {
        let mut b = ColumnBuilder::new(Attribute::continuous("age"));
        b.push(Value::Int(3)).unwrap();
        let err = b.push("old".into()).unwrap_err();
        assert!(matches!(
            err,
            RelationError::TypeMismatch {
                expected: "numeric",
                got: "text",
                ..
            }
        ));

        let mut b = ColumnBuilder::new(Attribute::categorical("name"));
        b.push("x".into()).unwrap();
        let err = b.push(Value::Int(3)).unwrap_err();
        assert!(matches!(
            err,
            RelationError::TypeMismatch {
                expected: "text",
                got: "int",
                ..
            }
        ));
    }

    #[test]
    fn group_codes_match_value_equality() {
        for vals in [
            vec![Value::Int(2), Value::Float(2.0), Value::Null, Value::Int(2)],
            vec!["a".into(), "b".into(), "a".into(), Value::Null],
            vec![
                Value::Float(f64::NAN),
                Value::Float(-f64::NAN),
                Value::Float(-0.0),
                Value::Float(0.0),
            ],
        ] {
            let mut b = ColumnBuilder::new(Attribute::categorical("x"));
            let col = match vals.iter().try_for_each(|v| b.push(v.clone()).map(|_| ())) {
                Ok(()) => b.finish(),
                Err(_) => Column::Boxed(vals.clone()),
            };
            let (codes, bound) = col.group_codes();
            assert!(codes.iter().all(|&c| (c as usize) < bound));
            for i in 0..vals.len() {
                for j in 0..vals.len() {
                    assert_eq!(
                        codes[i] == codes[j],
                        vals[i] == vals[j],
                        "{vals:?} rows {i},{j}"
                    );
                }
            }
        }
    }

    #[test]
    fn select_shares_dictionary() {
        let c = col_from(
            Attribute::categorical("x"),
            &["a".into(), "b".into(), "c".into(), "b".into()],
        );
        let s = c.select(&[3, 1]);
        assert_eq!(
            s.to_values(),
            vec![Value::Text("b".into()), Value::Text("b".into())]
        );
        assert_eq!(s.distinct_count(), 1);
    }

    #[test]
    fn extend_from_merges_dictionaries() {
        let mut a = col_from(Attribute::categorical("x"), &["a".into(), "b".into()]);
        let b = col_from(
            Attribute::categorical("x"),
            &["c".into(), "a".into(), Value::Null],
        );
        a.extend_from(&b);
        assert_eq!(
            a.to_values(),
            vec![
                Value::Text("a".into()),
                Value::Text("b".into()),
                Value::Text("c".into()),
                Value::Text("a".into()),
                Value::Null
            ]
        );
    }

    #[test]
    fn extend_from_mismatched_layouts_rebuilds() {
        let mut a = col_from(Attribute::continuous("x"), &[Value::Int(1)]);
        let b = col_from(Attribute::continuous("x"), &[Value::Float(2.5)]);
        a.extend_from(&b);
        assert_eq!(a.to_values(), vec![Value::Int(1), Value::Float(2.5)]);
    }

    #[test]
    fn streaming_builder_matches_push_value_layouts() {
        for vals in [
            vec!["a".into(), Value::Null, "b".into(), "a".into()],
            vec![Value::Int(1), Value::Float(2.5), Value::Null],
            vec![Value::Null, Value::Null],
            vec![Value::Int(i64::MAX), Value::Float(0.5)],
            vec![Value::Null, "z".into(), Value::Int(3)],
        ] {
            let mut b = StreamingColumnBuilder::new();
            for v in &vals {
                b.push(v.clone());
            }
            assert_eq!(b.len(), vals.len());
            let built = b.finish();
            let mut plain = Column::default();
            for v in &vals {
                plain.push_value(v.clone());
            }
            assert_eq!(built.repr_name(), plain.repr_name(), "{vals:?}");
            assert_eq!(built.to_values(), vals, "{vals:?}");
        }
    }

    #[test]
    fn streaming_builder_tracks_text_and_numeric() {
        let mut b = StreamingColumnBuilder::new();
        assert!(!b.saw_text() && !b.saw_numeric() && b.is_empty());
        b.push(Value::Null);
        assert!(!b.saw_text() && !b.saw_numeric());
        b.push(Value::Int(4));
        assert!(b.saw_numeric() && !b.saw_text());
        b.push("x".into());
        assert!(b.saw_text() && b.saw_numeric());
    }

    #[test]
    fn logical_equality_ignores_layout() {
        let int_col = col_from(Attribute::continuous("x"), &[Value::Int(2), Value::Null]);
        let boxed = Column::Boxed(vec![Value::Float(2.0), Value::Null]);
        assert_eq!(int_col, boxed); // Int(2) == Float(2.0) under Value semantics.
        let other = Column::Boxed(vec![Value::Float(2.5), Value::Null]);
        assert_ne!(int_col, other);
    }
}
