//! Minimal CSV reader/writer for relations.
//!
//! Supports RFC-4180-style quoting, type inference (int → float → text),
//! and the echocardiogram convention that `?` or an empty field is a
//! missing value. Implemented in-repo to keep the dependency footprint to
//! the crates the project brief allows.
//!
//! Ingest is *streaming*: [`read_path`] / [`read_stream`] decode the input
//! in fixed-size chunks through an incremental record splitter straight
//! into typed-column builders ([`crate::StreamingColumnBuilder`]), so peak
//! memory is the typed columns plus one chunk — never the whole file as a
//! `String` plus a boxed row copy. [`read_str`] runs the same machinery
//! over a single in-memory chunk, which makes the two paths identical by
//! construction: same `Relation`, same typed errors, independent of where
//! chunk boundaries fall.

use crate::column::StreamingColumnBuilder;
use crate::error::{RelationError, Result};
use crate::relation::Relation;
use crate::schema::{AttrKind, Attribute, Schema};
use crate::value::Value;
use mp_observe::{Counter, Histogram, Recorder};
use std::io::Read;
use std::path::Path;

/// Bytes decoded per [`read_stream`] chunk: large enough that dictionary
/// interning dominates the chunking overhead, small enough that ingest
/// memory stays flat regardless of file size.
const CHUNK_BYTES: usize = 64 * 1024;

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first record is a header of attribute names.
    pub has_header: bool,
    /// Tokens (beyond the empty string) treated as missing values.
    pub null_tokens: Vec<String>,
    /// Honour/emit a `#kinds` annotation row (second line, fields
    /// `categorical`/`continuous`) that round-trips attribute kinds —
    /// plain CSV cannot distinguish an integer-coded categorical from a
    /// continuous column otherwise.
    pub kind_row: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            delimiter: ',',
            has_header: true,
            null_tokens: vec!["?".to_owned(), "NA".to_owned()],
            kind_row: false,
        }
    }
}

impl CsvOptions {
    /// Defaults plus the `#kinds` annotation row.
    pub fn with_kind_row() -> Self {
        Self {
            kind_row: true,
            ..Self::default()
        }
    }
}

/// Lookahead carried across a chunk boundary: the previous character
/// cannot be classified until the next one is seen — exactly the
/// one-character peek the old whole-string parser got from `Peekable`,
/// reified so scanning can pause at any byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pending {
    /// No lookahead outstanding.
    None,
    /// A `"` seen inside a quoted field: a following `"` is an escaped
    /// literal quote, anything else closes the field.
    Quote,
    /// A `\r` seen outside quotes: only a following `\n` terminates the
    /// record; anything else is a bare-CR framing error.
    Cr,
}

/// Incremental CSV record splitter: text goes in as arbitrary chunks,
/// complete records come out through a sink as soon as they close.
///
/// Handles quoted fields (including embedded delimiters, escaped quotes
/// and embedded newlines), strips a leading UTF-8 BOM, and accepts `\n`
/// or `\r\n` record terminators. Malformed input — a bare `\r` outside
/// quotes or a quote left open at end of input — is a typed error (with
/// the 1-based line number where the offence *started*), never a silent
/// misparse. Fully-empty records (blank lines) are dropped before they
/// reach the sink.
#[derive(Debug)]
struct RecordSplitter {
    delimiter: char,
    record: Vec<String>,
    field: String,
    in_quotes: bool,
    line: usize,
    quote_opened_at: usize,
    /// Any character processed yet (after BOM stripping)?
    any: bool,
    pending: Pending,
    /// Before the very first character, where a BOM is a marker rather
    /// than content.
    at_start: bool,
}

impl RecordSplitter {
    fn new(delimiter: char) -> Self {
        Self {
            delimiter,
            record: Vec::new(),
            field: String::new(),
            in_quotes: false,
            line: 1,
            quote_opened_at: 1,
            any: false,
            pending: Pending::None,
            at_start: true,
        }
    }

    /// Closes the current record, dropping the single-empty-field records
    /// blank lines produce.
    fn end_record(&mut self, sink: &mut dyn FnMut(Vec<String>)) {
        self.record.push(std::mem::take(&mut self.field));
        let record = std::mem::take(&mut self.record);
        if !matches!(record.as_slice(), [f] if f.is_empty()) {
            sink(record);
        }
    }

    fn bare_cr(&self) -> RelationError {
        RelationError::Csv {
            line: self.line,
            message: "bare CR line ending (expected \\n or \\r\\n)".into(),
        }
    }

    /// Scans one chunk. Framing errors surface eagerly; everything else
    /// waits for [`finish`](Self::finish).
    fn feed(&mut self, chunk: &str, sink: &mut dyn FnMut(Vec<String>)) -> Result<()> {
        for c in chunk.chars() {
            if self.at_start {
                // Spreadsheet exports routinely prefix a UTF-8 BOM; left
                // in place it would silently corrupt the first header
                // name ("\u{FEFF}name").
                self.at_start = false;
                if c == '\u{FEFF}' {
                    continue;
                }
            }
            self.any = true;
            match self.pending {
                Pending::Quote => {
                    self.pending = Pending::None;
                    if c == '"' {
                        self.field.push('"');
                        continue;
                    }
                    // The quote closed the field; reprocess `c` unquoted.
                    self.in_quotes = false;
                }
                Pending::Cr => {
                    self.pending = Pending::None;
                    if c == '\n' {
                        self.line += 1;
                        self.end_record(sink);
                        continue;
                    }
                    // A bare CR would previously vanish, silently gluing
                    // two fields together.
                    return Err(self.bare_cr());
                }
                Pending::None => {}
            }
            if self.in_quotes {
                match c {
                    '"' => self.pending = Pending::Quote,
                    '\n' => {
                        self.line += 1;
                        self.field.push(c);
                    }
                    _ => self.field.push(c),
                }
            } else {
                match c {
                    '"' => {
                        self.in_quotes = true;
                        self.quote_opened_at = self.line;
                    }
                    '\r' => self.pending = Pending::Cr,
                    '\n' => {
                        self.line += 1;
                        self.end_record(sink);
                    }
                    c if c == self.delimiter => self.record.push(std::mem::take(&mut self.field)),
                    _ => self.field.push(c),
                }
            }
        }
        Ok(())
    }

    /// Flushes end-of-input state: resolves outstanding lookahead, rejects
    /// unterminated quotes, and emits the final unterminated record.
    fn finish(&mut self, sink: &mut dyn FnMut(Vec<String>)) -> Result<()> {
        match self.pending {
            Pending::Quote => {
                // A quote as the very last character closes its field.
                self.pending = Pending::None;
                self.in_quotes = false;
            }
            Pending::Cr => return Err(self.bare_cr()),
            Pending::None => {}
        }
        if self.in_quotes {
            return Err(RelationError::Csv {
                line: self.quote_opened_at,
                message: format!(
                    "unterminated quoted field (opened at line {}, still open at end of input)",
                    self.quote_opened_at
                ),
            });
        }
        if self.any && (!self.field.is_empty() || !self.record.is_empty()) {
            self.end_record(sink);
        }
        Ok(())
    }
}

/// Splits raw CSV text into records of string fields.
///
/// One-shot wrapper over the incremental splitter (see `RecordSplitter`
/// for the framing rules): the whole text is fed as a single chunk, so
/// the result is identical to any chunked scan of the same bytes.
pub fn parse_records(text: &str, delimiter: char) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut splitter = RecordSplitter::new(delimiter);
    let mut sink = |r: Vec<String>| records.push(r);
    splitter.feed(text, &mut sink)?;
    splitter.finish(&mut sink)?;
    Ok(records)
}

/// Parses one field into a [`Value`], using `null_tokens`.
fn parse_field(field: &str, null_tokens: &[String]) -> Value {
    let trimmed = field.trim();
    if trimmed.is_empty() || null_tokens.iter().any(|t| t == trimmed) {
        return Value::Null;
    }
    if let Ok(i) = trimmed.parse::<i64>() {
        return Value::Int(i);
    }
    // Only finite numerics count as numbers: `nan`/`inf` parse as f64 but
    // must stay text, or text columns containing them would not round-trip.
    if let Ok(f) = trimmed.parse::<f64>() {
        if f.is_finite() {
            // `-0.0` would display as "-0", which re-reads as integer 0;
            // normalise so serialisation is a byte-stable fixed point.
            return Value::Float(if f == 0.0 { 0.0 } else { f });
        }
    }
    Value::Text(trimmed.to_owned())
}

/// Streaming record consumer: header and `#kinds` handling, ragged-row
/// checks and incremental typed-column building, one record at a time.
///
/// Framing errors abort the scan eagerly (the splitter returns them);
/// everything else — ragged rows, a malformed `#kinds` row — is
/// *deferred*: the first one is recorded here and returned at
/// finalisation only if the rest of the input framed cleanly. That
/// reproduces the old two-phase parse-then-validate error precedence
/// exactly: a framing error anywhere in the file outranks a row-shape
/// error earlier in it.
struct StreamIngest<'o> {
    opts: &'o CsvOptions,
    /// Attribute names; `Some` once the first record arrived.
    names: Option<Vec<String>>,
    arity: usize,
    /// The next record may be the `#kinds` annotation row.
    awaiting_kinds: bool,
    declared_kinds: Option<Vec<AttrKind>>,
    builders: Vec<StreamingColumnBuilder>,
    /// Data records consumed so far (drives ragged-row line numbers).
    data_rows: usize,
    /// All records consumed so far (header and `#kinds` included).
    records: u64,
    deferred: Option<RelationError>,
}

impl<'o> StreamIngest<'o> {
    fn new(opts: &'o CsvOptions) -> Self {
        Self {
            opts,
            names: None,
            arity: 0,
            awaiting_kinds: false,
            declared_kinds: None,
            builders: Vec::new(),
            data_rows: 0,
            records: 0,
            deferred: None,
        }
    }

    /// Records consumed so far (post blank-line filtering).
    fn records_seen(&self) -> u64 {
        self.records
    }

    fn accept(&mut self, record: Vec<String>) {
        self.records += 1;
        if self.names.is_none() {
            self.arity = record.len();
            self.builders = (0..self.arity)
                .map(|_| StreamingColumnBuilder::new())
                .collect();
            if self.opts.has_header {
                self.names = Some(record);
                self.awaiting_kinds = self.opts.kind_row;
                return;
            }
            // Headerless: names and arity come from the first record —
            // even when that record turns out to be the `#kinds` row
            // (matching the whole-file path, which synthesised names
            // before removing it).
            self.names = Some((0..self.arity).map(|i| format!("attr{i}")).collect());
            if self.opts.kind_row && record.first().is_some_and(|f| f.starts_with("#kinds")) {
                self.take_kinds(record);
                return;
            }
            self.push_data(record);
            return;
        }
        if self.awaiting_kinds {
            self.awaiting_kinds = false;
            if record.first().is_some_and(|f| f.starts_with("#kinds")) {
                self.take_kinds(record);
                return;
            }
        }
        self.push_data(record);
    }

    /// Records the first non-framing error; later ones are shadowed.
    fn defer(&mut self, err: RelationError) {
        if self.deferred.is_none() {
            self.deferred = Some(err);
        }
    }

    /// Parses the `#kinds` annotation row (always reported as line 2, its
    /// position in every format the writer emits).
    fn take_kinds(&mut self, row: Vec<String>) {
        if row.len() != self.arity {
            self.defer(RelationError::Csv {
                line: 2,
                message: format!(
                    "#kinds row has {} fields, expected {}",
                    row.len(),
                    self.arity
                ),
            });
            return;
        }
        let parse_kind = |f: &str, c: usize| match f.trim() {
            "categorical" => Ok(AttrKind::Categorical),
            "continuous" => Ok(AttrKind::Continuous),
            other => Err(RelationError::Csv {
                line: 2,
                message: format!("unknown kind `{other}` in #kinds field {c}"),
            }),
        };
        // Field 0 carries the marker plus column 0's kind: `#kinds=<kind>`.
        let first_kind = match row
            .first()
            .and_then(|f| f.strip_prefix("#kinds="))
            .map(|k| parse_kind(k, 0))
            .transpose()
        {
            Ok(k) => k.unwrap_or(AttrKind::Categorical),
            Err(e) => {
                self.defer(e);
                return;
            }
        };
        let mut kinds = Vec::with_capacity(self.arity);
        kinds.push(first_kind);
        for (c, f) in row.iter().enumerate().skip(1) {
            match parse_kind(f, c) {
                Ok(k) => kinds.push(k),
                Err(e) => {
                    self.defer(e);
                    return;
                }
            }
        }
        self.declared_kinds = Some(kinds);
    }

    fn push_data(&mut self, record: Vec<String>) {
        if self.deferred.is_some() {
            // The result is already doomed; keep scanning only so later
            // framing errors can take precedence.
            return;
        }
        if record.len() != self.arity {
            self.defer(RelationError::Csv {
                line: self.data_rows + 1 + usize::from(self.opts.has_header),
                message: format!("expected {} fields, found {}", self.arity, record.len()),
            });
            return;
        }
        for (builder, field) in self.builders.iter_mut().zip(&record) {
            builder.push(parse_field(field, &self.opts.null_tokens));
        }
        self.data_rows += 1;
    }

    /// Resolves kinds, stringifies mixed categorical columns and builds
    /// the relation.
    fn finalize(self) -> Result<Relation> {
        if let Some(err) = self.deferred {
            return Err(err);
        }
        let Some(names) = self.names else {
            return Err(RelationError::Csv {
                line: 1,
                message: "empty input".into(),
            });
        };
        let declared = self.declared_kinds;
        let mut attrs = Vec::with_capacity(self.arity);
        let mut columns = Vec::with_capacity(self.arity);
        for (i, (name, builder)) in names.into_iter().zip(self.builders).enumerate() {
            // All-numeric (ignoring nulls) columns become continuous,
            // everything else categorical — unless a `#kinds` row said
            // otherwise.
            let kind = declared
                .as_ref()
                .and_then(|ks| ks.get(i).copied())
                .unwrap_or_else(|| {
                    if !builder.saw_text() && builder.saw_numeric() {
                        AttrKind::Continuous
                    } else {
                        AttrKind::Categorical
                    }
                });
            // Mixed numeric/text columns were inferred (or declared)
            // categorical; stringify the numerics so the column is
            // homogeneous (e.g. an ID column of "1, 2, x").
            let stringify =
                kind == AttrKind::Categorical && builder.saw_text() && builder.saw_numeric();
            let mut column = builder.finish();
            if stringify {
                let mut rebuilt = StreamingColumnBuilder::new();
                for row in 0..column.len() {
                    let v = column.value(row);
                    if v.as_f64().is_some() {
                        rebuilt.push(Value::Text(v.to_string()));
                    } else {
                        rebuilt.push(v);
                    }
                }
                column = rebuilt.finish();
            }
            attrs.push(Attribute::new(name, kind));
            columns.push(column);
        }
        Relation::from_typed_columns(Schema::new(attrs)?, columns)
    }
}

/// Reads a relation from CSV text, inferring attribute kinds.
///
/// If `opts.has_header` is false, attributes are named `attr0..attrN`
/// (matching the paper's Table III/IV naming).
pub fn read_str(text: &str, opts: &CsvOptions) -> Result<Relation> {
    let mut splitter = RecordSplitter::new(opts.delimiter);
    let mut ingest = StreamIngest::new(opts);
    let mut sink = |r: Vec<String>| ingest.accept(r);
    splitter.feed(text, &mut sink)?;
    splitter.finish(&mut sink)?;
    ingest.finalize()
}

/// Deterministic ingest-side observability handles. Every number is a
/// function of the input bytes and the chunk size alone — never wall
/// time — so metrics snapshots stay byte-reproducible.
struct IngestMetrics {
    chunks: Counter,
    records: Counter,
    bytes: Counter,
    rows_per_chunk: Histogram,
}

impl IngestMetrics {
    fn new(recorder: &dyn Recorder) -> Self {
        Self {
            chunks: recorder.counter("ingest.chunks"),
            records: recorder.counter("ingest.records"),
            bytes: recorder.counter("ingest.bytes"),
            rows_per_chunk: recorder.histogram(
                "ingest.rows_per_chunk",
                &[1, 4, 16, 64, 256, 1024, 4096, 16384, 65536],
            ),
        }
    }
}

/// The typed error `fs::read_to_string` used to produce for non-UTF-8
/// input, reproduced byte-for-byte by the chunked decoder.
fn invalid_utf8() -> RelationError {
    RelationError::Io("stream did not contain valid UTF-8".to_owned())
}

/// Feeds the valid UTF-8 prefix of `bytes` to the splitter, returning the
/// (≤ 3) trailing bytes of a scalar the chunk boundary split, to be
/// retried with the next chunk.
fn feed_bytes(
    splitter: &mut RecordSplitter,
    bytes: &[u8],
    sink: &mut dyn FnMut(Vec<String>),
) -> Result<Vec<u8>> {
    match std::str::from_utf8(bytes) {
        Ok(s) => {
            splitter.feed(s, sink)?;
            Ok(Vec::new())
        }
        Err(e) => {
            if e.error_len().is_some() {
                // Genuinely malformed, not merely truncated.
                return Err(invalid_utf8());
            }
            let (valid, rest) = bytes.split_at(e.valid_up_to());
            let s = std::str::from_utf8(valid).map_err(|_| invalid_utf8())?;
            splitter.feed(s, sink)?;
            Ok(rest.to_vec())
        }
    }
}

/// The shared chunked-decode loop under [`read_stream`] / [`read_path`]
/// (and their observed variants). `chunk_bytes` is a parameter so tests
/// can prove chunk-size invariance down to one-byte reads.
fn read_stream_impl<R: Read>(
    mut reader: R,
    opts: &CsvOptions,
    chunk_bytes: usize,
    metrics: Option<&IngestMetrics>,
) -> Result<Relation> {
    let mut splitter = RecordSplitter::new(opts.delimiter);
    let mut ingest = StreamIngest::new(opts);
    let mut buf = vec![0u8; chunk_bytes.max(1)];
    // ≤ 3 trailing bytes of a UTF-8 scalar split by a chunk boundary.
    let mut carry: Vec<u8> = Vec::new();
    loop {
        let n = match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        };
        let rows_before = ingest.records_seen();
        {
            let mut sink = |r: Vec<String>| ingest.accept(r);
            if carry.is_empty() {
                carry = feed_bytes(&mut splitter, &buf[..n], &mut sink)?;
            } else {
                carry.extend_from_slice(&buf[..n]);
                let pending = std::mem::take(&mut carry);
                carry = feed_bytes(&mut splitter, &pending, &mut sink)?;
            }
        }
        if let Some(m) = metrics {
            m.chunks.inc();
            m.bytes.add(n as u64);
            m.rows_per_chunk.record(ingest.records_seen() - rows_before);
        }
    }
    if !carry.is_empty() {
        // The stream ended mid-scalar; `read_to_string` rejects that too.
        return Err(invalid_utf8());
    }
    {
        let mut sink = |r: Vec<String>| ingest.accept(r);
        splitter.finish(&mut sink)?;
    }
    if let Some(m) = metrics {
        m.records.add(ingest.records_seen());
    }
    ingest.finalize()
}

/// Reads a relation from any byte stream, decoding UTF-8 incrementally in
/// fixed-size chunks. Output and typed errors are identical to
/// [`read_str`] over the same bytes, wherever the chunk boundaries fall.
pub fn read_stream<R: Read>(reader: R, opts: &CsvOptions) -> Result<Relation> {
    read_stream_impl(reader, opts, CHUNK_BYTES, None)
}

/// [`read_stream`] with ingest observability: registers the
/// `ingest.chunks` / `ingest.records` / `ingest.bytes` counters and the
/// `ingest.rows_per_chunk` histogram on `recorder`. All deterministic —
/// functions of the bytes and chunk size, never wall time — so they are
/// safe for golden-pinned metrics snapshots.
pub fn read_stream_observed<R: Read>(
    reader: R,
    opts: &CsvOptions,
    recorder: &dyn Recorder,
) -> Result<Relation> {
    let metrics = IngestMetrics::new(recorder);
    read_stream_impl(reader, opts, CHUNK_BYTES, Some(&metrics))
}

/// Reads a relation from a CSV file, streaming it in 64 KiB chunks: peak
/// ingest memory is the typed columns plus one chunk, not the whole file.
pub fn read_path(path: impl AsRef<Path>, opts: &CsvOptions) -> Result<Relation> {
    let file = std::fs::File::open(path)?;
    read_stream_impl(file, opts, CHUNK_BYTES, None)
}

/// [`read_path`] with ingest observability (see [`read_stream_observed`]).
pub fn read_path_observed(
    path: impl AsRef<Path>,
    opts: &CsvOptions,
    recorder: &dyn Recorder,
) -> Result<Relation> {
    let file = std::fs::File::open(path)?;
    let metrics = IngestMetrics::new(recorder);
    read_stream_impl(file, opts, CHUNK_BYTES, Some(&metrics))
}

/// Serialises a relation to CSV text (with header, `?` for nulls).
pub fn write_str(relation: &Relation) -> String {
    write_str_with(relation, &CsvOptions::default())
}

/// Serialises a relation, optionally emitting the `#kinds` annotation row
/// so kinds round-trip through [`read_str`] with the same options.
pub fn write_str_with(relation: &Relation, opts: &CsvOptions) -> String {
    let mut out = String::new();
    let names: Vec<&str> = relation
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    out.push_str(
        &names
            .iter()
            .map(|n| escape(n))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    if opts.kind_row {
        let attrs = relation.schema().attributes();
        let mut fields = Vec::with_capacity(attrs.len());
        for (i, a) in attrs.iter().enumerate() {
            if i == 0 {
                fields.push(format!("#kinds={}", a.kind));
            } else {
                fields.push(a.kind.to_string());
            }
        }
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    for row in relation.rows() {
        let fields: Vec<String> = row.iter().map(|v| escape(&v.to_string())).collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

/// Writes a relation to a CSV file.
pub fn write_path(relation: &Relation, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path, write_str(relation))?;
    Ok(())
}

fn escape(field: &str) -> String {
    // `\r` must be quoted or the reader sees a bare-CR framing error; a
    // leading U+FEFF must be quoted or the reader's BOM strip would eat
    // it when the field opens the file.
    if field.contains([',', '"', '\n', '\r']) || field.starts_with('\u{FEFF}') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_parse_with_header() {
        let r = read_str("name,age\nAlice,18\nBob,22\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.n_rows(), 2);
        assert_eq!(r.schema().attribute(0).unwrap().kind, AttrKind::Categorical);
        assert_eq!(r.schema().attribute(1).unwrap().kind, AttrKind::Continuous);
        assert_eq!(r.column_by_name("age").unwrap().value(1), Value::Int(22));
    }

    #[test]
    fn headerless_names_attrs_by_index() {
        let opts = CsvOptions {
            has_header: false,
            ..Default::default()
        };
        let r = read_str("1,2.5\n3,4.5\n", &opts).unwrap();
        assert_eq!(r.schema().attribute(0).unwrap().name, "attr0");
        assert_eq!(r.schema().attribute(1).unwrap().name, "attr1");
    }

    #[test]
    fn question_mark_is_null() {
        let r = read_str("x,y\n?,1\n2,?\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.column(0).unwrap().value(0), Value::Null);
        assert_eq!(r.column(1).unwrap().value(1), Value::Null);
        // Column with nulls and ints still infers continuous.
        assert_eq!(r.schema().attribute(0).unwrap().kind, AttrKind::Continuous);
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let r = read_str(
            "name,quote\n\"Smith, John\",\"he said \"\"hi\"\"\"\n",
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(
            r.column(0).unwrap().value(0),
            Value::Text("Smith, John".into())
        );
        assert_eq!(
            r.column(1).unwrap().value(0),
            Value::Text("he said \"hi\"".into())
        );
    }

    #[test]
    fn embedded_newline_in_quotes() {
        let r = read_str("a,b\n\"line1\nline2\",2\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.n_rows(), 1);
        assert_eq!(
            r.column(0).unwrap().value(0),
            Value::Text("line1\nline2".into())
        );
    }

    #[test]
    fn unterminated_quote_errors() {
        let err = read_str("a\n\"oops\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, RelationError::Csv { .. }));
    }

    #[test]
    fn ragged_rows_rejected_with_line_number() {
        let err = read_str("a,b\n1,2\n3\n", &CsvOptions::default()).unwrap_err();
        match err {
            RelationError::Csv { line, .. } => assert_eq!(line, 3),
            other => panic!("expected Csv error, got {other}"),
        }
    }

    #[test]
    fn mixed_numeric_text_column_becomes_categorical_text() {
        let r = read_str("x\n1\nhello\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.schema().attribute(0).unwrap().kind, AttrKind::Categorical);
        // The numeric is stringified so the column is homogeneous text.
        assert_eq!(r.column(0).unwrap().value(0), Value::Text("1".into()));
        assert_eq!(r.column(0).unwrap().value(1), Value::Text("hello".into()));
    }

    #[test]
    fn kind_row_roundtrips_kinds() {
        let schema = Schema::new(vec![
            Attribute::categorical("code"), // integer-coded categorical
            Attribute::continuous("x"),
        ])
        .unwrap();
        let r = Relation::from_rows(
            schema,
            vec![
                vec![Value::Int(0), 1.5.into()],
                vec![Value::Int(1), 2.5.into()],
            ],
        )
        .unwrap();
        let opts = CsvOptions::with_kind_row();
        let text = write_str_with(&r, &opts);
        assert!(text
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("#kinds=categorical"));
        let back = read_str(&text, &opts).unwrap();
        assert_eq!(back.schema(), r.schema());
        assert_eq!(back, r);
        // Without the option the annotation is not honoured and the coded
        // column comes back continuous (the plain-CSV limitation).
        let plain = read_str(&text, &CsvOptions::default()).unwrap();
        assert_ne!(plain.schema(), r.schema());
    }

    #[test]
    fn malformed_kind_row_errors() {
        let opts = CsvOptions::with_kind_row();
        let err = read_str(
            "a,b
#kinds=categorical,weird
1,2
",
            &opts,
        )
        .unwrap_err();
        assert!(matches!(err, RelationError::Csv { line: 2, .. }));
        let err = read_str(
            "a,b
#kinds=categorical
1,2
",
            &opts,
        )
        .unwrap_err();
        assert!(matches!(err, RelationError::Csv { line: 2, .. }));
    }

    #[test]
    fn nan_and_inf_stay_text() {
        let r = read_str(
            "x
nan
inf
-inf
NaN
",
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(r.schema().attribute(0).unwrap().kind, AttrKind::Categorical);
        for v in r.column(0).unwrap().iter() {
            assert!(
                matches!(v, crate::value::ValueRef::Text(_)),
                "{v:?} should be text"
            );
        }
    }

    #[test]
    fn crlf_tolerated() {
        let r = read_str("a,b\r\n1,2\r\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.n_rows(), 1);
    }

    #[test]
    fn utf8_bom_is_stripped_from_header() {
        let r = read_str("\u{FEFF}name,age\nAlice,18\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.schema().attribute(0).unwrap().name, "name");
        assert!(r.column_by_name("name").is_ok());
        // A BOM later in the file is ordinary content, not a marker.
        let r = read_str("a\n\u{FEFF}\n", &CsvOptions::default()).unwrap();
        assert_eq!(
            r.column(0).unwrap().value(0),
            Value::Text("\u{FEFF}".into())
        );
    }

    #[test]
    fn bare_cr_is_a_typed_error_not_a_silent_merge() {
        // Before hardening, the CR vanished and `1\r2` parsed as `12`.
        let err = read_str("a\n1\r2\n", &CsvOptions::default()).unwrap_err();
        match err {
            RelationError::Csv { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("bare CR"));
            }
            other => panic!("expected Csv error, got {other}"),
        }
        // Classic Mac line endings (CR-only) are rejected the same way.
        assert!(read_str("a\r1\r", &CsvOptions::default()).is_err());
    }

    #[test]
    fn unterminated_quote_at_eof_reports_opening_line() {
        let err = read_str("a,b\n1,2\n\"oops,3\n", &CsvOptions::default()).unwrap_err();
        match err {
            RelationError::Csv { line, message } => {
                assert_eq!(line, 3, "error points at the line the quote opened on");
                assert!(message.contains("unterminated"));
            }
            other => panic!("expected Csv error, got {other}"),
        }
        // Quote open at the very last byte, no trailing newline.
        assert!(read_str("a\n\"", &CsvOptions::default()).is_err());
    }

    #[test]
    fn ragged_trailing_row_rejected_with_line_number() {
        // Last record short, with and without a final newline.
        for text in ["a,b\n1,2\n3\n", "a,b\n1,2\n3"] {
            let err = read_str(text, &CsvOptions::default()).unwrap_err();
            match err {
                RelationError::Csv { line, message } => {
                    assert_eq!(line, 3);
                    assert!(message.contains("expected 2 fields"));
                }
                other => panic!("expected Csv error, got {other}"),
            }
        }
        // Trailing record with too many fields is equally typed.
        assert!(read_str("a,b\n1,2\n3,4,5\n", &CsvOptions::default()).is_err());
    }

    #[test]
    fn roundtrip() {
        let csv = "name,age\n\"Smith, J\",18\nBob,?\n";
        let r = read_str(csv, &CsvOptions::default()).unwrap();
        let out = write_str(&r);
        let r2 = read_str(&out, &CsvOptions::default()).unwrap();
        assert_eq!(r, r2);
    }

    /// Canonical fixed point: `write(read(x))` must re-read to bytes
    /// identical to its own re-serialisation. Each case is a writer bug
    /// the fuzzer found (see `fuzz/corpus/regressions/csv/`).
    #[test]
    fn writer_output_is_a_round_trip_fixed_point() {
        for text in [
            "h\n\"a\rb\"\n",      // CR inside a quoted field
            "\"\u{FEFF}h\"\n1\n", // header name starting with a BOM
            "x\n-0.0\n",          // -0.0 displays as "-0", re-reads as 0
            "\"\r\"\n",           // header that IS a bare CR
        ] {
            let first = write_str(&read_str(text, &CsvOptions::default()).unwrap());
            let again = read_str(&first, &CsvOptions::default())
                .unwrap_or_else(|e| panic!("canonical form of {text:?} rejected: {e}"));
            assert_eq!(write_str(&again), first, "not a fixed point for {text:?}");
        }
    }

    #[test]
    fn empty_input_is_error() {
        assert!(read_str("", &CsvOptions::default()).is_err());
    }

    /// The chunked decoder must produce the identical relation whatever
    /// the chunk size — records, quoted fields, CRLF pairs, escaped
    /// quotes, the BOM and multi-byte scalars all land on boundaries at
    /// size 1–3.
    #[test]
    fn chunked_reads_match_read_str_for_any_chunk_size() {
        let cases = [
            "name,age\nAlice,18\nBob,22\n",
            "a,b\n\"line1\nline2\",2\n",
            "name,quote\n\"Smith, John\",\"he said \"\"hi\"\"\"\n",
            "\u{FEFF}name,age\nAlice,18\n",
            "a,b\r\n1,2\r\n\"q\"\"q\",3\r\n",
            // The PR 6 canonicalisation pins, re-run through chunking.
            "h\n\"a\rb\"\n",
            "\"\u{FEFF}h\"\n1\n",
            "x\n-0.0\n",
            "\"\r\"\n",
            // Multi-byte scalars split across chunk boundaries.
            "x,y\nümlaut,1\n日本語,2\n",
            "a\n\u{FEFF}\n",
            // Mixed column stringification and blank-line filtering.
            "x\n1\nhello\n",
            "a,b\n\n1,2\n\n",
            "x,y\n?,1\n2,NA\n",
        ];
        for text in cases {
            let expected = read_str(text, &CsvOptions::default()).unwrap();
            for chunk in [1usize, 2, 3, 7, 64] {
                let got = read_stream_impl(text.as_bytes(), &CsvOptions::default(), chunk, None)
                    .unwrap_or_else(|e| panic!("chunk {chunk} failed on {text:?}: {e}"));
                assert_eq!(got, expected, "chunk {chunk} on {text:?}");
                assert_eq!(got.schema(), expected.schema(), "chunk {chunk} on {text:?}");
            }
        }
    }

    /// Malformed input must produce the identical *typed error* through
    /// every chunking, including boundaries inside the offending bytes.
    #[test]
    fn chunked_reads_report_identical_typed_errors() {
        let cases = [
            "a\n1\r2\n",            // bare CR mid-line
            "a\r1\r",               // CR-only line endings
            "a,b\n1,2\n\"oops,3\n", // unterminated quote
            "a\n\"",                // quote open at the last byte
            "a,b\n1,2\n3\n",        // ragged row
            "a,b\n1,2\n3",          // ragged row, no trailing newline
            "",                     // empty input
            "\u{FEFF}",             // BOM-only file is still empty input
        ];
        for text in cases {
            let expected = read_str(text, &CsvOptions::default()).unwrap_err();
            for chunk in [1usize, 2, 3, 7, 64] {
                let got = read_stream_impl(text.as_bytes(), &CsvOptions::default(), chunk, None)
                    .unwrap_err();
                assert_eq!(got, expected, "chunk {chunk} on {text:?}");
            }
        }
    }

    /// Error precedence is two-phase, like the old parse-then-validate
    /// reader: a framing error anywhere outranks a row-shape error
    /// earlier in the file.
    #[test]
    fn framing_errors_outrank_earlier_row_shape_errors() {
        let text = "a,b\n1\nx\rY\n"; // ragged on line 2, bare CR on line 3
        for result in [
            read_str(text, &CsvOptions::default()),
            read_stream_impl(text.as_bytes(), &CsvOptions::default(), 2, None),
        ] {
            match result.unwrap_err() {
                RelationError::Csv { line, message } => {
                    assert_eq!(line, 3);
                    assert!(message.contains("bare CR"), "{message}");
                }
                other => panic!("expected Csv error, got {other}"),
            }
        }
    }

    #[test]
    fn invalid_utf8_stream_is_a_typed_io_error() {
        let malformed: &[u8] = b"a,b\n1,\xFF\n";
        for chunk in [1usize, 4, 64] {
            let err = read_stream_impl(malformed, &CsvOptions::default(), chunk, None).unwrap_err();
            assert!(
                matches!(err, RelationError::Io(ref m) if m.contains("valid UTF-8")),
                "chunk {chunk}: {err}"
            );
        }
        // A multi-byte scalar truncated at end of stream is equally malformed.
        let truncated: &[u8] = b"x\n\xC3";
        let err = read_stream_impl(truncated, &CsvOptions::default(), 64, None).unwrap_err();
        assert!(matches!(err, RelationError::Io(ref m) if m.contains("valid UTF-8")));
    }

    #[test]
    fn kind_row_roundtrips_through_chunked_reads() {
        let opts = CsvOptions::with_kind_row();
        let schema = Schema::new(vec![
            Attribute::categorical("code"),
            Attribute::continuous("x"),
        ])
        .unwrap();
        let r = Relation::from_rows(
            schema,
            vec![
                vec![Value::Int(0), 1.5.into()],
                vec![Value::Int(1), 2.5.into()],
            ],
        )
        .unwrap();
        let text = write_str_with(&r, &opts);
        for chunk in [1usize, 3, 64] {
            let back = read_stream_impl(text.as_bytes(), &opts, chunk, None).unwrap();
            assert_eq!(back, r, "chunk {chunk}");
            assert_eq!(back.schema(), r.schema(), "chunk {chunk}");
        }
    }

    #[test]
    fn observed_ingest_is_passive_and_counts_chunks() {
        use mp_observe::Registry;
        let text = "name,age\nAlice,18\nBob,22\n";
        let registry = Registry::new();
        let metrics = IngestMetrics::new(&registry);
        let observed =
            read_stream_impl(text.as_bytes(), &CsvOptions::default(), 8, Some(&metrics)).unwrap();
        assert_eq!(observed, read_str(text, &CsvOptions::default()).unwrap());
        let snap = registry.snapshot();
        assert_eq!(snap.counters["ingest.bytes"], text.len() as u64);
        assert_eq!(snap.counters["ingest.records"], 3);
        assert_eq!(
            snap.counters["ingest.chunks"],
            text.len().div_ceil(8) as u64
        );
    }
}
