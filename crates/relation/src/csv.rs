//! Minimal CSV reader/writer for relations.
//!
//! Supports RFC-4180-style quoting, type inference (int → float → text),
//! and the echocardiogram convention that `?` or an empty field is a
//! missing value. Implemented in-repo to keep the dependency footprint to
//! the crates the project brief allows.

use crate::error::{RelationError, Result};
use crate::relation::Relation;
use crate::schema::{AttrKind, Attribute, Schema};
use crate::value::Value;
use std::path::Path;

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field delimiter (default `,`).
    pub delimiter: char,
    /// Whether the first record is a header of attribute names.
    pub has_header: bool,
    /// Tokens (beyond the empty string) treated as missing values.
    pub null_tokens: Vec<String>,
    /// Honour/emit a `#kinds` annotation row (second line, fields
    /// `categorical`/`continuous`) that round-trips attribute kinds —
    /// plain CSV cannot distinguish an integer-coded categorical from a
    /// continuous column otherwise.
    pub kind_row: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            delimiter: ',',
            has_header: true,
            null_tokens: vec!["?".to_owned(), "NA".to_owned()],
            kind_row: false,
        }
    }
}

impl CsvOptions {
    /// Defaults plus the `#kinds` annotation row.
    pub fn with_kind_row() -> Self {
        Self {
            kind_row: true,
            ..Self::default()
        }
    }
}

/// Splits raw CSV text into records of string fields.
///
/// Handles quoted fields (including embedded delimiters, escaped quotes and
/// embedded newlines), strips a leading UTF-8 BOM, and accepts `\n` or
/// `\r\n` record terminators. Malformed input — a bare `\r` outside quotes
/// or a quote left open at end of input — is a typed error (with the
/// 1-based line number where the offence *started*), never a silent
/// misparse.
pub fn parse_records(text: &str, delimiter: char) -> Result<Vec<Vec<String>>> {
    // Spreadsheet exports routinely prefix a UTF-8 BOM; left in place it
    // would silently corrupt the first header name ("\u{FEFF}name").
    let text = text.strip_prefix('\u{FEFF}').unwrap_or(text);
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut quote_opened_at = 1usize;
    let mut chars = text.chars().peekable();
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    in_quotes = true;
                    quote_opened_at = line;
                }
                '\r' => {
                    // Only as part of a CRLF terminator; a bare CR would
                    // previously vanish, silently gluing two fields
                    // together.
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                        line += 1;
                        record.push(std::mem::take(&mut field));
                        records.push(std::mem::take(&mut record));
                    } else {
                        return Err(RelationError::Csv {
                            line,
                            message: "bare CR line ending (expected \\n or \\r\\n)".into(),
                        });
                    }
                }
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                c if c == delimiter => record.push(std::mem::take(&mut field)),
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(RelationError::Csv {
            line: quote_opened_at,
            message: format!(
                "unterminated quoted field (opened at line {quote_opened_at}, still open at end of input)"
            ),
        });
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    // Drop fully empty trailing records (e.g. file ends with blank line).
    records.retain(|r| !matches!(r.as_slice(), [f] if f.is_empty()));
    Ok(records)
}

/// Parses one field into a [`Value`], using `null_tokens`.
fn parse_field(field: &str, null_tokens: &[String]) -> Value {
    let trimmed = field.trim();
    if trimmed.is_empty() || null_tokens.iter().any(|t| t == trimmed) {
        return Value::Null;
    }
    if let Ok(i) = trimmed.parse::<i64>() {
        return Value::Int(i);
    }
    // Only finite numerics count as numbers: `nan`/`inf` parse as f64 but
    // must stay text, or text columns containing them would not round-trip.
    if let Ok(f) = trimmed.parse::<f64>() {
        if f.is_finite() {
            // `-0.0` would display as "-0", which re-reads as integer 0;
            // normalise so serialisation is a byte-stable fixed point.
            return Value::Float(if f == 0.0 { 0.0 } else { f });
        }
    }
    Value::Text(trimmed.to_owned())
}

/// Infers an [`AttrKind`] for a parsed column: all-numeric (ignoring nulls)
/// columns become continuous, everything else categorical.
fn infer_kind(column: &[Value]) -> AttrKind {
    let mut saw_numeric = false;
    for v in column {
        match v {
            Value::Null => {}
            Value::Int(_) | Value::Float(_) => saw_numeric = true,
            Value::Text(_) => return AttrKind::Categorical,
        }
    }
    if saw_numeric {
        AttrKind::Continuous
    } else {
        AttrKind::Categorical
    }
}

/// Reads a relation from CSV text, inferring attribute kinds.
///
/// If `opts.has_header` is false, attributes are named `attr0..attrN`
/// (matching the paper's Table III/IV naming).
pub fn read_str(text: &str, opts: &CsvOptions) -> Result<Relation> {
    let mut records = parse_records(text, opts.delimiter)?;
    if records.is_empty() {
        return Err(RelationError::Csv {
            line: 1,
            message: "empty input".into(),
        });
    }
    let header: Vec<String> = if opts.has_header {
        records.remove(0)
    } else {
        let width = records.first().map_or(0, Vec::len);
        (0..width).map(|i| format!("attr{i}")).collect()
    };
    let arity = header.len();
    // Optional `#kinds` annotation row immediately after the header.
    let mut declared_kinds: Option<Vec<AttrKind>> = None;
    if opts.kind_row {
        if let Some(first) = records.first() {
            if first.first().is_some_and(|f| f.starts_with("#kinds")) {
                let row = records.remove(0);
                if row.len() != arity {
                    return Err(RelationError::Csv {
                        line: 2,
                        message: format!("#kinds row has {} fields, expected {arity}", row.len()),
                    });
                }
                let parse_kind = |f: &str, c: usize| match f.trim() {
                    "categorical" => Ok(AttrKind::Categorical),
                    "continuous" => Ok(AttrKind::Continuous),
                    other => Err(RelationError::Csv {
                        line: 2,
                        message: format!("unknown kind `{other}` in #kinds field {c}"),
                    }),
                };
                let mut kinds = Vec::with_capacity(arity);
                // Field 0 carries the marker plus column 0's kind:
                // `#kinds=<kind>`.
                let first_kind = row
                    .first()
                    .and_then(|f| f.strip_prefix("#kinds="))
                    .map(|k| parse_kind(k, 0))
                    .transpose()?
                    .unwrap_or(AttrKind::Categorical);
                kinds.push(first_kind);
                for (c, f) in row.iter().enumerate().skip(1) {
                    kinds.push(parse_kind(f, c)?);
                }
                declared_kinds = Some(kinds);
            }
        }
    }
    let mut columns: Vec<Vec<Value>> = vec![Vec::with_capacity(records.len()); arity];
    for (i, rec) in records.iter().enumerate() {
        if rec.len() != arity {
            return Err(RelationError::Csv {
                line: i + 1 + usize::from(opts.has_header),
                message: format!("expected {arity} fields, found {}", rec.len()),
            });
        }
        for (c, f) in rec.iter().enumerate() {
            columns[c].push(parse_field(f, &opts.null_tokens));
        }
    }
    let attrs: Vec<Attribute> = header
        .into_iter()
        .enumerate()
        .zip(&columns)
        .map(|((i, name), col)| {
            let kind = declared_kinds
                .as_ref()
                .and_then(|ks| ks.get(i).copied())
                .unwrap_or_else(|| infer_kind(col));
            Attribute::new(name, kind)
        })
        .collect();
    // Mixed numeric/text columns were inferred categorical; stringify the
    // numerics so the column is homogeneous (e.g. an ID column of "1, 2, x").
    for (attr, col) in attrs.iter().zip(&mut columns) {
        if attr.kind == AttrKind::Categorical
            && col.iter().any(|v| matches!(v, Value::Text(_)))
            && col.iter().any(|v| v.as_f64().is_some())
        {
            for v in col.iter_mut() {
                if v.as_f64().is_some() {
                    *v = Value::Text(v.to_string());
                }
            }
        }
    }
    Relation::from_columns(Schema::new(attrs)?, columns)
}

/// Reads a relation from a CSV file.
pub fn read_path(path: impl AsRef<Path>, opts: &CsvOptions) -> Result<Relation> {
    let text = std::fs::read_to_string(path)?;
    read_str(&text, opts)
}

/// Serialises a relation to CSV text (with header, `?` for nulls).
pub fn write_str(relation: &Relation) -> String {
    write_str_with(relation, &CsvOptions::default())
}

/// Serialises a relation, optionally emitting the `#kinds` annotation row
/// so kinds round-trip through [`read_str`] with the same options.
pub fn write_str_with(relation: &Relation, opts: &CsvOptions) -> String {
    let mut out = String::new();
    let names: Vec<&str> = relation
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name.as_str())
        .collect();
    out.push_str(
        &names
            .iter()
            .map(|n| escape(n))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    if opts.kind_row {
        let attrs = relation.schema().attributes();
        let mut fields = Vec::with_capacity(attrs.len());
        for (i, a) in attrs.iter().enumerate() {
            if i == 0 {
                fields.push(format!("#kinds={}", a.kind));
            } else {
                fields.push(a.kind.to_string());
            }
        }
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    for row in relation.rows() {
        let fields: Vec<String> = row.iter().map(|v| escape(&v.to_string())).collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

/// Writes a relation to a CSV file.
pub fn write_path(relation: &Relation, path: impl AsRef<Path>) -> Result<()> {
    std::fs::write(path, write_str(relation))?;
    Ok(())
}

fn escape(field: &str) -> String {
    // `\r` must be quoted or the reader sees a bare-CR framing error; a
    // leading U+FEFF must be quoted or the reader's BOM strip would eat
    // it when the field opens the file.
    if field.contains([',', '"', '\n', '\r']) || field.starts_with('\u{FEFF}') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_parse_with_header() {
        let r = read_str("name,age\nAlice,18\nBob,22\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.n_rows(), 2);
        assert_eq!(r.schema().attribute(0).unwrap().kind, AttrKind::Categorical);
        assert_eq!(r.schema().attribute(1).unwrap().kind, AttrKind::Continuous);
        assert_eq!(r.column_by_name("age").unwrap().value(1), Value::Int(22));
    }

    #[test]
    fn headerless_names_attrs_by_index() {
        let opts = CsvOptions {
            has_header: false,
            ..Default::default()
        };
        let r = read_str("1,2.5\n3,4.5\n", &opts).unwrap();
        assert_eq!(r.schema().attribute(0).unwrap().name, "attr0");
        assert_eq!(r.schema().attribute(1).unwrap().name, "attr1");
    }

    #[test]
    fn question_mark_is_null() {
        let r = read_str("x,y\n?,1\n2,?\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.column(0).unwrap().value(0), Value::Null);
        assert_eq!(r.column(1).unwrap().value(1), Value::Null);
        // Column with nulls and ints still infers continuous.
        assert_eq!(r.schema().attribute(0).unwrap().kind, AttrKind::Continuous);
    }

    #[test]
    fn quoted_fields_with_commas_and_quotes() {
        let r = read_str(
            "name,quote\n\"Smith, John\",\"he said \"\"hi\"\"\"\n",
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(
            r.column(0).unwrap().value(0),
            Value::Text("Smith, John".into())
        );
        assert_eq!(
            r.column(1).unwrap().value(0),
            Value::Text("he said \"hi\"".into())
        );
    }

    #[test]
    fn embedded_newline_in_quotes() {
        let r = read_str("a,b\n\"line1\nline2\",2\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.n_rows(), 1);
        assert_eq!(
            r.column(0).unwrap().value(0),
            Value::Text("line1\nline2".into())
        );
    }

    #[test]
    fn unterminated_quote_errors() {
        let err = read_str("a\n\"oops\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, RelationError::Csv { .. }));
    }

    #[test]
    fn ragged_rows_rejected_with_line_number() {
        let err = read_str("a,b\n1,2\n3\n", &CsvOptions::default()).unwrap_err();
        match err {
            RelationError::Csv { line, .. } => assert_eq!(line, 3),
            other => panic!("expected Csv error, got {other}"),
        }
    }

    #[test]
    fn mixed_numeric_text_column_becomes_categorical_text() {
        let r = read_str("x\n1\nhello\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.schema().attribute(0).unwrap().kind, AttrKind::Categorical);
        // The numeric is stringified so the column is homogeneous text.
        assert_eq!(r.column(0).unwrap().value(0), Value::Text("1".into()));
        assert_eq!(r.column(0).unwrap().value(1), Value::Text("hello".into()));
    }

    #[test]
    fn kind_row_roundtrips_kinds() {
        let schema = Schema::new(vec![
            Attribute::categorical("code"), // integer-coded categorical
            Attribute::continuous("x"),
        ])
        .unwrap();
        let r = Relation::from_rows(
            schema,
            vec![
                vec![Value::Int(0), 1.5.into()],
                vec![Value::Int(1), 2.5.into()],
            ],
        )
        .unwrap();
        let opts = CsvOptions::with_kind_row();
        let text = write_str_with(&r, &opts);
        assert!(text
            .lines()
            .nth(1)
            .unwrap()
            .starts_with("#kinds=categorical"));
        let back = read_str(&text, &opts).unwrap();
        assert_eq!(back.schema(), r.schema());
        assert_eq!(back, r);
        // Without the option the annotation is not honoured and the coded
        // column comes back continuous (the plain-CSV limitation).
        let plain = read_str(&text, &CsvOptions::default()).unwrap();
        assert_ne!(plain.schema(), r.schema());
    }

    #[test]
    fn malformed_kind_row_errors() {
        let opts = CsvOptions::with_kind_row();
        let err = read_str(
            "a,b
#kinds=categorical,weird
1,2
",
            &opts,
        )
        .unwrap_err();
        assert!(matches!(err, RelationError::Csv { line: 2, .. }));
        let err = read_str(
            "a,b
#kinds=categorical
1,2
",
            &opts,
        )
        .unwrap_err();
        assert!(matches!(err, RelationError::Csv { line: 2, .. }));
    }

    #[test]
    fn nan_and_inf_stay_text() {
        let r = read_str(
            "x
nan
inf
-inf
NaN
",
            &CsvOptions::default(),
        )
        .unwrap();
        assert_eq!(r.schema().attribute(0).unwrap().kind, AttrKind::Categorical);
        for v in r.column(0).unwrap().iter() {
            assert!(
                matches!(v, crate::value::ValueRef::Text(_)),
                "{v:?} should be text"
            );
        }
    }

    #[test]
    fn crlf_tolerated() {
        let r = read_str("a,b\r\n1,2\r\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.n_rows(), 1);
    }

    #[test]
    fn utf8_bom_is_stripped_from_header() {
        let r = read_str("\u{FEFF}name,age\nAlice,18\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.schema().attribute(0).unwrap().name, "name");
        assert!(r.column_by_name("name").is_ok());
        // A BOM later in the file is ordinary content, not a marker.
        let r = read_str("a\n\u{FEFF}\n", &CsvOptions::default()).unwrap();
        assert_eq!(
            r.column(0).unwrap().value(0),
            Value::Text("\u{FEFF}".into())
        );
    }

    #[test]
    fn bare_cr_is_a_typed_error_not_a_silent_merge() {
        // Before hardening, the CR vanished and `1\r2` parsed as `12`.
        let err = read_str("a\n1\r2\n", &CsvOptions::default()).unwrap_err();
        match err {
            RelationError::Csv { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("bare CR"));
            }
            other => panic!("expected Csv error, got {other}"),
        }
        // Classic Mac line endings (CR-only) are rejected the same way.
        assert!(read_str("a\r1\r", &CsvOptions::default()).is_err());
    }

    #[test]
    fn unterminated_quote_at_eof_reports_opening_line() {
        let err = read_str("a,b\n1,2\n\"oops,3\n", &CsvOptions::default()).unwrap_err();
        match err {
            RelationError::Csv { line, message } => {
                assert_eq!(line, 3, "error points at the line the quote opened on");
                assert!(message.contains("unterminated"));
            }
            other => panic!("expected Csv error, got {other}"),
        }
        // Quote open at the very last byte, no trailing newline.
        assert!(read_str("a\n\"", &CsvOptions::default()).is_err());
    }

    #[test]
    fn ragged_trailing_row_rejected_with_line_number() {
        // Last record short, with and without a final newline.
        for text in ["a,b\n1,2\n3\n", "a,b\n1,2\n3"] {
            let err = read_str(text, &CsvOptions::default()).unwrap_err();
            match err {
                RelationError::Csv { line, message } => {
                    assert_eq!(line, 3);
                    assert!(message.contains("expected 2 fields"));
                }
                other => panic!("expected Csv error, got {other}"),
            }
        }
        // Trailing record with too many fields is equally typed.
        assert!(read_str("a,b\n1,2\n3,4,5\n", &CsvOptions::default()).is_err());
    }

    #[test]
    fn roundtrip() {
        let csv = "name,age\n\"Smith, J\",18\nBob,?\n";
        let r = read_str(csv, &CsvOptions::default()).unwrap();
        let out = write_str(&r);
        let r2 = read_str(&out, &CsvOptions::default()).unwrap();
        assert_eq!(r, r2);
    }

    /// Canonical fixed point: `write(read(x))` must re-read to bytes
    /// identical to its own re-serialisation. Each case is a writer bug
    /// the fuzzer found (see `fuzz/corpus/regressions/csv/`).
    #[test]
    fn writer_output_is_a_round_trip_fixed_point() {
        for text in [
            "h\n\"a\rb\"\n",      // CR inside a quoted field
            "\"\u{FEFF}h\"\n1\n", // header name starting with a BOM
            "x\n-0.0\n",          // -0.0 displays as "-0", re-reads as 0
            "\"\r\"\n",           // header that IS a bare CR
        ] {
            let first = write_str(&read_str(text, &CsvOptions::default()).unwrap());
            let again = read_str(&first, &CsvOptions::default())
                .unwrap_or_else(|e| panic!("canonical form of {text:?} rejected: {e}"));
            assert_eq!(write_str(&again), first, "not a fixed point for {text:?}");
        }
    }

    #[test]
    fn empty_input_is_error() {
        assert!(read_str("", &CsvOptions::default()).is_err());
    }
}
