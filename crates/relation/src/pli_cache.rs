//! A shared, thread-safe, size-bounded cache of stripped partitions.
//!
//! Building `Π_X` for an attribute set X by intersecting single-column
//! PLIs is the dominant cost of every discovery pass (TANE's lattice,
//! `g3` checks, ND fanout bounds, the full profiler). The same `Π_X` is
//! requested many times — by different levels of one lattice traversal,
//! by the exact and approximate FD passes, and by different dependency
//! classes profiling the same relation — so memoizing partitions behind
//! one [`PliCache`] removes the repeated intersection work.
//!
//! Keys are `u64` attribute bitsets (one bit per attribute), which caps
//! cacheable schemas at 64 attributes — far above the paper-scale
//! relations this workspace targets; wider relations simply bypass the
//! cache. Entries are `Arc<Pli>` so concurrent readers share one
//! partition without copying. The cache is bounded: when `capacity` is
//! exceeded the least-recently-used entry is evicted, keeping memory
//! proportional to `capacity × O(n_rows)` instead of the full lattice.

use crate::Pli;
use mp_observe::{Counter, Recorder};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A point-in-time snapshot of a [`PliCache`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PliCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build the partition.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Evictions forced by the byte budget while entry capacity remained
    /// (a subset of `evictions`).
    pub budget_evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Estimated heap bytes currently retained by resident partitions.
    pub bytes: usize,
    /// Maximum resident entries (`0` = caching disabled).
    pub capacity: usize,
    /// Maximum retained heap bytes (`0` = unlimited).
    pub budget_bytes: usize,
}

impl PliCacheStats {
    /// Fraction of lookups served from the cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for PliCacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate), {} resident ({} B), {} evicted ({} by budget), capacity {}, budget {}",
            self.hits,
            self.misses,
            100.0 * self.hit_rate(),
            self.entries,
            self.bytes,
            self.evictions,
            self.budget_evictions,
            self.capacity,
            if self.budget_bytes == 0 {
                "unlimited".to_owned()
            } else {
                format!("{} B", self.budget_bytes)
            }
        )
    }
}

/// One resident entry: the partition plus its last-touched tick.
struct Entry {
    pli: Arc<Pli>,
    last_used: u64,
    /// Estimated retained heap bytes ([`Pli::heap_bytes`]), fixed at
    /// insertion so accounting stays exact across eviction.
    bytes: usize,
}

/// The lock-guarded map; counters live outside the lock.
struct Inner {
    map: HashMap<u64, Entry>,
    tick: u64,
    /// Sum of every resident entry's `bytes`.
    bytes: usize,
}

/// Thread-safe LRU-bounded memoizing store for stripped partitions,
/// keyed by attribute bitset. See the module docs for the design.
pub struct PliCache {
    inner: Mutex<Inner>,
    capacity: usize,
    /// Maximum retained heap bytes across resident partitions
    /// (`0` = unlimited; entry capacity still applies).
    budget_bytes: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    budget_evictions: Counter,
}

impl std::fmt::Debug for PliCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PliCache")
            .field("capacity", &self.capacity)
            .field("budget_bytes", &self.budget_bytes)
            .field("stats", &self.stats())
            .finish()
    }
}

impl PliCache {
    /// A cache holding at most `capacity` partitions. `capacity == 0`
    /// disables caching entirely: every [`get`](Self::get) misses and
    /// [`insert`](Self::insert) is a no-op (useful as an ablation
    /// baseline and for relations too wide to key).
    pub fn new(capacity: usize) -> Self {
        Self::with_budget(capacity, 0)
    }

    /// Like [`new`](Self::new), plus a *byte* budget: the estimated
    /// retained heap of resident partitions ([`Pli::heap_bytes`]) is kept
    /// at or below `budget_bytes` by additional LRU evictions.
    /// `budget_bytes == 0` means unlimited (entry capacity still
    /// applies). A partition larger than the whole budget is returned
    /// uncached rather than evicting everything for a single entry.
    pub fn with_budget(capacity: usize, budget_bytes: usize) -> Self {
        // Detached live counters: `stats()` keeps working without a
        // recorder, at the same one-relaxed-atomic cost as before.
        PliCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                bytes: 0,
            }),
            capacity,
            budget_bytes,
            hits: Counter::live(),
            misses: Counter::live(),
            evictions: Counter::live(),
            budget_evictions: Counter::live(),
        }
    }

    /// Like [`new`](Self::new), but the hit/miss/eviction counters are
    /// registered with `recorder` as `pli_cache.hits`, `pli_cache.misses`
    /// and `pli_cache.evictions`. The *same* atomics back [`stats`](
    /// Self::stats) and the recorder's snapshot, so there is exactly one
    /// source of truth for cache statistics.
    pub fn with_recorder(capacity: usize, recorder: &dyn Recorder) -> Self {
        Self::with_recorder_and_budget(capacity, 0, recorder)
    }

    /// [`with_budget`](Self::with_budget) plus recorder-registered
    /// counters (see [`with_recorder`](Self::with_recorder)); budget
    /// evictions are registered as `pli_cache.budget_evictions`.
    pub fn with_recorder_and_budget(
        capacity: usize,
        budget_bytes: usize,
        recorder: &dyn Recorder,
    ) -> Self {
        let mut cache = PliCache::with_budget(capacity, budget_bytes);
        // Noop recorders hand back dead handles; keep the detached live
        // counters in that case so `stats()` stays functional.
        let hits = recorder.counter("pli_cache.hits");
        if hits.is_live() {
            cache.hits = hits;
            cache.misses = recorder.counter("pli_cache.misses");
            cache.evictions = recorder.counter("pli_cache.evictions");
            cache.budget_evictions = recorder.counter("pli_cache.budget_evictions");
        }
        cache
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured byte budget (`0` = unlimited).
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Estimated heap bytes currently retained by resident partitions.
    pub fn resident_bytes(&self) -> usize {
        // lint: allow(no-panic) reason="cache operations cannot panic while holding the lock, so poisoning implies a panic already unwinding elsewhere"
        self.inner.lock().expect("PliCache lock poisoned").bytes
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        // lint: allow(no-panic) reason="cache operations cannot panic while holding the lock, so poisoning implies a panic already unwinding elsewhere"
        self.inner.lock().expect("PliCache lock poisoned").map.len()
    }

    /// `true` when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up the partition for the attribute bitset `key`, bumping its
    /// recency and the hit/miss counters.
    pub fn get(&self, key: u64) -> Option<Arc<Pli>> {
        if self.capacity == 0 {
            self.misses.inc();
            return None;
        }
        // lint: allow(no-panic) reason="cache operations cannot panic while holding the lock, so poisoning implies a panic already unwinding elsewhere"
        let mut inner = self.inner.lock().expect("PliCache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.last_used = tick;
                let pli = Arc::clone(&entry.pli);
                drop(inner);
                self.hits.inc();
                Some(pli)
            }
            None => {
                drop(inner);
                self.misses.inc();
                None
            }
        }
    }

    /// Inserts (or refreshes) the partition for `key`, evicting the
    /// least-recently-used entry if the cache is full. Returns the
    /// resident `Arc` — if another thread inserted the same key first,
    /// that earlier partition is kept and returned, so all callers share
    /// one allocation.
    pub fn insert(&self, key: u64, pli: Pli) -> Arc<Pli> {
        let bytes = pli.heap_bytes();
        let pli = Arc::new(pli);
        if self.capacity == 0 {
            return pli;
        }
        if self.budget_bytes > 0 && bytes > self.budget_bytes {
            // Larger than the whole budget: caching it would evict every
            // other entry and still overshoot. Hand it back uncached.
            return pli;
        }
        // lint: allow(no-panic) reason="cache operations cannot panic while holding the lock, so poisoning implies a panic already unwinding elsewhere"
        let mut inner = self.inner.lock().expect("PliCache lock poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(existing) = inner.map.get_mut(&key) {
            existing.last_used = tick;
            return Arc::clone(&existing.pli);
        }
        // Evict until both bounds hold: the entry count stays below
        // capacity and the byte budget covers the incoming partition.
        while !inner.map.is_empty()
            && (inner.map.len() >= self.capacity
                || (self.budget_bytes > 0 && inner.bytes + bytes > self.budget_bytes))
        {
            let over_capacity = inner.map.len() >= self.capacity;
            // O(entries) scan; capacities are small enough that a heap
            // would cost more in constant factors than it saves.
            let Some(&victim) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            else {
                break;
            };
            if let Some(evicted) = inner.map.remove(&victim) {
                inner.bytes -= evicted.bytes;
            }
            self.evictions.inc();
            if !over_capacity {
                // Capacity had room; only the byte budget forced this.
                self.budget_evictions.inc();
            }
        }
        inner.bytes += bytes;
        inner.map.insert(
            key,
            Entry {
                pli: Arc::clone(&pli),
                last_used: tick,
                bytes,
            },
        );
        pli
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        // lint: allow(no-panic) reason="cache operations cannot panic while holding the lock, so poisoning implies a panic already unwinding elsewhere"
        let mut inner = self.inner.lock().expect("PliCache lock poisoned");
        inner.map.clear();
        inner.bytes = 0;
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> PliCacheStats {
        PliCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            budget_evictions: self.budget_evictions.get(),
            entries: self.len(),
            bytes: self.resident_bytes(),
            capacity: self.capacity,
            budget_bytes: self.budget_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn pli(values: &[i64]) -> Pli {
        let column: Vec<Value> = values.iter().map(|&v| Value::Int(v)).collect();
        Pli::from_column(&column)
    }

    #[test]
    fn hit_miss_accounting() {
        let cache = PliCache::new(8);
        assert!(cache.get(0b1).is_none());
        cache.insert(0b1, pli(&[1, 1, 2]));
        let hit = cache.get(0b1).expect("present");
        assert_eq!(*hit, pli(&[1, 1, 2]));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_keeps_recently_used() {
        let cache = PliCache::new(2);
        cache.insert(1, pli(&[1]));
        cache.insert(2, pli(&[1, 1]));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(1).is_some());
        cache.insert(3, pli(&[1, 1, 1]));
        assert!(cache.get(1).is_some(), "recently used survives");
        assert!(cache.get(2).is_none(), "LRU entry evicted");
        assert!(cache.get(3).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PliCache::new(0);
        cache.insert(1, pli(&[1, 2]));
        assert!(cache.get(1).is_none());
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn duplicate_insert_keeps_first_resident() {
        let cache = PliCache::new(4);
        let a = cache.insert(7, pli(&[1, 1, 2, 2]));
        let b = cache.insert(7, pli(&[1, 1, 2, 2]));
        assert!(
            Arc::ptr_eq(&a, &b),
            "second insert returns the resident Arc"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = PliCache::new(64);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..50u64 {
                        let key = (i + t) % 16;
                        match cache.get(key) {
                            Some(p) => assert_eq!(p.n_rows(), key as usize + 1),
                            None => {
                                let vals: Vec<i64> = (0..=key as i64).map(|v| v % 3).collect();
                                cache.insert(key, pli(&vals));
                            }
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert!(stats.hits + stats.misses >= 200);
        assert!(cache.len() <= 16);
    }

    #[test]
    fn recorder_counters_are_one_source_of_truth() {
        use mp_observe::{NoopRecorder, Registry};
        let registry = Registry::new();
        let cache = PliCache::with_recorder(4, &registry);
        cache.get(1); // miss
        cache.insert(1, pli(&[1, 2]));
        cache.get(1); // hit
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        let snap = registry.snapshot();
        assert_eq!(snap.counters["pli_cache.hits"], 1);
        assert_eq!(snap.counters["pli_cache.misses"], 1);
        assert_eq!(snap.counters["pli_cache.evictions"], 0);

        // A noop recorder must not break local stats.
        let plain = PliCache::with_recorder(4, &NoopRecorder);
        plain.get(9);
        assert_eq!(plain.stats().misses, 1);
    }

    /// Heap bytes of `pli(&values)` — the same estimate `insert` uses.
    fn bytes_of(values: &[i64]) -> usize {
        pli(values).heap_bytes()
    }

    #[test]
    fn byte_accounting_is_exact_across_insert_evict_clear() {
        let one = bytes_of(&[1, 1]); // one 2-row cluster
        let cache = PliCache::with_budget(16, 3 * one);
        assert_eq!(cache.budget_bytes(), 3 * one);
        cache.insert(1, pli(&[1, 1]));
        cache.insert(2, pli(&[2, 2]));
        assert_eq!(cache.resident_bytes(), 2 * one);
        // Third fits exactly; budget holds with zero slack.
        cache.insert(3, pli(&[3, 3]));
        assert_eq!(cache.resident_bytes(), 3 * one);
        assert_eq!(cache.stats().budget_evictions, 0);
        // Fourth forces exactly one budget eviction (capacity has room).
        cache.insert(4, pli(&[4, 4]));
        let stats = cache.stats();
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.bytes, 3 * one);
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.budget_evictions, 1);
        assert!(cache.get(1).is_none(), "LRU entry paid for the budget");
        cache.clear();
        assert_eq!(cache.resident_bytes(), 0);
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn oversized_partition_bypasses_cache_instead_of_flushing_it() {
        let one = bytes_of(&[1, 1]);
        let cache = PliCache::with_budget(16, 2 * one);
        cache.insert(1, pli(&[1, 1]));
        cache.insert(2, pli(&[2, 2]));
        // Larger than the whole budget: returned uncached, residents kept.
        let big = cache.insert(3, pli(&[5, 5, 5, 5, 5, 5, 5, 5]));
        assert_eq!(big.covered_count(), 8);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.resident_bytes(), 2 * one);
        assert!(cache.get(1).is_some());
        assert!(cache.get(2).is_some());
        assert!(cache.get(3).is_none());
    }

    #[test]
    fn budget_can_evict_several_entries_for_one_insert() {
        let one = bytes_of(&[1, 1]);
        let three = bytes_of(&[7; 8]); // one 8-row cluster
        assert!(three < 4 * one && three > 2 * one);
        let cache = PliCache::with_budget(16, 4 * one);
        for key in 1..=4 {
            cache.insert(key, pli(&[key as i64, key as i64]));
        }
        // Fits only after evicting the three least-recent entries.
        cache.insert(9, pli(&[7; 8]));
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.bytes, one + three);
        assert_eq!(stats.budget_evictions, 3);
        assert!(cache.get(4).is_some(), "most recent small entry survives");
        assert!(cache.get(9).is_some());
    }

    /// The capacity-1 adversarial case from PR 2, re-run with a byte
    /// budget layered on top: ping-ponging two keys through a cache that
    /// can hold only one must alternate evictions, never deadlock or
    /// double-count.
    #[test]
    fn capacity_one_with_budget_ping_pong_stays_exact() {
        let one = bytes_of(&[1, 1]);
        let cache = PliCache::with_budget(1, one);
        for round in 0..8u64 {
            let key = round % 2;
            cache.insert(key, pli(&[1, 1]));
            assert_eq!(cache.resident_bytes(), one, "round {round}");
            assert_eq!(cache.len(), 1, "round {round}");
        }
        // 7 evictions (first insert found an empty cache), none of them
        // forced by the byte budget — capacity always bound first.
        let stats = cache.stats();
        assert_eq!(stats.evictions, 7);
        assert_eq!(stats.budget_evictions, 0);
    }

    #[test]
    fn budget_recorder_counter_is_registered() {
        use mp_observe::Registry;
        let registry = Registry::new();
        let one = bytes_of(&[1, 1]);
        let cache = PliCache::with_recorder_and_budget(16, one, &registry);
        cache.insert(1, pli(&[1, 1]));
        cache.insert(2, pli(&[2, 2]));
        assert_eq!(
            registry.snapshot().counters["pli_cache.budget_evictions"],
            1
        );
        assert_eq!(cache.stats().budget_evictions, 1);
    }

    #[test]
    fn display_is_humane() {
        let cache = PliCache::new(3);
        cache.insert(1, pli(&[1]));
        cache.get(1);
        let text = cache.stats().to_string();
        assert!(text.contains("1 hits"), "{text}");
        assert!(text.contains("capacity 3"), "{text}");
    }
}
