//! # mp-relation — relational substrate
//!
//! The in-memory relational layer underneath the `metadata-privacy`
//! workspace, the Rust reproduction of *"Will Sharing Metadata Leak
//! Privacy?"* (Zhan & Hai, ICDE 2024).
//!
//! It provides:
//!
//! * [`Value`] / [`ValueRef`] — dynamically typed cells (owned and
//!   borrowing views) with a total order suitable for grouping and
//!   sorting;
//! * [`Column`] — typed columnar storage: dictionary-encoded categorical
//!   codes (code 0 = null) and `i64`/`f64` vectors with null bitmaps,
//!   with a boxed fallback for heterogeneous columns;
//! * [`Schema`] / [`Attribute`] / [`AttrKind`] — named, kinded attributes
//!   (the paper's categorical/continuous split);
//! * [`Relation`] — column-oriented tables with typed construction,
//!   projection (vertical partitioning between VFL parties) and row
//!   selection (PSI-aligned intersections);
//! * [`Domain`] — the attribute-domain metadata whose sharing the paper
//!   analyses, with inference from data and the paper's θ probabilities;
//! * [`Pli`] — TANE-style stripped partitions powering dependency
//!   discovery and `g3` error computation;
//! * [`PliCache`] — a thread-safe LRU-bounded memoizing store for
//!   partitions shared across discovery passes;
//! * [`par`] — a minimal order-preserving scoped-thread parallel map;
//! * [`csv`] — a small reader/writer with `?`-as-missing handling;
//! * [`ColumnStats`] / [`Histogram`] — summary statistics for reports.

#![warn(missing_docs)]

mod column;
pub mod csv;
mod domain;
mod error;
pub mod par;
mod partition;
mod pli_cache;
#[allow(clippy::module_inception)]
mod relation;
mod schema;
mod stats;
mod value;

pub use column::{Bitmap, Column, ColumnBuilder, StreamingColumnBuilder};
pub use domain::Domain;
pub use error::{RelationError, Result};
pub use partition::Pli;
pub use pli_cache::{PliCache, PliCacheStats};
pub use relation::{Relation, RelationBuilder};
pub use schema::{AttrKind, Attribute, Schema};
pub use stats::{quantile, quartiles, ColumnStats, Histogram};
pub use value::{Value, ValueRef};
