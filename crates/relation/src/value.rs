//! The dynamically typed cell value used throughout the workspace.
//!
//! A [`Value`] is one of `Null`, `Int`, `Float` or `Text`. Columns are
//! type-homogeneous (enforced by [`crate::relation::RelationBuilder`]), so
//! cross-variant comparisons only matter for establishing a stable total
//! order; they never decide dependency semantics.
//!
//! Since the columnar refactor, `Value` is the *boundary* type: relations
//! store typed [`crate::Column`]s internally and materialise `Value`s only
//! at the edges (CSV I/O, serde exchange packages, the public cell API).
//! [`ValueRef`] is the borrowing counterpart used to view a cell without
//! cloning its text; `Value`'s equality, ordering and hashing all delegate
//! to `ValueRef` so the two can never disagree.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single cell value.
///
/// `Value` implements a *total* order and hash so it can serve as a grouping
/// key in partition refinement and dependency discovery:
///
/// * `Null` sorts before everything and equals only itself.
/// * `Int` and `Float` compare numerically against each other.
/// * `Text` sorts after all numerics, lexicographically.
/// * `Float` NaNs are canonicalised: every NaN is equal to every other NaN
///   and sorts after all other floats.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// A missing value (the echocardiogram dataset marks these `?`).
    Null,
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A string / categorical label.
    Text(String),
}

/// A borrowed view of a single cell, as handed out by typed columns.
///
/// Carries the same total order, equality and hash as [`Value`] (the owned
/// form delegates to this one), but borrows text instead of cloning it, so
/// whole-column scans over dictionary-encoded columns stay allocation-free.
#[derive(Debug, Clone, Copy)]
pub enum ValueRef<'a> {
    /// A missing value.
    Null,
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A borrowed string / categorical label.
    Text(&'a str),
}

/// Canonical bit pattern for a float: all NaNs collapse to one pattern,
/// and `-0.0` collapses to `0.0`, so `Eq`/`Hash`/`Ord` agree.
#[inline]
pub(crate) fn canonical_f64_bits(f: f64) -> u64 {
    if f.is_nan() {
        f64::NAN.to_bits()
    } else if f == 0.0 {
        0.0f64.to_bits()
    } else {
        f.to_bits()
    }
}

/// Total order over floats with canonical NaN greatest.
#[inline]
pub(crate) fn float_total_cmp(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        // lint: allow(no-panic) reason="both operands are proven non-NaN by this match arm, so partial_cmp always returns Some"
        (false, false) => a.partial_cmp(&b).expect("both non-NaN"),
    }
}

impl Value {
    /// Returns `true` if the value is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one.
    ///
    /// `Int` widens to `f64`; `Null` and `Text` return `None`.
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an `Int`.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view of the value, if it is `Text`.
    #[inline]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the variant, used in error messages.
    pub fn type_name(&self) -> &'static str {
        self.as_value_ref().type_name()
    }

    /// The borrowing view of this value.
    #[inline]
    pub fn as_value_ref(&self) -> ValueRef<'_> {
        match self {
            Value::Null => ValueRef::Null,
            Value::Int(i) => ValueRef::Int(*i),
            Value::Float(f) => ValueRef::Float(*f),
            Value::Text(s) => ValueRef::Text(s),
        }
    }
}

impl<'a> ValueRef<'a> {
    /// Returns `true` if the view is [`ValueRef::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, ValueRef::Null)
    }

    /// Numeric view (`Int` widens to `f64`).
    #[inline]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ValueRef::Int(i) => Some(*i as f64),
            ValueRef::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view, if the cell is an `Int`.
    #[inline]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ValueRef::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view, if the cell is `Text`.
    #[inline]
    pub fn as_str(&self) -> Option<&'a str> {
        match self {
            ValueRef::Text(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the variant, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            ValueRef::Null => "null",
            ValueRef::Int(_) => "int",
            ValueRef::Float(_) => "float",
            ValueRef::Text(_) => "text",
        }
    }

    /// Materialises the owned [`Value`].
    #[inline]
    pub fn to_value(&self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Int(i) => Value::Int(*i),
            ValueRef::Float(f) => Value::Float(*f),
            ValueRef::Text(s) => Value::Text((*s).to_owned()),
        }
    }

    /// Rank used to order values of different variants.
    ///
    /// `Int` and `Float` share a rank so they compare numerically.
    #[inline]
    fn type_rank(&self) -> u8 {
        match self {
            ValueRef::Null => 0,
            ValueRef::Int(_) | ValueRef::Float(_) => 1,
            ValueRef::Text(_) => 2,
        }
    }
}

impl PartialEq for ValueRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for ValueRef<'_> {}

impl PartialOrd for ValueRef<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ValueRef<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        use ValueRef::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (Float(a), Float(b)) => float_total_cmp(*a, *b),
            // Cross numeric comparison: compare as floats, fall back to the
            // exact integer order when the float comparison ties (guards
            // against precision loss above 2^53).
            (Int(a), Float(b)) => match float_total_cmp(*a as f64, *b) {
                Ordering::Equal => Ordering::Equal,
                o => o,
            },
            (Float(a), Int(b)) => match float_total_cmp(*a, *b as f64) {
                Ordering::Equal => Ordering::Equal,
                o => o,
            },
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for ValueRef<'_> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            ValueRef::Null => state.write_u8(0),
            // Numerics hash via the canonical float bit pattern so that
            // `Int(2)` and `Float(2.0)` (which compare equal) hash equal.
            ValueRef::Int(i) => {
                state.write_u8(1);
                state.write_u64(canonical_f64_bits(*i as f64));
            }
            ValueRef::Float(f) => {
                state.write_u8(1);
                state.write_u64(canonical_f64_bits(*f));
            }
            ValueRef::Text(s) => {
                state.write_u8(2);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for ValueRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueRef::Null => write!(f, "?"),
            ValueRef::Int(i) => write!(f, "{i}"),
            ValueRef::Float(x) => write!(f, "{x}"),
            ValueRef::Text(s) => write!(f, "{s}"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.as_value_ref() == other.as_value_ref()
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.as_value_ref().cmp(&other.as_value_ref())
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_value_ref().hash(state)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_value_ref().fmt(f)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_only_equals_null() {
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
        assert_ne!(Value::Null, Value::Text(String::new()));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_ne!(Value::Int(2), Value::Float(2.5));
        assert_eq!(hash_of(&Value::Int(2)), hash_of(&Value::Float(2.0)));
    }

    #[test]
    fn nan_is_canonical() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(-f64::NAN);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
        assert!(Value::Float(f64::INFINITY) < a);
    }

    #[test]
    fn negative_zero_equals_zero() {
        assert_eq!(Value::Float(-0.0), Value::Float(0.0));
        assert_eq!(hash_of(&Value::Float(-0.0)), hash_of(&Value::Float(0.0)));
    }

    #[test]
    fn total_order_across_types() {
        let mut vals = [
            Value::Text("a".into()),
            Value::Float(1.5),
            Value::Null,
            Value::Int(-3),
            Value::Text("A".into()),
            Value::Int(2),
        ];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(-3));
        assert_eq!(vals[2], Value::Float(1.5));
        assert_eq!(vals[3], Value::Int(2));
        assert_eq!(vals[4], Value::Text("A".into()));
        assert_eq!(vals[5], Value::Text("a".into()));
    }

    #[test]
    fn as_f64_widens_ints() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Float(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::Null.as_f64(), None);
        assert_eq!(Value::Text("x".into()).as_f64(), None);
    }

    #[test]
    fn display_roundtrip_forms() {
        assert_eq!(Value::Null.to_string(), "?");
        assert_eq!(Value::Int(-5).to_string(), "-5");
        assert_eq!(Value::Text("dept".into()).to_string(), "dept");
    }

    #[test]
    fn from_option_maps_none_to_null() {
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
    }

    #[test]
    fn large_int_order_preserved() {
        // Above 2^53 both map to the same f64; the integer tiebreak keeps Eq
        // consistent with Int-vs-Int ordering.
        let a = Value::Int(i64::MAX);
        let b = Value::Int(i64::MAX - 1);
        assert!(a > b);
    }

    #[test]
    fn value_ref_agrees_with_value() {
        let vals = [
            Value::Null,
            Value::Int(-3),
            Value::Int(2),
            Value::Float(2.0),
            Value::Float(f64::NAN),
            Value::Text("abc".into()),
        ];
        for a in &vals {
            assert_eq!(hash_of(a), hash_of(&a.as_value_ref()));
            assert_eq!(a.to_string(), a.as_value_ref().to_string());
            assert_eq!(a.as_value_ref().to_value(), *a);
            for b in &vals {
                assert_eq!(a.cmp(b), a.as_value_ref().cmp(&b.as_value_ref()));
                assert_eq!(*a == *b, a.as_value_ref() == b.as_value_ref());
            }
        }
    }
}
