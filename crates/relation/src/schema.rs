//! Attributes, attribute kinds and schemas.

use crate::error::{RelationError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Statistical kind of an attribute, as the paper distinguishes them.
///
/// The paper's privacy definitions differ by kind: categorical leakage is
/// exact index-aligned matching (Definition 2.2), continuous leakage is an
/// ε-ball around the real value (Definition 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrKind {
    /// Discrete labels; equality is the only meaningful relation.
    Categorical,
    /// Numeric values drawn from an (effectively) continuous range.
    Continuous,
}

impl fmt::Display for AttrKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrKind::Categorical => write!(f, "categorical"),
            AttrKind::Continuous => write!(f, "continuous"),
        }
    }
}

/// A named, kinded attribute of a relation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Attribute {
    /// The attribute (feature) name — itself a piece of metadata the paper
    /// analyses the sharing of.
    pub name: String,
    /// Categorical or continuous.
    pub kind: AttrKind,
}

impl Attribute {
    /// Creates a new attribute.
    pub fn new(name: impl Into<String>, kind: AttrKind) -> Self {
        Self {
            name: name.into(),
            kind,
        }
    }

    /// Shorthand for a categorical attribute.
    pub fn categorical(name: impl Into<String>) -> Self {
        Self::new(name, AttrKind::Categorical)
    }

    /// Shorthand for a continuous attribute.
    pub fn continuous(name: impl Into<String>) -> Self {
        Self::new(name, AttrKind::Continuous)
    }
}

/// An ordered list of uniquely named attributes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    attributes: Vec<Attribute>,
}

impl Schema {
    /// Builds a schema, rejecting duplicate attribute names.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self> {
        for (i, a) in attributes.iter().enumerate() {
            if attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(RelationError::DuplicateAttribute(a.name.clone()));
            }
        }
        Ok(Self { attributes })
    }

    /// The attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Attribute at `index`, if in bounds.
    pub fn attribute(&self, index: usize) -> Result<&Attribute> {
        self.attributes
            .get(index)
            .ok_or(RelationError::IndexOutOfBounds {
                index,
                len: self.attributes.len(),
            })
    }

    /// Index of the attribute named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| RelationError::UnknownAttribute(name.to_owned()))
    }

    /// Iterator over `(index, attribute)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Attribute)> {
        self.attributes.iter().enumerate()
    }

    /// Indices of all attributes of the given kind.
    pub fn indices_of_kind(&self, kind: AttrKind) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind == kind)
            .map(|(i, _)| i)
            .collect()
    }

    /// Sub-schema keeping only the attributes at `indices` (in the given
    /// order). Used when vertically partitioning a relation between parties.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let mut attrs = Vec::with_capacity(indices.len());
        for &i in indices {
            attrs.push(self.attribute(i)?.clone());
        }
        Schema::new(attrs)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.kind)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Schema {
        Schema::new(vec![
            Attribute::categorical("a"),
            Attribute::continuous("b"),
            Attribute::categorical("c"),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_duplicate_names() {
        let err = Schema::new(vec![
            Attribute::categorical("x"),
            Attribute::continuous("x"),
        ])
        .unwrap_err();
        assert_eq!(err, RelationError::DuplicateAttribute("x".into()));
    }

    #[test]
    fn index_lookup() {
        let s = abc();
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(matches!(
            s.index_of("zz"),
            Err(RelationError::UnknownAttribute(_))
        ));
        assert_eq!(s.attribute(2).unwrap().name, "c");
        assert!(s.attribute(3).is_err());
    }

    #[test]
    fn kind_partition() {
        let s = abc();
        assert_eq!(s.indices_of_kind(AttrKind::Categorical), vec![0, 2]);
        assert_eq!(s.indices_of_kind(AttrKind::Continuous), vec![1]);
    }

    #[test]
    fn projection_reorders() {
        let s = abc();
        let p = s.project(&[2, 0]).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.attribute(0).unwrap().name, "c");
        assert_eq!(p.attribute(1).unwrap().name, "a");
        assert!(s.project(&[9]).is_err());
    }

    #[test]
    fn display_lists_attributes() {
        let s = abc();
        let d = s.to_string();
        assert!(d.contains("a: categorical"));
        assert!(d.contains("b: continuous"));
    }

    #[test]
    fn empty_schema_is_valid() {
        let s = Schema::new(vec![]).unwrap();
        assert_eq!(s.arity(), 0);
    }
}
