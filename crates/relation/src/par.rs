//! Minimal scoped-thread parallel map.
//!
//! The discovery engine fans work out over lattice nodes and attribute
//! pairs. External thread-pool crates are unavailable offline, so this
//! module provides the one primitive the engine needs: an
//! order-preserving parallel map over owned items built on
//! `std::thread::scope`. Work is distributed dynamically (an atomic
//! next-item counter), so uneven item costs — small vs large partitions
//! — balance across workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolves a requested thread count: `0` means "use the machine's
/// available parallelism", anything else is taken literally.
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Maps `f` over `items` on up to `threads` scoped worker threads,
/// preserving input order in the output.
///
/// `threads` is resolved via [`effective_threads`]; with one effective
/// thread (or zero/one items) the map runs inline with no thread or lock
/// overhead, so sequential callers pay nothing. `f` must be `Sync`
/// because workers share it; items are handed to exactly one worker
/// each. Panics in `f` propagate (the scope joins all workers first).
pub fn par_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = effective_threads(threads).min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }

    let n = items.len();
    // Hand out items by index; slots hold inputs going in and outputs
    // coming back, so ordering is positional and lock-free reads are
    // never needed.
    let inputs: Vec<Mutex<Option<T>>> = items
        .into_iter()
        .map(|item| Mutex::new(Some(item)))
        .collect();
    let outputs: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = inputs[i]
                    .lock()
                    .expect("par_map input lock poisoned") // lint: allow(no-panic) reason="a poisoned lock means a worker already panicked; thread::scope re-raises that panic anyway"
                    .take()
                    .expect("item taken twice"); // lint: allow(no-panic) reason="the atomic fetch_add hands each index to exactly one worker"
                let result = f(item);
                // lint: allow(no-panic) reason="a poisoned lock means a worker already panicked; thread::scope re-raises that panic anyway"
                *outputs[i].lock().expect("par_map output lock poisoned") = Some(result);
            });
        }
    });

    outputs
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("par_map output lock poisoned") // lint: allow(no-panic) reason="a poisoned lock means a worker already panicked; thread::scope re-raises that panic anyway"
                .expect("worker skipped an item") // lint: allow(no-panic) reason="thread::scope joined every worker, and the index loop covers 0..n, so every slot is filled"
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        let doubled = par_map(items.clone(), 4, |x| x * 2);
        assert_eq!(doubled, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_for_any_thread_count() {
        let items: Vec<i64> = (0..100).collect();
        let expected: Vec<i64> = items.iter().map(|x| x * x - 1).collect();
        for threads in [0, 1, 2, 3, 8, 200] {
            assert_eq!(
                par_map(items.clone(), threads, |x| x * x - 1),
                expected,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(par_map(Vec::<u8>::new(), 4, |x| x), Vec::<u8>::new());
        assert_eq!(par_map(vec![9], 4, |x| x + 1), vec![10]);
    }

    #[test]
    fn effective_threads_resolution() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still come back in order.
        let items: Vec<u64> = (0..40).collect();
        let out = par_map(items, 4, |x| {
            let spins = if x % 7 == 0 { 20_000 } else { 10 };
            (0..spins).fold(x, |acc, _| std::hint::black_box(acc | x))
        });
        assert_eq!(out.len(), 40);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
    }
}
