//! Per-column summary statistics.
//!
//! These drive domain inference sanity checks, dataset documentation, and
//! the experiment reports (e.g. interpreting an MSE relative to a column's
//! variance, as the paper does when reading Table III).

use crate::error::Result;
use crate::relation::Relation;
use crate::value::{Value, ValueRef};
use std::collections::HashMap;

/// Summary statistics of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Attribute name.
    pub name: String,
    /// Total rows.
    pub count: usize,
    /// Missing values.
    pub nulls: usize,
    /// Distinct values (nulls count as one distinct value).
    pub distinct: usize,
    /// Minimum over numeric values, if any.
    pub min: Option<f64>,
    /// Maximum over numeric values, if any.
    pub max: Option<f64>,
    /// Mean over numeric values, if any.
    pub mean: Option<f64>,
    /// Population variance over numeric values, if any.
    pub variance: Option<f64>,
    /// Most frequent value and its multiplicity.
    pub mode: Option<(Value, usize)>,
}

impl ColumnStats {
    /// Computes statistics for column `col` of `relation`.
    pub fn compute(relation: &Relation, col: usize) -> Result<Self> {
        let name = relation.schema().attribute(col)?.name.clone();
        let column = relation.column(col)?;
        let count = column.len();
        let nulls = column.null_count();

        let mut freq: HashMap<ValueRef<'_>, usize> = HashMap::new();
        for v in column.iter() {
            *freq.entry(v).or_insert(0) += 1;
        }
        let distinct = freq.len();
        let mode = freq
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .map(|(v, c)| (v.to_value(), *c));

        let nums: Vec<f64> = column.iter().filter_map(|v| v.as_f64()).collect();
        let (min, max, mean, variance) = if nums.is_empty() {
            (None, None, None, None)
        } else {
            let n = nums.len() as f64;
            let min = nums.iter().copied().fold(f64::INFINITY, f64::min);
            let max = nums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mean = nums.iter().sum::<f64>() / n;
            let var = nums.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            (Some(min), Some(max), Some(mean), Some(var))
        };

        Ok(Self {
            name,
            count,
            nulls,
            distinct,
            min,
            max,
            mean,
            variance,
            mode,
        })
    }

    /// Computes statistics for every column.
    pub fn compute_all(relation: &Relation) -> Result<Vec<Self>> {
        (0..relation.arity())
            .map(|c| Self::compute(relation, c))
            .collect()
    }
}

/// Empirical quantile of the numeric values of a column, by linear
/// interpolation between order statistics (the common "type 7" estimator).
/// `q` is clamped to [0, 1]; `None` if the column has no numeric values.
pub fn quantile(relation: &Relation, col: usize, q: f64) -> Result<Option<f64>> {
    let mut nums: Vec<f64> = relation
        .column(col)?
        .iter()
        .filter_map(|v| v.as_f64())
        .collect();
    if nums.is_empty() {
        return Ok(None);
    }
    nums.sort_by(f64::total_cmp);
    let q = q.clamp(0.0, 1.0);
    let pos = q * (nums.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(Some(nums[lo] + (nums[hi] - nums[lo]) * frac))
}

/// The (q25, q50, q75) quartiles of a column, or `None` without numerics.
pub fn quartiles(relation: &Relation, col: usize) -> Result<Option<(f64, f64, f64)>> {
    Ok(
        match (
            quantile(relation, col, 0.25)?,
            quantile(relation, col, 0.5)?,
            quantile(relation, col, 0.75)?,
        ) {
            (Some(a), Some(b), Some(c)) => Some((a, b, c)),
            _ => None,
        },
    )
}

/// Fixed-width histogram over the numeric values of a column.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Inclusive lower bound of the first bucket.
    pub min: f64,
    /// Exclusive upper bound of the last bucket (values equal to the max
    /// land in the last bucket).
    pub max: f64,
    /// Per-bucket counts.
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Builds a histogram with `buckets` equal-width bins over the numeric
    /// values of column `col`. Returns `None` if the column has no numeric
    /// values or `buckets == 0`.
    pub fn compute(relation: &Relation, col: usize, buckets: usize) -> Result<Option<Self>> {
        if buckets == 0 {
            return Ok(None);
        }
        let nums: Vec<f64> = relation
            .column(col)?
            .iter()
            .filter_map(|v| v.as_f64())
            .collect();
        if nums.is_empty() {
            return Ok(None);
        }
        let min = nums.iter().copied().fold(f64::INFINITY, f64::min);
        let max = nums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let width = (max - min).max(f64::MIN_POSITIVE);
        let mut counts = vec![0usize; buckets];
        for x in nums {
            let mut b = ((x - min) / width * buckets as f64) as usize;
            if b >= buckets {
                b = buckets - 1;
            }
            counts[b] += 1;
        }
        Ok(Some(Self { min, max, counts }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};

    fn rel() -> Relation {
        let schema = Schema::new(vec![
            Attribute::categorical("dept"),
            Attribute::continuous("salary"),
        ])
        .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec!["Sales".into(), 20.0.into()],
                vec!["Sales".into(), 25.0.into()],
                vec![Value::Null, 27.0.into()],
                vec!["CS".into(), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn categorical_stats() {
        let s = ColumnStats::compute(&rel(), 0).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.distinct, 3);
        assert_eq!(s.mode, Some((Value::Text("Sales".into()), 2)));
        assert_eq!(s.mean, None);
    }

    #[test]
    fn continuous_stats() {
        let s = ColumnStats::compute(&rel(), 1).unwrap();
        assert_eq!(s.min, Some(20.0));
        assert_eq!(s.max, Some(27.0));
        let mean = (20.0 + 25.0 + 27.0) / 3.0;
        assert!((s.mean.unwrap() - mean).abs() < 1e-12);
        let var = ((20.0f64 - mean).powi(2) + (25.0 - mean).powi(2) + (27.0 - mean).powi(2)) / 3.0;
        assert!((s.variance.unwrap() - var).abs() < 1e-12);
    }

    #[test]
    fn mode_tie_breaks_deterministically() {
        let schema = Schema::new(vec![Attribute::categorical("x")]).unwrap();
        let r = Relation::from_rows(schema, vec![vec!["a".into()], vec!["b".into()]]).unwrap();
        let s = ColumnStats::compute(&r, 0).unwrap();
        // Ties resolve to the smallest value for determinism.
        assert_eq!(s.mode, Some((Value::Text("a".into()), 1)));
    }

    #[test]
    fn histogram_buckets_values() {
        let h = Histogram::compute(&rel(), 1, 2).unwrap().unwrap();
        // salaries 20, 25, 27 over [20, 27]: bucket edges at 23.5.
        assert_eq!(h.counts, vec![1, 2]);
        assert_eq!(h.min, 20.0);
        assert_eq!(h.max, 27.0);
    }

    #[test]
    fn histogram_degenerate_cases() {
        assert_eq!(Histogram::compute(&rel(), 1, 0).unwrap(), None);
        assert_eq!(Histogram::compute(&rel(), 0, 4).unwrap(), None); // no numerics
    }

    #[test]
    fn histogram_single_value_column() {
        let schema = Schema::new(vec![Attribute::continuous("c")]).unwrap();
        let r = Relation::from_rows(schema, vec![vec![5.0.into()], vec![5.0.into()]]).unwrap();
        let h = Histogram::compute(&r, 0, 3).unwrap().unwrap();
        assert_eq!(h.counts.iter().sum::<usize>(), 2);
    }

    #[test]
    fn compute_all_spans_schema() {
        let all = ColumnStats::compute_all(&rel()).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].name, "dept");
        assert_eq!(all[1].name, "salary");
    }

    #[test]
    fn quantiles_interpolate() {
        let schema = Schema::new(vec![Attribute::continuous("x")]).unwrap();
        let r = Relation::from_rows(
            schema,
            (1..=5).map(|i| vec![Value::Float(i as f64)]).collect(),
        )
        .unwrap();
        assert_eq!(quantile(&r, 0, 0.0).unwrap(), Some(1.0));
        assert_eq!(quantile(&r, 0, 1.0).unwrap(), Some(5.0));
        assert_eq!(quantile(&r, 0, 0.5).unwrap(), Some(3.0));
        // Interpolated: q = 0.1 → pos 0.4 → 1.4.
        assert!((quantile(&r, 0, 0.1).unwrap().unwrap() - 1.4).abs() < 1e-12);
        // Clamping.
        assert_eq!(quantile(&r, 0, -3.0).unwrap(), Some(1.0));
        assert_eq!(quartiles(&r, 0).unwrap(), Some((2.0, 3.0, 4.0)));
    }

    #[test]
    fn quantile_without_numerics_is_none() {
        let r = rel();
        assert_eq!(quantile(&r, 0, 0.5).unwrap(), None);
        assert_eq!(quartiles(&r, 0).unwrap(), None);
    }
}
