//! Stripped partitions (position list indexes) in the style of TANE
//! (Huhtala et al., cited as \[13\] in the paper).
//!
//! A partition Π_X groups tuple indices by their value on attribute set X.
//! The *stripped* form drops singleton groups, which keeps intersection
//! (the inner loop of level-wise FD discovery) proportional to the number of
//! duplicated tuples rather than |R|.

use crate::column::Column;
use crate::value::Value;
use std::collections::HashMap;

/// A stripped partition over the tuples of a relation.
///
/// Invariants: every cluster has length ≥ 2, clusters are internally sorted,
/// and clusters are sorted by their first element, so two `Pli`s computed
/// from equivalent groupings compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pli {
    clusters: Vec<Vec<usize>>,
    n_rows: usize,
}

impl Pli {
    /// Builds the stripped partition of a single column.
    pub fn from_column(column: &[Value]) -> Self {
        // lint: allow(no-unordered-iteration) reason="clusters are sorted by first row index before they leave this function"
        let mut groups: HashMap<&Value, Vec<usize>> = HashMap::new();
        for (i, v) in column.iter().enumerate() {
            groups.entry(v).or_default().push(i);
        }
        let mut clusters: Vec<Vec<usize>> = groups.into_values().filter(|g| g.len() >= 2).collect();
        // Rows were pushed in index order, so each cluster is sorted already.
        clusters.sort_by_key(|c| c[0]); // lint: allow(no-literal-index) reason="clusters are filtered to len >= 2 one line above"
        Self {
            clusters,
            n_rows: column.len(),
        }
    }

    /// Builds the stripped partition of a typed column, grouping by the
    /// column's equality-class codes — a single counting-style pass with no
    /// `Value` hashing. Produces output identical to [`Pli::from_column`]
    /// over the materialised values.
    pub fn from_typed(column: &Column) -> Self {
        let (codes, n_codes) = column.group_codes();
        Self::from_codes(&codes, n_codes)
    }

    /// Builds the stripped partition from per-row equality-class codes
    /// (`codes[i] < n_codes` for all rows; two rows share a code iff their
    /// cells are equal). Counting-style: one pass to size each group, one
    /// pass to scatter row indices, so clusters come out internally sorted
    /// without hashing.
    pub fn from_codes(codes: &[u32], n_codes: usize) -> Self {
        let mut counts = vec![0u32; n_codes];
        for &c in codes {
            counts[c as usize] += 1;
        }
        // Only codes occurring ≥ 2 times produce (stripped) clusters.
        let mut slot = vec![usize::MAX; n_codes];
        let mut clusters: Vec<Vec<usize>> = Vec::new();
        for (code, &count) in counts.iter().enumerate() {
            if count >= 2 {
                slot[code] = clusters.len();
                clusters.push(Vec::with_capacity(count as usize));
            }
        }
        for (row, &c) in codes.iter().enumerate() {
            let s = slot[c as usize];
            if s != usize::MAX {
                clusters[s].push(row);
            }
        }
        // Rows were scattered in index order, so each cluster is sorted.
        clusters.sort_by_key(|c| c[0]); // lint: allow(no-literal-index) reason="empty and singleton clusters were dropped by the retain above"
        Self {
            clusters,
            n_rows: codes.len(),
        }
    }

    /// Sharded [`Pli::from_typed`]: grouping codes come from the column's
    /// typed layout, cluster construction is radix-sharded across
    /// `shards` threads (see [`Pli::from_codes_sharded`]).
    pub fn from_typed_sharded(column: &Column, shards: usize) -> Self {
        let (codes, n_codes) = column.group_codes();
        Self::from_codes_sharded(&codes, n_codes, shards)
    }

    /// Sharded [`Pli::from_codes`]: radix-splits the code space into
    /// `shards` contiguous ranges, builds each range's clusters in
    /// parallel via [`crate::par::par_map`], then merges by concatenation
    /// plus the same first-element sort `from_codes` ends with.
    ///
    /// The ranges partition the code space, so shard outputs are disjoint
    /// and cover every cluster exactly once; after the final sort the
    /// result is bit-identical to the single-pass build — the merge
    /// equivalence the oracle and property tests pin.
    pub fn from_codes_sharded(codes: &[u32], n_codes: usize, shards: usize) -> Self {
        let shards = shards.max(1).min(n_codes.max(1));
        if shards <= 1 {
            return Self::from_codes(codes, n_codes);
        }
        let per = n_codes.div_ceil(shards);
        // The last ranges can collapse to empty when `per` over-covers.
        let ranges: Vec<(usize, usize)> = (0..shards)
            .map(|s| ((s * per).min(n_codes), ((s + 1) * per).min(n_codes)))
            .filter(|(lo, hi)| lo < hi)
            .collect();
        let shard_clusters = crate::par::par_map(ranges, shards, |(lo, hi)| {
            clusters_for_code_range(codes, lo, hi)
        });
        let mut clusters: Vec<Vec<usize>> = shard_clusters.into_iter().flatten().collect();
        clusters.sort_by_key(|c| c[0]); // lint: allow(no-literal-index) reason="per-shard kernels only emit clusters of len >= 2"
        Self {
            clusters,
            n_rows: codes.len(),
        }
    }

    /// Estimated retained heap bytes: the cluster spine plus every stored
    /// row index. A deterministic function of the logical shape (lengths,
    /// never allocator capacities), so equal partitions always account
    /// equally in byte-budgeted caches.
    pub fn heap_bytes(&self) -> usize {
        let spine = self.clusters.len() * std::mem::size_of::<Vec<usize>>();
        let rows: usize = self
            .clusters
            .iter()
            .map(|c| c.len() * std::mem::size_of::<usize>())
            .sum();
        spine + rows
    }

    /// Builds a partition directly from clusters (used by tests and by
    /// generators that know the grouping). Singleton clusters are stripped.
    pub fn from_clusters(mut clusters: Vec<Vec<usize>>, n_rows: usize) -> Self {
        clusters.retain(|c| c.len() >= 2);
        for c in &mut clusters {
            c.sort_unstable();
        }
        clusters.sort_by_key(|c| c[0]); // lint: allow(no-literal-index) reason="the retain above drops clusters shorter than 2"
        Self { clusters, n_rows }
    }

    /// The single-cluster partition {{0..n}} (partition of the empty
    /// attribute set: all tuples agree on ∅).
    pub fn unit(n_rows: usize) -> Self {
        if n_rows >= 2 {
            Self {
                clusters: vec![(0..n_rows).collect()],
                n_rows,
            }
        } else {
            Self {
                clusters: vec![],
                n_rows,
            }
        }
    }

    /// Clusters of size ≥ 2.
    pub fn clusters(&self) -> &[Vec<usize>] {
        &self.clusters
    }

    /// Number of tuples in the underlying relation.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of (non-singleton) clusters, |Π| in TANE notation.
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }

    /// Total tuples covered by non-singleton clusters, ||Π|| in TANE.
    pub fn covered_count(&self) -> usize {
        self.clusters.iter().map(Vec::len).sum()
    }

    /// TANE's key-pruning error `e(X) = (||Π|| − |Π|) / |R|`: the fraction of
    /// tuples that must be removed for X to become a key. Zero iff X is a
    /// (super)key.
    pub fn key_error(&self) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        (self.covered_count() - self.cluster_count()) as f64 / self.n_rows as f64
    }

    /// `true` iff the attribute set is a superkey (no duplicate groups).
    pub fn is_key(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Row → cluster-id map where rows in no cluster get `None`.
    pub fn signature(&self) -> Vec<Option<usize>> {
        let mut sig = vec![None; self.n_rows];
        for (cid, cluster) in self.clusters.iter().enumerate() {
            for &row in cluster {
                sig[row] = Some(cid);
            }
        }
        sig
    }

    /// Row → cluster-id map of the *full* partition: singleton rows receive
    /// fresh unique ids after the stripped clusters. Two rows share an id
    /// iff they agree on the attribute set.
    pub fn full_signature(&self) -> Vec<usize> {
        let mut sig = vec![usize::MAX; self.n_rows];
        for (cid, cluster) in self.clusters.iter().enumerate() {
            for &row in cluster {
                sig[row] = cid;
            }
        }
        let mut next = self.clusters.len();
        for s in &mut sig {
            if *s == usize::MAX {
                *s = next;
                next += 1;
            }
        }
        sig
    }

    /// Partition product Π_X ∩ Π_Y = Π_{X∪Y}, the TANE `STRIPPED_PRODUCT`.
    ///
    /// Linear in `||Π_self|| + ||Π_other||` after building `other`'s
    /// signature once; callers doing many intersections against the same
    /// partition should use [`Pli::intersect_with_signature`].
    pub fn intersect(&self, other: &Pli) -> Pli {
        debug_assert_eq!(self.n_rows, other.n_rows);
        let sig = other.signature();
        self.intersect_with_signature(&sig)
    }

    /// Partition product against a precomputed signature of the other side.
    pub fn intersect_with_signature(&self, other_sig: &[Option<usize>]) -> Pli {
        let mut out: Vec<Vec<usize>> = Vec::new();
        // lint: allow(no-unordered-iteration) reason="drained groups are sorted by first row index before they leave this function"
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for cluster in &self.clusters {
            groups.clear();
            for &row in cluster {
                if let Some(oid) = other_sig[row] {
                    groups.entry(oid).or_default().push(row);
                }
            }
            for (_, g) in groups.drain() {
                if g.len() >= 2 {
                    out.push(g);
                }
            }
        }
        out.sort_by_key(|c| c[0]); // lint: allow(no-literal-index) reason="only groups of len >= 2 are pushed into out"
        Pli {
            clusters: out,
            n_rows: self.n_rows,
        }
    }

    /// `true` iff this partition refines `other`: every cluster of `self`
    /// lies inside one cluster (or singleton) of `other`.
    ///
    /// `Π_X` refines `Π_Y` iff the FD X → Y holds when `other` is the full
    /// partition of Y — use [`Pli::satisfies_fd`] for that check, which also
    /// handles `other`'s singleton identity correctly.
    pub fn refines(&self, other: &Pli) -> bool {
        let sig = other.full_signature();
        self.clusters.iter().all(|cluster| {
            let first = sig[cluster[0]]; // lint: allow(no-literal-index) reason="Pli invariant: stored clusters always have len >= 2"
            cluster[1..].iter().all(|&r| sig[r] == first)
        })
    }

    /// Checks the FD X → Y given `self` = Π_X and the full signature of Y
    /// (`rhs_full_sig`, from [`Pli::full_signature`] of Π_Y).
    pub fn satisfies_fd(&self, rhs_full_sig: &[usize]) -> bool {
        self.clusters.iter().all(|cluster| {
            let first = rhs_full_sig[cluster[0]]; // lint: allow(no-literal-index) reason="Pli invariant: stored clusters always have len >= 2"
            cluster[1..].iter().all(|&r| rhs_full_sig[r] == first)
        })
    }

    /// Minimum number of tuples to delete so that X → Y holds — the
    /// numerator of the `g3` error (Kivinen & Mannila, paper ref \[14\]).
    ///
    /// For each X-cluster we keep the plurality Y-group and delete the rest;
    /// X-singletons never violate.
    pub fn g3_violations(&self, rhs_full_sig: &[usize]) -> usize {
        let mut total = 0;
        // lint: allow(no-unordered-iteration) reason="only the order-independent maximum of the counts is read"
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for cluster in &self.clusters {
            counts.clear();
            for &row in cluster {
                *counts.entry(rhs_full_sig[row]).or_insert(0) += 1;
            }
            let max = counts.values().copied().max().unwrap_or(0);
            total += cluster.len() - max;
        }
        total
    }

    /// The `g3` error of X → Y: violations normalised by |R|.
    pub fn g3_error(&self, rhs_full_sig: &[usize]) -> f64 {
        if self.n_rows == 0 {
            return 0.0;
        }
        self.g3_violations(rhs_full_sig) as f64 / self.n_rows as f64
    }
}

/// The per-shard kernel of [`Pli::from_codes_sharded`]: the clusters of
/// [`Pli::from_codes`] restricted to codes in `lo..hi`, in the same
/// (code-major, then row-major) emission order.
fn clusters_for_code_range(codes: &[u32], lo: usize, hi: usize) -> Vec<Vec<usize>> {
    let width = hi - lo;
    let mut counts = vec![0u32; width];
    for &c in codes {
        let c = c as usize;
        if c >= lo && c < hi {
            counts[c - lo] += 1;
        }
    }
    let mut slot = vec![usize::MAX; width];
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    for (code, &count) in counts.iter().enumerate() {
        if count >= 2 {
            slot[code] = clusters.len();
            clusters.push(Vec::with_capacity(count as usize));
        }
    }
    for (row, &c) in codes.iter().enumerate() {
        let c = c as usize;
        if c >= lo && c < hi {
            let s = slot[c - lo];
            if s != usize::MAX {
                clusters[s].push(row);
            }
        }
    }
    clusters
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(xs: &[i64]) -> Vec<Value> {
        xs.iter().map(|&x| Value::Int(x)).collect()
    }

    #[test]
    fn from_column_strips_singletons() {
        // values: a a b c c c  → clusters {0,1} {3,4,5}
        let p = Pli::from_column(&vals(&[1, 1, 2, 3, 3, 3]));
        assert_eq!(p.clusters(), &[vec![0, 1], vec![3, 4, 5]]);
        assert_eq!(p.cluster_count(), 2);
        assert_eq!(p.covered_count(), 5);
        assert!(!p.is_key());
    }

    #[test]
    fn key_column_has_empty_stripped_partition() {
        let p = Pli::from_column(&vals(&[1, 2, 3, 4]));
        assert!(p.is_key());
        assert_eq!(p.key_error(), 0.0);
    }

    #[test]
    fn key_error_matches_tane_formula() {
        let p = Pli::from_column(&vals(&[1, 1, 1, 2, 2, 9]));
        // ||Π|| = 5, |Π| = 2, |R| = 6 → e = 3/6.
        assert!((p.key_error() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn intersection_is_conjunction_of_groupings() {
        // X: a a a b b    Y: 1 1 2 2 2
        let x = Pli::from_column(&vals(&[10, 10, 10, 20, 20]));
        let y = Pli::from_column(&vals(&[1, 1, 2, 2, 2]));
        let xy = x.intersect(&y);
        // XY groups: (a,1):{0,1} (a,2):{2} (b,2):{3,4}
        assert_eq!(xy.clusters(), &[vec![0, 1], vec![3, 4]]);
    }

    #[test]
    fn intersection_with_unit_is_identity() {
        let x = Pli::from_column(&vals(&[1, 1, 2, 2, 3]));
        let u = Pli::unit(5);
        assert_eq!(x.intersect(&u), x);
        assert_eq!(u.intersect(&x), x);
    }

    #[test]
    fn intersection_commutes() {
        let x = Pli::from_column(&vals(&[1, 1, 2, 2, 3, 3, 3]));
        let y = Pli::from_column(&vals(&[5, 6, 6, 6, 5, 5, 6]));
        assert_eq!(x.intersect(&y), y.intersect(&x));
    }

    #[test]
    fn full_signature_distinguishes_singletons() {
        let p = Pli::from_column(&vals(&[7, 7, 8, 9]));
        let sig = p.full_signature();
        assert_eq!(sig[0], sig[1]);
        assert_ne!(sig[2], sig[3]);
        assert_ne!(sig[0], sig[2]);
    }

    #[test]
    fn fd_satisfaction() {
        // X: a a b b   Y: 1 1 2 2 → X→Y holds.
        let x = Pli::from_column(&vals(&[1, 1, 2, 2]));
        let y = Pli::from_column(&vals(&[9, 9, 8, 8]));
        assert!(x.satisfies_fd(&y.full_signature()));

        // Y': 1 2 2 2 → X→Y' violated in cluster {0,1}.
        let y2 = Pli::from_column(&vals(&[1, 2, 2, 2]));
        assert!(!x.satisfies_fd(&y2.full_signature()));
    }

    #[test]
    fn fd_with_rhs_singletons() {
        // X: a a   Y: 1 2 (distinct singletons) → violated.
        let x = Pli::from_column(&vals(&[1, 1]));
        let y = Pli::from_column(&vals(&[1, 2]));
        assert!(!x.satisfies_fd(&y.full_signature()));
    }

    #[test]
    fn g3_counts_minimum_deletions() {
        // X: a a a a  Y: 1 1 2 3 → keep plurality (1,1), delete 2 rows.
        let x = Pli::from_column(&vals(&[5, 5, 5, 5]));
        let y = Pli::from_column(&vals(&[1, 1, 2, 3]));
        assert_eq!(x.g3_violations(&y.full_signature()), 2);
        assert!((x.g3_error(&y.full_signature()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn g3_zero_for_valid_fd() {
        let x = Pli::from_column(&vals(&[1, 1, 2]));
        let y = Pli::from_column(&vals(&[4, 4, 4]));
        assert_eq!(x.g3_violations(&y.full_signature()), 0);
    }

    #[test]
    fn refines_checks_containment() {
        let fine = Pli::from_clusters(vec![vec![0, 1], vec![2, 3]], 5);
        let coarse = Pli::from_clusters(vec![vec![0, 1, 2, 3]], 5);
        assert!(fine.refines(&coarse));
        assert!(!coarse.refines(&fine));
    }

    #[test]
    fn unit_of_tiny_relations() {
        assert!(Pli::unit(0).is_key());
        assert!(Pli::unit(1).is_key());
        assert_eq!(Pli::unit(2).cluster_count(), 1);
    }

    #[test]
    fn empty_relation_edge_cases() {
        let p = Pli::from_column(&[]);
        assert!(p.is_key());
        assert_eq!(p.key_error(), 0.0);
        assert_eq!(p.g3_error(&[]), 0.0);
    }

    #[test]
    fn from_codes_matches_from_column() {
        // codes: 1 1 2 0 0 3 1 → clusters {0,1,6} {3,4}
        let p = Pli::from_codes(&[1, 1, 2, 0, 0, 3, 1], 4);
        assert_eq!(p.clusters(), &[vec![0, 1, 6], vec![3, 4]]);
        assert_eq!(p, Pli::from_column(&vals(&[1, 1, 2, 0, 0, 3, 1])));
        assert!(Pli::from_codes(&[], 0).is_key());
    }

    #[test]
    fn sharded_build_is_bit_identical_to_single_pass() {
        // Fixed-seed splitmix-style oracle over assorted shapes: the
        // sharded build must reproduce `from_codes` exactly — same
        // clusters, same order — for every shard count.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for &(n_rows, n_codes) in &[
            (0usize, 0usize),
            (1, 2),
            (64, 3),
            (1000, 17),
            (1000, 1000),
            (4096, 257),
        ] {
            let codes: Vec<u32> = (0..n_rows)
                .map(|_| {
                    if n_codes == 0 {
                        0
                    } else {
                        next() % n_codes as u32
                    }
                })
                .collect();
            let single = Pli::from_codes(&codes, n_codes);
            for shards in [1usize, 2, 7, 64] {
                let sharded = Pli::from_codes_sharded(&codes, n_codes, shards);
                assert_eq!(
                    sharded, single,
                    "rows={n_rows} codes={n_codes} shards={shards}"
                );
            }
        }
    }

    #[test]
    fn from_typed_sharded_matches_from_typed() {
        let mut col = Column::default();
        for i in 0..100 {
            col.push_value(Value::Int(i % 7));
        }
        for shards in [1usize, 2, 7, 64] {
            assert_eq!(Pli::from_typed_sharded(&col, shards), Pli::from_typed(&col));
        }
    }

    #[test]
    fn heap_bytes_counts_spine_and_rows() {
        let p = Pli::from_clusters(vec![vec![0, 1], vec![2, 3, 4]], 6);
        let expected = 2 * std::mem::size_of::<Vec<usize>>() + 5 * std::mem::size_of::<usize>();
        assert_eq!(p.heap_bytes(), expected);
        // Key partitions retain nothing.
        assert_eq!(Pli::from_column(&vals(&[1, 2, 3])).heap_bytes(), 0);
    }

    #[test]
    fn from_typed_matches_from_column() {
        use crate::value::Value;
        let values = vec![
            Value::Int(2),
            Value::Float(2.0),
            Value::Null,
            Value::Null,
            Value::Float(f64::NAN),
            Value::Float(-f64::NAN),
            Value::Int(2),
        ];
        let boxed = Column::Boxed(values.clone());
        assert_eq!(Pli::from_typed(&boxed), Pli::from_column(&values));

        // Typed float layout with the int mask groups identically.
        let mut col = Column::default();
        for v in &values {
            col.push_value(v.clone());
        }
        assert!(matches!(col, Column::Float { .. }));
        assert_eq!(Pli::from_typed(&col), Pli::from_column(&values));
    }
}
