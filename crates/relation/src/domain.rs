//! Attribute domains — a central metadata artefact in the paper.
//!
//! The paper's §III-A shows that sharing an attribute's *domain* already
//! enables random-generation leakage with expected hit count `N/|D_A|`
//! (categorical) or an ε-ball hit rate `2ε/|range|` (continuous). Domains
//! are therefore first-class objects here: they are what a party shares,
//! what an adversary samples from, and what the analytical models take as
//! input.

use crate::error::{RelationError, Result};
use crate::relation::Relation;
use crate::schema::AttrKind;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The domain of a single attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Domain {
    /// A finite, sorted, de-duplicated set of values.
    ///
    /// Missing values (`Value::Null`) may be part of the domain — the
    /// echocardiogram evaluation counts `?` as an observable value, which is
    /// what makes the paper's random-match counts on binary attributes come
    /// out at `N/3` rather than `N/2`.
    Categorical(Vec<Value>),
    /// A closed numeric interval `[min, max]`.
    Continuous {
        /// Lower bound.
        min: f64,
        /// Upper bound (≥ `min`).
        max: f64,
    },
}

impl Domain {
    /// A categorical domain from any value iterator (sorted, de-duplicated).
    pub fn categorical<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        let mut vals: Vec<Value> = values.into_iter().map(Into::into).collect();
        vals.sort();
        vals.dedup();
        Domain::Categorical(vals)
    }

    /// A continuous domain `[min, max]`. Swaps the bounds if given reversed.
    pub fn continuous(min: f64, max: f64) -> Self {
        if min <= max {
            Domain::Continuous { min, max }
        } else {
            Domain::Continuous { min: max, max: min }
        }
    }

    /// Cardinality `|D_A|` of a categorical domain, `None` for continuous.
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            Domain::Categorical(v) => Some(v.len()),
            Domain::Continuous { .. } => None,
        }
    }

    /// Width `max - min` of a continuous domain, `None` for categorical.
    pub fn range(&self) -> Option<f64> {
        match self {
            Domain::Continuous { min, max } => Some(max - min),
            Domain::Categorical(_) => None,
        }
    }

    /// The values of a categorical domain.
    pub fn values(&self) -> Option<&[Value]> {
        match self {
            Domain::Categorical(v) => Some(v),
            Domain::Continuous { .. } => None,
        }
    }

    /// Bounds of a continuous domain.
    pub fn bounds(&self) -> Option<(f64, f64)> {
        match self {
            Domain::Continuous { min, max } => Some((*min, *max)),
            Domain::Categorical(_) => None,
        }
    }

    /// Whether the domain contains `v`.
    ///
    /// For continuous domains any numeric inside the interval counts; nulls
    /// are contained only if a categorical domain lists `Null` explicitly.
    pub fn contains(&self, v: &Value) -> bool {
        match self {
            Domain::Categorical(vals) => vals.binary_search(v).is_ok(),
            Domain::Continuous { min, max } => v.as_f64().is_some_and(|x| x >= *min && x <= *max),
        }
    }

    /// Infers the domain of column `col` of `relation`, driven by the
    /// attribute's kind.
    ///
    /// * Categorical: the set of observed values *including* `Null` if any
    ///   row is missing (see [`Domain::Categorical`]).
    /// * Continuous: the observed `[min, max]` over non-null values.
    ///
    /// Errors with [`RelationError::EmptyRelation`] if a continuous column
    /// has no non-null values to bound.
    pub fn infer(relation: &Relation, col: usize) -> Result<Domain> {
        let attr = relation.schema().attribute(col)?;
        let column = relation.column(col)?;
        match attr.kind {
            AttrKind::Categorical => {
                let mut vals: Vec<Value> = column.to_values();
                vals.sort();
                vals.dedup();
                Ok(Domain::Categorical(vals))
            }
            AttrKind::Continuous => {
                let mut it = column.iter().filter_map(|v| v.as_f64());
                let first = it.next().ok_or(RelationError::EmptyRelation)?;
                let (min, max) = it.fold((first, first), |(lo, hi), x| (lo.min(x), hi.max(x)));
                Ok(Domain::Continuous { min, max })
            }
        }
    }

    /// Infers the domain of every column.
    pub fn infer_all(relation: &Relation) -> Result<Vec<Domain>> {
        (0..relation.arity())
            .map(|c| Domain::infer(relation, c))
            .collect()
    }

    /// The paper's per-cell correct-generation probability θ_A for uniform
    /// random generation from this domain (§III-A for categorical; §IV-D's
    /// `2ε/range` for continuous with tolerance `epsilon`).
    ///
    /// Degenerate continuous domains (`range == 0`) yield probability 1.
    pub fn theta(&self, epsilon: f64) -> f64 {
        match self {
            Domain::Categorical(vals) => {
                if vals.is_empty() {
                    0.0
                } else {
                    1.0 / vals.len() as f64
                }
            }
            Domain::Continuous { min, max } => {
                let range = max - min;
                if range <= 0.0 {
                    1.0
                } else {
                    (2.0 * epsilon / range).min(1.0)
                }
            }
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Categorical(vals) => {
                write!(f, "{{")?;
                for (i, v) in vals.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Domain::Continuous { min, max } => write!(f, "[{min}, {max}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};

    fn rel() -> Relation {
        let schema = Schema::new(vec![
            Attribute::categorical("dept"),
            Attribute::continuous("salary"),
        ])
        .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vec!["Sales".into(), 20_000i64.into()],
                vec!["CS".into(), 25_000i64.into()],
                vec![Value::Null, 27_000i64.into()],
                vec!["Sales".into(), 35_000i64.into()],
            ],
        )
        .unwrap()
    }

    #[test]
    fn categorical_inference_includes_null() {
        let d = Domain::infer(&rel(), 0).unwrap();
        assert_eq!(d.cardinality(), Some(3)); // Null, CS, Sales
        assert!(d.contains(&Value::Null));
        assert!(d.contains(&"CS".into()));
        assert!(!d.contains(&"HR".into()));
    }

    #[test]
    fn continuous_inference_bounds() {
        let d = Domain::infer(&rel(), 1).unwrap();
        assert_eq!(d.bounds(), Some((20_000.0, 35_000.0)));
        assert_eq!(d.range(), Some(15_000.0));
        assert!(d.contains(&Value::Float(30_000.0)));
        assert!(!d.contains(&Value::Float(19_999.0)));
        assert!(!d.contains(&Value::Null));
    }

    #[test]
    fn continuous_all_null_is_error() {
        let schema = Schema::new(vec![Attribute::continuous("x")]).unwrap();
        let r = Relation::from_rows(schema, vec![vec![Value::Null], vec![Value::Null]]).unwrap();
        assert!(matches!(
            Domain::infer(&r, 0),
            Err(RelationError::EmptyRelation)
        ));
    }

    #[test]
    fn constructor_dedups_and_sorts() {
        let d = Domain::categorical(vec![3i64, 1, 3, 2]);
        assert_eq!(
            d.values().unwrap(),
            &[Value::Int(1), Value::Int(2), Value::Int(3)]
        );
    }

    #[test]
    fn reversed_bounds_are_swapped() {
        let d = Domain::continuous(5.0, 1.0);
        assert_eq!(d.bounds(), Some((1.0, 5.0)));
    }

    #[test]
    fn theta_matches_paper_formulas() {
        // §III-A: uniform categorical θ = 1/|D|.
        let d = Domain::categorical(vec!["a", "b", "c"]);
        assert!((d.theta(0.0) - 1.0 / 3.0).abs() < 1e-12);

        // Continuous: 2ε / range, clamped to 1.
        let c = Domain::continuous(0.0, 10.0);
        assert!((c.theta(1.0) - 0.2).abs() < 1e-12);
        assert_eq!(c.theta(100.0), 1.0);

        // Degenerate cases.
        assert_eq!(Domain::Categorical(vec![]).theta(0.0), 0.0);
        assert_eq!(Domain::continuous(2.0, 2.0).theta(0.0), 1.0);
    }

    #[test]
    fn infer_all_covers_every_column() {
        let ds = Domain::infer_all(&rel()).unwrap();
        assert_eq!(ds.len(), 2);
        assert!(matches!(ds[0], Domain::Categorical(_)));
        assert!(matches!(ds[1], Domain::Continuous { .. }));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Domain::categorical(vec![1i64, 2]).to_string(), "{1, 2}");
        assert_eq!(Domain::continuous(0.0, 1.5).to_string(), "[0, 1.5]");
    }
}
