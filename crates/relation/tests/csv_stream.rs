//! Integration tests for the public streaming-ingest API: [`csv::read_stream`]
//! over pathological readers and [`csv::read_path`] over real files must be
//! indistinguishable from [`csv::read_str`] over the same bytes.

use mp_relation::csv::{self, CsvOptions};
use std::io::Read;

/// A reader that yields one byte per `read` call — the worst possible
/// chunking — and reports a spurious `Interrupted` before every byte,
/// which a conforming consumer must retry.
struct TrickleReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    interrupt_next: bool,
}

impl<'a> TrickleReader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            interrupt_next: true,
        }
    }
}

impl Read for TrickleReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.interrupt_next {
            self.interrupt_next = false;
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "spurious wakeup",
            ));
        }
        self.interrupt_next = true;
        match (self.bytes.get(self.pos), buf.first_mut()) {
            (Some(&b), Some(slot)) => {
                *slot = b;
                self.pos += 1;
                Ok(1)
            }
            _ => Ok(0),
        }
    }
}

#[test]
fn read_stream_over_one_byte_reads_matches_read_str() {
    let cases = [
        "name,age\nAlice,18\nBob,22\n",
        "a,b\r\n\"line1\nline2\",2\r\n",
        "\u{FEFF}name,quote\n\"Smith, John\",\"say \"\"hi\"\"\"\n",
        "x,y\nümlaut,1\n日本語,2\n",
        "x\n-0.0\n",
    ];
    for text in cases {
        let expected = csv::read_str(text, &CsvOptions::default()).unwrap();
        let got = csv::read_stream(TrickleReader::new(text.as_bytes()), &CsvOptions::default())
            .unwrap_or_else(|e| panic!("trickle read failed on {text:?}: {e}"));
        assert_eq!(got, expected, "on {text:?}");
        assert_eq!(got.schema(), expected.schema(), "on {text:?}");
    }
}

#[test]
fn read_stream_surfaces_typed_errors_like_read_str() {
    let cases = [
        "a\n1\r2\n",            // bare CR
        "a,b\n1,2\n\"oops,3\n", // unterminated quote
        "a,b\n1,2\n3\n",        // ragged row
        "",                     // empty input
    ];
    for text in cases {
        let expected = csv::read_str(text, &CsvOptions::default()).unwrap_err();
        let got = csv::read_stream(TrickleReader::new(text.as_bytes()), &CsvOptions::default())
            .unwrap_err();
        assert_eq!(got, expected, "on {text:?}");
    }
}

#[test]
fn read_path_streams_files_byte_identically_to_read_str() {
    let text = "name,age,score\n\"Smith, J\",18,1.5\nBob,?,2.5\n\"line1\nline2\",30,?\n";
    let dir = std::env::temp_dir();
    let path = dir.join("mp_relation_csv_stream_test.csv");
    std::fs::write(&path, text).unwrap();
    let from_file = csv::read_path(&path, &CsvOptions::default()).unwrap();
    std::fs::remove_file(&path).ok();
    let from_str = csv::read_str(text, &CsvOptions::default()).unwrap();
    assert_eq!(from_file, from_str);
    assert_eq!(from_file.schema(), from_str.schema());
}

#[test]
fn read_path_reports_missing_file_as_io_error() {
    let err = csv::read_path(
        "/nonexistent/definitely/missing.csv",
        &CsvOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(err, mp_relation::RelationError::Io(_)));
}
