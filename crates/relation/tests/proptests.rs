//! Property-based tests for the relational substrate.

use mp_relation::{csv, AttrKind, Attribute, Domain, Pli, Relation, Schema, Value};
use proptest::prelude::*;

/// Strategy: a column of small integers (dense duplicates, exercising
/// partition clusters).
fn small_int_column() -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec((0i64..6).prop_map(Value::Int), 0..60)
}

/// Reference partition semantics: group row indices by value.
fn naive_groups(col: &[Value]) -> Vec<Vec<usize>> {
    let mut sorted: Vec<(usize, &Value)> = col.iter().enumerate().collect();
    sorted.sort_by(|a, b| a.1.cmp(b.1).then(a.0.cmp(&b.0)));
    let mut out: Vec<Vec<usize>> = Vec::new();
    for (i, v) in sorted {
        match out.last_mut() {
            Some(last) if col[last[0]] == *v => last.push(i),
            _ => out.push(vec![i]),
        }
    }
    out.retain(|g| g.len() >= 2);
    out.sort_by_key(|g| g[0]);
    out
}

proptest! {
    #[test]
    fn pli_matches_naive_grouping(col in small_int_column()) {
        let pli = Pli::from_column(&col);
        prop_assert_eq!(pli.clusters().to_vec(), naive_groups(&col));
    }

    #[test]
    fn pli_intersection_commutes(a in small_int_column(), b in small_int_column()) {
        let n = a.len().min(b.len());
        let pa = Pli::from_column(&a[..n]);
        let pb = Pli::from_column(&b[..n]);
        prop_assert_eq!(pa.intersect(&pb), pb.intersect(&pa));
    }

    #[test]
    fn pli_intersection_associates(
        a in small_int_column(),
        b in small_int_column(),
        c in small_int_column(),
    ) {
        let n = a.len().min(b.len()).min(c.len());
        let pa = Pli::from_column(&a[..n]);
        let pb = Pli::from_column(&b[..n]);
        let pc = Pli::from_column(&c[..n]);
        prop_assert_eq!(
            pa.intersect(&pb).intersect(&pc),
            pa.intersect(&pb.intersect(&pc))
        );
    }

    #[test]
    fn pli_intersection_refines_both(a in small_int_column(), b in small_int_column()) {
        let n = a.len().min(b.len());
        let pa = Pli::from_column(&a[..n]);
        let pb = Pli::from_column(&b[..n]);
        let pab = pa.intersect(&pb);
        prop_assert!(pab.refines(&pa));
        prop_assert!(pab.refines(&pb));
    }

    #[test]
    fn pli_intersection_idempotent(a in small_int_column()) {
        let pa = Pli::from_column(&a);
        prop_assert_eq!(pa.intersect(&pa), pa);
    }

    #[test]
    fn pli_unit_is_intersection_identity(a in small_int_column()) {
        // Π_∅ = the unit partition (one cluster of all rows) is the
        // identity of ∩ — the base case the discovery engine's cache
        // relies on for the empty attribute set.
        let pa = Pli::from_column(&a);
        let unit = Pli::unit(a.len());
        prop_assert_eq!(pa.intersect(&unit), pa.clone());
        prop_assert_eq!(unit.intersect(&pa), pa);
    }

    #[test]
    fn refines_is_consistent_with_satisfies_fd(
        a in small_int_column(),
        b in small_int_column(),
    ) {
        // Π_X refines Π_Y exactly when the FD X → Y holds (checked via
        // the signature-based validator the TANE engine uses).
        let n = a.len().min(b.len());
        let pa = Pli::from_column(&a[..n]);
        let pb = Pli::from_column(&b[..n]);
        prop_assert_eq!(pa.refines(&pb), pa.satisfies_fd(&pb.full_signature()));
        prop_assert_eq!(pb.refines(&pa), pb.satisfies_fd(&pa.full_signature()));
    }

    #[test]
    fn pli_intersection_matches_pairwise_semantics(
        a in small_int_column(),
        b in small_int_column(),
    ) {
        // Two rows share a cluster in the product iff they agree on both
        // columns — the defining property of Π_{X∪Y}.
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let sig = Pli::from_column(a).intersect(&Pli::from_column(b)).full_signature();
        for i in 0..n {
            for j in (i + 1)..n {
                let together = sig[i] == sig[j];
                let agree = a[i] == a[j] && b[i] == b[j];
                prop_assert_eq!(together, agree, "rows {} {}", i, j);
            }
        }
    }

    #[test]
    fn g3_zero_iff_fd_holds(a in small_int_column(), b in small_int_column()) {
        let n = a.len().min(b.len());
        let pa = Pli::from_column(&a[..n]);
        let pb = Pli::from_column(&b[..n]);
        let sig = pb.full_signature();
        prop_assert_eq!(pa.g3_violations(&sig) == 0, pa.satisfies_fd(&sig));
    }

    #[test]
    fn g3_bounded_by_covered_rows(a in small_int_column(), b in small_int_column()) {
        let n = a.len().min(b.len());
        let pa = Pli::from_column(&a[..n]);
        let pb = Pli::from_column(&b[..n]);
        let v = pa.g3_violations(&pb.full_signature());
        prop_assert!(v <= pa.covered_count().saturating_sub(pa.cluster_count()));
    }

    #[test]
    fn sharded_pli_build_matches_single_pass(
        codes in prop::collection::vec(0u32..40, 0..200),
        shards in 1usize..70,
    ) {
        // Radix-sharded construction must be bit-identical to the
        // single-pass build for arbitrary code streams and shard counts.
        let n_codes = 40;
        prop_assert_eq!(
            Pli::from_codes_sharded(&codes, n_codes, shards),
            Pli::from_codes(&codes, n_codes)
        );
    }

    #[test]
    fn chunked_csv_ingest_matches_whole_string_read(
        rows in prop::collection::vec((0i64..50, "[a-z ,\"\n]{0,6}", prop::option::of(-100.0f64..100.0)), 1..30),
    ) {
        // Streaming ingest must be chunk-boundary invariant: any chunking
        // of the serialised bytes yields the same relation as read_str.
        let schema = Schema::new(vec![
            Attribute::continuous("id"),
            Attribute::categorical("label"),
            Attribute::continuous("score"),
        ]).unwrap();
        let rel = Relation::from_rows(
            schema,
            rows.into_iter()
                .map(|(i, s, f)| vec![Value::Int(i), Value::Text(s), Value::from(f)])
                .collect(),
        ).unwrap();
        let text = csv::write_str(&rel);
        let expected = csv::read_str(&text, &csv::CsvOptions::default()).unwrap();
        let streamed = csv::read_stream(text.as_bytes(), &csv::CsvOptions::default()).unwrap();
        prop_assert_eq!(&streamed, &expected);
        prop_assert_eq!(streamed.schema(), expected.schema());
    }

    #[test]
    fn value_ordering_is_total_and_consistent(
        x in any::<i64>(),
        y in any::<f64>(),
        s in "[a-z]{0,8}",
    ) {
        let vals = [Value::Null, Value::Int(x), Value::Float(y), Value::Text(s)];
        for a in &vals {
            prop_assert_eq!(a.cmp(a), std::cmp::Ordering::Equal);
            for b in &vals {
                prop_assert_eq!(a.cmp(b), b.cmp(a).reverse());
                prop_assert_eq!(a == b, a.cmp(b) == std::cmp::Ordering::Equal);
            }
        }
    }

    #[test]
    fn csv_roundtrips_relations(
        rows in prop::collection::vec((0i64..50, "[a-z]{1,6}", prop::option::of(-100.0f64..100.0)), 1..40)
    ) {
        let schema = Schema::new(vec![
            Attribute::continuous("id"),
            Attribute::categorical("label"),
            Attribute::continuous("score"),
        ]).unwrap();
        let rel = Relation::from_rows(
            schema,
            rows.into_iter()
                .map(|(i, s, f)| vec![Value::Int(i), Value::Text(s), Value::from(f)])
                .collect(),
        ).unwrap();
        let text = csv::write_str(&rel);
        let back = csv::read_str(&text, &csv::CsvOptions::default()).unwrap();
        prop_assert_eq!(back.n_rows(), rel.n_rows());
        // Values round-trip (floats print exactly via Display for these).
        for c in 0..rel.arity() {
            prop_assert_eq!(back.column(c).unwrap(), rel.column(c).unwrap());
        }
    }

    #[test]
    fn domain_inference_contains_all_values(col in small_int_column()) {
        prop_assume!(!col.is_empty());
        let schema = Schema::new(vec![Attribute::categorical("x")]).unwrap();
        let rel = Relation::from_rows(schema, col.iter().map(|v| vec![v.clone()]).collect()).unwrap();
        let dom = Domain::infer(&rel, 0).unwrap();
        for v in &col {
            prop_assert!(dom.contains(v));
        }
        prop_assert_eq!(dom.cardinality().unwrap(), rel.distinct_count(0).unwrap());
    }

    #[test]
    fn continuous_domain_bounds_are_tight(xs in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let schema = Schema::new(vec![Attribute::continuous("x")]).unwrap();
        let rel = Relation::from_rows(
            schema,
            xs.iter().map(|&x| vec![Value::Float(x)]).collect(),
        ).unwrap();
        let dom = Domain::infer(&rel, 0).unwrap();
        let (min, max) = dom.bounds().unwrap();
        prop_assert!(xs.iter().all(|&x| x >= min && x <= max));
        prop_assert!(xs.contains(&min) && xs.contains(&max));
    }
}

#[test]
fn attr_kind_is_exported() {
    // Smoke check that the public API surface re-exports what examples use.
    let _ = AttrKind::Categorical;
}
