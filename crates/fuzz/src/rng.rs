//! Self-contained seeded RNG for the fuzzer.
//!
//! The workspace bans unseeded randomness outright (`no-unseeded-rng`),
//! and the fuzzer must replay any finding from `(seed, iteration)` alone,
//! so mutation randomness comes from a tiny xorshift64* generator — no
//! dependency, no global state, bit-stable across platforms.

/// Deterministic xorshift64\* generator (Vigna 2016). Not
/// cryptographic — it only has to be fast, seedable and well mixed.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// A generator seeded from `seed`; a zero seed is remapped (the
    /// all-zero state is the one fixed point of the xorshift step).
    pub fn new(seed: u64) -> Self {
        // SplitMix64 scrambles the seed so nearby seeds diverge at once.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self {
            state: if z == 0 { 0x9E37_79B9_7F4A_7C15 } else { z },
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n`; 0 for an empty range.
    pub fn below(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }

    /// Next byte.
    pub fn byte(&mut self) -> u8 {
        (self.next_u64() >> 32) as u8
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        den != 0 && self.next_u64() % den < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = XorShift64::new(1);
        let mut b = XorShift64::new(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        let vals: Vec<u64> = (0..16).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift64::new(7);
        for n in [1usize, 2, 3, 10, 255] {
            for _ in 0..50 {
                assert!(r.below(n) < n);
            }
        }
        assert_eq!(r.below(0), 0);
    }
}
