//! The target registry: every untrusted-input decoder the fuzzer drives.
//!
//! A target wraps one decode/encode pair behind a uniform bytes-in
//! interface. The contract the runner enforces on top:
//!
//! * the decoder never panics — malformed bytes produce a typed error
//!   ([`TargetOutcome::Rejected`]);
//! * accepted inputs re-encode to a *canonical* form that survives a
//!   second decode/encode round trip bit-identically.

use mp_federated::net::{decode_stream, encode_stream, AbortReason, FrameError, SessionFrame};
use mp_federated::{Envelope, MsgId, Payload, WireError};
use mp_metadata::{Fd, MetadataPackage};
use mp_relation::csv::{self, CsvOptions};
use mp_relation::{Attribute, Relation, Schema, Value};

/// What one execution of a target produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetOutcome {
    /// The decoder returned a typed error (the expected fate of most
    /// mutated inputs). The message feeds the coverage signature.
    Rejected {
        /// Rendered decoder error.
        error: String,
    },
    /// The decoder accepted the input; `canonical` is its re-encoding.
    Accepted {
        /// Canonical re-encoded bytes; must be a round-trip fixed point.
        canonical: Vec<u8>,
    },
}

/// One fuzzable decoder.
pub trait FuzzTarget {
    /// Registry name (also the corpus subdirectory under `fuzz/corpus/`).
    fn name(&self) -> &'static str;
    /// Structural tokens for the mutation engine.
    fn dictionary(&self) -> &'static [&'static [u8]];
    /// Built-in seed inputs (all must be accepted).
    fn seeds(&self) -> Vec<Vec<u8>>;
    /// Feeds `input` to the decoder. Must return, never unwind — the
    /// runner treats a caught panic as a finding.
    fn run(&self, input: &[u8]) -> TargetOutcome;
}

/// Every registered target, in stable order.
pub fn registry() -> Vec<Box<dyn FuzzTarget>> {
    vec![
        Box::new(CsvTarget),
        Box::new(ExchangeTarget),
        Box::new(EnvelopeTarget),
        Box::new(FrameTarget),
    ]
}

/// Looks a target up by its registry name.
pub fn by_name(name: &str) -> Option<Box<dyn FuzzTarget>> {
    registry().into_iter().find(|t| t.name() == name)
}

/// CSV ingest: [`mp_relation::csv::read_str`] under default options,
/// canonicalised by [`mp_relation::csv::write_str`].
pub struct CsvTarget;

impl FuzzTarget for CsvTarget {
    fn name(&self) -> &'static str {
        "csv"
    }

    fn dictionary(&self) -> &'static [&'static [u8]] {
        &[
            b",",
            b"\"",
            b"\"\"",
            b"\n",
            b"\r\n",
            b"\r",
            b"?",
            b"NA",
            b"\xEF\xBB\xBF",
            b"-1",
            b"2.5",
            b"1e308",
        ]
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        vec![
            b"name,age\nalice,18\nbob,22\n".to_vec(),
            b"a,b,c\n1,2.5,x\n?,NA,\"q,uoted\"\n".to_vec(),
            b"x,y\r\n\"multi\nline\",2\r\n\"esc\"\"aped\",3\r\n".to_vec(),
            b"only\n1\n2\n3\n".to_vec(),
        ]
    }

    fn run(&self, input: &[u8]) -> TargetOutcome {
        let Ok(text) = std::str::from_utf8(input) else {
            return TargetOutcome::Rejected {
                error: "input is not UTF-8".to_owned(),
            };
        };
        match csv::read_str(text, &CsvOptions::default()) {
            Err(e) => TargetOutcome::Rejected {
                error: e.to_string(),
            },
            Ok(rel) => TargetOutcome::Accepted {
                canonical: csv::write_str(&rel).into_bytes(),
            },
        }
    }
}

/// Exchange-package deserialization:
/// [`mp_metadata::MetadataPackage::from_json`], canonicalised by
/// [`MetadataPackage::to_json`].
pub struct ExchangeTarget;

impl FuzzTarget for ExchangeTarget {
    fn name(&self) -> &'static str {
        "exchange"
    }

    fn dictionary(&self) -> &'static [&'static [u8]] {
        &[
            b"{",
            b"}",
            b"[",
            b"]",
            b":",
            b",",
            b"\"format_version\"",
            b"\"party\"",
            b"\"attributes\"",
            b"\"dependencies\"",
            b"\"n_rows\"",
            b"\"name\"",
            b"\"kind\"",
            b"\"domain\"",
            b"\"distribution\"",
            b"null",
            b"true",
            b"false",
            b"0",
            b"-1",
            b"1e308",
            b"99",
            b"\\u0000",
        ]
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        sample_packages()
            .into_iter()
            .map(|p| p.to_json().into_bytes())
            .collect()
    }

    fn run(&self, input: &[u8]) -> TargetOutcome {
        let Ok(text) = std::str::from_utf8(input) else {
            return TargetOutcome::Rejected {
                error: "input is not UTF-8".to_owned(),
            };
        };
        match MetadataPackage::from_json(text) {
            Err(e) => TargetOutcome::Rejected {
                error: e.to_string(),
            },
            Ok(pkg) => TargetOutcome::Accepted {
                canonical: pkg.to_json().into_bytes(),
            },
        }
    }
}

/// Wire-envelope decoding: [`Envelope::decode`], canonicalised by
/// [`Envelope::encode`].
pub struct EnvelopeTarget;

impl FuzzTarget for EnvelopeTarget {
    fn name(&self) -> &'static str {
        "envelope"
    }

    fn dictionary(&self) -> &'static [&'static [u8]] {
        &[
            b"MP",
            &[0x01],
            &[0x02],
            &[0x03],
            &[0x00, 0x00, 0x00, 0x00],
            &[0xFF, 0xFF, 0xFF, 0xFF],
            &[0xFF; 8],
            b"{\"party\":\"p\"}",
        ]
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        sample_envelopes().iter().map(Envelope::encode).collect()
    }

    fn run(&self, input: &[u8]) -> TargetOutcome {
        match Envelope::decode(input) {
            Err(e) => TargetOutcome::Rejected {
                error: wire_error_label(&e),
            },
            Ok(env) => TargetOutcome::Accepted {
                canonical: env.encode(),
            },
        }
    }
}

/// Session-frame stream decoding for `mpriv serve`:
/// [`decode_stream`] over the `[len u32 LE][kind u8][body]` framing,
/// canonicalised by [`encode_stream`]. Exercises the exact decoder the
/// daemon's per-connection reader runs on untrusted socket bytes:
/// length-prefix truncation, zero-length and oversized-length claims,
/// bad kinds/bodies, and spliced multi-frame streams.
pub struct FrameTarget;

impl FuzzTarget for FrameTarget {
    fn name(&self) -> &'static str {
        "frame"
    }

    fn dictionary(&self) -> &'static [&'static [u8]] {
        &[
            // Plausible little-endian length prefixes.
            &[0x00, 0x00, 0x00, 0x00],
            &[0x01, 0x00, 0x00, 0x00],
            &[0x19, 0x00, 0x00, 0x00],
            &[0xFF, 0xFF, 0xFF, 0xFF],
            &[0x11, 0x00, 0x00, 0x01],
            // Frame kind bytes (Hello..Abort).
            &[0x01],
            &[0x02],
            &[0x03],
            &[0x04],
            &[0x05],
            &[0x06],
            // Abort codes.
            &[0x07],
            // Envelope magic for kind-3 bodies.
            b"MP",
            b"shutting down",
        ]
    }

    fn seeds(&self) -> Vec<Vec<u8>> {
        let envelopes: Vec<SessionFrame> = sample_envelopes()
            .into_iter()
            .map(SessionFrame::Envelope)
            .collect();
        vec![
            // A full session lifecycle in one stream.
            encode_stream(&[
                SessionFrame::Hello {
                    session: 7,
                    party: 0,
                    n_parties: 2,
                },
                SessionFrame::Welcome {
                    session: 7,
                    party: 0,
                    n_parties: 2,
                },
            ]),
            encode_stream(&envelopes),
            encode_stream(&[SessionFrame::Done { party: 1 }, SessionFrame::Complete]),
            // Every abort reason once.
            encode_stream(&[
                SessionFrame::Abort(AbortReason::PeerDisconnected { party: 1 }),
                SessionFrame::Abort(AbortReason::HandshakeTimeout),
                SessionFrame::Abort(AbortReason::IdleTimeout),
                SessionFrame::Abort(AbortReason::QueueOverflow { party: 0 }),
                SessionFrame::Abort(AbortReason::Spoofed { claimed: 2 }),
                SessionFrame::Abort(AbortReason::ServerShutdown),
                SessionFrame::Abort(AbortReason::Protocol("bad frame".to_owned())),
            ]),
        ]
    }

    fn run(&self, input: &[u8]) -> TargetOutcome {
        match decode_stream(input) {
            Err(e) => TargetOutcome::Rejected {
                error: frame_error_label(&e),
            },
            Ok(frames) => TargetOutcome::Accepted {
                canonical: encode_stream(&frames),
            },
        }
    }
}

/// Collapses a [`FrameError`] to its variant label, for the same reason
/// as [`wire_error_label`]: offsets and claimed lengths vary with every
/// mutation and would flood the corpus with equivalent signatures.
fn frame_error_label(e: &FrameError) -> String {
    match e {
        FrameError::ZeroLength { .. } => "zero-length frame".to_owned(),
        FrameError::TooLarge { .. } => "frame too large".to_owned(),
        FrameError::Truncated { .. } => "truncated frame".to_owned(),
        FrameError::BadKind { .. } => "bad frame kind".to_owned(),
        FrameError::BadBody { kind, .. } => format!("bad body for kind {kind}"),
        FrameError::BadUtf8 => "bad utf-8".to_owned(),
        FrameError::Envelope(w) => format!("bad envelope: {}", wire_error_label(w)),
    }
}

/// Collapses a [`WireError`] to its variant label: the payload of e.g.
/// `UnexpectedEof` varies with every truncation point, and a signature
/// per offset would flood the corpus with equivalent rejections.
fn wire_error_label(e: &WireError) -> String {
    match e {
        WireError::Empty => "empty input".to_owned(),
        WireError::FrameTooLarge { .. } => "frame too large".to_owned(),
        WireError::UnexpectedEof { .. } => "unexpected EOF".to_owned(),
        WireError::BadMagic => "bad magic".to_owned(),
        WireError::UnsupportedVersion { .. } => "unsupported version".to_owned(),
        WireError::BadTag { .. } => "bad tag".to_owned(),
        WireError::Oversized { .. } => "oversized length".to_owned(),
        WireError::BadUtf8 { .. } => "bad utf-8".to_owned(),
        WireError::Package(_) => "bad package".to_owned(),
        WireError::TrailingBytes { .. } => "trailing bytes".to_owned(),
    }
}

/// Small valid packages used as exchange seeds and envelope payloads.
fn sample_packages() -> Vec<MetadataPackage> {
    let schema = Schema::new(vec![
        Attribute::categorical("id"),
        Attribute::continuous("amount"),
    ])
    .expect("static schema is valid");
    let rel = Relation::from_rows(
        schema,
        vec![
            vec![Value::Text("u1".into()), Value::Float(10.0)],
            vec![Value::Text("u2".into()), Value::Float(-2.5)],
        ],
    )
    .expect("static rows fit the schema");
    let full = MetadataPackage::describe("bank", &rel, vec![Fd::new(0usize, 1).into()])
        .expect("describe on a static relation succeeds");
    let mut legacy = full.clone();
    legacy.format_version = None;
    legacy.party = "legacy".to_owned();
    vec![full, legacy]
}

/// One valid envelope per payload kind.
fn sample_envelopes() -> Vec<Envelope> {
    let pkg = sample_packages().swap_remove(0);
    vec![
        Envelope {
            id: MsgId(1),
            from: 0,
            to: 1,
            payload: Payload::PsiDigests(vec![
                mp_federated::psi::IdDigest::from_raw(0xDEAD_BEEF),
                mp_federated::psi::IdDigest::from_raw(42),
            ]),
        },
        Envelope {
            id: MsgId(2),
            from: 1,
            to: 0,
            payload: Payload::Metadata(Box::new(pkg)),
        },
        Envelope {
            id: MsgId(3),
            from: 0,
            to: 1,
            payload: Payload::Ack(MsgId(2)),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_stable_and_unique() {
        let names: Vec<&str> = registry().iter().map(|t| t.name()).collect();
        assert_eq!(names, vec!["csv", "exchange", "envelope", "frame"]);
        assert!(by_name("csv").is_some());
        assert!(by_name("nonsense").is_none());
    }

    #[test]
    fn every_seed_is_accepted_and_canonical() {
        for target in registry() {
            let seeds = target.seeds();
            assert!(!seeds.is_empty(), "{} has no seeds", target.name());
            for (i, seed) in seeds.iter().enumerate() {
                match target.run(seed) {
                    TargetOutcome::Accepted { canonical } => {
                        // Canonical form is a fixed point of decode/encode.
                        match target.run(&canonical) {
                            TargetOutcome::Accepted { canonical: again } => assert_eq!(
                                canonical,
                                again,
                                "{} seed {i} canonical form is not a fixed point",
                                target.name()
                            ),
                            TargetOutcome::Rejected { error } => panic!(
                                "{} seed {i} canonical form rejected: {error}",
                                target.name()
                            ),
                        }
                    }
                    TargetOutcome::Rejected { error } => {
                        panic!("{} seed {i} rejected: {error}", target.name())
                    }
                }
            }
        }
    }

    #[test]
    fn malformed_inputs_are_rejected_not_panics() {
        let cases: &[(&str, &[u8])] = &[
            ("csv", b"a,b\n1\n"),
            ("csv", b"\xFF\xFE"),
            ("exchange", b"{\"party\": 3}"),
            ("exchange", b"not json"),
            ("envelope", b"XX whatever"),
            ("envelope", b""),
            // Zero-length prefix.
            ("frame", &[0x00, 0x00, 0x00, 0x00]),
            // Oversized length claim with no body behind it.
            ("frame", &[0xFF, 0xFF, 0xFF, 0xFF, 0x03]),
            // Truncated mid-prefix and mid-body.
            ("frame", &[0x05, 0x00]),
            ("frame", &[0x05, 0x00, 0x00, 0x00, 0x04]),
            // Unknown kind byte.
            ("frame", &[0x01, 0x00, 0x00, 0x00, 0x99]),
        ];
        for (name, input) in cases {
            let target = by_name(name).expect("registered");
            assert!(
                matches!(target.run(input), TargetOutcome::Rejected { .. }),
                "{name} accepted malformed input {input:?}"
            );
        }
    }
}
