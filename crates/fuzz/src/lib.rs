//! # mp-fuzz — offline mutational fuzzing harness
//!
//! A vendored, zero-network fuzzer for the workspace's untrusted-input
//! decoders: CSV ingest (`mp_relation::csv`), exchange-package JSON
//! (`mp_metadata::MetadataPackage`) and wire envelopes
//! (`mp_federated::Envelope`). No external fuzzing engine and no
//! instrumentation: mutation is seeded xorshift havoc plus dictionary
//! tokens, and the feedback signal is coverage-light — an input joins
//! the corpus when its *outcome signature* (typed-error text, or
//! canonical re-encoding) was never seen before.
//!
//! The contract every target must uphold, enforced per input:
//!
//! 1. **no panics** — malformed bytes produce a typed error;
//! 2. **canonical fixed point** — an accepted input's re-encoding
//!    decodes again and re-encodes bit-identically.
//!
//! Runs are replayable from `(seed, iterations)` alone; findings are
//! written to `fuzz/corpus/regressions/<target>/` by the `mp-fuzz`
//! binary and replayed forever after by a plain `#[test]`
//! (`crates/fuzz/tests/regressions.rs`).

#![warn(missing_docs)]

pub mod mutate;
pub mod rng;
pub mod runner;
pub mod target;

pub use mutate::Mutator;
pub use rng::XorShift64;
pub use runner::{check_input, fuzz_target, Finding, FindingKind, FuzzConfig, FuzzReport};
pub use target::{by_name, registry, FuzzTarget, TargetOutcome};

/// Workspace-relative corpus root (`fuzz/corpus`), resolved from this
/// crate's manifest so tests and the binary agree on the location.
pub fn corpus_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fuzz/corpus")
}

/// Loads every corpus file under `dir` (non-recursive), sorted by file
/// name so replay order — and therefore any fuzz run seeded from it —
/// is deterministic. A missing directory is an empty corpus.
pub fn load_corpus_dir(dir: &std::path::Path) -> std::io::Result<Vec<(String, Vec<u8>)>> {
    let mut entries = Vec::new();
    let read = match std::fs::read_dir(dir) {
        Ok(read) => read,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(entries),
        Err(e) => return Err(e),
    };
    for entry in read {
        let entry = entry?;
        if !entry.file_type()?.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with('.') {
            continue;
        }
        entries.push((name, std::fs::read(entry.path())?));
    }
    entries.sort();
    Ok(entries)
}
