//! The mutation engine: byte-level havoc plus structure-aware token
//! insertion driven by a per-target dictionary.

use crate::rng::XorShift64;

/// Mutates corpus entries into fuzz inputs. Byte-level operators
/// (bit/byte flips, deletions, truncation, chunk duplication, crossover
/// splicing) are target-agnostic; the dictionary carries each target's
/// structural tokens (delimiters, key names, magic bytes) so mutations
/// reach past the first parse error.
pub struct Mutator<'a> {
    dictionary: &'a [&'a [u8]],
    max_len: usize,
}

impl<'a> Mutator<'a> {
    /// A mutator over `dictionary`, clamping outputs to `max_len` bytes.
    pub fn new(dictionary: &'a [&'a [u8]], max_len: usize) -> Self {
        Self {
            dictionary,
            max_len,
        }
    }

    /// One mutated input derived from `input` (1–4 stacked operators).
    pub fn mutate(&self, rng: &mut XorShift64, input: &[u8]) -> Vec<u8> {
        let mut out = input.to_vec();
        let rounds = 1 + rng.below(4);
        for _ in 0..rounds {
            self.apply_one(rng, &mut out);
        }
        out.truncate(self.max_len);
        out
    }

    /// Crossover: a prefix of `a` spliced onto a suffix of `b`.
    pub fn splice(&self, rng: &mut XorShift64, a: &[u8], b: &[u8]) -> Vec<u8> {
        let cut_a = rng.below(a.len() + 1);
        let cut_b = rng.below(b.len() + 1);
        let mut out = Vec::with_capacity(cut_a + b.len() - cut_b);
        out.extend_from_slice(&a[..cut_a]);
        out.extend_from_slice(&b[cut_b..]);
        out.truncate(self.max_len);
        out
    }

    fn apply_one(&self, rng: &mut XorShift64, buf: &mut Vec<u8>) {
        match rng.below(8) {
            // Flip one bit.
            0 if !buf.is_empty() => {
                let i = rng.below(buf.len());
                buf[i] ^= 1 << rng.below(8);
            }
            // Overwrite one byte with a random value.
            1 if !buf.is_empty() => {
                let i = rng.below(buf.len());
                buf[i] = rng.byte();
            }
            // Insert a random byte.
            2 => {
                let i = rng.below(buf.len() + 1);
                buf.insert(i, rng.byte());
            }
            // Delete a short range.
            3 if !buf.is_empty() => {
                let start = rng.below(buf.len());
                let len = 1 + rng.below(8.min(buf.len() - start));
                buf.drain(start..start + len);
            }
            // Truncate the tail (hits every length-prefix / EOF path).
            4 if !buf.is_empty() => {
                buf.truncate(rng.below(buf.len()));
            }
            // Duplicate a chunk to another position.
            5 if !buf.is_empty() => {
                let start = rng.below(buf.len());
                let len = 1 + rng.below(16.min(buf.len() - start));
                let chunk: Vec<u8> = buf[start..start + len].to_vec();
                let at = rng.below(buf.len() + 1);
                buf.splice(at..at, chunk);
            }
            // Insert a dictionary token (structure-aware).
            6 if !self.dictionary.is_empty() => {
                let token = self.dictionary[rng.below(self.dictionary.len())];
                let at = rng.below(buf.len() + 1);
                buf.splice(at..at, token.iter().copied());
            }
            // Overwrite with a dictionary token at a random offset.
            7 if !self.dictionary.is_empty() && !buf.is_empty() => {
                let token = self.dictionary[rng.below(self.dictionary.len())];
                let at = rng.below(buf.len());
                for (k, &b) in token.iter().enumerate() {
                    match buf.get_mut(at + k) {
                        Some(slot) => *slot = b,
                        None => break,
                    }
                }
            }
            // Chosen operator had no effect on this input shape: fall back
            // to an insertion so every round changes something.
            _ => buf.insert(0, rng.byte()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DICT: &[&[u8]] = &[b",", b"\"", b"format_version"];

    #[test]
    fn mutation_is_seed_deterministic() {
        let m = Mutator::new(DICT, 1 << 16);
        let input = b"name,age\nalice,18\n";
        let a: Vec<Vec<u8>> = {
            let mut rng = XorShift64::new(99);
            (0..32).map(|_| m.mutate(&mut rng, input)).collect()
        };
        let b: Vec<Vec<u8>> = {
            let mut rng = XorShift64::new(99);
            (0..32).map(|_| m.mutate(&mut rng, input)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn mutation_changes_input_and_respects_max_len() {
        let m = Mutator::new(DICT, 64);
        let mut rng = XorShift64::new(3);
        let input = vec![b'x'; 64];
        let mut changed = 0;
        for _ in 0..64 {
            let out = m.mutate(&mut rng, &input);
            assert!(out.len() <= 64);
            if out != input {
                changed += 1;
            }
        }
        assert!(changed > 48, "mutations should rarely be identity");
    }

    #[test]
    fn empty_input_grows() {
        let m = Mutator::new(DICT, 1 << 10);
        let mut rng = XorShift64::new(5);
        let mut produced_nonempty = false;
        for _ in 0..16 {
            produced_nonempty |= !m.mutate(&mut rng, &[]).is_empty();
        }
        assert!(produced_nonempty);
    }

    #[test]
    fn splice_combines_prefix_and_suffix() {
        let m = Mutator::new(DICT, 1 << 10);
        let mut rng = XorShift64::new(11);
        let out = m.splice(&mut rng, b"aaaa", b"bbbb");
        assert!(out.len() <= 8);
        let boundary = out.iter().position(|&b| b == b'b').unwrap_or(out.len());
        assert!(out[..boundary].iter().all(|&b| b == b'a'));
        assert!(out[boundary..].iter().all(|&b| b == b'b'));
    }
}
